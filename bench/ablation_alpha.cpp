// Ablation for the adaptive threshold alpha (paper §3.2): candidates are
// buffered only when C < N/alpha.  The paper derives a lower bound of 4
// (buffering costs 4C accesses vs N for re-reading) and determines
// alpha = 128 empirically; larger alpha also shrinks the worst-case
// candidate-buffer footprint to N/alpha.
//
// Sweep alpha on uniform data (buffering almost always wins -> large alpha
// forfeits the candidate-buffer shortcut) and adversarial data (buffering
// almost never wins -> small alpha wastes traffic), plus the footprint.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "topk/air_topk.hpp"

namespace {

struct AlphaResult {
  double us;
  std::size_t peak_bytes;
};

AlphaResult run_alpha(const simgpu::DeviceSpec& spec,
                      const std::vector<float>& values, std::size_t k,
                      int alpha) {
  simgpu::Device dev(spec);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(values.size());
  std::copy(values.begin(), values.end(), in.data());
  auto ov = dev.alloc<float>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  dev.reset_peak_live_bytes();
  dev.clear_events();
  topk::AirTopkOptions opt;
  opt.alpha = alpha;
  topk::air_topk(dev, in, 1, values.size(), k, ov, oi, opt);
  return {simgpu::CostModel(spec).total_us(dev.events()),
          dev.peak_live_bytes()};
}

}  // namespace

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const std::size_t n = std::size_t{1} << (scale.max_log_n + 2);
  const std::size_t k = 2048;

  std::cout << "figure,distribution,n,k,alpha,time_us,peak_workspace_mib\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const auto& dist :
       {data::DistributionSpec{data::Distribution::kUniform, 0},
        data::DistributionSpec{data::Distribution::kAdversarial, 20}}) {
    const auto values = data::generate(dist, n, 0xA1FA);
    for (int alpha : {4, 16, 128, 1024, 1 << 20}) {
      const AlphaResult r = run_alpha(spec, values, k, alpha);
      std::cout << "ablation_alpha," << dist.name() << "," << n << "," << k
                << "," << alpha << "," << r.us << ","
                << static_cast<double>(r.peak_bytes) / (1 << 20) << "\n";
    }
  }
  std::cout << "# expected shape: uniform favors small-to-mid alpha "
               "(buffering on), adversarial is insensitive (the adaptive "
               "check already declines to buffer), and the workspace "
               "footprint shrinks as alpha grows (paper §3.2: max buffer "
               "size is N/alpha; alpha=N needs no candidate buffer)\n";
  return 0;
}
