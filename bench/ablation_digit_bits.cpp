// Ablation for the digit width (paper §3.1): because AIR computes the
// prefix sum on the GPU inside the fused kernel, it "can afford" 11-bit
// digits (2048 buckets), cutting 32-bit keys from 4 passes (b=8) to 3.
// Fewer passes = fewer kernel launches and, in the worst case, fewer full
// scans of the input.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "topk/air_topk.hpp"

namespace {

struct DigitResult {
  double us;
  std::size_t kernels;
};

DigitResult run_digits(const simgpu::DeviceSpec& spec,
                       const std::vector<float>& values, std::size_t k,
                       int digit_bits) {
  simgpu::Device dev(spec);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(values.size());
  std::copy(values.begin(), values.end(), in.data());
  auto ov = dev.alloc<float>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  dev.clear_events();
  topk::AirTopkOptions opt;
  opt.digit_bits = digit_bits;
  topk::air_topk(dev, in, 1, values.size(), k, ov, oi, opt);
  std::size_t kernels = 0;
  for (const auto& e : dev.events()) {
    kernels += std::holds_alternative<simgpu::KernelEvent>(e) ? 1u : 0u;
  }
  return {simgpu::CostModel(spec).total_us(dev.events()), kernels};
}

}  // namespace

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const std::size_t k = 2048;

  std::cout << "figure,distribution,n,k,digit_bits,passes,kernels,time_us\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const auto& dist :
       {data::DistributionSpec{data::Distribution::kUniform, 0},
        data::DistributionSpec{data::Distribution::kAdversarial, 20}}) {
    for (int log_n = scale.max_log_n - 4; log_n <= scale.max_log_n + 2;
         log_n += 3) {
      const std::size_t n = std::size_t{1} << log_n;
      const auto values = data::generate(dist, n, 0xD161 + n);
      for (int b : {4, 8, 11}) {
        const DigitResult r = run_digits(spec, values, k, b);
        std::cout << "ablation_digit_bits," << dist.name() << "," << n << ","
                  << k << "," << b << "," << (32 + b - 1) / b << ","
                  << r.kernels << "," << r.us << "\n";
      }
    }
  }
  std::cout << "# expected shape: b=11 (3 passes) <= b=8 (4 passes) <= b=4 "
               "(8 passes); the gap widens on adversarial data where extra "
               "passes re-scan the whole input\n";
  return 0;
}
