// Ablation for the §3.1 design decision the paper evaluates and REJECTS:
// fusing the last filtering kernel into the final iteration-fused kernel.
// "It is possible to fuse the last filtering kernel too, but we do not
// adopt this strategy in our experiments because it reduces performance for
// adversarial distribution."
//
// Expected shape: fusing saves a launch on uniform data (slightly faster or
// a wash), but on the radix-adversarial distribution the single last block
// has to scan ~N unbuffered candidates alone, and the fused variant falls
// off a cliff.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const std::size_t k = 2048;

  std::cout << "figure,distribution,n,k,separate_us,fused_us,"
               "fused_over_separate\n";
  std::cout << std::fixed << std::setprecision(2);
  for (int log_n = 14; log_n <= scale.max_log_n + 2; log_n += 2) {
    const std::size_t n = std::size_t{1} << log_n;
    for (const auto& dist :
         {data::DistributionSpec{data::Distribution::kUniform, 0},
          data::DistributionSpec{data::Distribution::kAdversarial, 20}}) {
      const auto values = data::generate(dist, n, 0xAB1 + n);
      const double separate =
          run_algo(spec, values, 1, n, k, Algo::kAirTopk, scale.verify)
              .model_us;
      const double fused =
          run_algo(spec, values, 1, n, k, Algo::kAirTopkFusedFilter,
                   scale.verify)
              .model_us;
      std::cout << "ablation_fused_filter," << dist.name() << "," << n << ","
                << k << "," << separate << "," << fused << ","
                << fused / separate << "\n";
    }
  }
  std::cout << "# expected shape: ~<=1x on uniform (saved launch), >>1x on "
               "adversarial (single-block scan of ~N candidates) — the "
               "reason the paper keeps the separate last filter\n";
  return 0;
}
