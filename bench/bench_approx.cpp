// Recall/speedup frontier for the bucketed approximate tier: for each
// (N, distribution, recall_target) cell, run the exact recommender pick and
// Algo::kBucketApprox on the same data and report modeled device time,
// modeled speedup, the planner's analytic expected recall, and the measured
// recall against the std::partial_sort reference.
//
// Output: a CSV table on stdout and BENCH_approx.json in the working
// directory (schema documented in docs/performance.md).  `--smoke` pins the
// sweep to the CI gate shape.  Gates (nonzero exit on failure):
//   * measured recall >= recall_target in every cell (mean over repeats),
//   * modeled speedup > 1x over the exact recommender pick at N=2^22,
//     recall_target=0.9, on all three paper distributions,
//   * full mode only: >= 3x on the adversarial distribution at that shape —
//     the exact tier's multi-pass worst case against the tier's
//     data-oblivious single pass (uniform/normal sit on the full-read floor,
//     so their ceiling is ~2x; see docs/performance.md).

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/recall.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/bucket_approx.hpp"

namespace topk::bench {
namespace {

struct ApproxRun {
  double model_us = 0.0;
  double recall = 0.0;
};

/// One measured select under explicit options (run_algo has no opt
/// parameter and always verifies exactly; the approximate leg verifies by
/// recall instead).
double run_with_opt(const simgpu::DeviceSpec& spec,
                    std::span<const float> data, std::size_t n, std::size_t k,
                    Algo algo, const SelectOptions& opt,
                    std::vector<float>* out = nullptr) {
  simgpu::Device dev(spec);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(n);
  std::copy(data.begin(), data.end(), in.data());
  auto out_vals = dev.alloc<float>(k);
  auto out_idx = dev.alloc<std::uint32_t>(k);
  dev.clear_events();
  select_device(dev, in, 1, n, k, out_vals, out_idx, algo, opt);
  if (out) out->assign(out_vals.data(), out_vals.data() + k);
  return simgpu::CostModel(spec).total_us(dev.events());
}

struct Cell {
  std::size_t n = 0;
  std::size_t k = 0;
  std::string dist;
  double recall_target = 0.0;
  std::size_t chunks = 0;
  std::size_t keep = 0;
  double expected_recall = 0.0;
  double measured_recall = 0.0;
  double approx_us = 0.0;
  std::string exact_algo;
  double exact_us = 0.0;
  double speedup = 0.0;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace
}  // namespace topk::bench

int main(int argc, char** argv) {
  using namespace topk;
  using namespace topk::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec;
  const std::size_t k = 256;
  const std::size_t gate_n = std::size_t{1} << 22;
  const double gate_rt = 0.9;
  const std::size_t repeats = smoke ? 2 : 4;

  std::vector<std::size_t> ns;
  if (smoke) {
    ns.push_back(gate_n);  // the CI gate shape, nothing else
  } else {
    for (int log_n = 20; log_n <= std::max(22, scale.max_log_n);
         log_n += 2) {
      ns.push_back(std::size_t{1} << log_n);
    }
  }
  const std::vector<double> targets =
      smoke ? std::vector<double>{0.9, 0.95}
            : std::vector<double>{0.8, 0.9, 0.95, 0.99};
  const std::vector<data::DistributionSpec> dists = {
      {data::Distribution::kUniform, 0},
      {data::Distribution::kNormal, 0},
      {data::Distribution::kAdversarial, 20},
  };

  CsvWriter csv(
      "n,k,dist,recall_target,chunks,keep,expected_recall,measured_recall,"
      "approx_us,exact_algo,exact_us,speedup");
  std::vector<Cell> cells;
  for (const std::size_t n : ns) {
    for (const auto& dist : dists) {
      // One exact baseline per (n, dist): the recommender's pick with no
      // recall hint — exactly what a caller without an SLO would run.
      WorkloadHints exact_hints;
      exact_hints.batch = 1;
      const Algo exact_algo = recommend_algorithm(n, k, exact_hints);
      const auto baseline_data =
          data::generate(dist, n, 0xA77 + n);
      const double exact_us =
          run_with_opt(spec, baseline_data, n, k, exact_algo, {});

      for (const double rt : targets) {
        SelectOptions opt;
        opt.recall_target = rt;
        BucketApproxOptions bopt;
        bopt.recall_target = rt;
        const BucketApproxShape shape =
            bucket_approx_configure(n, k, 1, bopt, spec);

        double recall_sum = 0.0;
        double approx_us = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
          const auto values =
              r == 0 ? baseline_data : data::generate(dist, n, 0xB33 + n + r);
          std::vector<float> approx_vals;
          approx_us = run_with_opt(spec, values, n, k, Algo::kBucketApprox,
                                   opt, &approx_vals);
          recall_sum += data::recall_at_k(
              approx_vals, data::exact_topk_values(values, k));
        }
        Cell c;
        c.n = n;
        c.k = k;
        c.dist = dist.name();
        c.recall_target = rt;
        c.chunks = shape.chunks;
        c.keep = shape.keep;
        c.expected_recall = shape.expected_recall;
        c.measured_recall = recall_sum / static_cast<double>(repeats);
        c.approx_us = approx_us;
        c.exact_algo = algo_name(exact_algo);
        c.exact_us = exact_us;
        c.speedup = exact_us / approx_us;
        cells.push_back(c);
        std::ostringstream row;
        row << n << "," << k << "," << c.dist << "," << rt << "," << c.chunks
            << "," << c.keep << "," << fmt(c.expected_recall) << ","
            << fmt(c.measured_recall) << "," << fmt(c.approx_us) << ","
            << c.exact_algo << "," << fmt(c.exact_us) << ","
            << fmt(c.speedup);
        csv.row(row.str());
      }
    }
  }

  std::ofstream out("BENCH_approx.json");
  out << "{\n  \"config\": {\n"
      << "    \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "    \"k\": " << k << ",\n"
      << "    \"repeats\": " << repeats << "\n  },\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"n\": " << c.n << ", \"k\": " << c.k << ", \"dist\": \""
        << c.dist << "\", \"recall_target\": " << c.recall_target
        << ", \"chunks\": " << c.chunks << ", \"keep\": " << c.keep
        << ", \"expected_recall\": " << c.expected_recall
        << ", \"measured_recall\": " << c.measured_recall
        << ", \"approx_us\": " << c.approx_us << ", \"exact_algo\": \""
        << c.exact_algo << "\", \"exact_us\": " << c.exact_us
        << ", \"speedup\": " << c.speedup << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_approx.json (" << cells.size() << " cells)\n";

  // --- gates ---------------------------------------------------------------
  bool ok = true;
  for (const Cell& c : cells) {
    if (c.measured_recall < c.recall_target) {
      std::cerr << "FAIL: measured recall " << fmt(c.measured_recall)
                << " below target " << fmt(c.recall_target) << " (n=" << c.n
                << ", " << c.dist << ")\n";
      ok = false;
    }
    // The planner's promise must never overstate measurement by more than
    // sampling noise.
    if (c.measured_recall + 0.05 < c.expected_recall) {
      std::cerr << "FAIL: measured recall " << fmt(c.measured_recall)
                << " far below modeled " << fmt(c.expected_recall)
                << " (n=" << c.n << ", " << c.dist << ")\n";
      ok = false;
    }
  }
  for (const Cell& c : cells) {
    if (c.n != gate_n || c.recall_target != gate_rt) continue;
    if (c.speedup <= 1.0) {
      std::cerr << "FAIL: speedup " << fmt(c.speedup)
                << "x not above 1x at the gate shape (" << c.dist << ")\n";
      ok = false;
    }
    if (!smoke && c.dist == "adversarial(M=20)" && c.speedup < 3.0) {
      std::cerr << "FAIL: adversarial speedup " << fmt(c.speedup)
                << "x below the 3x acceptance floor\n";
      ok = false;
    }
  }
  if (ok) std::cout << "all gates passed\n";
  return ok ? 0 : 1;
}
