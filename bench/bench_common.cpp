#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace topk::bench {

RunResult run_algo(const simgpu::DeviceSpec& spec,
                   std::span<const float> data, std::size_t batch,
                   std::size_t n, std::size_t k, Algo algo, bool verify) {
  simgpu::Device dev(spec);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(batch * n);
  std::copy(data.begin(), data.end(), in.data());
  auto out_vals = dev.alloc<float>(batch * k);
  auto out_idx = dev.alloc<std::uint32_t>(batch * k);

  dev.clear_events();
  const auto t0 = std::chrono::steady_clock::now();
  select_device(dev, in, batch, n, k, out_vals, out_idx, algo);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const simgpu::CostModel model(spec);
  r.model_us = model.total_us(dev.events());
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      r.kernel_bytes += ke->stats.bytes_total();
      ++r.kernels;
    }
  }
  if (verify) {
    for (std::size_t b = 0; b < batch && r.verified; ++b) {
      SelectResult res;
      res.values.assign(out_vals.data() + b * k, out_vals.data() + (b + 1) * k);
      res.indices.assign(out_idx.data() + b * k, out_idx.data() + (b + 1) * k);
      const std::string err =
          verify_topk(std::span<const float>(data.data() + b * n, n), k, res);
      if (!err.empty()) {
        std::cerr << "VERIFY FAILED " << algo_name(algo) << " n=" << n
                  << " k=" << k << " batch=" << batch << ": " << err << "\n";
        r.verified = false;
      }
    }
  }
  return r;
}

BenchScale BenchScale::from_env() {
  BenchScale s;  // default max_log_n raised 20 -> 22 with the tile fast path
  if (const char* v = std::getenv("TOPK_MAX_LOG_N")) {
    // Single-device sweeps are bounded by DeviceSpec::max_select_elems
    // (plan_select rejects anything larger with a pointer at the sharded
    // path); only topk::shard's host-side coordinator takes N past this.
    s.max_log_n = std::clamp(std::atoi(v), 10, 28);
  }
  if (const char* v = std::getenv("TOPK_VERIFY")) {
    s.verify = std::atoi(v) != 0;
  }
  return s;
}

CsvWriter::CsvWriter(std::string columns) : columns_(std::move(columns)) {}

void CsvWriter::row(const std::string& line) {
  if (!header_printed_) {
    std::cout << columns_ << "\n";
    header_printed_ = true;
  }
  std::cout << line << "\n";
}

std::string fmt_us(double us) {
  std::ostringstream os;
  if (us >= 1e5) {
    os << us / 1e3 << "ms";
  } else {
    os << us << "us";
  }
  return os.str();
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace topk::bench
