#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"

namespace topk::bench {

/// One benchmark measurement.
struct RunResult {
  double model_us = 0.0;   ///< modeled device time (the reported metric)
  double wall_ms = 0.0;    ///< emulator wall-clock (diagnostic only)
  bool verified = true;    ///< result checked against std::nth_element
  std::uint64_t kernel_bytes = 0;  ///< device-memory traffic of the run
  std::uint64_t kernels = 0;       ///< kernel launches in the run
};

/// Execute one (algo, data, batch, n, k) measurement on a fresh simulated
/// device with the given spec.  The input is placed in device memory before
/// the recorded event stream begins, matching the paper's timed region.
RunResult run_algo(const simgpu::DeviceSpec& spec,
                   std::span<const float> data, std::size_t batch,
                   std::size_t n, std::size_t k, Algo algo,
                   bool verify = false);

/// Environment-tunable benchmark scale.
///
/// The paper sweeps N up to 2^30 on an A100; the SIMT emulator is ~100x
/// slower per element than real silicon, so default sweeps cap N at
/// 2^`max_log_n` and can be widened via TOPK_MAX_LOG_N.  Setting
/// TOPK_VERIFY=0 skips per-run verification (useful for big sweeps).
/// The default rose from 20 to 22 when the tile-granular fast path landed,
/// and from 22 to 24 when the streaming radix tier made large-N runs
/// workspace-bounded (see docs/performance.md for the numbers behind each
/// bump).
struct BenchScale {
  int max_log_n = 24;
  bool verify = true;

  static BenchScale from_env();
};

/// Emit one CSV row (also echoed to stdout).  `header()` prints the column
/// names once.
class CsvWriter {
 public:
  explicit CsvWriter(std::string columns);
  void row(const std::string& line);

 private:
  bool header_printed_ = false;
  std::string columns_;
};

/// Format microseconds with sensible precision.
std::string fmt_us(double us);

/// Geometric-mean helper used by the speedup summaries.
double geomean(const std::vector<double>& xs);

}  // namespace topk::bench
