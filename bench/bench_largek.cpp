// Large-K streaming tier characterization: K = 2^10 .. 2^20 on an N = 2^24
// row (the regime past every single-chunk plan), comparing the streaming
// radix select against the best dense registry pick where one is legal, and
// measuring the pooled-workspace high-water mark per run.
//
// Output: a CSV table on stdout and BENCH_largek.json in the working
// directory.  `--smoke` trims the sweep to three K points for CI.
// Gates (nonzero exit on failure):
//   * every streaming run verifies exactly against std::nth_element,
//   * the pooled-workspace high-water mark at fixed K is BYTE-IDENTICAL
//     across N in {2^22, 2^23, 2^24} — the bounded-scratch contract —
//     while the dense baseline's workspace grows with N,
//   * the streaming scratch is also flat in K up to kMaxK (candidate
//     capacity is max(chunk, 2k), and 2*kMaxK fits the default chunk).
//
// The streaming tier is a CAPACITY tier, not a speed tier: at shapes a
// dense row can still serve, the chunked host loop pays more sync round
// trips than the dense pick (the CSV shows it plainly).  What it buys is
// the flat scratch column — the same 128 MiB serves N=2^22 and N=2^30.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "simgpu/simgpu.hpp"

namespace topk::bench {
namespace {

struct LargeKRun {
  double model_us = 0.0;
  std::size_t workspace_bytes = 0;
  std::size_t chunks = 0;
  bool verified = true;
};

/// One streaming (or dense) select through plan_select/run_select on a fresh
/// device, reporting modeled time and the pooled-workspace high-water mark.
LargeKRun run_once(const simgpu::DeviceSpec& spec,
                   std::span<const float> data, std::size_t n, std::size_t k,
                   Algo algo, bool verify) {
  simgpu::Device dev;
  auto in = dev.alloc<float>(n);
  std::copy(data.begin(), data.end(), in.data());
  auto out_vals = dev.alloc<float>(k);
  auto out_idx = dev.alloc<std::uint32_t>(k);
  const ExecutionPlan plan = plan_select(spec, 1, n, k, algo, {});
  simgpu::Workspace ws(dev);
  dev.clear_events();
  run_select(dev, plan, ws, in, out_vals, out_idx);

  LargeKRun r;
  r.model_us = simgpu::CostModel(spec).total_us(dev.events());
  r.workspace_bytes = dev.memory_pool().stats().high_water;
  if (verify) {
    std::vector<float> got(out_vals.data(), out_vals.data() + k);
    std::sort(got.begin(), got.end());
    std::vector<float> want(data.begin(), data.end());
    std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                     want.end());
    want.resize(k);
    std::sort(want.begin(), want.end());
    r.verified = got == want;
    for (std::size_t i = 0; i < k && r.verified; ++i) {
      if (data[out_idx.data()[i]] != out_vals.data()[i]) r.verified = false;
    }
  }
  return r;
}

struct Cell {
  std::size_t n = 0;
  std::size_t k = 0;
  double stream_us = 0.0;
  std::size_t stream_ws = 0;
  std::string dense_algo;  // empty when no dense row can serve the shape
  double dense_us = 0.0;
  std::size_t dense_ws = 0;
  bool verified = false;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace
}  // namespace topk::bench

int main(int argc, char** argv) {
  using namespace topk;
  using namespace topk::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec;
  const std::size_t n = std::size_t{1} << std::min(scale.max_log_n, 24);

  std::vector<int> log_ks;
  if (smoke) {
    log_ks = {10, 16, 20};
  } else {
    for (int lk = 10; lk <= 20; lk += 2) log_ks.push_back(lk);
  }

  CsvWriter csv("n,k,stream_us,stream_ws_bytes,dense_algo,dense_us,"
                "dense_ws_bytes,verified");
  std::vector<Cell> cells;
  const auto data = topk::data::uniform_values(n, 0x1A6E);
  for (const int lk : log_ks) {
    const std::size_t k = std::size_t{1} << lk;
    Cell c;
    c.n = n;
    c.k = k;
    const LargeKRun stream =
        run_once(spec, data, n, k, Algo::kStreamRadix, scale.verify);
    c.stream_us = stream.model_us;
    c.stream_ws = stream.workspace_bytes;
    c.verified = stream.verified;

    // Best dense pick at this shape, when any dense row can serve it (the
    // recommender never returns the streaming row; it is opt-in).
    WorkloadHints hints;
    hints.batch = 1;
    const Algo dense = recommend_algorithm(n, k, hints);
    if (dense != Algo::kStreamRadix && k <= max_k(dense, n)) {
      const LargeKRun dr = run_once(spec, data, n, k, dense, false);
      c.dense_algo = algo_name(dense);
      c.dense_us = dr.model_us;
      c.dense_ws = dr.workspace_bytes;
    }
    cells.push_back(c);
    std::ostringstream row;
    row << n << "," << k << "," << fmt(c.stream_us) << "," << c.stream_ws
        << "," << (c.dense_algo.empty() ? "-" : c.dense_algo) << ","
        << fmt(c.dense_us) << "," << c.dense_ws << ","
        << (c.verified ? 1 : 0);
    csv.row(row.str());
  }

  // Workspace-invariance probe: fixed K, N spanning 4x past the chunk
  // target.  The streaming marks must be byte-identical; the dense
  // baseline's must strictly grow (its scratch is sized by N).
  const std::size_t probe_k = std::size_t{1} << 16;
  std::vector<std::size_t> stream_marks, dense_marks;
  for (const int ln : {22, 23, 24}) {
    const std::size_t pn = std::size_t{1} << ln;
    const std::span<const float> slice(data.data(), pn);
    stream_marks.push_back(
        run_once(spec, slice, pn, probe_k, Algo::kStreamRadix, false)
            .workspace_bytes);
    dense_marks.push_back(
        run_once(spec, slice, pn, probe_k, Algo::kRadixSelect, false)
            .workspace_bytes);
  }

  std::ofstream out("BENCH_largek.json");
  out << "{\n  \"config\": {\n    \"smoke\": " << (smoke ? "true" : "false")
      << ",\n    \"n\": " << n << ",\n    \"probe_k\": " << probe_k
      << "\n  },\n  \"workspace_probe\": {\n    \"stream_bytes\": ["
      << stream_marks[0] << ", " << stream_marks[1] << ", " << stream_marks[2]
      << "],\n    \"dense_bytes\": [" << dense_marks[0] << ", "
      << dense_marks[1] << ", " << dense_marks[2] << "]\n  },\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"n\": " << c.n << ", \"k\": " << c.k << ", \"stream_us\": "
        << c.stream_us << ", \"stream_ws_bytes\": " << c.stream_ws
        << ", \"dense_algo\": \"" << c.dense_algo
        << "\", \"dense_us\": " << c.dense_us
        << ", \"dense_ws_bytes\": " << c.dense_ws << ", \"verified\": "
        << (c.verified ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_largek.json (" << cells.size() << " cells)\n";

  // --- gates ---------------------------------------------------------------
  bool ok = true;
  for (const Cell& c : cells) {
    if (!c.verified) {
      std::cerr << "FAIL: streaming select not exact at n=" << c.n
                << " k=" << c.k << "\n";
      ok = false;
    }
  }
  if (stream_marks[0] != stream_marks[1] ||
      stream_marks[1] != stream_marks[2]) {
    std::cerr << "FAIL: streaming workspace high-water varies with N: "
              << stream_marks[0] << " / " << stream_marks[1] << " / "
              << stream_marks[2] << " bytes\n";
    ok = false;
  }
  if (!(dense_marks[0] < dense_marks[1] && dense_marks[1] < dense_marks[2])) {
    std::cerr << "FAIL: dense baseline workspace did not grow with N (probe "
                 "is miswired): "
              << dense_marks[0] << " / " << dense_marks[1] << " / "
              << dense_marks[2] << " bytes\n";
    ok = false;
  }
  // The streaming scratch must also be flat in K up to the ceiling: the
  // candidate capacity is max(chunk, 2k) and 2*kMaxK never exceeds the
  // default chunk target, so every cell reports one mark.
  for (const Cell& c : cells) {
    if (c.stream_ws != cells.front().stream_ws) {
      std::cerr << "FAIL: streaming workspace varies with K (" << c.stream_ws
                << " at k=" << c.k << " vs " << cells.front().stream_ws
                << ")\n";
      ok = false;
    }
  }
  if (ok) {
    std::cout << "bench_largek gates PASSED (workspace "
              << stream_marks[0] << " bytes flat across N=2^22..2^24)\n";
  }
  return ok ? 0 : 1;
}
