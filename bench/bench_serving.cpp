// bench_serving — throughput/latency harness for the topk::serve layer.
//
// Drives the TopkService with bursts of identical-shape queries at several
// micro-batch caps and device counts, and reports both the *modeled* device
// time per query (the paper's metric — batching is the dominant lever, batch
// = 100 in every serving figure) and the emulator's wall-clock latency
// percentiles and throughput (diagnostic only).
//
// Output: a CSV-ish table on stdout and BENCH_serving.json in the working
// directory (schema documented in docs/serving.md).  `--smoke` shrinks N and
// the query count for CI.  In full mode the run exits non-zero if
// micro-batching fails to beat batch=1 submission in modeled device time per
// query — the acceptance gate for the serving layer.
//
// `--sharded` adds the multi-device scale-out leg: one huge query split
// across a 4-device shard pool at 1/2/4 shards, reporting the coordinator's
// modeled phase breakdown (select / gather / merge / output) and — in the
// full run — gating 4-shard total at <= 0.35x the 1-shard baseline with the
// merge phase under 10% of the total.
//
// `--pool={on,off,both}` (default both) controls the workspace-pool A/B leg:
// `both` re-runs the batched single-device config with the memory pool
// disabled and gates the pooled leg's wall p99 at no worse than the unpooled
// leg's (with tolerance for emulator wall noise); `on`/`off` pin the toggle
// for every config and skip the A/B gate.  Each row reports workspace-slab
// allocations per query (pool misses / completed) — near zero in steady
// state with the pool on, one-per-bind with it off.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "serve/service.hpp"
#include "shard/shard.hpp"
#include "simgpu/simgpu.hpp"

namespace {

struct ConfigRow {
  std::size_t cap = 1;
  std::size_t devices = 1;
  std::size_t queries = 0;
};

struct ResultRow {
  ConfigRow cfg;
  std::size_t n = 0;   ///< row length this config served
  std::size_t k = 0;   ///< requested k
  bool pooled = true;  ///< memory-pool toggle this row ran under
  std::size_t completed = 0;
  std::size_t timed_out = 0;
  std::size_t rejected = 0;
  double mean_batch_rows = 0.0;
  std::string algo;
  double model_us_per_query = 0.0;
  double wall_p50_us = 0.0;
  double wall_p95_us = 0.0;
  double wall_p99_us = 0.0;
  double wall_qps = 0.0;
  double allocs_per_query = 0.0;  ///< workspace-slab allocations per query
  double pool_hit_rate = 0.0;     ///< warm-bind fraction over all binds
};

ResultRow run_config(const ConfigRow& cfg, std::size_t k,
                     const std::vector<std::vector<float>>& pool,
                     bool pool_on, bool warmup = false) {
  const bool pool_before = simgpu::pool_enabled();
  simgpu::set_pool_enabled(pool_on);
  topk::serve::ServiceConfig scfg;
  scfg.num_devices = cfg.devices;
  scfg.max_batch = cfg.cap;
  // Large enough that a burst always fills its batches; with the query
  // count a multiple of the cap, every batch flushes on size and the wait
  // never actually elapses.
  scfg.max_wait = std::chrono::microseconds(500000);
  scfg.admission_capacity = cfg.queries;

  topk::serve::TopkService svc(scfg);
  if (warmup) {
    // One untimed burst first: the plan cache, the pooled workspaces, and
    // the service's recycled staging buffer all reach steady state, so the
    // timed bursts below compare dispatch policy instead of first-touch
    // page faults.  Counters are delta'd per burst; the latency percentiles
    // keep summarizing every completed query (all bursts draw from the same
    // pool, so the distribution is unchanged).
    std::vector<std::future<topk::serve::QueryResult>> wfuts;
    wfuts.reserve(cfg.queries);
    for (std::size_t q = 0; q < cfg.queries; ++q) {
      wfuts.push_back(
          svc.submit(std::vector<float>(pool[q % pool.size()]), k));
    }
    for (auto& f : wfuts) (void)f.get();
  }
  ResultRow row;
  row.cfg = cfg;
  row.n = pool.empty() ? 0 : pool.front().size();
  row.k = k;
  // On a warmed service, run two timed bursts and keep the faster one: a
  // single one-core burst can still eat a scheduler hiccup, and the A/B
  // gate below wants the dispatch-policy signal, not that noise.  Every
  // counter is a per-burst delta between stats() snapshots either way (a
  // fresh service's first snapshot is all zeros, so the math is shared).
  const int bursts = warmup ? 2 : 1;
  topk::serve::ServiceStats before, after;
  double wall_s = 0.0;
  double rows_sum = 0.0;
  for (int b = 0; b < bursts; ++b) {
    const topk::serve::ServiceStats s0 = svc.stats();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<topk::serve::QueryResult>> futs;
    futs.reserve(cfg.queries);
    for (std::size_t q = 0; q < cfg.queries; ++q) {
      futs.push_back(
          svc.submit(std::vector<float>(pool[q % pool.size()]), k));
    }
    double burst_rows = 0.0;
    for (auto& f : futs) {
      const topk::serve::QueryResult r = f.get();
      if (r.status == topk::serve::QueryStatus::kOk) {
        row.algo = topk::algo_name(r.algo);
        burst_rows += static_cast<double>(r.batch_rows);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double burst_s = std::chrono::duration<double>(t1 - t0).count();
    const topk::serve::ServiceStats s1 = svc.stats();
    const double qps =
        burst_s > 0.0 ? static_cast<double>(s1.completed - s0.completed) /
                            burst_s
                      : 0.0;
    const double best_qps =
        wall_s > 0.0 ? static_cast<double>(after.completed -
                                           before.completed) /
                           wall_s
                     : -1.0;
    if (b == 0 || qps > best_qps) {
      before = s0;
      after = s1;
      wall_s = burst_s;
      rows_sum = burst_rows;
    }
  }
  const topk::serve::ServiceStats s = svc.stats();
  svc.shutdown();
  simgpu::set_pool_enabled(pool_before);

  const std::uint64_t completed = after.completed - before.completed;
  const double modeled = after.modeled_device_us - before.modeled_device_us;
  const std::uint64_t misses = after.pool_misses - before.pool_misses;
  const std::uint64_t hits = after.pool_hits - before.pool_hits;
  row.pooled = pool_on;
  row.completed = completed;
  row.allocs_per_query =
      completed > 0
          ? static_cast<double>(misses) / static_cast<double>(completed)
          : 0.0;
  row.pool_hit_rate = hits + misses == 0
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(hits + misses);
  row.timed_out = after.timed_out - before.timed_out;
  row.rejected = after.rejected - before.rejected;
  row.mean_batch_rows =
      completed > 0 ? rows_sum / static_cast<double>(completed) : 0.0;
  row.model_us_per_query =
      completed > 0 ? modeled / static_cast<double>(completed) : 0.0;
  row.wall_p50_us = s.latency.p50_us;
  row.wall_p95_us = s.latency.p95_us;
  row.wall_p99_us = s.latency.p99_us;
  row.wall_qps = wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
  return row;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool sharded = false;
  std::string pool_mode = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--sharded") == 0) sharded = true;
    if (std::strncmp(argv[i], "--pool=", 7) == 0) pool_mode = argv[i] + 7;
  }
  if (pool_mode != "on" && pool_mode != "off" && pool_mode != "both") {
    std::cerr << "bench_serving: --pool must be on, off, or both\n";
    return 2;
  }

  // The acceptance shape: N = 2^20, K = 256, uniform keys.  Smoke keeps the
  // same K but shrinks N and the query count so CI (and the simcheck mode,
  // which shadows every element) stays fast.
  const std::size_t n = smoke ? (std::size_t{1} << 16) : (std::size_t{1} << 20);
  const std::size_t k = 256;
  const std::size_t queries = smoke ? 16 : 64;
  const std::size_t big_cap = smoke ? 8 : 32;

  std::vector<ConfigRow> configs = {
      {1, 1, queries},        // batch=1 submission baseline
      {big_cap, 1, queries},  // micro-batching on one device
      {big_cap, 2, queries},  // ... and across two device workers
  };

  // A small pool of distinct key rows reused across queries keeps memory
  // bounded while avoiding a single hot input.
  std::vector<std::vector<float>> pool;
  for (std::size_t i = 0; i < std::min<std::size_t>(queries, 8); ++i) {
    pool.push_back(topk::data::uniform_values(n, 0x5E7 + i));
  }

  std::cout << "cap,devices,queries,n,k,pool,completed,mean_batch_rows,algo,"
               "model_us_per_query,wall_p50_us,wall_p95_us,wall_p99_us,"
               "wall_qps,allocs_per_query,pool_hit_rate\n";
  const auto print_row = [](const ResultRow& row) {
    std::cout << row.cfg.cap << "," << row.cfg.devices << ","
              << row.cfg.queries << "," << row.n << "," << row.k << ","
              << (row.pooled ? "on" : "off") << ","
              << row.completed << "," << row.mean_batch_rows << ","
              << row.algo << "," << row.model_us_per_query << ","
              << row.wall_p50_us << "," << row.wall_p95_us << ","
              << row.wall_p99_us << "," << row.wall_qps << ","
              << row.allocs_per_query << "," << row.pool_hit_rate << "\n";
  };
  const bool main_legs_pooled = pool_mode != "off";
  std::vector<ResultRow> rows;
  for (const ConfigRow& cfg : configs) {
    const ResultRow row = run_config(cfg, k, pool, main_legs_pooled);
    rows.push_back(row);
    print_row(row);
  }

  // Workspace-pool A/B: the batched single-device config with the pool on
  // vs off.  Same shapes, same plans — only slab reuse differs, so the
  // comparison isolates allocation cost (modeled time is bit-identical by
  // design).  Wall p99 of one short burst is scheduling noise, so each leg
  // runs several times interleaved and keeps its best p99.
  const bool ab = pool_mode == "both";
  ResultRow ab_pooled = rows[1];
  ResultRow ab_unpooled;
  if (ab) {
    constexpr int kAbReps = 3;
    for (int r = 0; r < kAbReps; ++r) {
      if (r > 0) {
        const ResultRow p = run_config(configs[1], k, pool, /*pool_on=*/true);
        if (p.wall_p99_us < ab_pooled.wall_p99_us) ab_pooled = p;
      }
      const ResultRow u = run_config(configs[1], k, pool, /*pool_on=*/false);
      if (r == 0 || u.wall_p99_us < ab_unpooled.wall_p99_us) ab_unpooled = u;
    }
    rows.push_back(ab_unpooled);
    print_row(ab_unpooled);
  }

  // ---- fused row-wise dispatch leg: batch=1000 x N=2^12, k=32 -------------
  // Many small rows is the shape the fused row-wise family exists for: the
  // coalesced bucket executes as ONE launch covering every row, versus
  // per-row dispatch (cap=1) paying a full launch sequence per query.  The
  // A/B compares both modeled device time per query and emulator wall
  // clock.  The burst stays at 1000 rows even in smoke — that row count IS
  // the shape under test (the recommender's fused crossover sits near 750
  // rows at this n), and at n=2^12 the burst is cheap; only the gate floor
  // relaxes in smoke, against shared-runner wall noise.
  const std::size_t fused_n = std::size_t{1} << 12;
  const std::size_t fused_k = 32;
  const std::size_t fused_burst = 1000;
  // Every query gets a DISTINCT row: recycling a handful of 16 KiB rows
  // would hand per-row dispatch a cache-resident working set the coalesced
  // 16 MiB scan never sees, and the A/B would measure cache residency, not
  // dispatch policy.
  std::vector<std::vector<float>> fused_pool;
  fused_pool.reserve(fused_burst);
  for (std::size_t i = 0; i < fused_burst; ++i) {
    fused_pool.push_back(topk::data::uniform_values(fused_n, 0xF00D + i));
  }
  // One cold burst is dominated by first-touch page faults on the coalesced
  // 16 MiB batch buffer, not by dispatch policy.  Like the pool A/B below,
  // both legs run a few bursts interleaved and keep their best wall qps;
  // modeled device time is bit-identical across reps by construction.
  constexpr int kFusedReps = 3;
  ResultRow fused_leg;
  ResultRow perrow_leg;
  for (int r = 0; r < kFusedReps; ++r) {
    const ResultRow f =
        run_config({fused_burst, 1, fused_burst}, fused_k, fused_pool,
                   main_legs_pooled, /*warmup=*/true);
    if (r == 0 || f.wall_qps > fused_leg.wall_qps) fused_leg = f;
    const ResultRow p = run_config({1, 1, fused_burst}, fused_k, fused_pool,
                                   main_legs_pooled, /*warmup=*/true);
    if (r == 0 || p.wall_qps > perrow_leg.wall_qps) perrow_leg = p;
  }
  rows.push_back(fused_leg);
  print_row(fused_leg);
  rows.push_back(perrow_leg);
  print_row(perrow_leg);
  const double fused_model_speedup =
      fused_leg.model_us_per_query > 0.0
          ? perrow_leg.model_us_per_query / fused_leg.model_us_per_query
          : 0.0;
  const double fused_wall_speedup =
      perrow_leg.wall_qps > 0.0 ? fused_leg.wall_qps / perrow_leg.wall_qps
                                : 0.0;
  std::cout << "fused dispatch (cap=" << fused_burst << ", n=" << fused_n
            << ", k=" << fused_k << ", algo=" << fused_leg.algo
            << ") vs per-row dispatch: " << fmt(fused_model_speedup)
            << "x modeled device time per query, " << fmt(fused_wall_speedup)
            << "x wall qps\n";

  // ---- sharded scale-out leg (--sharded): one huge query, 4 devices -------
  // Single-query scale-out is the shard coordinator's shape: split N across
  // the pool, select per shard, merge the candidate lists on device 0.  The
  // gate runs at N = 2^26 — NOT 2^24 — because the fixed cost floor does
  // not shrink with the shard count: every sharded run pays the PCIe
  // gather/merge latency (~8us per copy) plus the per-shard algorithm's
  // non-scaling pass overhead, about 45us total under the default spec.  At
  // 2^24 the whole 1-shard baseline is ~165us, so even a perfect 4x split
  // of the kernel time cannot reach 0.35x; at 2^26 (the acceptance shape,
  // baseline ~590us) the floor is amortized and near-linear scaling shows.
  struct ShardLeg {
    std::size_t shards = 0;
    std::string algo;
    topk::shard::ShardTiming t;
  };
  std::vector<ShardLeg> shard_legs;
  std::size_t shard_n = 0;
  const std::size_t shard_k = 256;
  if (sharded) {
    shard_n = smoke ? (std::size_t{1} << 22) : (std::size_t{1} << 26);
    // Full-range signed keys, matching the shard test suite: AIR's modeled
    // refinement cost depends on the key distribution, and the narrow
    // (0, 1] range is its best case — a fast baseline that makes the fixed
    // PCIe floor loom largest.  The scale-out contract is gated on the
    // general-case distribution (sign bit + full exponent spread).
    std::vector<float> shard_data(shard_n);
    {
      std::mt19937 rng(0x51AB);
      std::uniform_real_distribution<float> dist(-1000.f, 1000.f);
      for (float& v : shard_data) v = dist(rng);
    }
    topk::shard::ShardConfig scfg;
    scfg.devices = 4;
    topk::shard::Coordinator coord(scfg);
    for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const topk::shard::ShardedResult r =
          coord.select(shard_data, shard_k, s);
      shard_legs.push_back({s, topk::algo_name(r.shard_algo), r.timing});
      std::cout << "sharded: shards=" << s << " devices=" << r.devices
                << " algo=" << shard_legs.back().algo
                << " select_us=" << fmt(r.timing.select_us)
                << " gather_us=" << fmt(r.timing.gather_us)
                << " merge_us=" << fmt(r.timing.merge_us)
                << " output_us=" << fmt(r.timing.output_us)
                << " total_us=" << fmt(r.timing.total_us) << "\n";
    }
  }

  const ResultRow& base = rows[0];
  const ResultRow& batched = rows[1];
  const double model_speedup =
      batched.model_us_per_query > 0.0
          ? base.model_us_per_query / batched.model_us_per_query
          : 0.0;
  std::cout << "micro-batching (cap=" << big_cap
            << ") vs batch=1: " << fmt(model_speedup)
            << "x modeled device time per query at n=" << n << " k=" << k
            << "\n";

  std::ofstream out("BENCH_serving.json");
  out << "{\n  \"meta\": {\n"
      << "    \"bench\": \"bench_serving\",\n"
      << "    \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "    \"n\": " << n << ",\n"
      << "    \"k\": " << k << ",\n"
      << "    \"distribution\": \"uniform\",\n"
      << "    \"pool_mode\": \"" << pool_mode << "\",\n"
      << "    \"model_speedup_cap" << big_cap << "_vs_1\": "
      << fmt(model_speedup) << ",\n"
      << "    \"fused_leg\": {\"n\": " << fused_n << ", \"k\": " << fused_k
      << ", \"rows\": " << fused_burst << ", \"algo\": \"" << fused_leg.algo
      << "\", \"model_speedup_vs_per_row\": " << fmt(fused_model_speedup)
      << ", \"wall_qps_speedup_vs_per_row\": " << fmt(fused_wall_speedup)
      << "},\n"
      << "    \"metric\": \"modeled device us per completed query (primary); "
         "wall latency percentiles and qps are emulator diagnostics\"\n"
      << "  },\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out << "    {\"cap\": " << r.cfg.cap << ", \"devices\": " << r.cfg.devices
        << ", \"queries\": " << r.cfg.queries << ", \"n\": " << r.n
        << ", \"k\": " << r.k
        << ", \"pool\": " << (r.pooled ? "true" : "false")
        << ", \"completed\": " << r.completed
        << ", \"rejected\": " << r.rejected
        << ", \"timed_out\": " << r.timed_out
        << ", \"mean_batch_rows\": " << fmt(r.mean_batch_rows)
        << ", \"algo\": \"" << r.algo << "\""
        << ", \"model_us_per_query\": " << fmt(r.model_us_per_query)
        << ", \"wall_p50_us\": " << fmt(r.wall_p50_us)
        << ", \"wall_p95_us\": " << fmt(r.wall_p95_us)
        << ", \"wall_p99_us\": " << fmt(r.wall_p99_us)
        << ", \"wall_qps\": " << fmt(r.wall_qps)
        << ", \"allocs_per_query\": " << fmt(r.allocs_per_query)
        << ", \"pool_hit_rate\": " << fmt(r.pool_hit_rate) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (sharded) {
    out << ",\n  \"sharded\": [\n";
    for (std::size_t i = 0; i < shard_legs.size(); ++i) {
      const ShardLeg& l = shard_legs[i];
      out << "    {\"shards\": " << l.shards << ", \"devices\": 4"
          << ", \"n\": " << shard_n << ", \"k\": " << shard_k
          << ", \"algo\": \"" << l.algo << "\""
          << ", \"select_us\": " << fmt(l.t.select_us)
          << ", \"gather_us\": " << fmt(l.t.gather_us)
          << ", \"merge_us\": " << fmt(l.t.merge_us)
          << ", \"output_us\": " << fmt(l.t.output_us)
          << ", \"total_us\": " << fmt(l.t.total_us) << "}"
          << (i + 1 < shard_legs.size() ? "," : "") << "\n";
    }
    out << "  ]";
  }
  out << "\n}\n";
  std::cout << "wrote BENCH_serving.json (" << rows.size() << " rows"
            << (sharded ? " + " + std::to_string(shard_legs.size()) +
                              " sharded legs"
                        : "")
            << ")\n";

  // Gate: micro-batching must beat batch=1 in modeled device time per query
  // whenever batches actually formed.  (If scheduling noise left the batches
  // near-empty — possible only on a badly overloaded host — the comparison
  // is meaningless, so warn instead of failing.)
  if (batched.mean_batch_rows >= 2.0 && model_speedup <= 1.0) {
    std::cerr << "FAIL: micro-batching did not beat batch=1 ("
              << fmt(model_speedup) << "x)\n";
    return 1;
  }
  if (batched.mean_batch_rows < 2.0) {
    std::cerr << "WARN: batches did not fill (mean rows "
              << fmt(batched.mean_batch_rows)
              << "); speedup gate skipped\n";
  }

  // Gate: the pool must not cost latency — pooled wall p99 at most the
  // unpooled leg's, with headroom for emulator wall noise (wider in smoke
  // mode, where p99 of a handful of queries is effectively the max).
  if (ab) {
    const double tol = smoke ? 1.25 : 1.05;
    std::cout << "pool A/B (cap=" << big_cap << ", best of reps): pooled p99 "
              << fmt(ab_pooled.wall_p99_us) << " us vs unpooled p99 "
              << fmt(ab_unpooled.wall_p99_us) << " us, allocs/query "
              << fmt(ab_pooled.allocs_per_query) << " vs "
              << fmt(ab_unpooled.allocs_per_query) << "\n";
    if (ab_pooled.wall_p99_us > ab_unpooled.wall_p99_us * tol) {
      std::cerr << "FAIL: pooled wall p99 (" << fmt(ab_pooled.wall_p99_us)
                << " us) exceeds unpooled p99 ("
                << fmt(ab_unpooled.wall_p99_us) << " us) by more than "
                << fmt(tol) << "x\n";
      return 1;
    }
    std::cout << "gate: pooled p99 <= unpooled p99 x" << fmt(tol)
              << " -> PASS\n";
  }

  // Gate: the fused coalesced launch must beat per-row dispatch in modeled
  // device time per query — 3x in the full run, relaxed in smoke where the
  // burst is small.  Wall-clock must also win in the full run; in smoke a
  // 128-query burst's wall clock is scheduling noise, so warn only.
  const double fused_floor = smoke ? 1.5 : 3.0;
  if (fused_model_speedup < fused_floor) {
    std::cerr << "FAIL: fused dispatch modeled speedup "
              << fmt(fused_model_speedup) << "x below floor "
              << fmt(fused_floor) << "x\n";
    return 1;
  }
  std::cout << "gate: fused dispatch modeled speedup >= " << fmt(fused_floor)
            << "x -> PASS\n";
  if (fused_wall_speedup <= 1.0) {
    if (smoke) {
      std::cerr << "WARN: fused dispatch wall qps did not beat per-row ("
                << fmt(fused_wall_speedup) << "x) in smoke burst\n";
    } else {
      std::cerr << "FAIL: fused dispatch wall qps did not beat per-row ("
                << fmt(fused_wall_speedup) << "x)\n";
      return 1;
    }
  } else {
    std::cout << "gate: fused dispatch wall qps > per-row -> PASS\n";
  }

  // Gate: sharded scale-out must be near-linear at the acceptance shape —
  // 4-shard modeled total <= 0.35x the 1-shard baseline, and the merge
  // phase (candidate H2D + merge kernels) under 10% of the sharded total.
  // Both are modeled-time comparisons, so they gate only in the full run;
  // the smoke shape (2^22) sits on the fixed-cost floor by design and just
  // reports the breakdown.
  if (sharded && shard_legs.size() == 3) {
    const double t1 = shard_legs[0].t.total_us;
    const double t4 = shard_legs[2].t.total_us;
    const double ratio = t1 > 0.0 ? t4 / t1 : 1.0;
    const double merge_share =
        t4 > 0.0 ? shard_legs[2].t.merge_us / t4 : 1.0;
    std::cout << "sharded scale-out (n=" << shard_n << ", k=" << shard_k
              << "): 4-shard/1-shard modeled ratio " << fmt(ratio)
              << ", merge share " << fmt(merge_share) << "\n";
    if (!smoke) {
      if (ratio > 0.35) {
        std::cerr << "FAIL: 4-shard modeled time " << fmt(t4)
                  << " us exceeds 0.35x of 1-shard " << fmt(t1) << " us\n";
        return 1;
      }
      if (merge_share >= 0.10) {
        std::cerr << "FAIL: merge overhead " << fmt(merge_share * 100.0)
                  << "% of sharded total (floor: 10%)\n";
        return 1;
      }
      std::cout << "gate: sharded 4-shard <= 0.35x 1-shard and merge < 10% "
                   "-> PASS\n";
    }
  }
  return 0;
}
