// bench_substrate — wall-clock throughput harness for the simgpu substrate.
//
// Unlike the fig*/table* binaries this does not reproduce a paper figure: it
// measures how fast the *emulator itself* moves elements (elements/second of
// wall-clock time, not modeled device time) for the ported hot-loop
// algorithms, with the tile-granular fast path on and off.  The A/B ratio is
// the substrate speedup that lets default sweeps raise TOPK_MAX_LOG_N toward
// the paper's N = 2^30 regime.
//
// Output: a human-readable table on stdout and BENCH_substrate.json in the
// working directory (schema documented in docs/performance.md).  `--smoke`
// shrinks N and the repetition count for CI.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"

namespace {

struct Row {
  std::string algo;
  std::size_t n = 0;
  std::size_t k = 0;
  bool tile = false;
  double wall_ms = 0.0;
  double elems_per_sec = 0.0;
  double model_us = 0.0;
};

/// Best-of-`reps` wall clock of one algorithm run.  The device and its
/// buffers are set up once and reused across reps: the emulator retains
/// workspace chunks between runs, so from the second rep on the timed region
/// measures the substrate's hot loops rather than first-touch page faults on
/// fresh allocations (which cost the same regardless of the tile path and
/// would only dilute the A/B ratio).
Row measure(simgpu::Device& dev, std::span<const float> data, std::size_t n,
            std::size_t k, topk::Algo algo, bool tile, int reps) {
  simgpu::set_tile_path_enabled(tile);
  Row row;
  row.algo = topk::algo_name(algo);
  row.n = n;
  row.k = k;
  row.tile = tile;
  row.wall_ms = 1e300;
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(n);
  std::copy(data.begin(), data.end(), in.data());
  auto out_vals = dev.alloc<float>(k);
  auto out_idx = dev.alloc<std::uint32_t>(k);
  for (int r = 0; r < reps; ++r) {
    dev.clear_events();
    const auto t0 = std::chrono::steady_clock::now();
    topk::select_device(dev, in, 1, n, k, out_vals, out_idx, algo);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < row.wall_ms) {
      row.wall_ms = ms;
      row.model_us = simgpu::CostModel(dev.spec()).total_us(dev.events());
    }
  }
  row.elems_per_sec = static_cast<double>(n) / (row.wall_ms / 1e3);
  return row;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto scale = topk::bench::BenchScale::from_env();
  const int max_log_n = smoke ? 18 : std::min(scale.max_log_n, 22);
  const int reps = smoke ? 2 : 4;  // rep 1 warms allocations, min is warm
  const std::size_t k = 256;
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const bool tile_default = simgpu::tile_path_enabled();

  std::vector<int> log_ns;
  for (int ln = smoke ? 16 : 18; ln <= max_log_n; ln += 2) {
    log_ns.push_back(ln);
  }

  const topk::Algo algos[] = {topk::Algo::kAirTopk, topk::Algo::kSort,
                              topk::Algo::kRadixSelect,
                              topk::Algo::kGridSelect};

  std::vector<Row> rows;
  std::cout << "algo,n,k,tile,wall_ms,elems_per_sec,model_us,speedup\n";
  for (const topk::Algo algo : algos) {
    for (const int ln : log_ns) {
      const std::size_t n = std::size_t{1} << ln;
      const auto data = topk::data::uniform_values(n, 42 + ln);
      simgpu::Device dev(spec);
      const Row off = measure(dev, data, n, k, algo, false, reps);
      const Row on = measure(dev, data, n, k, algo, true, reps);
      rows.push_back(off);
      rows.push_back(on);
      const double speedup = off.wall_ms / on.wall_ms;
      for (const Row* r : {&off, &on}) {
        std::cout << r->algo << "," << r->n << "," << r->k << ","
                  << (r->tile ? "on" : "off") << "," << r->wall_ms << ","
                  << static_cast<std::uint64_t>(r->elems_per_sec) << ","
                  << r->model_us << ","
                  << (r->tile ? fmt_double(speedup) : "-")
                  << "\n";
      }
    }
  }
  simgpu::set_tile_path_enabled(tile_default);

  std::ofstream out("BENCH_substrate.json");
  out << "{\n  \"meta\": {\n"
      << "    \"bench\": \"bench_substrate\",\n"
      << "    \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "    \"reps\": " << reps << ",\n"
      << "    \"pool_threads\": " << simgpu::ThreadPool::instance().size()
      << ",\n"
      << "    \"tile_path_default\": " << (tile_default ? "true" : "false")
      << ",\n"
      << "    \"device\": \"" << spec.name << "\",\n"
      << "    \"metric\": \"wall-clock elements/sec of the emulator "
         "(modeled device time is tile-invariant by construction)\"\n"
      << "  },\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"algo\": \"" << r.algo << "\", \"n\": " << r.n
        << ", \"k\": " << r.k << ", \"tile\": " << (r.tile ? "true" : "false")
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"elems_per_sec\": " << fmt_double(r.elems_per_sec)
        << ", \"model_us\": " << r.model_us << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_substrate.json (" << rows.size() << " rows)\n";
  return 0;
}
