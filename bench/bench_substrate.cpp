// bench_substrate — wall-clock throughput harness for the simgpu substrate.
//
// Unlike the fig*/table* binaries this does not reproduce a paper figure: it
// measures how fast the *emulator itself* moves elements (elements/second of
// wall-clock time, not modeled device time) for the ported hot-loop
// algorithms, across the substrate fast paths:
//
//   - the tile-granular fast path (TOPK_SIM_TILE, PR "tile"), A/B'd as
//     tile off vs on for every algorithm, and
//   - the threshold-gated warp fast path (TOPK_SIM_WARPFAST, "warpfast"),
//     A/B'd as warpfast off vs on (tile on in both) for the WarpSelect
//     family rows (GridSelect, WarpSelect), whose cost is per-lane round
//     emulation rather than memory accounting.
//
// The A/B ratios are the substrate speedups that let default sweeps raise
// TOPK_MAX_LOG_N toward the paper's N = 2^30 regime.  The binary also counts
// heap allocations inside each timed run (a global operator-new hook) — the
// regression canary for the per-block engine-construction cost — and it
// GATES: it exits non-zero when the GridSelect or WarpSelect warpfast
// speedup at the largest swept N falls below a floor (20× / 6× full run,
// 3× in --smoke, where shared-runner noise and tiny N compress ratios;
// WarpSelect's floor is lower because its exact path — per-thread register
// queues, no shared-queue insertion machinery — is already cheap, and its
// warpfast leg sits at the single-core memory-bandwidth floor).
// The gated ratio is fast-paths-on (tile + warpfast, the default config)
// versus fast-paths-off — the scalar per-lane emulation, i.e. what every
// run cost before the fast paths existed and still costs under simcheck.
//
// Output: a human-readable table on stdout and BENCH_substrate.json in the
// working directory (schema documented in docs/performance.md).  `--smoke`
// shrinks N and the repetition count for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"

// ---- allocation counting ---------------------------------------------------
// Counts every global operator-new call so a timed region can report how many
// heap allocations it performed.  Deliberately simple: malloc/free plus one
// relaxed atomic increment; the increment is noise next to malloc itself.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

struct Row {
  std::string algo;
  std::size_t n = 0;
  std::size_t k = 0;
  bool tile = false;
  bool warpfast = false;
  double wall_ms = 0.0;
  double elems_per_sec = 0.0;
  double model_us = 0.0;
  std::uint64_t allocs = 0;       ///< heap allocations inside the best rep
  std::uint64_t cold_allocs = 0;  ///< plan + first (cold) run allocations
};

/// Best-of-`reps` wall clock of one algorithm run, measured two-phase: the
/// plan is built and the pooled workspace warmed OUTSIDE the timed region
/// (one untimed warm-up rep binds the slab, fills the scratch freelists and
/// sizes the event buffers), so every timed rep exercises run_select()'s
/// steady state.  The allocation column is the MINIMUM heap-allocation count
/// over the timed reps — the per-run steady state, which the pooled path
/// gates at exactly zero.
Row measure(simgpu::Device& dev, std::span<const float> data, std::size_t n,
            std::size_t k, topk::Algo algo, bool tile, bool warpfast,
            int reps) {
  simgpu::set_tile_path_enabled(tile);
  simgpu::set_warpfast_path_enabled(warpfast);
  Row row;
  row.algo = topk::algo_name(algo);
  row.n = n;
  row.k = k;
  row.tile = tile;
  row.warpfast = warpfast;
  row.wall_ms = 1e300;
  row.allocs = std::numeric_limits<std::uint64_t>::max();
  simgpu::ScopedWorkspace arena(dev);
  auto in = dev.alloc<float>(n);
  std::copy(data.begin(), data.end(), in.data());
  auto out_vals = dev.alloc<float>(k);
  auto out_idx = dev.alloc<std::uint32_t>(k);
  // Cold-start cost: plan construction, workspace bind, and the first run —
  // everything a fresh shape pays before the steady state.  Gated flat in N
  // for GridSelect below: per-block engine state must come from the pooled
  // slab and the scratch freelists, never from O(num_blocks) heap allocs.
  const std::uint64_t cold0 = g_alloc_count.load(std::memory_order_relaxed);
  const topk::ExecutionPlan plan =
      topk::plan_select(dev.spec(), 1, n, k, algo);
  simgpu::Workspace ws(dev);
  dev.clear_events();
  topk::run_select(dev, plan, ws, in, out_vals, out_idx);  // untimed warm-up
  row.cold_allocs = g_alloc_count.load(std::memory_order_relaxed) - cold0;
  for (int r = 0; r < reps; ++r) {
    dev.clear_events();
    const std::uint64_t allocs0 =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    topk::run_select(dev, plan, ws, in, out_vals, out_idx);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    row.allocs = std::min(
        row.allocs, g_alloc_count.load(std::memory_order_relaxed) - allocs0);
    if (ms < row.wall_ms) {
      row.wall_ms = ms;
      row.model_us = simgpu::CostModel(dev.spec()).total_us(dev.events());
    }
  }
  row.elems_per_sec = static_cast<double>(n) / (row.wall_ms / 1e3);
  return row;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// The WarpSelect-family algorithms whose rows get the warpfast A/B leg and
/// a speedup gate.
bool warpfast_family(topk::Algo algo) {
  return algo == topk::Algo::kGridSelect || algo == topk::Algo::kWarpSelect;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto scale = topk::bench::BenchScale::from_env();
  const int max_log_n = smoke ? 18 : std::min(scale.max_log_n, 22);
  const int reps = smoke ? 2 : 4;  // rep 1 warms allocations, min is warm
  const std::size_t k = 256;
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const bool tile_default = simgpu::tile_path_enabled();
  const bool warpfast_default = simgpu::warpfast_path_enabled();

  std::vector<int> log_ns;
  for (int ln = smoke ? 16 : 18; ln <= max_log_n; ln += 2) {
    log_ns.push_back(ln);
  }

  const topk::Algo algos[] = {topk::Algo::kAirTopk, topk::Algo::kSort,
                              topk::Algo::kRadixSelect,
                              topk::Algo::kGridSelect,
                              topk::Algo::kWarpSelect};

  // Warpfast speedup (both fast paths on vs both off) at the largest swept
  // N, per gated algorithm; checked against the floors after the sweep.
  double grid_wf_speedup = 0.0;
  double warp_wf_speedup = 0.0;

  std::vector<Row> rows;
  std::cout
      << "algo,n,k,tile,warpfast,wall_ms,elems_per_sec,model_us,allocs,"
         "cold_allocs,speedup\n";
  // (N, cold_allocs) per GridSelect default-config (tile+warpfast) row, for
  // the flat-in-N gate below.
  std::vector<std::pair<std::size_t, std::uint64_t>> grid_cold;
  for (const topk::Algo algo : algos) {
    for (const int ln : log_ns) {
      const std::size_t n = std::size_t{1} << ln;
      const auto data = topk::data::uniform_values(n, 42 + ln);
      simgpu::Device dev(spec);
      const Row off = measure(dev, data, n, k, algo, false, false, reps);
      const Row on = measure(dev, data, n, k, algo, true, false, reps);
      std::vector<const Row*> printed = {&off, &on};
      Row wf;
      if (warpfast_family(algo)) {
        wf = measure(dev, data, n, k, algo, true, true, reps);
        printed.push_back(&wf);
        if (algo == topk::Algo::kGridSelect) {
          grid_cold.emplace_back(n, wf.cold_allocs);
        }
        const double wf_speedup = off.wall_ms / wf.wall_ms;
        if (ln == log_ns.back()) {
          (algo == topk::Algo::kGridSelect ? grid_wf_speedup
                                           : warp_wf_speedup) = wf_speedup;
        }
      }
      const double tile_speedup = off.wall_ms / on.wall_ms;
      for (const Row* r : printed) {
        // The speedup column reports tile-on vs tile-off for the tile leg,
        // and the gated ratio — both fast paths on vs both off — for the
        // warpfast leg.
        std::string speedup = "-";
        if (r == &on) speedup = fmt_double(tile_speedup);
        if (r->warpfast) speedup = fmt_double(off.wall_ms / r->wall_ms);
        std::cout << r->algo << "," << r->n << "," << r->k << ","
                  << (r->tile ? "on" : "off") << ","
                  << (r->warpfast ? "on" : "off") << "," << r->wall_ms << ","
                  << static_cast<std::uint64_t>(r->elems_per_sec) << ","
                  << r->model_us << "," << r->allocs << ","
                  << r->cold_allocs << "," << speedup << "\n";
        rows.push_back(*r);
      }
    }
  }
  simgpu::set_tile_path_enabled(tile_default);
  simgpu::set_warpfast_path_enabled(warpfast_default);

  std::ofstream out("BENCH_substrate.json");
  out << "{\n  \"meta\": {\n"
      << "    \"bench\": \"bench_substrate\",\n"
      << "    \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "    \"reps\": " << reps << ",\n"
      << "    \"pool_threads\": " << simgpu::ThreadPool::instance().size()
      << ",\n"
      << "    \"tile_path_default\": " << (tile_default ? "true" : "false")
      << ",\n"
      << "    \"warpfast_path_default\": "
      << (warpfast_default ? "true" : "false") << ",\n"
      << "    \"pool_enabled\": "
      << (simgpu::pool_enabled() ? "true" : "false") << ",\n"
      << "    \"device\": \"" << spec.name << "\",\n"
      << "    \"metric\": \"wall-clock elements/sec of the emulator "
         "(modeled device time is tile- and warpfast-invariant by "
         "construction)\"\n"
      << "  },\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"algo\": \"" << r.algo << "\", \"n\": " << r.n
        << ", \"k\": " << r.k << ", \"tile\": " << (r.tile ? "true" : "false")
        << ", \"warpfast\": " << (r.warpfast ? "true" : "false")
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"elems_per_sec\": " << fmt_double(r.elems_per_sec)
        << ", \"model_us\": " << r.model_us << ", \"allocs\": " << r.allocs
        << ", \"cold_allocs\": " << r.cold_allocs << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_substrate.json (" << rows.size() << " rows)\n";

  // ---- warpfast speedup gates ---------------------------------------------
  const double grid_floor = smoke ? 3.0 : 20.0;
  const double warp_floor = smoke ? 3.0 : 6.0;
  bool ok = true;
  const auto gate = [&](const char* name, double got, double floor) {
    std::cout << "gate: " << name << " warpfast speedup at N=2^"
              << log_ns.back() << " = " << fmt_double(got) << " (floor "
              << fmt_double(floor) << ") -> "
              << (got >= floor ? "PASS" : "FAIL") << "\n";
    if (got < floor) ok = false;
  };
  gate("GridSelect", grid_wf_speedup, grid_floor);
  gate("WarpSelect", warp_wf_speedup, warp_floor);

  // ---- GridSelect cold-start allocation gate: flat in N -------------------
  // GridSelect's grid grows with N (more blocks, one shared-queue engine
  // each), so per-block engine state leaking onto the heap shows up as
  // cold_allocs scaling with N.  With the engines drawing from the pooled
  // slab and the thread-local scratch freelists, the cold count is a small
  // N-independent constant; allow a little slack for pool slab resizing.
  if (grid_cold.size() >= 2) {
    const std::uint64_t first = grid_cold.front().second;
    const std::uint64_t last = grid_cold.back().second;
    std::ostringstream vals;
    for (std::size_t i = 0; i < grid_cold.size(); ++i) {
      vals << (i == 0 ? "" : ",") << grid_cold[i].second;
    }
    const bool flat = last <= first + 16;
    std::cout << "gate: GridSelect cold-start allocs across N = {"
              << vals.str() << "} (flat-in-N, slack 16) -> "
              << (flat ? "PASS" : "FAIL") << "\n";
    if (!flat) ok = false;
  }

  // ---- steady-state allocation gate ---------------------------------------
  // With the memory pool on (the default), a warmed run_select() must touch
  // the heap exactly zero times: the plan precomputes every size and name,
  // the workspace rebinds its retained slab, and the engine scratch comes
  // from thread-local freelists.  Any nonzero count is a regression in the
  // zero-alloc contract.
  if (simgpu::pool_enabled()) {
    std::uint64_t worst = 0;
    std::string worst_row;
    for (const Row& r : rows) {
      if (r.allocs > worst) {
        worst = r.allocs;
        std::ostringstream os;
        os << r.algo << " n=" << r.n << " tile=" << (r.tile ? "on" : "off")
           << " warpfast=" << (r.warpfast ? "on" : "off");
        worst_row = os.str();
      }
    }
    std::cout << "gate: steady-state allocs (pooled) = " << worst
              << (worst == 0 ? " -> PASS" : " (" + worst_row + ") -> FAIL")
              << "\n";
    if (worst != 0) ok = false;
  }
  return ok ? 0 : 1;
}
