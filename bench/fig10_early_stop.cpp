// Reproduces Fig. 10: AIR Top-K with vs without the early-stopping strategy.
// Early stopping fires when the updated K equals the updated candidate count
// (paper §3.3): every remaining candidate is a result, so the remaining
// passes degenerate into a copy.  That alignment happens when K lands
// exactly on a value-class boundary — common with duplicate-heavy data
// (ranking scores, quantized distances).  Paper: up to 18.7% improvement;
// on data where it cannot fire, early stopping must cost nothing.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();

  std::cout << "figure,workload,n,k,early_us,no_early_us,improvement_pct\n";
  std::cout << std::fixed << std::setprecision(2);
  for (int log_n = 14; log_n <= scale.max_log_n + 2; log_n += 2) {
    const std::size_t n = std::size_t{1} << log_n;

    // Workload 1: 256 equally frequent values, K on a class boundary ->
    // the updated K equals the candidate count after the first pass.
    std::vector<float> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = static_cast<float>(i % 256);
    }
    const std::size_t k = n / 4;
    const double early =
        run_algo(spec, values, 1, n, k, Algo::kAirTopk, scale.verify).model_us;
    const double no_early =
        run_algo(spec, values, 1, n, k, Algo::kAirTopkNoEarlyStop,
                 scale.verify)
            .model_us;
    std::cout << "fig10,class_aligned," << n << "," << k << "," << early
              << "," << no_early << ","
              << 100.0 * (no_early - early) / no_early << "\n";

    // Workload 2: uniform floats — early stopping (almost) never fires;
    // it must not cost anything.
    const auto uni = data::uniform_values(n, 0xE5 + n);
    const double early_u =
        run_algo(spec, uni, 1, n, k, Algo::kAirTopk, scale.verify).model_us;
    const double no_early_u =
        run_algo(spec, uni, 1, n, k, Algo::kAirTopkNoEarlyStop, scale.verify)
            .model_us;
    std::cout << "fig10,uniform," << n << "," << k << "," << early_u << ","
              << no_early_u << ","
              << 100.0 * (no_early_u - early_u) / no_early_u << "\n";
  }
  std::cout << "# expected shape: class_aligned rows show a solid "
               "improvement (paper: up to 18.7%); uniform rows ~0% and "
               "never negative\n";
  return 0;
}
