// Reproduces Fig. 11: GridSelect with the proposed shared queue (parallel
// two-step insertion) vs a per-thread-queue variant, sweeping N.
//
// The shared queue wins on two mechanisms the paper names (§4):
//  1. per-thread register queues pay an O(queue-length) sorted-insert shift
//     that SIMT predication issues warp-wide whenever any lane inserts;
//  2. when qualifying elements centralize in one lane, per-thread queues
//     flush (bitonic sort + merge) after every `thread-queue-length`
//     qualifiers even though the other 31 queues are empty.
// We report a uniform workload (mechanism 1; modest effect — paper sees up
// to 1.28x) and a lane-centralized workload (mechanism 2; decisive).
// Blocks are sized so per-warp chunks are much larger than K, as they are
// at the paper's N=2^30 scale.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "topk/grid_select.hpp"

namespace {

double run_variant(const simgpu::DeviceSpec& spec,
                   const std::vector<float>& values, std::size_t k,
                   bool shared_queue) {
  simgpu::Device dev(spec);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(values.size());
  std::copy(values.begin(), values.end(), in.data());
  auto ov = dev.alloc<float>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  dev.clear_events();
  topk::GridSelectOptions o;
  o.shared_queue = shared_queue;
  o.items_per_block = 256 * 1024;  // keep warm-up << steady state per warp
  topk::grid_select(dev, in, 1, values.size(), k, ov, oi, o);
  return simgpu::CostModel(spec).total_us(dev.events());
}

}  // namespace

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();

  std::cout
      << "figure,workload,n,k,shared_queue_us,thread_queue_us,speedup\n";
  std::cout << std::fixed << std::setprecision(3);
  for (int log_n = 18; log_n <= scale.max_log_n + 2; log_n += 2) {
    const std::size_t n = std::size_t{1} << log_n;

    const auto report = [&](const char* name, std::size_t k,
                            const std::vector<float>& values) {
      const double shared = run_variant(spec, values, k, true);
      const double thread_q = run_variant(spec, values, k, false);
      std::cout << "fig11," << name << "," << n << "," << k << "," << shared
                << "," << thread_q << "," << thread_q / shared << "\n";
    };

    report("uniform", 256, data::uniform_values(n, 0xF11 + n));

    // Lane-centralized: an ever-improving (descending) stream of qualifying
    // values that all land at positions = 0 mod 32, i.e. in thread queue 0;
    // everything else is a large constant that stops qualifying as soon as
    // the selection warms up.
    std::vector<float> centralized(n, 1e9f);
    for (std::size_t i = 0; i < n; i += 32) {
      centralized[i] = -static_cast<float>(i);
    }
    report("lane_centralized", 2048, centralized);
  }
  std::cout << "# expected shape: ~1x on uniform data (paper: up to 1.28x), "
               "decisively >1x on the lane-centralized workload\n";
  return 0;
}
