// Reproduces Fig. 12: AIR Top-K, GridSelect and the virtual SOTA on three
// device models (A100, H100, A10), sweeping K at large fixed N under the
// uniform distribution.  Expected: per-device times track memory bandwidth
// (AIR is memory-bound), AIR ~3-5x faster than SOTA, GridSelect ahead of AIR
// only for small K.

#include <iomanip>
#include <iostream>
#include <limits>
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const std::size_t n = std::size_t{1} << (scale.max_log_n + 2);
  const auto values = data::uniform_values(n, 0xF12);

  const std::array<Algo, 8> baselines = {
      Algo::kSort,        Algo::kWarpSelect,   Algo::kBlockSelect,
      Algo::kBitonicTopk, Algo::kQuickSelect,  Algo::kBucketSelect,
      Algo::kSampleSelect, Algo::kRadixSelect,
  };

  std::cout << "figure,device,n,k,air_us,gridselect_us,sota_us\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const auto& spec : {simgpu::DeviceSpec::a100(),
                           simgpu::DeviceSpec::h100(),
                           simgpu::DeviceSpec::a10()}) {
    for (std::size_t k : {std::size_t{32}, std::size_t{128}, std::size_t{512},
                          std::size_t{2048}, std::size_t{16384}}) {
      const double air =
          run_algo(spec, values, 1, n, k, Algo::kAirTopk, false).model_us;
      const double grid =
          k <= max_k(Algo::kGridSelect, n)
              ? run_algo(spec, values, 1, n, k, Algo::kGridSelect, false)
                    .model_us
              : std::numeric_limits<double>::quiet_NaN();
      double sota = std::numeric_limits<double>::infinity();
      for (Algo b : baselines) {
        if (k > max_k(b, n)) continue;
        sota = std::min(sota,
                        run_algo(spec, values, 1, n, k, b, false).model_us);
      }
      std::cout << "fig12," << spec.name << "," << n << "," << k << "," << air
                << "," << grid << "," << sota << "\n";
    }
  }
  std::cout << "# expected shape: H100 < A100 < A10 times (bandwidth "
               "ratios); AIR beats SOTA ~3-5x; GridSelect wins only at "
               "small K\n";
  return 0;
}
