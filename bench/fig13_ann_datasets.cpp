// Reproduces Fig. 13: all algorithms on real-world-style ANN workloads.
// The paper uses distance arrays from DEEP1B and SIFT (via ANN-Benchmarks);
// we generate synthetic datasets with matched dimensionality and statistics
// (see DESIGN.md) and feed the resulting query-to-candidate L2 distance
// arrays to every top-K algorithm, K in {10, 100}, N = 2^11..2^19.

#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "data/ann_dataset.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const int max_log_n = std::min(19, scale.max_log_n);
  const std::size_t max_n = std::size_t{1} << max_log_n;
  CsvWriter csv("figure,dataset,n,k,batch,algorithm,time_us,verified");

  // The paper averages 1000 queries; a handful suffices for the modeled
  // times (query-to-query variation only affects data-dependent branches).
  constexpr std::size_t kQueries = 4;

  const auto bench_dataset = [&](const data::AnnDataset& ds) {
    const auto queries = data::make_queries(ds, kQueries, 0xABCD);
    std::vector<std::vector<float>> distances;
    distances.reserve(kQueries);
    for (std::size_t q = 0; q < kQueries; ++q) {
      distances.push_back(
          data::l2_distances(ds, queries.data() + q * ds.dim, max_n));
    }
    for (int log_n = 11; log_n <= max_log_n; log_n += 2) {
      const std::size_t n = std::size_t{1} << log_n;
      for (std::size_t k : {std::size_t{10}, std::size_t{100}}) {
        for (Algo algo : all_algorithms()) {
          if (k > max_k(algo, n)) continue;
          double total_us = 0.0;
          bool verified = true;
          for (std::size_t q = 0; q < kQueries; ++q) {
            std::span<const float> dist_slice(distances[q].data(), n);
            const RunResult r =
                run_algo(simgpu::DeviceSpec::a100(), dist_slice, 1, n, k,
                         algo, scale.verify && q == 0);
            total_us += r.model_us;
            verified &= r.verified;
          }
          std::ostringstream row;
          row << "fig13," << ds.name << "," << n << "," << k << ",1,\""
              << algo_name(algo) << "\"," << total_us / kQueries << ","
              << (verified ? 1 : 0);
          csv.row(row.str());
        }
      }
    }
  };

  bench_dataset(data::make_deep_like(max_n, 0xDEE9));
  bench_dataset(data::make_sift_like(max_n, 0x51F7));
  std::cout << "# expected shape: consistent with the synthetic sweeps — AIR "
               "Top-K / GridSelect fastest, gap growing with N; GridSelect "
               "ahead at K=10 for many N\n";
  return 0;
}
