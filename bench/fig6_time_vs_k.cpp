// Reproduces Fig. 6: running time vs K for fixed N, batch size 1, under
// uniform / normal / radix-adversarial distributions, for all algorithms.
//
// Paper setting: N in {2^15, 2^20, 2^25, 2^30}, K in 2^3..2^20 on an A100.
// Here N is scaled to the emulator (TOPK_MAX_LOG_N, default 2^20) and K
// sweeps powers of 8; reported times are modeled A100 device times.

#include <iostream>
#include <sstream>

#include "bench_common.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  CsvWriter csv("figure,distribution,n,k,batch,algorithm,time_us,verified");

  const std::vector<data::DistributionSpec> dists = {
      {data::Distribution::kUniform, 0},
      {data::Distribution::kNormal, 0},
      {data::Distribution::kAdversarial, 20},
  };
  std::vector<std::size_t> ns = {std::size_t{1} << 15,
                                 std::size_t{1} << ((15 + scale.max_log_n) / 2),
                                 std::size_t{1} << scale.max_log_n};

  for (const auto& dist : dists) {
    for (std::size_t n : ns) {
      const auto values = data::generate(dist, n, 0xF16'6'000 + n);
      for (std::size_t k = 8; k <= n / 2; k *= 8) {
        for (Algo algo : all_algorithms()) {
          if (k > max_k(algo, n)) continue;  // same gaps as the paper's plots
          const RunResult r =
              run_algo(spec, values, 1, n, k, algo, scale.verify);
          std::ostringstream row;
          row << "fig6," << dist.name() << "," << n << "," << k << ",1,\""
              << algo_name(algo) << "\"," << r.model_us << ","
              << (r.verified ? 1 : 0);
          csv.row(row.str());
        }
      }
    }
  }
  std::cout << "# fig6 done: lower is better; see EXPERIMENTS.md for the "
               "paper-shape checklist\n";
  return 0;
}
