// Reproduces Fig. 7: running time vs N for fixed K, batch sizes 1 and 100,
// under uniform / normal / radix-adversarial distributions.
//
// Paper setting: K in {32, 256, 32768}, N in 2^11..2^30 on an A100.  Here N
// is capped by TOPK_MAX_LOG_N (default 2^20; batch-100 rows cap two octaves
// lower to bound emulation time) and K=32768 is included when N allows.

#include <iostream>
#include <sstream>

#include "bench_common.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  CsvWriter csv("figure,distribution,n,k,batch,algorithm,time_us,verified");

  const std::vector<data::DistributionSpec> dists = {
      {data::Distribution::kUniform, 0},
      {data::Distribution::kNormal, 0},
      {data::Distribution::kAdversarial, 20},
  };
  const std::vector<std::size_t> ks = {32, 256, 32768};

  for (const auto& dist : dists) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{100}}) {
      const int max_log_n =
          batch == 1 ? scale.max_log_n : std::max(11, scale.max_log_n - 4);
      for (int log_n = 11; log_n <= max_log_n; log_n += 3) {
        const std::size_t n = std::size_t{1} << log_n;
        const auto values = data::generate(dist, batch * n, 0xF17'000 + n);
        for (std::size_t k : ks) {
          if (k > n) continue;
          for (Algo algo : all_algorithms()) {
            if (k > max_k(algo, n)) continue;
            const RunResult r =
                run_algo(spec, values, batch, n, k, algo,
                         scale.verify && batch == 1);
            std::ostringstream row;
            row << "fig7," << dist.name() << "," << n << "," << k << ","
                << batch << ",\"" << algo_name(algo) << "\"," << r.model_us
                << "," << (r.verified ? 1 : 0);
            csv.row(row.str());
          }
        }
      }
    }
  }
  std::cout << "# fig7 done\n";
  return 0;
}
