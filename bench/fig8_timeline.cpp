// Reproduces Fig. 8: execution timeline of RadixSelect (host-managed; white
// space from synchronizations and PCIe copies) vs AIR Top-K (four tightly
// packed kernels, no host engagement), for N = 2^23, K = 2048.

#include <iostream>

#include "bench_common.hpp"
#include "simgpu/timeline.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const std::size_t n = std::size_t{1} << std::min(23, scale.max_log_n + 2);
  const std::size_t k = 2048;
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const auto values = data::uniform_values(n, 88);

  for (Algo algo : {Algo::kRadixSelect, Algo::kAirTopk}) {
    simgpu::Device dev(spec);
    simgpu::ScopedWorkspace ws(dev);
    auto in = dev.alloc<float>(n);
    std::copy(values.begin(), values.end(), in.data());
    auto out_vals = dev.alloc<float>(k);
    auto out_idx = dev.alloc<std::uint32_t>(k);
    dev.clear_events();
    select_device(dev, in, 1, n, k, out_vals, out_idx, algo);

    const simgpu::CostModel model(spec);
    const simgpu::Timeline tl = model.simulate(dev.events());
    std::cout << "==== " << algo_name(algo) << "  (N=2^" << std::countr_zero(n)
              << ", K=" << k << ", modeled on " << spec.name << ") ====\n";
    std::cout << simgpu::render_timeline(tl, 100);
    std::cout << "-- spans --\n" << simgpu::describe_timeline(tl) << "\n";
  }
  std::cout << "# expected shape: RadixSelect shows MemcpyDtoH + sync gaps "
               "between kernels; AIR Top-K is 5 back-to-back kernels\n";
  return 0;
}
