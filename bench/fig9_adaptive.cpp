// Reproduces Fig. 9: AIR Top-K with vs without the adaptive buffering
// strategy on radix-adversarial distributions with M=10 and M=20, sweeping
// N.  The speedup should grow with N and be larger for M=20 (paper: up to
// 4.62x for M=10 and 6.53x for M=20).

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const std::size_t k = 2048;

  std::cout << "figure,M,n,k,adaptive_us,non_adaptive_us,speedup\n";
  std::cout << std::fixed << std::setprecision(2);
  for (int m : {10, 20}) {
    for (int log_n = 14; log_n <= scale.max_log_n + 2; log_n += 2) {
      const std::size_t n = std::size_t{1} << log_n;
      const auto values = data::radix_adversarial_values(n, m, 0x919 + n);
      const double with_adaptive =
          run_algo(spec, values, 1, n, k, Algo::kAirTopk, scale.verify)
              .model_us;
      const double without =
          run_algo(spec, values, 1, n, k, Algo::kAirTopkNoAdaptive,
                   scale.verify)
              .model_us;
      std::cout << "fig9," << m << "," << n << "," << k << ","
                << with_adaptive << "," << without << ","
                << without / with_adaptive << "\n";
    }
  }
  std::cout << "# expected shape: speedup > 1, growing with N, larger for "
               "M=20 than M=10\n";
  return 0;
}
