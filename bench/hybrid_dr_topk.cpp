// Extension bench: the Dr. Top-K hybrid (§2.2 related work) with different
// base algorithms.  The paper argues hybrids are "orthogonal to and can
// benefit from our new methods" — i.e., Dr. Top-K gets faster when its base
// selection is AIR Top-K instead of the older RadixSelect, and for small K
// the hybrid can also beat running the base directly.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/dr_topk.hpp"

namespace {

double run_hybrid(const simgpu::DeviceSpec& spec,
                  const std::vector<float>& values, std::size_t k,
                  topk::Algo base, bool verify) {
  simgpu::Device dev(spec);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(values.size());
  std::copy(values.begin(), values.end(), in.data());
  auto ov = dev.alloc<float>(k);
  auto oi = dev.alloc<std::uint32_t>(k);
  dev.clear_events();
  topk::DrTopkOptions opt;
  opt.base = base;
  topk::dr_topk(dev, in, 1, values.size(), k, ov, oi, opt);
  const double us = simgpu::CostModel(spec).total_us(dev.events());
  if (verify) {
    topk::SelectResult r;
    r.values.assign(ov.data(), ov.data() + k);
    r.indices.assign(oi.data(), oi.data() + k);
    const std::string err = topk::verify_topk(values, k, r);
    if (!err.empty()) std::cerr << "VERIFY FAILED: " << err << "\n";
  }
  return us;
}

}  // namespace

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const std::size_t k = 64;

  std::cout << "figure,n,k,air_us,dr_over_air_us,radixselect_us,"
               "dr_over_radixselect_us\n";
  std::cout << std::fixed << std::setprecision(2);
  for (int log_n = 16; log_n <= scale.max_log_n + 2; log_n += 2) {
    const std::size_t n = std::size_t{1} << log_n;
    const auto values = data::uniform_values(n, 0xD2 + n);
    const double air =
        run_algo(spec, values, 1, n, k, Algo::kAirTopk, scale.verify).model_us;
    const double dr_air = run_hybrid(spec, values, k, Algo::kAirTopk,
                                     scale.verify);
    const double radix =
        run_algo(spec, values, 1, n, k, Algo::kRadixSelect, scale.verify)
            .model_us;
    const double dr_radix = run_hybrid(spec, values, k, Algo::kRadixSelect,
                                       scale.verify);
    std::cout << "hybrid_dr_topk," << n << "," << k << "," << air << ","
              << dr_air << "," << radix << "," << dr_radix << "\n";
  }
  std::cout << "# expected shape: Dr.TopK(AIR) well below Dr.TopK("
               "RadixSelect) — the hybrid benefits from a faster base "
               "(paper §2.2).  Note: at emulator scales (N <= 2^24) the "
               "host-managed base's fixed round trips dominate, so the "
               "hybrid's traffic savings beat the direct base only at the "
               "largest N; its kernel_bytes are always lower.\n";
  return 0;
}
