// google-benchmark microbenchmarks of the top-K algorithms themselves,
// reporting both emulator wall time (the benchmark metric) and modeled A100
// device time (the `model_us` counter) for a representative configuration.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using topk::Algo;

void run_algo_bench(benchmark::State& state, Algo algo) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  if (k > topk::max_k(algo, n)) {
    state.SkipWithError("k unsupported for this algorithm");
    return;
  }
  const auto values = topk::data::uniform_values(n, 42);
  double model_us = 0.0;
  for (auto _ : state) {
    const auto r = topk::bench::run_algo(simgpu::DeviceSpec::a100(), values, 1,
                                         n, k, algo, false);
    model_us = r.model_us;
    benchmark::DoNotOptimize(r);
  }
  state.counters["model_us"] = model_us;
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}

#define TOPK_BENCH(name, algo)                                 \
  void BM_##name(benchmark::State& state) {                    \
    run_algo_bench(state, algo);                               \
  }                                                            \
  BENCHMARK(BM_##name)->Args({1 << 18, 64})->Args({1 << 18, 2048})

TOPK_BENCH(AirTopk, Algo::kAirTopk);
TOPK_BENCH(GridSelect, Algo::kGridSelect);
TOPK_BENCH(RadixSelect, Algo::kRadixSelect);
TOPK_BENCH(WarpSelect, Algo::kWarpSelect);
TOPK_BENCH(BlockSelect, Algo::kBlockSelect);
TOPK_BENCH(QuickSelect, Algo::kQuickSelect);
TOPK_BENCH(BucketSelect, Algo::kBucketSelect);
TOPK_BENCH(SampleSelect, Algo::kSampleSelect);
TOPK_BENCH(Sort, Algo::kSort);

void BM_BitonicTopk(benchmark::State& state) {
  run_algo_bench(state, Algo::kBitonicTopk);
}
BENCHMARK(BM_BitonicTopk)->Args({1 << 18, 64})->Args({1 << 18, 256});

}  // namespace

BENCHMARK_MAIN();
