// google-benchmark microbenchmarks of the simulated-GPU substrate: kernel
// launch + pool dispatch, accounted loads/stores, atomics, warp primitives,
// and the bitonic networks.  These measure *emulator wall time*, which is
// what bounds how large a sweep the paper-figure benches can run.

#include <benchmark/benchmark.h>

#include <numeric>
#include <random>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/bitonic.hpp"

namespace {

void BM_LaunchOverhead(benchmark::State& state) {
  simgpu::Device dev;
  for (auto _ : state) {
    simgpu::launch(dev, {"noop", static_cast<int>(state.range(0)), 256},
                   [](simgpu::BlockCtx&) {});
    dev.clear_events();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LaunchOverhead)->Arg(1)->Arg(64)->Arg(1024);

void BM_AccountedStreamRead(benchmark::State& state) {
  simgpu::Device dev;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto buf = dev.alloc<float>(n);
  std::iota(buf.data(), buf.data() + n, 0.0f);
  const int blocks = 64;
  for (auto _ : state) {
    simgpu::launch(dev, {"read", blocks, 256}, [=](simgpu::BlockCtx& ctx) {
      const std::size_t per = n / blocks;
      const auto b = static_cast<std::size_t>(ctx.block_idx());
      float acc = 0.0f;
      for (std::size_t i = b * per; i < (b + 1) * per; ++i) {
        acc += ctx.load(buf, i);
      }
      benchmark::DoNotOptimize(acc);
    });
    dev.clear_events();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long>(n) * 4);
}
BENCHMARK(BM_AccountedStreamRead)->Arg(1 << 16)->Arg(1 << 20);

void BM_GlobalAtomics(benchmark::State& state) {
  simgpu::Device dev;
  auto counter = dev.alloc_zero<std::uint64_t>(1);
  for (auto _ : state) {
    simgpu::launch(dev, {"atomics", 64, 256}, [=](simgpu::BlockCtx& ctx) {
      for (int i = 0; i < 1024; ++i) {
        ctx.atomic_add(counter, 0, std::uint64_t{1});
      }
    });
    dev.clear_events();
  }
  state.SetItemsProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_GlobalAtomics);

void BM_WarpBallot(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    const std::uint32_t mask =
        simgpu::Warp::ballot([&](int lane) { return (lane ^ x) & 1; });
    x += mask;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_WarpBallot);

void BM_BitonicSort(benchmark::State& state) {
  simgpu::Device dev;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(1);
  std::vector<float> keys(n);
  std::vector<std::uint32_t> idx(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<float>(rng());
      idx[i] = static_cast<std::uint32_t>(i);
    }
    simgpu::launch(dev, {"sort", 1, 32}, [&](simgpu::BlockCtx& ctx) {
      topk::bitonic_sort<float>(ctx, keys, idx);
    });
    dev.clear_events();
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_BitonicSort)->Arg(32)->Arg(256)->Arg(2048);

void BM_MergePrune(benchmark::State& state) {
  simgpu::Device dev;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n), b(n);
  std::vector<std::uint32_t> ai(n), bi(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(2 * i);
      b[i] = static_cast<float>(2 * i + 1);
    }
    simgpu::launch(dev, {"merge", 1, 32}, [&](simgpu::BlockCtx& ctx) {
      topk::merge_prune<float>(ctx, a, ai, b, bi);
    });
    dev.clear_events();
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_MergePrune)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
