// Self-verifying reproduction harness: runs miniature sweeps and checks the
// paper's qualitative claims programmatically.  Prints one PASS/FAIL line
// per claim with the measured numbers; exits non-zero if any claim fails.
//
// This is the quick "did the reproduction hold?" gate; the fig*/table*
// binaries produce the full data.

#include <cmath>
#include <iomanip>
#include <iostream>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace topk;
using namespace topk::bench;

int failures = 0;

void check(const std::string& claim, bool ok, const std::string& detail) {
  std::cout << (ok ? "[PASS] " : "[FAIL] ") << claim << "  (" << detail
            << ")\n";
  if (!ok) ++failures;
}

std::string ratio(double a, double b) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << a << " vs " << b << " us, "
     << a / b << "x";
  return os.str();
}

}  // namespace

int main() {
  const simgpu::DeviceSpec a100 = simgpu::DeviceSpec::a100();
  const std::size_t n = 1 << 20;
  const auto uniform = data::uniform_values(n, 1);
  const auto adversarial = data::radix_adversarial_values(n, 20, 2);

  const auto t = [&](std::span<const float> d, std::size_t batch,
                     std::size_t nn, std::size_t k, Algo algo,
                     const simgpu::DeviceSpec& spec = simgpu::DeviceSpec::a100()) {
    return run_algo(spec, d, batch, nn, k, algo, false).model_us;
  };

  // §5.1 / Fig 6: radix selection is flat in K; partial sorting is not.
  const double air_k8 = t(uniform, 1, n, 8, Algo::kAirTopk);
  const double air_k256k = t(uniform, 1, n, 1 << 18, Algo::kAirTopk);
  check("AIR Top-K time is (near-)flat in K", air_k256k < 1.5 * air_k8,
        ratio(air_k256k, air_k8));

  const double grid_k8 = t(uniform, 1, n, 8, Algo::kGridSelect);
  const double grid_k2048 = t(uniform, 1, n, 2048, Algo::kGridSelect);
  check("partial sorting cost climbs with K", grid_k2048 > 2.0 * grid_k8,
        ratio(grid_k2048, grid_k8));

  // Fig 6 guideline: GridSelect beats AIR for small K at large N.
  check("GridSelect faster than AIR for K < 256", grid_k8 < air_k8,
        ratio(grid_k8, air_k8));
  check("AIR faster than GridSelect for large K", air_k256k < grid_k2048,
        ratio(air_k256k, grid_k2048));

  // §5.2.1: iteration fusion beats the host-managed baseline.
  const double radix = t(uniform, 1, n, 2048, Algo::kRadixSelect);
  const double air = t(uniform, 1, n, 2048, Algo::kAirTopk);
  check("AIR >= 2x over host-managed RadixSelect (batch 1)",
        radix > 2.0 * air, ratio(radix, air));

  // Batch 100: the fused design amortizes launches; baselines do not.
  const std::size_t bn = 1 << 14;
  const auto batch_data = data::uniform_values(100 * bn, 3);
  const double air_b100 = t(batch_data, 100, bn, 256, Algo::kAirTopk);
  const double radix_b100 = t(batch_data, 100, bn, 256, Algo::kRadixSelect);
  check("AIR >= 50x over RadixSelect at batch 100",
        radix_b100 > 50.0 * air_b100, ratio(radix_b100, air_b100));

  // §3.2 / Fig 9: the adaptive strategy defuses the adversarial case.
  const double air_adv = t(adversarial, 1, n, 2048, Algo::kAirTopk);
  const double air_adv_na = t(adversarial, 1, n, 2048,
                              Algo::kAirTopkNoAdaptive);
  check("adaptive strategy helps on adversarial data",
        air_adv_na > 1.5 * air_adv, ratio(air_adv_na, air_adv));
  const double radix_adv = t(adversarial, 1, n, 2048, Algo::kRadixSelect);
  check("adversarial data hurts RadixSelect much more than AIR",
        (radix_adv / radix) > 1.5 && (air_adv / air) < 1.3,
        "radix +" + std::to_string(radix_adv / radix) + "x, air +" +
            std::to_string(air_adv / air) + "x");

  // §3.3 / Fig 10: early stopping is free when it cannot fire.
  const double air_es = t(uniform, 1, n, 2048, Algo::kAirTopk);
  const double air_no_es = t(uniform, 1, n, 2048, Algo::kAirTopkNoEarlyStop);
  check("early stopping never costs anything", air_es <= 1.02 * air_no_es,
        ratio(air_es, air_no_es));

  // §3.1: fusing the last filter backfires on adversarial data.
  const double fused_adv = t(adversarial, 1, n, 2048,
                             Algo::kAirTopkFusedFilter);
  check("fused last filter is slower on adversarial data (why the paper "
        "rejects it)",
        fused_adv > 2.0 * air_adv, ratio(fused_adv, air_adv));

  // Fig 7: WarpSelect's single warp collapses as N grows.
  const double warp_small = t(uniform, 1, 1 << 14, 32, Algo::kWarpSelect);
  const double warp_big = t(uniform, 1, n, 32, Algo::kWarpSelect);
  check("WarpSelect degrades superlinearly in N (single-warp parallelism)",
        warp_big / warp_small > 32.0, ratio(warp_big, warp_small));
  const double grid_big = t(uniform, 1, n, 32, Algo::kGridSelect);
  const double block_big = t(uniform, 1, n, 32, Algo::kBlockSelect);
  check("GridSelect's multi-block launch beats BlockSelect at large N",
        block_big > 10.0 * grid_big, ratio(block_big, grid_big));

  // §5.4 / Fig 12: memory-bound performance tracks bandwidth.
  const double on_h100 = t(uniform, 1, n, 2048, Algo::kAirTopk,
                           simgpu::DeviceSpec::h100());
  const double on_a10 = t(uniform, 1, n, 2048, Algo::kAirTopk,
                          simgpu::DeviceSpec::a10());
  check("AIR ranks H100 < A100 < A10 (bandwidth ordering)",
        on_h100 < air && air < on_a10,
        std::to_string(on_h100) + " / " + std::to_string(air) + " / " +
            std::to_string(on_a10) + " us");

  // Correctness gate over everything (small but adversarial mix).
  bool all_ok = true;
  const auto mix = data::radix_adversarial_values(1 << 15, 20, 9);
  for (Algo algo : all_algorithms()) {
    const std::size_t k = std::min<std::size_t>(128, max_k(algo, mix.size()));
    all_ok &= run_algo(a100, mix, 1, mix.size(), k, algo, true).verified;
  }
  check("all 10 algorithms verify against std::nth_element", all_ok,
        "adversarial M=20, n=2^15");

  std::cout << (failures == 0 ? "ALL SHAPE CHECKS PASSED\n"
                              : std::to_string(failures) + " CHECKS FAILED\n");
  return failures == 0 ? 0 : 1;
}
