// Reproduces Table 2: speedup ranges of AIR Top-K over RadixSelect, of
// GridSelect over BlockSelect, and of AIR Top-K over the virtual SOTA (the
// best prior algorithm per configuration), for batch sizes 1 and 100 under
// the three distributions.
//
// The sweep is the union of the Fig. 6 / Fig. 7 grids, scaled down to the
// emulator via TOPK_MAX_LOG_N.

#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>

#include "bench_common.hpp"

namespace {

using topk::Algo;

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  void add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return hi > 0.0; }
};

const std::array<Algo, 8> kBaselines = {
    Algo::kSort,        Algo::kWarpSelect,   Algo::kBlockSelect,
    Algo::kBitonicTopk, Algo::kQuickSelect,  Algo::kBucketSelect,
    Algo::kSampleSelect, Algo::kRadixSelect,
};

}  // namespace

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();

  const std::vector<data::DistributionSpec> dists = {
      {data::Distribution::kUniform, 0},
      {data::Distribution::kNormal, 0},
      {data::Distribution::kAdversarial, 20},
  };

  std::cout << "batch,distribution,air_vs_radixselect,gridselect_vs_"
               "blockselect,air_vs_sota\n";
  for (std::size_t batch : {std::size_t{1}, std::size_t{100}}) {
    const int max_log_n =
        batch == 1 ? scale.max_log_n : std::max(12, scale.max_log_n - 4);
    for (const auto& dist : dists) {
      Range air_vs_radix, grid_vs_block, air_vs_sota;
      for (int log_n = 12; log_n <= max_log_n; log_n += 4) {
        const std::size_t n = std::size_t{1} << log_n;
        const auto values = data::generate(dist, batch * n, 0x7AB2 + n);
        for (std::size_t k : {std::size_t{32}, std::size_t{512},
                              std::size_t{8192}}) {
          if (k > n / 2) continue;
          std::map<Algo, double> t;
          for (Algo algo : all_algorithms()) {
            if (k > max_k(algo, n)) continue;
            t[algo] =
                run_algo(spec, values, batch, n, k, algo, false).model_us;
          }
          const double air = t.at(Algo::kAirTopk);
          air_vs_radix.add(t.at(Algo::kRadixSelect) / air);
          if (t.count(Algo::kGridSelect) && t.count(Algo::kBlockSelect)) {
            grid_vs_block.add(t.at(Algo::kBlockSelect) /
                              t.at(Algo::kGridSelect));
          }
          double sota = std::numeric_limits<double>::infinity();
          for (Algo b : kBaselines) {
            if (t.count(b)) sota = std::min(sota, t.at(b));
          }
          air_vs_sota.add(sota / air);
        }
      }
      std::ostringstream row;
      row << std::fixed << std::setprecision(2);
      row << batch << "," << dist.name() << "," << air_vs_radix.lo << "-"
          << air_vs_radix.hi << "," << grid_vs_block.lo << "-"
          << grid_vs_block.hi << "," << air_vs_sota.lo << "-"
          << air_vs_sota.hi;
      std::cout << row.str() << "\n";
    }
  }
  std::cout << "# paper Table 2 (A100, N up to 2^30): AIR vs RadixSelect "
               "2-21x (batch 1) / 8-575x (batch 100); GridSelect vs "
               "BlockSelect up to 882x (batch 1) / up to 9.8x (batch 100); "
               "AIR vs SOTA 1.4-7.3x (batch 1) / 1.4-31.9x (batch 100)\n";
  return 0;
}
