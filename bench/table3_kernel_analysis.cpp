// Reproduces Table 3: per-kernel time percentage, Memory SOL and Compute SOL
// of AIR Top-K at large N (paper: N=2^30, K=2048; here N is scaled by
// TOPK_MAX_LOG_N).  The first two iteration-fused kernels should dominate
// the time and be memory-bound (high Memory SOL, moderate Compute SOL).

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace topk;
  using namespace topk::bench;

  const BenchScale scale = BenchScale::from_env();
  const std::size_t n = std::size_t{1} << (scale.max_log_n + 4);
  const std::size_t k = 2048;
  const simgpu::DeviceSpec spec = simgpu::DeviceSpec::a100();
  const auto values = data::uniform_values(n, 333);

  simgpu::Device dev(spec);
  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(n);
  std::copy(values.begin(), values.end(), in.data());
  auto out_vals = dev.alloc<float>(k);
  auto out_idx = dev.alloc<std::uint32_t>(k);
  dev.clear_events();
  select_device(dev, in, 1, n, k, out_vals, out_idx, Algo::kAirTopk);

  const simgpu::CostModel model(spec);
  double total = 0.0;
  std::vector<std::pair<std::string, simgpu::KernelCost>> rows;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      const auto cost = model.kernel_cost(ke->stats);
      rows.emplace_back(ke->stats.name, cost);
      total += cost.duration_us;
    }
  }

  std::cout << "AIR Top-K kernel analysis (N=2^"
            << std::countr_zero(n) << ", K=" << k << ", " << spec.name
            << " model)\n";
  std::cout << std::left << std::setw(28) << "kernel" << std::right
            << std::setw(12) << "time_pct" << std::setw(12) << "mem_sol"
            << std::setw(14) << "compute_sol" << "\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const auto& [name, cost] : rows) {
    std::cout << std::left << std::setw(28) << name << std::right
              << std::setw(11) << 100.0 * cost.duration_us / total << "%"
              << std::setw(11) << 100.0 * cost.mem_sol << "%" << std::setw(13)
              << 100.0 * cost.compute_sol << "%\n";
  }
  std::cout << "# paper Table 3: iteration_fused_kernel(1)/(2) ~49/50% of "
               "time, ~91/89% Memory SOL, ~31/45% Compute SOL; (3) and "
               "last_filter negligible\n";
  return 0;
}
