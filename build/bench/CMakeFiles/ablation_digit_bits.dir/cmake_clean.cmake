file(REMOVE_RECURSE
  "CMakeFiles/ablation_digit_bits.dir/ablation_digit_bits.cpp.o"
  "CMakeFiles/ablation_digit_bits.dir/ablation_digit_bits.cpp.o.d"
  "ablation_digit_bits"
  "ablation_digit_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_digit_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
