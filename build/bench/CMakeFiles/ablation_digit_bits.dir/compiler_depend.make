# Empty compiler generated dependencies file for ablation_digit_bits.
# This may be replaced when dependencies are built.
