file(REMOVE_RECURSE
  "CMakeFiles/ablation_fused_filter.dir/ablation_fused_filter.cpp.o"
  "CMakeFiles/ablation_fused_filter.dir/ablation_fused_filter.cpp.o.d"
  "ablation_fused_filter"
  "ablation_fused_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fused_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
