# Empty dependencies file for ablation_fused_filter.
# This may be replaced when dependencies are built.
