file(REMOVE_RECURSE
  "CMakeFiles/fig10_early_stop.dir/fig10_early_stop.cpp.o"
  "CMakeFiles/fig10_early_stop.dir/fig10_early_stop.cpp.o.d"
  "fig10_early_stop"
  "fig10_early_stop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_early_stop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
