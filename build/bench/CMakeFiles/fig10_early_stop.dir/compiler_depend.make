# Empty compiler generated dependencies file for fig10_early_stop.
# This may be replaced when dependencies are built.
