file(REMOVE_RECURSE
  "CMakeFiles/fig11_queue_variants.dir/fig11_queue_variants.cpp.o"
  "CMakeFiles/fig11_queue_variants.dir/fig11_queue_variants.cpp.o.d"
  "fig11_queue_variants"
  "fig11_queue_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_queue_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
