# Empty dependencies file for fig11_queue_variants.
# This may be replaced when dependencies are built.
