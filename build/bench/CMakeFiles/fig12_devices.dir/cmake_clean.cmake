file(REMOVE_RECURSE
  "CMakeFiles/fig12_devices.dir/fig12_devices.cpp.o"
  "CMakeFiles/fig12_devices.dir/fig12_devices.cpp.o.d"
  "fig12_devices"
  "fig12_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
