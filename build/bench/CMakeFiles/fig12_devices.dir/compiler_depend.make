# Empty compiler generated dependencies file for fig12_devices.
# This may be replaced when dependencies are built.
