file(REMOVE_RECURSE
  "CMakeFiles/fig13_ann_datasets.dir/fig13_ann_datasets.cpp.o"
  "CMakeFiles/fig13_ann_datasets.dir/fig13_ann_datasets.cpp.o.d"
  "fig13_ann_datasets"
  "fig13_ann_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ann_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
