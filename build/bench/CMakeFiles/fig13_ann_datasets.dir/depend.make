# Empty dependencies file for fig13_ann_datasets.
# This may be replaced when dependencies are built.
