file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_vs_k.dir/fig6_time_vs_k.cpp.o"
  "CMakeFiles/fig6_time_vs_k.dir/fig6_time_vs_k.cpp.o.d"
  "fig6_time_vs_k"
  "fig6_time_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
