# Empty dependencies file for fig6_time_vs_k.
# This may be replaced when dependencies are built.
