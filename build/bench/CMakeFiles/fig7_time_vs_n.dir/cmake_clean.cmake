file(REMOVE_RECURSE
  "CMakeFiles/fig7_time_vs_n.dir/fig7_time_vs_n.cpp.o"
  "CMakeFiles/fig7_time_vs_n.dir/fig7_time_vs_n.cpp.o.d"
  "fig7_time_vs_n"
  "fig7_time_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_time_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
