# Empty compiler generated dependencies file for fig7_time_vs_n.
# This may be replaced when dependencies are built.
