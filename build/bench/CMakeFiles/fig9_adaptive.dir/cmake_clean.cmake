file(REMOVE_RECURSE
  "CMakeFiles/fig9_adaptive.dir/fig9_adaptive.cpp.o"
  "CMakeFiles/fig9_adaptive.dir/fig9_adaptive.cpp.o.d"
  "fig9_adaptive"
  "fig9_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
