# Empty dependencies file for fig9_adaptive.
# This may be replaced when dependencies are built.
