file(REMOVE_RECURSE
  "CMakeFiles/hybrid_dr_topk.dir/hybrid_dr_topk.cpp.o"
  "CMakeFiles/hybrid_dr_topk.dir/hybrid_dr_topk.cpp.o.d"
  "hybrid_dr_topk"
  "hybrid_dr_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_dr_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
