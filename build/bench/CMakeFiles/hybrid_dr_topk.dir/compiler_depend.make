# Empty compiler generated dependencies file for hybrid_dr_topk.
# This may be replaced when dependencies are built.
