file(REMOVE_RECURSE
  "CMakeFiles/shape_checks.dir/shape_checks.cpp.o"
  "CMakeFiles/shape_checks.dir/shape_checks.cpp.o.d"
  "shape_checks"
  "shape_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
