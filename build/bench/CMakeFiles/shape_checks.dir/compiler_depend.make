# Empty compiler generated dependencies file for shape_checks.
# This may be replaced when dependencies are built.
