file(REMOVE_RECURSE
  "CMakeFiles/table2_speedup_summary.dir/table2_speedup_summary.cpp.o"
  "CMakeFiles/table2_speedup_summary.dir/table2_speedup_summary.cpp.o.d"
  "table2_speedup_summary"
  "table2_speedup_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_speedup_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
