file(REMOVE_RECURSE
  "CMakeFiles/table3_kernel_analysis.dir/table3_kernel_analysis.cpp.o"
  "CMakeFiles/table3_kernel_analysis.dir/table3_kernel_analysis.cpp.o.d"
  "table3_kernel_analysis"
  "table3_kernel_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_kernel_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
