# Empty compiler generated dependencies file for table3_kernel_analysis.
# This may be replaced when dependencies are built.
