file(REMOVE_RECURSE
  "CMakeFiles/ann_search.dir/ann_search.cpp.o"
  "CMakeFiles/ann_search.dir/ann_search.cpp.o.d"
  "ann_search"
  "ann_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
