# Empty compiler generated dependencies file for ann_search.
# This may be replaced when dependencies are built.
