# Empty dependencies file for ann_search.
# This may be replaced when dependencies are built.
