file(REMOVE_RECURSE
  "CMakeFiles/streaming_topk.dir/streaming_topk.cpp.o"
  "CMakeFiles/streaming_topk.dir/streaming_topk.cpp.o.d"
  "streaming_topk"
  "streaming_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
