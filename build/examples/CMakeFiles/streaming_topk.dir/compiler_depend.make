# Empty compiler generated dependencies file for streaming_topk.
# This may be replaced when dependencies are built.
