file(REMOVE_RECURSE
  "CMakeFiles/topk_cli.dir/topk_cli.cpp.o"
  "CMakeFiles/topk_cli.dir/topk_cli.cpp.o.d"
  "topk_cli"
  "topk_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
