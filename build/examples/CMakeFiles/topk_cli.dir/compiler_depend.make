# Empty compiler generated dependencies file for topk_cli.
# This may be replaced when dependencies are built.
