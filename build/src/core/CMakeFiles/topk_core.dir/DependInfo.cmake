
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dr_topk.cpp" "src/core/CMakeFiles/topk_core.dir/dr_topk.cpp.o" "gcc" "src/core/CMakeFiles/topk_core.dir/dr_topk.cpp.o.d"
  "/root/repo/src/core/topk.cpp" "src/core/CMakeFiles/topk_core.dir/topk.cpp.o" "gcc" "src/core/CMakeFiles/topk_core.dir/topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simgpu/CMakeFiles/simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
