file(REMOVE_RECURSE
  "CMakeFiles/topk_core.dir/dr_topk.cpp.o"
  "CMakeFiles/topk_core.dir/dr_topk.cpp.o.d"
  "CMakeFiles/topk_core.dir/topk.cpp.o"
  "CMakeFiles/topk_core.dir/topk.cpp.o.d"
  "libtopk_core.a"
  "libtopk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
