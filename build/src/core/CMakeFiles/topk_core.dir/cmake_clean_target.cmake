file(REMOVE_RECURSE
  "libtopk_core.a"
)
