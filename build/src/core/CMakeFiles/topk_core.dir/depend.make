# Empty dependencies file for topk_core.
# This may be replaced when dependencies are built.
