
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/ann_dataset.cpp" "src/data/CMakeFiles/topk_data.dir/ann_dataset.cpp.o" "gcc" "src/data/CMakeFiles/topk_data.dir/ann_dataset.cpp.o.d"
  "/root/repo/src/data/distributions.cpp" "src/data/CMakeFiles/topk_data.dir/distributions.cpp.o" "gcc" "src/data/CMakeFiles/topk_data.dir/distributions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
