file(REMOVE_RECURSE
  "CMakeFiles/topk_data.dir/ann_dataset.cpp.o"
  "CMakeFiles/topk_data.dir/ann_dataset.cpp.o.d"
  "CMakeFiles/topk_data.dir/distributions.cpp.o"
  "CMakeFiles/topk_data.dir/distributions.cpp.o.d"
  "libtopk_data.a"
  "libtopk_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
