file(REMOVE_RECURSE
  "libtopk_data.a"
)
