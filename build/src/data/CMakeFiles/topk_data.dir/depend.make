# Empty dependencies file for topk_data.
# This may be replaced when dependencies are built.
