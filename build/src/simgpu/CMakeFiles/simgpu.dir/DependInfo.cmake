
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/cost_model.cpp" "src/simgpu/CMakeFiles/simgpu.dir/cost_model.cpp.o" "gcc" "src/simgpu/CMakeFiles/simgpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/simgpu/device_spec.cpp" "src/simgpu/CMakeFiles/simgpu.dir/device_spec.cpp.o" "gcc" "src/simgpu/CMakeFiles/simgpu.dir/device_spec.cpp.o.d"
  "/root/repo/src/simgpu/event.cpp" "src/simgpu/CMakeFiles/simgpu.dir/event.cpp.o" "gcc" "src/simgpu/CMakeFiles/simgpu.dir/event.cpp.o.d"
  "/root/repo/src/simgpu/thread_pool.cpp" "src/simgpu/CMakeFiles/simgpu.dir/thread_pool.cpp.o" "gcc" "src/simgpu/CMakeFiles/simgpu.dir/thread_pool.cpp.o.d"
  "/root/repo/src/simgpu/timeline.cpp" "src/simgpu/CMakeFiles/simgpu.dir/timeline.cpp.o" "gcc" "src/simgpu/CMakeFiles/simgpu.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
