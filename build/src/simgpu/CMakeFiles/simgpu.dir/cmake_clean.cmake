file(REMOVE_RECURSE
  "CMakeFiles/simgpu.dir/cost_model.cpp.o"
  "CMakeFiles/simgpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/simgpu.dir/device_spec.cpp.o"
  "CMakeFiles/simgpu.dir/device_spec.cpp.o.d"
  "CMakeFiles/simgpu.dir/event.cpp.o"
  "CMakeFiles/simgpu.dir/event.cpp.o.d"
  "CMakeFiles/simgpu.dir/thread_pool.cpp.o"
  "CMakeFiles/simgpu.dir/thread_pool.cpp.o.d"
  "CMakeFiles/simgpu.dir/timeline.cpp.o"
  "CMakeFiles/simgpu.dir/timeline.cpp.o.d"
  "libsimgpu.a"
  "libsimgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
