file(REMOVE_RECURSE
  "libsimgpu.a"
)
