# Empty compiler generated dependencies file for simgpu.
# This may be replaced when dependencies are built.
