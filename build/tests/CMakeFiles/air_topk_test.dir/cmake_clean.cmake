file(REMOVE_RECURSE
  "CMakeFiles/air_topk_test.dir/topk/air_topk_test.cpp.o"
  "CMakeFiles/air_topk_test.dir/topk/air_topk_test.cpp.o.d"
  "air_topk_test"
  "air_topk_test.pdb"
  "air_topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
