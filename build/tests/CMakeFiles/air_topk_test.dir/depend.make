# Empty dependencies file for air_topk_test.
# This may be replaced when dependencies are built.
