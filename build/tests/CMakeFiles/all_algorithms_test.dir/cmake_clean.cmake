file(REMOVE_RECURSE
  "CMakeFiles/all_algorithms_test.dir/topk/all_algorithms_test.cpp.o"
  "CMakeFiles/all_algorithms_test.dir/topk/all_algorithms_test.cpp.o.d"
  "all_algorithms_test"
  "all_algorithms_test.pdb"
  "all_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
