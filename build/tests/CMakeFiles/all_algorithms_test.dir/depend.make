# Empty dependencies file for all_algorithms_test.
# This may be replaced when dependencies are built.
