file(REMOVE_RECURSE
  "CMakeFiles/dr_topk_test.dir/topk/dr_topk_test.cpp.o"
  "CMakeFiles/dr_topk_test.dir/topk/dr_topk_test.cpp.o.d"
  "dr_topk_test"
  "dr_topk_test.pdb"
  "dr_topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
