# Empty dependencies file for dr_topk_test.
# This may be replaced when dependencies are built.
