file(REMOVE_RECURSE
  "CMakeFiles/generic_keys_test.dir/topk/generic_keys_test.cpp.o"
  "CMakeFiles/generic_keys_test.dir/topk/generic_keys_test.cpp.o.d"
  "generic_keys_test"
  "generic_keys_test.pdb"
  "generic_keys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_keys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
