# Empty compiler generated dependencies file for generic_keys_test.
# This may be replaced when dependencies are built.
