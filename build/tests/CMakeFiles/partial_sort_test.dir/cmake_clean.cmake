file(REMOVE_RECURSE
  "CMakeFiles/partial_sort_test.dir/topk/partial_sort_test.cpp.o"
  "CMakeFiles/partial_sort_test.dir/topk/partial_sort_test.cpp.o.d"
  "partial_sort_test"
  "partial_sort_test.pdb"
  "partial_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
