file(REMOVE_RECURSE
  "CMakeFiles/partition_select_test.dir/topk/partition_select_test.cpp.o"
  "CMakeFiles/partition_select_test.dir/topk/partition_select_test.cpp.o.d"
  "partition_select_test"
  "partition_select_test.pdb"
  "partition_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
