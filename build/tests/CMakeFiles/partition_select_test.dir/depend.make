# Empty dependencies file for partition_select_test.
# This may be replaced when dependencies are built.
