file(REMOVE_RECURSE
  "CMakeFiles/radix_select_test.dir/topk/radix_select_test.cpp.o"
  "CMakeFiles/radix_select_test.dir/topk/radix_select_test.cpp.o.d"
  "radix_select_test"
  "radix_select_test.pdb"
  "radix_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radix_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
