# Empty dependencies file for radix_select_test.
# This may be replaced when dependencies are built.
