file(REMOVE_RECURSE
  "CMakeFiles/simgpu_test.dir/simgpu/cost_model_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/cost_model_test.cpp.o.d"
  "CMakeFiles/simgpu_test.dir/simgpu/device_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/device_test.cpp.o.d"
  "CMakeFiles/simgpu_test.dir/simgpu/kernel_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/kernel_test.cpp.o.d"
  "CMakeFiles/simgpu_test.dir/simgpu/thread_pool_test.cpp.o"
  "CMakeFiles/simgpu_test.dir/simgpu/thread_pool_test.cpp.o.d"
  "simgpu_test"
  "simgpu_test.pdb"
  "simgpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
