# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simgpu_test[1]_include.cmake")
include("/root/repo/build/tests/air_topk_test[1]_include.cmake")
include("/root/repo/build/tests/radix_select_test[1]_include.cmake")
include("/root/repo/build/tests/partial_sort_test[1]_include.cmake")
include("/root/repo/build/tests/partition_select_test[1]_include.cmake")
include("/root/repo/build/tests/all_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/dr_topk_test[1]_include.cmake")
include("/root/repo/build/tests/property_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/generic_keys_test[1]_include.cmake")
include("/root/repo/build/tests/extended_features_test[1]_include.cmake")
include("/root/repo/build/tests/common_util_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_api_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
