// Two-stage ANN re-ranking through the fused row-wise path (the serving
// shape the paper's batch experiments highlight: many small rows, one
// launch).  Stage 1 scores every database vector against each query using
// only a prefix of the dimensions — a cheap, approximate screen — and keeps
// a per-query shortlist.  Stage 2 computes exact distances for the
// shortlists only and re-ranks ALL queries in a single fused warp-per-row
// launch, with FusedRowwiseOptions::in_idx carrying the original database
// ids so the fused kernel emits final answers directly.
//
//   $ ./examples/ann_rerank

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/topk.hpp"
#include "data/ann_dataset.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/fused_rowwise.hpp"

int main() {
  constexpr std::size_t kDatabase = 1 << 14;
  constexpr std::size_t kQueries = 64;     // micro-batch for the fused launch
  constexpr std::size_t kShortlist = 512;  // candidates kept per query
  constexpr std::size_t kNeighbors = 10;
  constexpr std::size_t kCoarseDims = 48;  // stage-1 distance uses 48 of 96

  const topk::data::AnnDataset db =
      topk::data::make_deep_like(kDatabase, /*seed=*/7);
  const std::vector<float> queries =
      topk::data::make_queries(db, kQueries, /*seed=*/13);

  simgpu::Device dev;
  std::cout << "two-stage kNN over " << db.name << " (" << db.count << " x "
            << db.dim << "), " << kQueries << " queries\n";

  // ---- stage 1: coarse screen on a dimension prefix --------------------
  // One GridSelect per query over the truncated-distance array keeps the
  // kShortlist most promising candidate ids.
  std::vector<std::uint32_t> shortlist_ids(kQueries * kShortlist);
  for (std::size_t q = 0; q < kQueries; ++q) {
    const float* query = queries.data() + q * db.dim;
    std::vector<float> coarse(db.count);
    for (std::size_t v = 0; v < db.count; ++v) {
      const float* vec = db.vectors.data() + v * db.dim;
      float d2 = 0.0f;
      for (std::size_t d = 0; d < kCoarseDims; ++d) {
        const float diff = query[d] - vec[d];
        d2 += diff * diff;
      }
      coarse[v] = d2;
    }
    const topk::SelectResult r =
        topk::select(dev, coarse, kShortlist, topk::Algo::kGridSelect);
    std::copy(r.indices.begin(), r.indices.end(),
              shortlist_ids.begin() + q * kShortlist);
  }

  // ---- stage 2: exact re-rank, every query in ONE fused launch ---------
  // Rows are the queries, columns their shortlisted candidates' exact
  // distances; in_idx maps each column back to its database id.
  auto rerank = dev.alloc<float>(kQueries * kShortlist);
  auto in_idx = dev.alloc<std::uint32_t>(kQueries * kShortlist);
  for (std::size_t q = 0; q < kQueries; ++q) {
    const float* query = queries.data() + q * db.dim;
    for (std::size_t c = 0; c < kShortlist; ++c) {
      const std::uint32_t id = shortlist_ids[q * kShortlist + c];
      const float* vec = db.vectors.data() + id * db.dim;
      float d2 = 0.0f;
      for (std::size_t d = 0; d < db.dim; ++d) {
        const float diff = query[d] - vec[d];
        d2 += diff * diff;
      }
      rerank.data()[q * kShortlist + c] = d2;
      in_idx.data()[q * kShortlist + c] = id;
    }
  }
  auto out_vals = dev.alloc<float>(kQueries * kNeighbors);
  auto out_idx = dev.alloc<std::uint32_t>(kQueries * kNeighbors);
  topk::FusedRowwiseOptions opt;
  opt.in_idx = in_idx;
  topk::fused_rowwise<float>(dev, rerank, kQueries, kShortlist, kNeighbors,
                             out_vals, out_idx, /*block_variant=*/false, opt);

  // ---- verify ----------------------------------------------------------
  // The fused answer must equal a per-row reference select over the same
  // shortlist; recall@10 against the exact full-database answer measures
  // how much the coarse screen gave up (reporting only — approximation is
  // the point of stage 1).
  std::size_t recall_hits = 0;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const std::vector<float> row(
        rerank.data() + q * kShortlist,
        rerank.data() + (q + 1) * kShortlist);
    const topk::SelectResult want =
        topk::reference_select(row, kNeighbors);
    std::vector<float> got(out_vals.data() + q * kNeighbors,
                           out_vals.data() + (q + 1) * kNeighbors);
    std::vector<float> ref = want.values;
    std::sort(got.begin(), got.end());
    std::sort(ref.begin(), ref.end());
    if (got != ref) {
      std::cerr << "fused re-rank mismatch for query " << q << "\n";
      return 1;
    }
    // Every emitted index must be a database id from this query's
    // shortlist whose exact distance matches the emitted value.
    for (std::size_t i = 0; i < kNeighbors; ++i) {
      const std::uint32_t id = out_idx.data()[q * kNeighbors + i];
      bool found = false;
      for (std::size_t c = 0; c < kShortlist; ++c) {
        if (shortlist_ids[q * kShortlist + c] == id &&
            rerank.data()[q * kShortlist + c] ==
                out_vals.data()[q * kNeighbors + i]) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << "fused re-rank emitted a foreign id for query " << q
                  << "\n";
        return 1;
      }
    }

    const float* query = queries.data() + q * db.dim;
    const std::vector<float> exact =
        topk::data::l2_distances(db, query, db.count);
    const topk::SelectResult truth =
        topk::reference_select(exact, kNeighbors);
    for (std::size_t i = 0; i < kNeighbors; ++i) {
      const std::uint32_t id = out_idx.data()[q * kNeighbors + i];
      for (std::uint32_t tid : truth.indices) {
        if (tid == id) {
          ++recall_hits;
          break;
        }
      }
    }
  }
  const double recall = static_cast<double>(recall_hits) /
                        static_cast<double>(kQueries * kNeighbors);
  std::cout << "fused re-rank: " << kQueries << " queries x " << kShortlist
            << " candidates in one launch, k=" << kNeighbors
            << "  [exact within shortlist: OK]\n";
  std::cout << "recall@10 vs exact search: " << std::setprecision(3) << recall
            << " (coarse screen used " << kCoarseDims << "/" << db.dim
            << " dims)\n";
  return recall >= 0.5 ? 0 : 1;
}
