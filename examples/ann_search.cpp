// ANN search example (the paper's headline workload, §5.5): brute-force
// k-nearest-neighbor queries against a vector database.  For each query we
// compute the L2 distance to every candidate vector and use a top-K
// selection to keep the K nearest — exactly the role AIR Top-K plays inside
// RAFT/cuVS.  K=10 favors GridSelect, K=100 favors AIR Top-K (paper Fig 13).
//
//   $ ./examples/ann_search

#include <iomanip>
#include <iostream>

#include "core/topk.hpp"
#include "data/ann_dataset.hpp"
#include "simgpu/simgpu.hpp"

int main() {
  constexpr std::size_t kDatabase = 1 << 15;
  constexpr std::size_t kQueries = 4;

  // A DEEP1B-like database: 96-d unit-norm CNN descriptors (synthetic; see
  // DESIGN.md for the substitution rationale).
  const topk::data::AnnDataset db =
      topk::data::make_deep_like(kDatabase, /*seed=*/7);
  const std::vector<float> queries =
      topk::data::make_queries(db, kQueries, /*seed=*/13);

  simgpu::Device dev;
  std::cout << "kNN over " << db.name << " (" << db.count << " x " << db.dim
            << ")\n";

  for (std::size_t q = 0; q < kQueries; ++q) {
    const float* query = queries.data() + q * db.dim;
    const std::vector<float> distances =
        topk::data::l2_distances(db, query, db.count);

    // K=10 neighbors: small K, GridSelect's sweet spot.
    const topk::SelectResult nn10 =
        topk::select(dev, distances, 10, topk::Algo::kGridSelect);
    // K=100 neighbors: AIR Top-K territory.
    const topk::SelectResult nn100 =
        topk::select(dev, distances, 100, topk::Algo::kAirTopk);

    if (!topk::verify_topk(distances, 10, nn10).empty() ||
        !topk::verify_topk(distances, 100, nn100).empty()) {
      std::cerr << "verification failed for query " << q << "\n";
      return 1;
    }

    // Report the 3 nearest for this query.
    std::vector<std::size_t> order(nn10.values.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return nn10.values[a] < nn10.values[b];
    });
    std::cout << "query " << q << ": nearest ids";
    for (int i = 0; i < 3; ++i) {
      std::cout << " " << nn10.indices[order[static_cast<std::size_t>(i)]]
                << " (d2=" << std::setprecision(4)
                << nn10.values[order[static_cast<std::size_t>(i)]] << ")";
    }
    std::cout << "  [10-NN via GridSelect, 100-NN via AIR Top-K: OK]\n";
  }
  return 0;
}
