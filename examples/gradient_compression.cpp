// Deep Gradient Compression example (paper §1): distributed training sends
// only the top 0.1% largest-magnitude gradient entries each step to cut
// communication.  That inner step is a top-K selection over millions of
// values — here served by AIR Top-K with the `greatest` option.
//
//   $ ./examples/gradient_compression

#include <cmath>
#include <iostream>
#include <numeric>
#include <random>

#include "core/topk.hpp"
#include "simgpu/simgpu.hpp"

int main() {
  constexpr std::size_t kGradients = 1 << 21;  // ~2M parameters
  constexpr double kRatio = 0.001;             // keep top 0.1%
  const auto k = static_cast<std::size_t>(kGradients * kRatio);

  // Synthetic gradients: heavy-tailed (most entries near zero, few large),
  // the profile that makes DGC effective.
  std::vector<float> grad(kGradients);
  std::mt19937_64 rng(2024);
  std::normal_distribution<float> noise(0.0f, 1e-4f);
  std::normal_distribution<float> signal(0.0f, 0.1f);
  std::uniform_real_distribution<float> coin(0.0f, 1.0f);
  for (float& g : grad) {
    g = noise(rng) + (coin(rng) < 0.01f ? signal(rng) : 0.0f);
  }

  // Select the k entries with the largest |gradient|.
  std::vector<float> magnitude(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    magnitude[i] = std::abs(grad[i]);
  }

  simgpu::Device dev;
  topk::SelectOptions opt;
  opt.greatest = true;
  const topk::SelectResult sel =
      topk::select(dev, magnitude, k, topk::Algo::kAirTopk, opt);

  // Communication/energy accounting.
  double kept_mass = 0.0;
  for (float v : sel.values) kept_mass += static_cast<double>(v) * v;
  double total_mass = 0.0;
  for (float v : magnitude) total_mass += static_cast<double>(v) * v;

  std::cout << "gradients: " << kGradients << ", transmitted: " << k << " ("
            << 100.0 * kRatio << "%)\n";
  std::cout << "gradient energy retained: "
            << 100.0 * kept_mass / total_mass << "%\n";
  std::cout << "compression of payload: "
            << static_cast<double>(kGradients) / static_cast<double>(k)
            << "x fewer values sent\n";

  // The selected set must be exactly the k largest magnitudes.
  std::vector<float> sorted = magnitude;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(k) - 1,
                   sorted.end(), std::greater<>());
  const float threshold = sorted[k - 1];
  for (float v : sel.values) {
    if (v < threshold) {
      std::cerr << "selection error: " << v << " below threshold "
                << threshold << "\n";
      return 1;
    }
  }
  std::cout << "selection verified against nth_element threshold\n";
  return 0;
}
