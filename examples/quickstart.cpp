// Quickstart: find the K smallest values (and their indices) in a list with
// AIR Top-K on the simulated A100, and inspect the modeled execution.
//
//   $ ./examples/quickstart

#include <iostream>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"
#include "simgpu/timeline.hpp"

int main() {
  // A simulated device (A100 profile: 108 SMs, 1.555 TB/s).
  simgpu::Device dev(simgpu::DeviceSpec::a100());

  // One million uniform floats; we want the 8 smallest.
  const std::vector<float> values = topk::data::uniform_values(1 << 20, 42);
  const std::size_t k = 8;

  const topk::SelectResult result =
      topk::select(dev, values, k, topk::Algo::kAirTopk);

  std::cout << "top-" << k << " smallest of " << values.size() << ":\n";
  for (std::size_t i = 0; i < k; ++i) {
    std::cout << "  value " << result.values[i] << "  at index "
              << result.indices[i] << "\n";
  }

  // Every algorithm records its host/device interaction; the cost model
  // turns that into modeled device time.
  const simgpu::CostModel model(dev.spec());
  const simgpu::Timeline tl = model.simulate(dev.events());
  std::cout << "\nmodeled " << dev.spec().name << " time: " << tl.total_us
            << " us across " << tl.spans.size() << " spans\n";
  std::cout << simgpu::render_timeline(tl, 80);

  // Sanity: verify against the std::nth_element reference.
  const std::string err = topk::verify_topk(values, k, result);
  std::cout << (err.empty() ? "verified OK\n" : "VERIFY FAILED: " + err + "\n");
  return err.empty() ? 0 : 1;
}
