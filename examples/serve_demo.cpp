// serve_demo — minimal tour of the topk::serve query service.
//
// Submits a burst of mixed-shape async queries (different n, k, deadlines,
// one explicit-algorithm override), lets the service coalesce them into
// micro-batches across two simulated device workers, and prints each
// outcome plus the service counters.
//
//   $ ./examples/serve_demo

#include <chrono>
#include <future>
#include <iostream>
#include <vector>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "serve/service.hpp"

int main() {
  topk::serve::ServiceConfig cfg;
  cfg.num_devices = 2;
  cfg.max_batch = 8;
  cfg.max_wait = std::chrono::microseconds(2000);
  topk::serve::TopkService svc(cfg);

  struct Spec {
    std::size_t n;
    std::size_t k;
    std::optional<std::chrono::microseconds> deadline;
    std::optional<topk::Algo> algo;
    const char* note;
  };
  const std::vector<Spec> specs = {
      {1u << 16, 64, std::nullopt, std::nullopt, "auto-planned"},
      {1u << 16, 64, std::nullopt, std::nullopt, "coalesces with #0"},
      {1u << 16, 100, std::nullopt, std::nullopt, "k=100 rounds to a 128-bucket"},
      {1u << 14, 16, std::nullopt, std::nullopt, "different shape, own bucket"},
      {1u << 16, 64, std::nullopt, topk::Algo::kSort, "explicit kSort override"},
      {1u << 16, 64, std::chrono::microseconds(0), std::nullopt,
       "deadline already expired"},
  };

  std::vector<std::future<topk::serve::QueryResult>> futs;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Spec& s = specs[i];
    futs.push_back(svc.submit(topk::data::uniform_values(s.n, 0xD0 + i), s.k,
                              s.deadline, s.algo));
  }

  for (std::size_t i = 0; i < futs.size(); ++i) {
    const topk::serve::QueryResult r = futs[i].get();
    std::cout << "query " << i << " (" << specs[i].note
              << "): " << topk::serve::query_status_name(r.status);
    if (r.status == topk::serve::QueryStatus::kOk) {
      std::cout << " via " << topk::algo_name(r.algo) << " in a "
                << r.batch_rows << "-row batch, modeled " << r.device_us
                << " us device time, wall " << r.wall_us << " us";
    } else if (!r.error.empty()) {
      std::cout << " (" << r.error << ")";
    }
    std::cout << "\n";
  }

  svc.shutdown();
  const topk::serve::ServiceStats s = svc.stats();
  std::cout << "\ncounters: submitted=" << s.submitted
            << " accepted=" << s.accepted << " completed=" << s.completed
            << " timed_out=" << s.timed_out << " rejected=" << s.rejected
            << " failed=" << s.failed << " batches=" << s.batches << "\n";
  std::cout << "batch-size histogram:";
  for (const auto& [rows, count] : s.batch_rows_histogram) {
    std::cout << " " << rows << "x" << count;
  }
  std::cout << "\nlatency: p50=" << s.latency.p50_us
            << "us p95=" << s.latency.p95_us
            << "us p99=" << s.latency.p99_us << "us\n";
  return 0;
}
