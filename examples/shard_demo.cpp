// Shard coordinator walkthrough: one query whose N exceeds any single
// device in the pool.
//
// A 4-device pool with per-device capacity capped at 2^22 keys faces a
// query of N = 2^26 — sixteen device-loads of data.  No single-device plan
// can serve it; the shard coordinator splits it into 16 shards (4 rounds
// over the pool), runs the ordinary per-shard selection through the cached
// plan / pooled workspace layer, gathers the per-shard candidate lists, and
// reduces them with the hierarchical device-side merge.  The result is
// exact — verified here against the host reference — and the modeled
// timing shows where the microseconds go, per phase and per shard.
//
// The same query submitted to topk::serve engages the identical path
// automatically: the service notices N above the device ceiling and routes
// the request to its per-worker coordinator, no hint required.

#include <cstddef>
#include <iostream>
#include <random>
#include <vector>

#include "core/topk.hpp"
#include "serve/service.hpp"
#include "shard/shard.hpp"
#include "simgpu/simgpu.hpp"

int main() {
  const std::size_t n = std::size_t{1} << 26;
  const std::size_t k = 256;

  std::vector<float> data(n);
  {
    std::mt19937 rng(7);
    std::uniform_real_distribution<float> dist(-1000.f, 1000.f);
    for (float& v : data) v = dist(rng);
  }

  // A pool of four devices, each capped at 2^22 keys: the query is 16x too
  // large for any one of them.
  topk::shard::ShardConfig cfg;
  cfg.devices = 4;
  cfg.device_spec.max_select_elems = std::size_t{1} << 22;

  std::cout << "query: n=2^26 (" << n << " keys), k=" << k << "\n"
            << "pool:  " << cfg.devices << " devices, capacity 2^22 keys each"
            << " -> at least " << topk::shard::min_shards(n, cfg.device_spec)
            << " shards\n\n";

  topk::shard::Coordinator coord(cfg);
  const topk::shard::ShardedResult r = coord.select(data, k);

  const std::string err = topk::verify_topk(data, k, r.topk);
  std::cout << "result: " << (err.empty() ? "exact (host reference agrees)"
                                          : "WRONG: " + err)
            << "\n";
  std::cout << "shards: " << r.shards << " over " << r.devices
            << " devices (" << topk::algo_name(r.shard_algo)
            << " per shard)\n\n";

  std::cout << "modeled time: " << r.timing.total_us << " us\n"
            << "  select " << r.timing.select_us << " us (busiest device, "
            << (r.shards + r.devices - 1) / r.devices << " rounds)\n"
            << "  gather " << r.timing.gather_us << " us (candidate D2H)\n"
            << "  merge  " << r.timing.merge_us << " us (H2D + merge tree)\n"
            << "  output " << r.timing.output_us << " us (result D2H)\n\n";

  std::cout << "per-shard breakdown (selection + gather, modeled):\n";
  for (std::size_t s = 0; s < r.shard_us.size(); ++s) {
    std::cout << "  shard " << (s < 10 ? " " : "") << s << " on device "
              << s % r.devices << ": " << r.shard_us[s] << " us\n";
  }
  std::cout << "plan cache: " << coord.plan_cache_hits() << " hits / "
            << coord.plan_cache_misses()
            << " misses (one per distinct shard shape, one for the merge)"
            << "\n\n";

  if (!err.empty()) return 1;

  // ---- the serving layer reaches the same path on its own ----------------
  topk::serve::ServiceConfig scfg;
  scfg.device_spec.max_select_elems = std::size_t{1} << 22;
  scfg.shard_devices = 4;
  topk::serve::TopkService svc(scfg);
  auto fut = svc.submit(std::vector<float>(data), k);
  const topk::serve::QueryResult qr = fut.get();
  svc.shutdown();
  if (qr.status != topk::serve::QueryStatus::kOk || qr.shards == 0) {
    std::cerr << "serve path failed: " << qr.error << "\n";
    return 1;
  }
  std::cout << "through topk::serve: auto-engaged sharding (shards="
            << qr.shards << "), modeled " << qr.device_us << " us, "
            << topk::algo_name(qr.algo) << " per shard\n";
  return 0;
}
