// On-the-fly top-K (paper §2.2/§4): WarpSelect-family selectors "can serve
// as a device function within other kernels" and "process data on-the-fly
// because they maintain top-K results for all seen elements".
//
// This example fuses distance computation and selection in ONE kernel using
// the SharedQueueEngine: each warp computes query-to-vector L2 distances and
// pushes them straight into its shared-queue selector — the distance array
// is never materialized in device memory.  The two-stage pipeline (distance
// kernel writes the array, selection kernel reads it back) pays the extra
// round trip.
//
//   $ ./examples/streaming_topk

#include <algorithm>
#include <iostream>

#include "core/topk.hpp"
#include "data/ann_dataset.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/grid_select.hpp"

namespace {

constexpr std::size_t kN = 1 << 14;
constexpr std::size_t kDim = 96;
constexpr std::size_t kK = 16;

std::uint64_t traffic(const simgpu::Device& dev) {
  std::uint64_t bytes = 0;
  for (const auto& e : dev.events()) {
    if (const auto* k = std::get_if<simgpu::KernelEvent>(&e)) {
      bytes += k->stats.bytes_total();
    }
  }
  return bytes;
}

/// Distance of one row to the (shared-memory cached) query, accumulated in
/// double to match the host reference exactly.
float row_distance(simgpu::BlockCtx& ctx,
                   simgpu::DeviceBuffer<float> vectors, std::size_t row,
                   std::span<const float> query) {
  double acc = 0.0;
  for (std::size_t d = 0; d < kDim; ++d) {
    const double diff =
        static_cast<double>(ctx.load(vectors, row * kDim + d)) - query[d];
    acc += diff * diff;
  }
  ctx.ops(2 * kDim);
  return static_cast<float>(acc);
}

}  // namespace

int main() {
  const auto db = topk::data::make_deep_like(kN, 3, kDim);
  const auto query = topk::data::make_queries(db, 1, 5);

  simgpu::Device dev;
  auto d_vectors = dev.alloc<float>(kN * kDim);
  std::copy(db.vectors.begin(), db.vectors.end(), d_vectors.data());
  auto d_query = dev.alloc<float>(kDim);
  std::copy(query.begin(), query.end(), d_query.data());
  auto d_out_val = dev.alloc<float>(kK);
  auto d_out_idx = dev.alloc<std::uint32_t>(kK);
  auto d_distances = dev.alloc<float>(kN);

  // ---- fused kernel: distances are consumed as they are produced ---------
  dev.clear_events();
  simgpu::launch(dev, {"fused_distance_topk", 1, 32},
                 [=](simgpu::BlockCtx& ctx) {
                   // Cache the query in shared memory once per block.
                   auto squery = ctx.shared<float>(kDim);
                   for (std::size_t d = 0; d < kDim; ++d) {
                     squery[d] = ctx.load(d_query, d);
                   }
                   ctx.sync();
                   topk::SharedQueueEngine<float> selector(ctx, kK);
                   float vals[simgpu::kWarpSize];
                   std::uint32_t idxs[simgpu::kWarpSize];
                   for (std::size_t base = 0; base < kN;
                        base += simgpu::kWarpSize) {
                     const std::size_t count =
                         std::min<std::size_t>(simgpu::kWarpSize, kN - base);
                     for (std::size_t lane = 0; lane < count; ++lane) {
                       const std::size_t row = base + lane;
                       vals[lane] = row_distance(ctx, d_vectors, row, squery);
                       idxs[lane] = static_cast<std::uint32_t>(row);
                     }
                     // The gated round skips the ballot emulation for
                     // batches with no candidate distances (same charges,
                     // see docs/performance.md "warp fast path").
                     selector.round_gated(ctx, vals, idxs, count);
                   }
                   selector.finalize(ctx);
                   for (std::size_t i = 0; i < kK; ++i) {
                     ctx.store(d_out_val, i, selector.list().keys()[i]);
                     ctx.store(d_out_idx, i, selector.list().indices()[i]);
                   }
                 });
  const std::uint64_t fused_bytes = traffic(dev);
  topk::SelectResult fused;
  fused.values.assign(d_out_val.data(), d_out_val.data() + kK);
  fused.indices.assign(d_out_idx.data(), d_out_idx.data() + kK);

  // ---- two-stage pipeline: distance kernel, then a selection kernel ------
  dev.clear_events();
  simgpu::launch(dev, {"distance_kernel", 8, 32}, [=](simgpu::BlockCtx& ctx) {
    auto squery = ctx.shared<float>(kDim);
    for (std::size_t d = 0; d < kDim; ++d) {
      squery[d] = ctx.load(d_query, d);
    }
    ctx.sync();
    const std::size_t per = kN / 8;
    const auto b = static_cast<std::size_t>(ctx.block_idx());
    for (std::size_t row = b * per; row < (b + 1) * per; ++row) {
      ctx.store(d_distances, row, row_distance(ctx, d_vectors, row, squery));
    }
  });
  topk::grid_select(dev, d_distances, 1, kN, kK, d_out_val, d_out_idx);
  const std::uint64_t staged_bytes = traffic(dev);

  // Both paths must agree with the host reference.
  const auto distances = topk::data::l2_distances(db, query.data(), kN);
  topk::SelectResult staged;
  staged.values.assign(d_out_val.data(), d_out_val.data() + kK);
  staged.indices.assign(d_out_idx.data(), d_out_idx.data() + kK);
  const std::string staged_err = topk::verify_topk(distances, kK, staged);
  if (!staged_err.empty()) {
    std::cerr << "staged selection wrong: " << staged_err << "\n";
    return 1;
  }
  const std::string fused_err = topk::verify_topk(distances, kK, fused);
  if (!fused_err.empty()) {
    std::cerr << "fused selection wrong: " << fused_err << "\n";
    return 1;
  }

  std::cout << "on-the-fly top-" << kK << " over " << kN << " vectors: OK\n";
  std::cout << "device traffic, fused selector : " << fused_bytes
            << " bytes (distance array never hits memory)\n";
  std::cout << "device traffic, two-stage      : " << staged_bytes
            << " bytes\n";
  std::cout << "round trip saved               : "
            << (staged_bytes - fused_bytes) << " bytes\n";
  return staged_bytes > fused_bytes ? 0 : 1;
}
