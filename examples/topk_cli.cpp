// Interactive explorer: run any top-K algorithm on a generated workload and
// print the modeled device timeline plus summary counters.
//
//   $ ./examples/topk_cli [algo] [log2_n] [k] [distribution] [batch]
//   $ ./examples/topk_cli air 20 2048 adversarial 1
//   $ ./examples/topk_cli auto 20 256 uniform 8     # dispatch planner picks
//   $ ./examples/topk_cli auto 24 256 uniform 1 --shards auto   # scale out
//   $ ./examples/topk_cli auto 22 256 uniform 1 --recall 0.9 --explain
//
// Algorithms: auto, air, grid, radixselect, warp, block, bitonic, quick,
//             bucket, sample, sort, bucket-approx.  Distributions: uniform,
//             normal, adversarial.  With "auto" the recommender chooses (and the
//             chosen algorithm is printed).
//
// `--shards N|auto` routes the query through the multi-device shard
// coordinator (a 4-device pool; `auto` lets recommend_shards pick) and
// prints the coordinator's phase breakdown plus per-shard modeled times
// instead of the single-device timeline.  Requires batch == 1.
//
// `--recall R` sets the recall SLO (WorkloadHints::recall_target): below
// 1.0 the recommender may route the bucketed approximate tier, and the
// result is then scored by measured recall against the exact reference
// instead of the exactness verifier.  `--explain` prints the recommender's
// per-candidate modeled costs (and, with a sub-1.0 SLO, the approximate
// tier's chunk shape and analytic expected recall) before running.
//
// `--dtype {f32,f16,bf16,i32,u32}` runs the query with typed keys (the
// generated floats are converted; i32/u32 scale them into the integer
// domain) through the typed select path, verifying against an exact host
// reference in the key's own ordinal domain.  `--explain` then shows the
// recommender race filtered by dtype: candidates whose registry row lacks
// the key type are listed as filtered instead of priced.  `--payload`
// attaches a u32 payload (the key's global position) and checks the
// winners' entries ride along.

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "data/recall.hpp"
#include "shard/shard.hpp"
#include "simgpu/simgpu.hpp"
#include "simgpu/timeline.hpp"
#include "topk/bucket_approx.hpp"
#include "topk/key_codec.hpp"

namespace {

int usage() {
  std::cerr << "usage: topk_cli [algo] [log2_n] [k] "
               "[uniform|normal|adversarial] [batch] [--shards N|auto] "
               "[--recall R] [--dtype T] [--payload] [--explain]\n"
               "  algos: auto air grid radixselect warp block bitonic quick "
               "bucket sample sort stream-radix bucket-approx\n"
               "  dtypes: f32 f16 bf16 i32 u32\n";
  return 2;
}

/// The monotone radix ordinal of one key, from its storage bits — the
/// domain typed results are verified in (total order, exact for every
/// dtype including NaN patterns).
std::uint64_t key_ordinal(topk::KeyType t, std::uint32_t bits) {
  switch (t) {
    case topk::KeyType::kF16:
      return topk::RadixTraits<topk::half>::to_radix(
          topk::half::from_bits(static_cast<std::uint16_t>(bits)));
    case topk::KeyType::kBF16:
      return topk::RadixTraits<topk::bf16>::to_radix(
          topk::bf16::from_bits(static_cast<std::uint16_t>(bits)));
    case topk::KeyType::kI32:
      return topk::RadixTraits<std::int32_t>::to_radix(
          std::bit_cast<std::int32_t>(bits));
    default:
      return bits;  // u32: identity
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool sharded = false;
  std::size_t shards = 0;
  bool explain = false;
  bool payload = false;
  double recall_target = 1.0;
  topk::KeyType dtype = topk::KeyType::kF32;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dtype") {
      if (i + 1 >= argc) return usage();
      const auto parsed = topk::parse_key_type(argv[++i]);
      if (!parsed) return usage();
      dtype = *parsed;
    } else if (arg == "--payload") {
      payload = true;
    } else if (arg == "--shards") {
      if (i + 1 >= argc) return usage();
      sharded = true;
      const std::string v = argv[++i];
      if (v != "auto") {
        shards = std::strtoull(v.c_str(), nullptr, 10);
        if (shards == 0) return usage();
      }
    } else if (arg == "--recall") {
      if (i + 1 >= argc) return usage();
      recall_target = std::strtod(argv[++i], nullptr);
      if (!(recall_target > 0.0) || recall_target > 1.0) {
        std::cerr << "--recall must be in (0, 1]\n";
        return 2;
      }
    } else if (arg == "--explain") {
      explain = true;
    } else {
      pos.push_back(arg);
    }
  }
  std::string algo_key = pos.size() > 0 ? pos[0] : "air";
  const int log_n = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 20;
  const std::size_t k =
      pos.size() > 2 ? std::strtoull(pos[2].c_str(), nullptr, 10) : 64;
  const std::string dist_key = pos.size() > 3 ? pos[3] : "uniform";
  const std::size_t batch =
      pos.size() > 4 ? std::strtoull(pos[4].c_str(), nullptr, 10) : 1;

  const auto algo = topk::algo_from_string(algo_key);
  if (!algo || log_n < 1 || log_n > 26 || k == 0) {
    return usage();
  }
  topk::data::DistributionSpec dist;
  if (dist_key == "uniform") {
    dist = {topk::data::Distribution::kUniform, 0};
  } else if (dist_key == "normal") {
    dist = {topk::data::Distribution::kNormal, 0};
  } else if (dist_key == "adversarial") {
    dist = {topk::data::Distribution::kAdversarial, 20};
  } else {
    return usage();
  }

  const std::size_t n = std::size_t{1} << log_n;

  if (sharded) {
    if (batch != 1) {
      std::cerr << "--shards requires batch == 1\n";
      return 2;
    }
    if (dtype != topk::KeyType::kF32 || payload) {
      std::cerr << "--shards runs f32 keys here; use "
                   "shard::Coordinator::select_typed for typed/key-value "
                   "sharded queries\n";
      return 2;
    }
    const auto values = topk::data::generate(dist, n, 0xC11);
    topk::shard::ShardConfig cfg;
    cfg.devices = 4;
    cfg.algo = *algo;  // kAuto recommends at the per-shard shape
    topk::shard::Coordinator coord(cfg);
    const topk::shard::ShardedResult r = coord.select(values, k, shards);
    const std::string err = topk::verify_topk(values, k, r.topk);
    if (!err.empty()) {
      std::cerr << "verification FAILED: " << err << "\n";
      return 1;
    }
    std::cout << "sharded " << topk::algo_name(r.shard_algo) << "  n=2^"
              << log_n << "  k=" << k << "  " << dist.name() << "  shards="
              << r.shards << " over " << r.devices << " device(s)\n";
    std::cout << "verified OK | modeled " << r.timing.total_us
              << " us = select " << r.timing.select_us << " + gather "
              << r.timing.gather_us << " + merge " << r.timing.merge_us
              << " + output " << r.timing.output_us << "\n";
    for (std::size_t s = 0; s < r.shard_us.size(); ++s) {
      std::cout << "  shard " << s << " (device " << s % r.devices
                << "): " << r.shard_us[s] << " us\n";
    }
    std::cout << "plan cache: " << coord.plan_cache_hits() << " hits / "
              << coord.plan_cache_misses() << " misses\n";
    return 0;
  }

  // Resolve "auto" through the dispatch planner first so the max_k check
  // (and the banner) name the algorithm that actually runs.
  const bool was_auto = *algo == topk::Algo::kAuto;
  const topk::Algo chosen =
      topk::resolve_algo(*algo, n, k, batch, recall_target, dtype);
  if (was_auto) {
    std::cout << "auto -> " << topk::algo_name(chosen)
              << " (recommended for n=2^" << log_n << " k=" << k
              << " batch=" << batch;
    if (dtype != topk::KeyType::kF32) {
      std::cout << " dtype=" << topk::key_type_name(dtype);
    }
    if (recall_target < 1.0) std::cout << " recall>=" << recall_target;
    std::cout << ")\n";
  }
  if (!topk::algo_supports_dtype(chosen, dtype)) {
    std::cerr << topk::algo_name(chosen) << " does not support dtype "
              << topk::key_type_name(dtype) << "\n";
    return 2;
  }
  if (explain) {
    // Per-candidate modeled costs the recommender's race saw, cheapest
    // first, with the winner marked; candidates the dtype filter removed
    // are listed unpriced so the race's shape is visible.
    struct Row {
      topk::Algo algo;
      double us;
    };
    std::vector<Row> rows;
    std::vector<topk::Algo> cands(topk::all_algorithms().begin(),
                                  topk::all_algorithms().end());
    cands.push_back(topk::Algo::kStreamRadix);
    std::vector<topk::Algo> filtered;
    for (const topk::Algo cand : cands) {
      if (k > topk::max_k(cand, n)) continue;
      if (!topk::algo_supports_dtype(cand, dtype)) {
        filtered.push_back(cand);
        continue;
      }
      rows.push_back(
          {cand, topk::estimated_batch_cost_us(cand, batch, n, k,
                                               recall_target)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.us < b.us; });
    std::cout << "modeled per-candidate costs (batch=" << batch
              << " dtype=" << topk::key_type_name(dtype) << "):\n";
    for (const Row& r : rows) {
      std::cout << "  " << (r.algo == chosen ? "-> " : "   ")
                << topk::algo_name(r.algo) << ": " << r.us << " us";
      if (r.algo == topk::Algo::kBucketApprox) {
        topk::BucketApproxOptions bopt;
        bopt.recall_target = recall_target;
        const auto shape =
            topk::bucket_approx_configure(n, k, batch, bopt,
                                          simgpu::DeviceSpec{});
        std::cout << "  (chunks=" << shape.chunks << " keep=" << shape.keep
                  << " expected recall=" << shape.expected_recall
                  << (recall_target >= 1.0 ? ", exact" : "") << ")";
      }
      std::cout << "\n";
    }
    for (const topk::Algo f : filtered) {
      std::cout << "   " << topk::algo_name(f) << ": filtered (no "
                << topk::key_type_name(dtype) << " support)\n";
    }
  }
  if (k > topk::max_k(chosen, n)) {
    std::cerr << "k=" << k << " unsupported by "
              << topk::algo_name(chosen) << " (max "
              << topk::max_k(chosen, n) << ")\n";
    return 2;
  }

  const auto values = topk::data::generate(dist, batch * n, 0xC11);
  simgpu::Device dev;
  topk::SelectOptions opt;
  opt.recall_target = recall_target;

  // Typed runs convert the generated floats into the requested key type
  // (i32/u32 reinterpret the float bits — a deterministic, order-scrambling
  // integer workload) and go through the typed select path; `row_bits`
  // keeps each key's storage pattern for ordinal-domain verification.
  const bool typed = dtype != topk::KeyType::kF32 || payload;
  std::vector<topk::half> keys_f16;
  std::vector<topk::bf16> keys_bf16;
  std::vector<std::int32_t> keys_i32;
  std::vector<std::uint32_t> keys_u32;
  std::vector<std::uint32_t> row_bits;
  std::vector<std::uint32_t> ids;
  std::vector<float> decoded;  ///< exact float value per typed key
  std::vector<topk::SelectResult> results;
  if (typed) {
    const std::size_t total = batch * n;
    row_bits.resize(total);
    decoded.resize(total);
    topk::KeyView kv;
    switch (dtype) {
      case topk::KeyType::kF32:
        for (std::size_t i = 0; i < total; ++i) {
          row_bits[i] = std::bit_cast<std::uint32_t>(values[i]);
          decoded[i] = values[i];
        }
        kv = topk::KeyView::of(std::span<const float>(values));
        break;
      case topk::KeyType::kF16:
        keys_f16.reserve(total);
        for (std::size_t i = 0; i < total; ++i) {
          keys_f16.emplace_back(values[i]);
          row_bits[i] = keys_f16.back().bits();
          decoded[i] = static_cast<float>(keys_f16.back());
        }
        kv = topk::KeyView::of(std::span<const topk::half>(keys_f16));
        break;
      case topk::KeyType::kBF16:
        keys_bf16.reserve(total);
        for (std::size_t i = 0; i < total; ++i) {
          keys_bf16.emplace_back(values[i]);
          row_bits[i] = keys_bf16.back().bits();
          decoded[i] = static_cast<float>(keys_bf16.back());
        }
        kv = topk::KeyView::of(std::span<const topk::bf16>(keys_bf16));
        break;
      case topk::KeyType::kI32:
        keys_i32.resize(total);
        for (std::size_t i = 0; i < total; ++i) {
          keys_i32[i] = std::bit_cast<std::int32_t>(values[i]);
          row_bits[i] = std::bit_cast<std::uint32_t>(keys_i32[i]);
          decoded[i] = static_cast<float>(keys_i32[i]);
        }
        kv = topk::KeyView::of(std::span<const std::int32_t>(keys_i32));
        break;
      case topk::KeyType::kU32:
        keys_u32.resize(total);
        for (std::size_t i = 0; i < total; ++i) {
          keys_u32[i] = std::bit_cast<std::uint32_t>(values[i]);
          row_bits[i] = keys_u32[i];
          decoded[i] = static_cast<float>(keys_u32[i]);
        }
        kv = topk::KeyView::of(std::span<const std::uint32_t>(keys_u32));
        break;
    }
    topk::PayloadView pv;
    if (payload) {
      ids.resize(total);
      for (std::size_t i = 0; i < total; ++i) {
        ids[i] = static_cast<std::uint32_t>(i);
      }
      pv = topk::PayloadView::of(std::span<const std::uint32_t>(ids));
    }
    results = topk::select_batch(dev, kv, batch, n, k, chosen, opt, pv);
  } else {
    results = topk::select_batch(dev, values, batch, n, k, chosen, opt);
  }

  // Verify every problem — exactly, unless the run is genuinely
  // approximate, where the score is measured recall against the exact
  // reference.  Typed exact runs verify in the key's ordinal domain
  // (total order, exact for every dtype including NaN patterns).
  const bool approximate =
      chosen == topk::Algo::kBucketApprox && recall_target < 1.0;
  double recall_sum = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const float> row(values.data() + b * n, n);
    if (approximate) {
      const std::span<const float> score_row =
          typed ? std::span<const float>(decoded).subspan(b * n, n) : row;
      recall_sum += topk::data::recall_at_k(
          results[b].values, topk::data::exact_topk_values(score_row, k));
      continue;
    }
    if (typed) {
      const topk::SelectResult& r = results[b];
      std::vector<std::uint64_t> ord(n);
      for (std::size_t i = 0; i < n; ++i) {
        ord[i] = key_ordinal(dtype, row_bits[b * n + i]);
      }
      std::vector<bool> seen(n, false);
      std::vector<std::uint64_t> got(k);
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint32_t idx = r.indices[i];
        if (idx >= n || seen[idx]) {
          std::cerr << "verification FAILED (problem " << b
                    << "): bad/duplicate index " << idx << "\n";
          return 1;
        }
        seen[idx] = true;
        const std::uint32_t bits =
            dtype == topk::KeyType::kF32
                ? std::bit_cast<std::uint32_t>(r.values[i])
                : r.values_bits[i];
        got[i] = key_ordinal(dtype, bits);
        if (got[i] != ord[idx]) {
          std::cerr << "verification FAILED (problem " << b
                    << "): value/index mismatch at position " << i << "\n";
          return 1;
        }
        if (payload &&
            r.payload[i] != static_cast<std::uint64_t>(b * n + idx)) {
          std::cerr << "verification FAILED (problem " << b
                    << "): payload mismatch at position " << i << "\n";
          return 1;
        }
      }
      std::vector<std::uint64_t> want = ord;
      std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                       want.end());
      want.resize(k);
      std::sort(want.begin(), want.end());
      std::sort(got.begin(), got.end());
      if (got != want) {
        std::cerr << "verification FAILED (problem " << b
                  << "): top-k ordinal multiset differs\n";
        return 1;
      }
      continue;
    }
    const std::string err = topk::verify_topk(row, k, results[b]);
    if (!err.empty()) {
      std::cerr << "verification FAILED (problem " << b << "): " << err
                << "\n";
      return 1;
    }
  }

  const simgpu::CostModel model(dev.spec());
  const simgpu::Timeline tl = model.simulate(dev.events());
  std::uint64_t bytes = 0, kernels = 0;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      bytes += ke->stats.bytes_total();
      ++kernels;
    }
  }

  std::cout << topk::algo_name(chosen) << "  n=2^" << log_n
            << "  k=" << k << "  batch=" << batch << "  " << dist.name()
            << "  (" << dev.spec().name << " model)\n";
  if (approximate) {
    std::cout << "measured recall "
              << recall_sum / static_cast<double>(batch) << " (target >= "
              << recall_target << ")";
  } else {
    std::cout << "verified OK";
  }
  std::cout << " | modeled " << tl.total_us << " us | " << kernels
            << " kernels | " << bytes / 1024.0 / 1024.0
            << " MiB device traffic\n\n";
  std::cout << simgpu::render_timeline(tl, 90);
  return 0;
}
