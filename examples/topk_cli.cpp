// Interactive explorer: run any top-K algorithm on a generated workload and
// print the modeled device timeline plus summary counters.
//
//   $ ./examples/topk_cli [algo] [log2_n] [k] [distribution] [batch]
//   $ ./examples/topk_cli air 20 2048 adversarial 1
//   $ ./examples/topk_cli auto 20 256 uniform 8     # dispatch planner picks
//   $ ./examples/topk_cli auto 24 256 uniform 1 --shards auto   # scale out
//   $ ./examples/topk_cli auto 22 256 uniform 1 --recall 0.9 --explain
//
// Algorithms: auto, air, grid, radixselect, warp, block, bitonic, quick,
//             bucket, sample, sort, bucket-approx.  Distributions: uniform,
//             normal, adversarial.  With "auto" the recommender chooses (and the
//             chosen algorithm is printed).
//
// `--shards N|auto` routes the query through the multi-device shard
// coordinator (a 4-device pool; `auto` lets recommend_shards pick) and
// prints the coordinator's phase breakdown plus per-shard modeled times
// instead of the single-device timeline.  Requires batch == 1.
//
// `--recall R` sets the recall SLO (WorkloadHints::recall_target): below
// 1.0 the recommender may route the bucketed approximate tier, and the
// result is then scored by measured recall against the exact reference
// instead of the exactness verifier.  `--explain` prints the recommender's
// per-candidate modeled costs (and, with a sub-1.0 SLO, the approximate
// tier's chunk shape and analytic expected recall) before running.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/topk.hpp"
#include "data/distributions.hpp"
#include "data/recall.hpp"
#include "shard/shard.hpp"
#include "simgpu/simgpu.hpp"
#include "simgpu/timeline.hpp"
#include "topk/bucket_approx.hpp"

namespace {

int usage() {
  std::cerr << "usage: topk_cli [algo] [log2_n] [k] "
               "[uniform|normal|adversarial] [batch] [--shards N|auto] "
               "[--recall R] [--explain]\n"
               "  algos: auto air grid radixselect warp block bitonic quick "
               "bucket sample sort bucket-approx\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool sharded = false;
  std::size_t shards = 0;
  bool explain = false;
  double recall_target = 1.0;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards") {
      if (i + 1 >= argc) return usage();
      sharded = true;
      const std::string v = argv[++i];
      if (v != "auto") {
        shards = std::strtoull(v.c_str(), nullptr, 10);
        if (shards == 0) return usage();
      }
    } else if (arg == "--recall") {
      if (i + 1 >= argc) return usage();
      recall_target = std::strtod(argv[++i], nullptr);
      if (!(recall_target > 0.0) || recall_target > 1.0) {
        std::cerr << "--recall must be in (0, 1]\n";
        return 2;
      }
    } else if (arg == "--explain") {
      explain = true;
    } else {
      pos.push_back(arg);
    }
  }
  std::string algo_key = pos.size() > 0 ? pos[0] : "air";
  const int log_n = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 20;
  const std::size_t k =
      pos.size() > 2 ? std::strtoull(pos[2].c_str(), nullptr, 10) : 64;
  const std::string dist_key = pos.size() > 3 ? pos[3] : "uniform";
  const std::size_t batch =
      pos.size() > 4 ? std::strtoull(pos[4].c_str(), nullptr, 10) : 1;

  const auto algo = topk::algo_from_string(algo_key);
  if (!algo || log_n < 1 || log_n > 26 || k == 0) {
    return usage();
  }
  topk::data::DistributionSpec dist;
  if (dist_key == "uniform") {
    dist = {topk::data::Distribution::kUniform, 0};
  } else if (dist_key == "normal") {
    dist = {topk::data::Distribution::kNormal, 0};
  } else if (dist_key == "adversarial") {
    dist = {topk::data::Distribution::kAdversarial, 20};
  } else {
    return usage();
  }

  const std::size_t n = std::size_t{1} << log_n;

  if (sharded) {
    if (batch != 1) {
      std::cerr << "--shards requires batch == 1\n";
      return 2;
    }
    const auto values = topk::data::generate(dist, n, 0xC11);
    topk::shard::ShardConfig cfg;
    cfg.devices = 4;
    cfg.algo = *algo;  // kAuto recommends at the per-shard shape
    topk::shard::Coordinator coord(cfg);
    const topk::shard::ShardedResult r = coord.select(values, k, shards);
    const std::string err = topk::verify_topk(values, k, r.topk);
    if (!err.empty()) {
      std::cerr << "verification FAILED: " << err << "\n";
      return 1;
    }
    std::cout << "sharded " << topk::algo_name(r.shard_algo) << "  n=2^"
              << log_n << "  k=" << k << "  " << dist.name() << "  shards="
              << r.shards << " over " << r.devices << " device(s)\n";
    std::cout << "verified OK | modeled " << r.timing.total_us
              << " us = select " << r.timing.select_us << " + gather "
              << r.timing.gather_us << " + merge " << r.timing.merge_us
              << " + output " << r.timing.output_us << "\n";
    for (std::size_t s = 0; s < r.shard_us.size(); ++s) {
      std::cout << "  shard " << s << " (device " << s % r.devices
                << "): " << r.shard_us[s] << " us\n";
    }
    std::cout << "plan cache: " << coord.plan_cache_hits() << " hits / "
              << coord.plan_cache_misses() << " misses\n";
    return 0;
  }

  // Resolve "auto" through the dispatch planner first so the max_k check
  // (and the banner) name the algorithm that actually runs.
  const bool was_auto = *algo == topk::Algo::kAuto;
  const topk::Algo chosen =
      topk::resolve_algo(*algo, n, k, batch, recall_target);
  if (was_auto) {
    std::cout << "auto -> " << topk::algo_name(chosen)
              << " (recommended for n=2^" << log_n << " k=" << k
              << " batch=" << batch;
    if (recall_target < 1.0) std::cout << " recall>=" << recall_target;
    std::cout << ")\n";
  }
  if (explain) {
    // Per-candidate modeled costs the recommender's race saw, cheapest
    // first, with the winner marked.
    struct Row {
      topk::Algo algo;
      double us;
    };
    std::vector<Row> rows;
    for (const topk::Algo cand : topk::all_algorithms()) {
      if (k > topk::max_k(cand, n)) continue;
      rows.push_back(
          {cand, topk::estimated_batch_cost_us(cand, batch, n, k,
                                               recall_target)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.us < b.us; });
    std::cout << "modeled per-candidate costs (batch=" << batch << "):\n";
    for (const Row& r : rows) {
      std::cout << "  " << (r.algo == chosen ? "-> " : "   ")
                << topk::algo_name(r.algo) << ": " << r.us << " us";
      if (r.algo == topk::Algo::kBucketApprox) {
        topk::BucketApproxOptions bopt;
        bopt.recall_target = recall_target;
        const auto shape =
            topk::bucket_approx_configure(n, k, batch, bopt,
                                          simgpu::DeviceSpec{});
        std::cout << "  (chunks=" << shape.chunks << " keep=" << shape.keep
                  << " expected recall=" << shape.expected_recall
                  << (recall_target >= 1.0 ? ", exact" : "") << ")";
      }
      std::cout << "\n";
    }
  }
  if (k > topk::max_k(chosen, n)) {
    std::cerr << "k=" << k << " unsupported by "
              << topk::algo_name(chosen) << " (max "
              << topk::max_k(chosen, n) << ")\n";
    return 2;
  }

  const auto values = topk::data::generate(dist, batch * n, 0xC11);
  simgpu::Device dev;
  topk::SelectOptions opt;
  opt.recall_target = recall_target;
  const auto results =
      topk::select_batch(dev, values, batch, n, k, chosen, opt);

  // Verify every problem — exactly, unless the run is genuinely
  // approximate, where the score is measured recall against the exact
  // reference.
  const bool approximate =
      chosen == topk::Algo::kBucketApprox && recall_target < 1.0;
  double recall_sum = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const float> row(values.data() + b * n, n);
    if (approximate) {
      recall_sum += topk::data::recall_at_k(
          results[b].values, topk::data::exact_topk_values(row, k));
      continue;
    }
    const std::string err = topk::verify_topk(row, k, results[b]);
    if (!err.empty()) {
      std::cerr << "verification FAILED (problem " << b << "): " << err
                << "\n";
      return 1;
    }
  }

  const simgpu::CostModel model(dev.spec());
  const simgpu::Timeline tl = model.simulate(dev.events());
  std::uint64_t bytes = 0, kernels = 0;
  for (const auto& e : dev.events()) {
    if (const auto* ke = std::get_if<simgpu::KernelEvent>(&e)) {
      bytes += ke->stats.bytes_total();
      ++kernels;
    }
  }

  std::cout << topk::algo_name(chosen) << "  n=2^" << log_n
            << "  k=" << k << "  batch=" << batch << "  " << dist.name()
            << "  (" << dev.spec().name << " model)\n";
  if (approximate) {
    std::cout << "measured recall "
              << recall_sum / static_cast<double>(batch) << " (target >= "
              << recall_target << ")";
  } else {
    std::cout << "verified OK";
  }
  std::cout << " | modeled " << tl.total_us << " us | " << kernels
            << " kernels | " << bytes / 1024.0 / 1024.0
            << " MiB device traffic\n\n";
  std::cout << simgpu::render_timeline(tl, 90);
  return 0;
}
