#include "core/dr_topk.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "topk/common.hpp"

namespace topk {

namespace {

/// Auto subrange size: balance the two follow-up selections — the delegate
/// pass works on n/g elements and the candidate pass on k*g, so
/// g = sqrt(n/k) equalizes them (both become sqrt(n*k) << n).
std::size_t auto_subrange(std::size_t n, std::size_t k) {
  const auto g = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(n) / static_cast<double>(k)));
  return std::clamp<std::size_t>(g, 1, std::max<std::size_t>(1, n / k));
}

/// Footprint contracts for the DR Top-K wrapper kernels (float-only, so the
/// element sizes are exact).  The scratch buffers are ad-hoc device
/// allocations rather than planned segments, hence the segment-sized bounds.
void register_dr_topk_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"dr_delegate_reduce",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 4},
           {"delegates",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"dr_gather",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 4},
           {"winners", Access::kRead, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
           {"cand_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
           {"cand_orig",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"dr_remap",
       {
           {"cand_topk_val", Access::kRead, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
           {"cand_topk_idx", Access::kRead, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
           {"cand_orig", Access::kRead, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kBatchK}},
            4},
           {"out_idx",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kBatchK}},
            4},
       }});
}

}  // namespace

void dr_topk(simgpu::Device& dev, simgpu::DeviceBuffer<float> in,
             std::size_t batch, std::size_t n, std::size_t k,
             simgpu::DeviceBuffer<float> out_vals,
             simgpu::DeviceBuffer<std::uint32_t> out_idx,
             const DrTopkOptions& opt) {
  validate_problem(n, k, batch);
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("dr_topk: buffer too small");
  }
  const std::size_t g = opt.subrange != 0 ? opt.subrange : auto_subrange(n, k);
  const std::size_t subranges = (n + g - 1) / g;
  if (subranges < k) {
    throw std::invalid_argument(
        "dr_topk: subrange too large (fewer than k subranges)");
  }
  if (k > max_k(opt.base, subranges) || k > max_k(opt.base, k * g)) {
    throw std::invalid_argument("dr_topk: k unsupported by the base algorithm");
  }
  register_dr_topk_footprints();

  simgpu::ScopedWorkspace ws(dev);
  auto delegates = dev.alloc<float>(subranges);
  auto delegate_topk_val = dev.alloc<float>(k);
  auto delegate_topk_idx = dev.alloc<std::uint32_t>(k);  // subrange ids
  auto cand_val = dev.alloc<float>(k * g);
  auto cand_orig = dev.alloc<std::uint32_t>(k * g);
  auto cand_topk_val = dev.alloc<float>(k);
  auto cand_topk_idx = dev.alloc<std::uint32_t>(k);

  for (std::size_t prob = 0; prob < batch; ++prob) {
    // ---- kernel 1: per-subrange minimum (the delegates) ------------------
    {
      const GridShape shape = make_grid(1, n, dev.spec());
      const int bpp = shape.blocks_per_problem;
      simgpu::LaunchConfig cfg{"dr_delegate_reduce", shape.total_blocks(),
                               shape.block_threads, 1, n, k};
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(subranges, bpp, ctx.block_idx());
        for (std::size_t s = begin; s < end; ++s) {
          float best = std::numeric_limits<float>::infinity();
          const std::size_t lo = s * g;
          const std::size_t hi = std::min(n, lo + g);
          for (std::size_t i = lo; i < hi; ++i) {
            best = std::min(best, ctx.load(in, prob * n + i));
          }
          ctx.ops(hi - lo);
          ctx.store(delegates, s, best);
        }
      });
    }

    // ---- base top-K over the delegates ------------------------------------
    select_device(dev, delegates, 1, subranges, k, delegate_topk_val,
                  delegate_topk_idx, opt.base);

    // ---- kernel 2: gather the k winning subranges -------------------------
    {
      const GridShape shape = make_grid(1, k * g, dev.spec());
      const int bpp = shape.blocks_per_problem;
      simgpu::LaunchConfig cfg{"dr_gather", shape.total_blocks(),
                               shape.block_threads, 1, n, k};
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(k, bpp, ctx.block_idx());
        for (std::size_t r = begin; r < end; ++r) {
          const std::uint32_t s = ctx.load(delegate_topk_idx, r);
          const std::size_t lo = static_cast<std::size_t>(s) * g;
          const std::size_t hi = std::min(n, lo + g);
          for (std::size_t i = lo; i < hi; ++i) {
            ctx.store(cand_val, r * g + (i - lo), ctx.load(in, prob * n + i));
            ctx.store(cand_orig, r * g + (i - lo),
                      static_cast<std::uint32_t>(i));
          }
          // Pad short tail subranges so the candidate array is dense.
          for (std::size_t i = hi; i < lo + g; ++i) {
            ctx.store(cand_val, r * g + (i - lo),
                      std::numeric_limits<float>::infinity());
            ctx.store(cand_orig, r * g + (i - lo), 0u);
          }
          ctx.ops(g);
        }
      });
    }

    // ---- base top-K over the k*g candidates -------------------------------
    select_device(dev, cand_val, 1, k * g, k, cand_topk_val, cand_topk_idx,
                  opt.base);

    // ---- kernel 3: map candidate positions back to original indices -------
    {
      simgpu::LaunchConfig cfg{"dr_remap", 1, 256, 1, n, k};
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        for (std::size_t i = 0; i < k; ++i) {
          const std::uint32_t at = ctx.load(cand_topk_idx, i);
          ctx.store(out_vals, prob * k + i, ctx.load(cand_topk_val, i));
          ctx.store(out_idx, prob * k + i, ctx.load(cand_orig, at));
        }
        ctx.ops(k);
      });
    }
  }
}

}  // namespace topk
