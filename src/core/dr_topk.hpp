#pragma once

#include <cstdint>

#include "core/topk.hpp"
#include "simgpu/simgpu.hpp"

namespace topk {

/// Options for the Dr. Top-K hybrid.
struct DrTopkOptions {
  /// Base top-K algorithm used for the delegate and candidate selections.
  Algo base = Algo::kAirTopk;
  /// Subrange size g (0 = auto).  The input is viewed as ceil(n/g)
  /// subranges; soundness requires at least k subranges, which auto mode
  /// guarantees.
  std::size_t subrange = 0;
};

/// Dr. Top-K (Gaihre et al., SC '21): a delegate-centric *hybrid* method.
///
/// 1. Split the input into subranges and reduce each to its minimum (its
///    "delegate") — one cheap coalesced pass.
/// 2. Run a base top-K over the delegates; the k subranges with the
///    smallest delegates are guaranteed to contain the global top-k
///    (any element of rank <= k upper-bounds its subrange's delegate).
/// 3. Gather those k subranges (k*g elements) and run the base top-K again.
///
/// The paper under reproduction treats Dr. Top-K as orthogonal related work
/// that "benefits from a high-performance parallel top-K algorithm" as its
/// building block (§2.2) — which bench/hybrid_dr_topk.cpp demonstrates by
/// swapping the base between AIR Top-K and the host-managed RadixSelect.
void dr_topk(simgpu::Device& dev, simgpu::DeviceBuffer<float> in,
             std::size_t batch, std::size_t n, std::size_t k,
             simgpu::DeviceBuffer<float> out_vals,
             simgpu::DeviceBuffer<std::uint32_t> out_idx,
             const DrTopkOptions& opt = {});

}  // namespace topk
