#include "core/topk.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "topk/air_topk.hpp"
#include "topk/bitonic_topk.hpp"
#include "topk/bucket_select.hpp"
#include "topk/grid_select.hpp"
#include "topk/quick_select.hpp"
#include "topk/radix_select.hpp"
#include "topk/sample_select.hpp"
#include "topk/sort_topk.hpp"
#include "topk/warp_select.hpp"

namespace topk {

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::kAirTopk: return "AIR Top-K";
    case Algo::kGridSelect: return "GridSelect";
    case Algo::kRadixSelect: return "RadixSelect";
    case Algo::kWarpSelect: return "WarpSelect";
    case Algo::kBlockSelect: return "BlockSelect";
    case Algo::kBitonicTopk: return "Bitonic Top-K";
    case Algo::kQuickSelect: return "QuickSelect";
    case Algo::kBucketSelect: return "BucketSelect";
    case Algo::kSampleSelect: return "SampleSelect";
    case Algo::kSort: return "Sort";
    case Algo::kAirTopkNoAdaptive: return "AIR Top-K (no adaptive)";
    case Algo::kAirTopkNoEarlyStop: return "AIR Top-K (no early stop)";
    case Algo::kAirTopkFusedFilter: return "AIR Top-K (fused last filter)";
    case Algo::kGridSelectThreadQueue: return "GridSelect (thread queues)";
    case Algo::kAuto: return "Auto";
  }
  return "unknown";
}

std::optional<Algo> algo_from_string(std::string_view key) {
  if (key == "air") return Algo::kAirTopk;
  if (key == "grid") return Algo::kGridSelect;
  if (key == "radixselect") return Algo::kRadixSelect;
  if (key == "warp") return Algo::kWarpSelect;
  if (key == "block") return Algo::kBlockSelect;
  if (key == "bitonic") return Algo::kBitonicTopk;
  if (key == "quick") return Algo::kQuickSelect;
  if (key == "bucket") return Algo::kBucketSelect;
  if (key == "sample") return Algo::kSampleSelect;
  if (key == "sort") return Algo::kSort;
  if (key == "auto") return Algo::kAuto;
  return std::nullopt;
}

std::span<const Algo> all_algorithms() {
  static constexpr std::array<Algo, 10> kAll = {
      Algo::kAirTopk,      Algo::kGridSelect,  Algo::kRadixSelect,
      Algo::kWarpSelect,   Algo::kBlockSelect, Algo::kBitonicTopk,
      Algo::kQuickSelect,  Algo::kBucketSelect, Algo::kSampleSelect,
      Algo::kSort,
  };
  return kAll;
}

std::size_t max_k(Algo algo, std::size_t n) {
  switch (algo) {
    case Algo::kBitonicTopk:
      return std::min<std::size_t>(n, 256);
    case Algo::kWarpSelect:
    case Algo::kBlockSelect:
    case Algo::kGridSelect:
    case Algo::kGridSelectThreadQueue:
      return std::min<std::size_t>(n, 2048);
    default:
      // kAuto included: the recommender only returns algorithms that are
      // legal for the requested k, so auto dispatch has no k ceiling.
      return n;
  }
}

Algo recommend_algorithm(std::size_t n, std::size_t k,
                         const WorkloadHints& hints) {
  validate_problem(n, k, hints.batch);
  if (hints.on_the_fly) {
    if (k > max_k(Algo::kGridSelect, n)) {
      throw std::invalid_argument(
          "recommend_algorithm: on-the-fly selection supports k <= 2048");
    }
    return Algo::kGridSelect;
  }
  if (k < 256 && k <= max_k(Algo::kGridSelect, n)) {
    return Algo::kGridSelect;
  }
  return Algo::kAirTopk;
}

Algo resolve_algo(Algo algo, std::size_t n, std::size_t k,
                  std::size_t batch) {
  if (algo != Algo::kAuto) return algo;
  WorkloadHints hints;
  hints.batch = batch;
  return recommend_algorithm(n, k, hints);
}

void select_device(simgpu::Device& dev, simgpu::DeviceBuffer<float> in,
                   std::size_t batch, std::size_t n, std::size_t k,
                   simgpu::DeviceBuffer<float> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx, Algo algo,
                   const SelectOptions& opt) {
  algo = resolve_algo(algo, n, k, batch);
  switch (algo) {
    case Algo::kAirTopk: {
      AirTopkOptions o;
      o.alpha = opt.alpha;
      o.greatest = opt.greatest;
      air_topk(dev, in, batch, n, k, out_vals, out_idx, o);
      return;
    }
    case Algo::kAirTopkNoAdaptive: {
      AirTopkOptions o;
      o.alpha = opt.alpha;
      o.greatest = opt.greatest;
      o.adaptive = false;
      air_topk(dev, in, batch, n, k, out_vals, out_idx, o);
      return;
    }
    case Algo::kAirTopkNoEarlyStop: {
      AirTopkOptions o;
      o.alpha = opt.alpha;
      o.greatest = opt.greatest;
      o.early_stopping = false;
      air_topk(dev, in, batch, n, k, out_vals, out_idx, o);
      return;
    }
    case Algo::kAirTopkFusedFilter: {
      AirTopkOptions o;
      o.alpha = opt.alpha;
      o.greatest = opt.greatest;
      o.fuse_last_filter = true;
      air_topk(dev, in, batch, n, k, out_vals, out_idx, o);
      return;
    }
    case Algo::kRadixSelect:
      radix_select(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kGridSelect:
      grid_select(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kGridSelectThreadQueue: {
      GridSelectOptions o;
      o.shared_queue = false;
      grid_select(dev, in, batch, n, k, out_vals, out_idx, o);
      return;
    }
    case Algo::kWarpSelect:
      warp_select(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kBlockSelect:
      block_select(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kBitonicTopk:
      bitonic_topk(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kQuickSelect:
      quick_select(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kBucketSelect:
      bucket_select(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kSampleSelect:
      sample_select(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kSort:
      sort_topk(dev, in, batch, n, k, out_vals, out_idx);
      return;
    case Algo::kAuto:
      break;  // resolved to a concrete algorithm above; unreachable
  }
  throw std::invalid_argument("select_device: unknown algorithm");
}

bool simcheck_env_enabled() {
  const char* v = std::getenv("TOPK_SIMCHECK");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

void throw_if_new_issues(const simgpu::Sanitizer& san,
                         std::size_t issues_before, Algo algo) {
  if (san.issue_count() <= issues_before) return;
  const simgpu::SanitizerReport rep = san.snapshot();
  std::ostringstream err;
  err << "simcheck: " << algo_name(algo) << " raised "
      << san.issue_count() - issues_before << " issue(s):\n";
  for (std::size_t i = issues_before; i < rep.issues.size(); ++i) {
    err << "  " << rep.issues[i].to_string() << "\n";
  }
  if (rep.dropped > 0) {
    err << "  (+" << rep.dropped << " dropped past the report cap)\n";
  }
  throw std::runtime_error(err.str());
}

namespace {

/// Host-entry-point argument validation with messages that name the caller
/// and echo the offending values — the serving layer surfaces these strings
/// to clients, so they must diagnose the problem on their own.
void validate_select_args(const char* fn, std::size_t data_size,
                          std::size_t batch, std::size_t n, std::size_t k) {
  std::ostringstream err;
  if (batch == 0) {
    err << fn << ": batch must be > 0 (got an empty batch)";
  } else if (n == 0) {
    err << fn << ": row length n must be > 0";
  } else if (k == 0) {
    err << fn << ": k must be >= 1 (got k=0)";
  } else if (k > n) {
    err << fn << ": k=" << k << " exceeds row length n=" << n;
  } else if (data_size < batch * n) {
    err << fn << ": data holds " << data_size << " keys but batch=" << batch
        << " rows of n=" << n << " need " << batch * n
        << " (mismatched row lengths?)";
  } else {
    return;
  }
  throw std::invalid_argument(err.str());
}

bool native_greatest(Algo algo) {
  switch (algo) {
    case Algo::kAirTopk:
    case Algo::kAirTopkNoAdaptive:
    case Algo::kAirTopkNoEarlyStop:
    case Algo::kAirTopkFusedFilter:
      return true;  // AIR complements its radix keys natively
    default:
      return false;
  }
}

std::vector<SelectResult> run_on_device(simgpu::Device& dev,
                                        std::span<const float> data,
                                        std::size_t batch, std::size_t n,
                                        std::size_t k, Algo algo,
                                        const SelectOptions& opt) {
  // Resolve auto dispatch before anything inspects `algo` (the greatest-K
  // negation below depends on which concrete algorithm runs).
  algo = resolve_algo(algo, n, k, batch);
  // Enable checking before the input/output allocations so they are known
  // to the shadow (attribution + uninitialized-read tracking end to end).
  if (simcheck_env_enabled() && dev.sanitizer() == nullptr) {
    dev.enable_sanitizer();
  }
  simgpu::Sanitizer* const san = dev.sanitizer();
  const std::size_t issues_before = san != nullptr ? san->issue_count() : 0;

  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(batch * n, "select input");
  dev.upload(in, data.first(batch * n));
  const bool negate = opt.greatest && !native_greatest(algo);
  if (negate) {
    // WLOG the paper selects the smallest K; for algorithms without a
    // native largest-K order, negate on the way in and out.
    for (std::size_t i = 0; i < batch * n; ++i) in.data()[i] = -in.data()[i];
  }
  auto out_vals = dev.alloc<float>(batch * k, "select output vals");
  auto out_idx = dev.alloc<std::uint32_t>(batch * k, "select output idx");
  select_device(dev, in, batch, n, k, out_vals, out_idx, algo, opt);
  if (san != nullptr) {
    // Only issues raised by THIS selection abort it; a long-lived Device
    // whose report already holds findings from earlier runs keeps working.
    throw_if_new_issues(*san, issues_before, algo);
  }
  std::vector<SelectResult> results(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    SelectResult& r = results[b];
    r.values.assign(out_vals.data() + b * k, out_vals.data() + (b + 1) * k);
    r.indices.assign(out_idx.data() + b * k, out_idx.data() + (b + 1) * k);
    if (negate) {
      for (float& v : r.values) v = -v;
    }
    if (opt.sorted) {
      std::vector<std::size_t> order(k);
      for (std::size_t i = 0; i < k; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t c) {
        return opt.greatest ? r.values[a] > r.values[c]
                            : r.values[a] < r.values[c];
      });
      SelectResult sorted;
      sorted.values.reserve(k);
      sorted.indices.reserve(k);
      for (std::size_t i : order) {
        sorted.values.push_back(r.values[i]);
        sorted.indices.push_back(r.indices[i]);
      }
      r = std::move(sorted);
    }
  }
  return results;
}

}  // namespace

SelectResult select(simgpu::Device& dev, std::span<const float> data,
                    std::size_t k, Algo algo, const SelectOptions& opt) {
  validate_select_args("select", data.size(), 1, data.size(), k);
  return run_on_device(dev, data, 1, data.size(), k, algo, opt).front();
}

std::vector<SelectResult> select_batch(simgpu::Device& dev,
                                       std::span<const float> data,
                                       std::size_t batch, std::size_t n,
                                       std::size_t k, Algo algo,
                                       const SelectOptions& opt) {
  validate_select_args("select_batch", data.size(), batch, n, k);
  return run_on_device(dev, data, batch, n, k, algo, opt);
}

SelectResult reference_select(std::span<const float> data, std::size_t k) {
  std::vector<std::uint32_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k) - 1,
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return data[a] < data[b];
                   });
  SelectResult r;
  r.values.reserve(k);
  r.indices.assign(order.begin(), order.begin() + static_cast<long>(k));
  for (std::uint32_t i : r.indices) r.values.push_back(data[i]);
  return r;
}

std::string verify_topk(std::span<const float> data, std::size_t k,
                        const SelectResult& result) {
  std::ostringstream err;
  if (result.values.size() != k || result.indices.size() != k) {
    err << "size mismatch: got " << result.values.size() << " values, "
        << result.indices.size() << " indices, expected " << k;
    return err.str();
  }
  std::vector<bool> seen(data.size(), false);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t idx = result.indices[i];
    if (idx >= data.size()) {
      err << "index " << idx << " out of range at position " << i;
      return err.str();
    }
    if (seen[idx]) {
      err << "duplicate index " << idx << " at position " << i;
      return err.str();
    }
    seen[idx] = true;
    if (!(data[idx] == result.values[i]) &&
        !(std::isnan(data[idx]) && std::isnan(result.values[i]))) {
      err << "value mismatch at position " << i << ": index " << idx
          << " holds " << data[idx] << " but result says "
          << result.values[i];
      return err.str();
    }
  }
  // Multiset equality with the reference top-k values.
  std::vector<float> got = result.values;
  std::vector<float> want(data.begin(), data.end());
  std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                   want.end());
  want.resize(k);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < k; ++i) {
    if (got[i] != want[i]) {
      err << "value multiset differs at sorted position " << i << ": got "
          << got[i] << ", want " << want[i];
      return err.str();
    }
  }
  return {};
}

}  // namespace topk
