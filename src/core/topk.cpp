#include "core/topk.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <type_traits>

#include "topk/key_codec.hpp"
#include "topk/registry.hpp"

namespace topk {

std::string algo_name(Algo algo) {
  const AlgoRow* row = find_algo_row(algo);
  return row != nullptr ? std::string(row->name) : "unknown";
}

std::string_view algo_key(Algo algo) {
  const AlgoRow* row = find_algo_row(algo);
  return row != nullptr ? row->key : std::string_view{"unknown"};
}

std::optional<Algo> parse_algo(std::string_view key) {
  for (const AlgoRow& row : kAlgoTable) {
    if (row.key == key) return row.algo;
  }
  return std::nullopt;
}

std::optional<Algo> algo_from_string(std::string_view key) {
  return parse_algo(key);
}

std::span<const Algo> all_algorithms() {
  static constexpr std::array<Algo, 14> kAll = {
      Algo::kAirTopk,      Algo::kGridSelect,  Algo::kRadixSelect,
      Algo::kWarpSelect,   Algo::kBlockSelect, Algo::kBitonicTopk,
      Algo::kQuickSelect,  Algo::kBucketSelect, Algo::kSampleSelect,
      Algo::kSort,         Algo::kFusedWarpRowwise,
      Algo::kFusedBlockRowwise, Algo::kShardMerge, Algo::kBucketApprox,
  };
  return kAll;
}

std::string_view key_type_name(KeyType t) {
  switch (t) {
    case KeyType::kF32:
      return "f32";
    case KeyType::kF16:
      return "f16";
    case KeyType::kBF16:
      return "bf16";
    case KeyType::kI32:
      return "i32";
    case KeyType::kU32:
      return "u32";
  }
  return "unknown";
}

std::optional<KeyType> parse_key_type(std::string_view key) {
  for (std::size_t i = 0; i < kNumKeyTypes; ++i) {
    const auto t = static_cast<KeyType>(i);
    if (key_type_name(t) == key) return t;
  }
  return std::nullopt;
}

bool algo_supports_dtype(Algo algo, KeyType t) {
  const AlgoRow* row = find_algo_row(algo);
  return row != nullptr && row->plan != nullptr &&
         (row->dtypes & key_type_bit(t)) != 0;
}

std::size_t max_k(Algo algo, std::size_t n) {
  const AlgoRow* row = find_algo_row(algo);
  if (row == nullptr || row->k_limit == 0) {
    // kAuto included: the recommender only returns algorithms that are
    // legal for the requested k, so auto dispatch has no k ceiling.
    return n;
  }
  return std::min(n, row->k_limit);
}

double estimated_batch_cost_us(Algo algo, std::size_t batch, std::size_t n,
                               std::size_t k, double recall_target) {
  // Default DeviceSpec constants (A100 class): launch overhead 2.5us plus a
  // 3us minimum kernel duration, 10us per host round-trip, 1555 GB/s at 92%
  // efficiency, 108 SMs * 64 lanes * 1.41 GHz, saturation at 864 warps.
  constexpr double kLaunchUs = 5.5;
  constexpr double kHostSyncUs = 10.0;
  constexpr double kBytesPerUs = 1.43e6;
  constexpr double kLaneOpsPerUs = 9.75e6;
  constexpr double kSaturatingWarps = 864.0;
  const double rows = static_cast<double>(batch);
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k);
  // One memory-bound pass over the batch's keys — every candidate reads the
  // input at least once.
  const double sweep_us = rows * nn * 4.0 / kBytesPerUs;
  // Lane-op term: the busier the grid, the more of the device's lane
  // throughput the launch can actually use.
  const auto compute_us = [&](double warps, double lane_ops) {
    const double occupancy =
        std::max(std::min(warps, kSaturatingWarps) / kSaturatingWarps,
                 1.0 / kSaturatingWarps);
    return lane_ops / (kLaneOpsPerUs * occupancy);
  };
  switch (algo) {
    case Algo::kFusedWarpRowwise:
      // One launch, one warp per row; per-key cost creeps up with k as the
      // thread queues deepen.
      return kLaunchUs + sweep_us +
             compute_us(rows, rows * nn * (1.0 + kk / 1024.0));
    case Algo::kFusedBlockRowwise: {
      // Scan launch (8 warps/row, private queues) plus a merge launch over
      // the 8 per-warp partial lists of `cap >= k` entries each.
      const double warps_per_row = 8.0;
      const double merge_ops = rows * warps_per_row * kk * 8.0;
      return 2.0 * kLaunchUs + sweep_us +
             compute_us(rows * warps_per_row, rows * nn + merge_ops);
    }
    case Algo::kGridSelect: {
      // make_grid: blocks/problem grows with n but is capped so batch*bpp
      // stays bounded; a second (merge) launch appears once bpp > 1.  The
      // 1.2 per-key factor is the shared-queue insertion traffic.
      const double bpp_cap = std::max(1.0, 4096.0 / rows);
      const double bpp =
          std::clamp(std::min(std::ceil(nn / 16384.0), 216.0), 1.0, bpp_cap);
      const double launches = bpp > 1.0 ? 2.0 : 1.0;
      return launches * kLaunchUs + sweep_us +
             compute_us(rows * bpp * 8.0, rows * nn * 1.2);
    }
    case Algo::kRadixSelect:
      // Host-serial row loop: every row pays its own launches AND a host
      // round-trip per digit pass — the batch term the recommender needs.
      return rows * 3.0 * (kLaunchUs + kHostSyncUs) + 3.0 * sweep_us;
    case Algo::kBucketApprox: {
      // One saturating single-sweep scan (batch*C blocks of W warps) plus,
      // unless the candidate union already has output shape, a minimum-
      // duration refine kernel over the C*q candidates.  The shape is the
      // one the planner would pick for this recall target, so the race
      // prices what would actually run.
      BucketApproxOptions o;
      o.recall_target = recall_target;
      const BucketApproxShape s =
          bucket_approx_configure(n, k, batch, o, simgpu::DeviceSpec{});
      const double cand =
          rows * static_cast<double>(s.chunks) * static_cast<double>(s.keep);
      const bool direct = s.chunks * s.keep == k;
      const double launches = direct ? 1.0 : 2.0;
      // Refine traffic: candidate pairs written by the scan then re-read.
      const double cand_bytes = direct ? 0.0 : 2.0 * cand * 12.0;
      const double scan_warps = rows * static_cast<double>(s.chunks) *
                                static_cast<double>(s.warps);
      return launches * kLaunchUs + sweep_us + cand_bytes / kBytesPerUs +
             compute_us(scan_warps,
                        rows * nn *
                            (1.0 + static_cast<double>(s.keep) / 1024.0));
    }
    case Algo::kStreamRadix: {
      // Host-serial chunk loop: every chunk pays RadixSelect's per-pass
      // launch + host round-trip structure, and the chunk count grows with
      // n (bounded-scratch is what the tier buys, not launch economy).
      const double chunks = std::max(
          1.0, std::min(std::ceil(nn / 4194304.0), std::max(1.0, nn / kk)));
      return rows * chunks * 3.0 * (kLaunchUs + kHostSyncUs) + 3.5 * sweep_us;
    }
    case Algo::kAirTopk:
    default:
      // Multi-launch grid-wide pipelines: a few launches, a bit more than
      // one sweep of memory traffic, saturating grids.
      return 3.0 * kLaunchUs + 1.25 * sweep_us +
             compute_us(kSaturatingWarps, rows * nn * 1.5);
  }
}

Algo recommend_algorithm(std::size_t n, std::size_t k,
                         const WorkloadHints& hints) {
  // A sharded query is recommended at the shape one device actually sees:
  // the per-shard row length.  The shard coordinator runs the same concrete
  // algorithm on every shard, so this is the choice that matters.
  if (hints.shards > 1) {
    const std::size_t n_shard = (n + hints.shards - 1) / hints.shards;
    if (k > n_shard) {
      std::ostringstream err;
      err << "recommend_algorithm: k=" << k << " exceeds the per-shard row "
          << "length ceil(n/shards)=" << n_shard << " at shards="
          << hints.shards << "; request fewer shards";
      throw std::invalid_argument(err.str());
    }
    n = n_shard;
  }
  validate_problem(n, k, hints.batch);
  if (!(hints.recall_target > 0.0) || hints.recall_target > 1.0) {
    std::ostringstream err;
    err << "recommend_algorithm: recall_target must be in (0, 1], got "
        << hints.recall_target;
    throw std::invalid_argument(err.str());
  }
  if (hints.on_the_fly) {
    if (k > max_k(Algo::kGridSelect, n)) {
      throw std::invalid_argument(
          "recommend_algorithm: on-the-fly selection supports k <= 2048");
    }
    // The approximate tier buffers whole chunks, so a streaming producer
    // cannot feed it; the recall hint cannot override the streaming need.
    return Algo::kGridSelect;
  }
  // The exact pick first; a sub-1.0 recall SLO then races the approximate
  // tier against it at modeled cost.  At recall_target = 1.0 the race is
  // skipped outright, so the recommendation is provably exact.
  const auto race_approx = [&](Algo exact) {
    if (hints.recall_target >= 1.0 || k > max_k(Algo::kBucketApprox, n) ||
        !algo_supports_dtype(Algo::kBucketApprox, hints.dtype)) {
      return exact;
    }
    const double approx_cost = estimated_batch_cost_us(
        Algo::kBucketApprox, hints.batch, n, k, hints.recall_target);
    const double exact_cost =
        estimated_batch_cost_us(exact, hints.batch, n, k);
    return approx_cost < exact_cost ? Algo::kBucketApprox : exact;
  };
  if (hints.batch >= 64) {
    // Serving-shaped micro-batch: rank the batch-capable candidates by
    // modeled cost.  Listed order breaks ties toward the fused family, and
    // RadixSelect's host-serial row loop prices it out of contention as
    // rows grow — which is exactly why it is in the list.
    constexpr std::array<Algo, 5> kCandidates = {
        Algo::kFusedWarpRowwise, Algo::kFusedBlockRowwise, Algo::kGridSelect,
        Algo::kAirTopk, Algo::kRadixSelect};
    Algo best = Algo::kAirTopk;
    double best_cost = std::numeric_limits<double>::infinity();
    for (Algo cand : kCandidates) {
      if (k > max_k(cand, n)) continue;
      if (!algo_supports_dtype(cand, hints.dtype)) continue;
      const double cost = estimated_batch_cost_us(cand, hints.batch, n, k);
      if (cost < best_cost) {
        best = cand;
        best_cost = cost;
      }
    }
    return race_approx(best);
  }
  if (k < 256 && k <= max_k(Algo::kGridSelect, n)) {
    return race_approx(Algo::kGridSelect);
  }
  return race_approx(Algo::kAirTopk);
}

Algo resolve_algo(Algo algo, std::size_t n, std::size_t k,
                  std::size_t batch, double recall_target, KeyType dtype) {
  if (algo != Algo::kAuto) return algo;
  WorkloadHints hints;
  hints.batch = batch;
  hints.recall_target = recall_target;
  hints.dtype = dtype;
  return recommend_algorithm(n, k, hints);
}

void sort_result_best_first(SelectResult& r, bool greatest,
                            std::vector<std::uint32_t>& order_scratch) {
  const std::size_t k = r.values.size();
  order_scratch.resize(k);
  std::iota(order_scratch.begin(), order_scratch.end(), 0U);
  std::sort(order_scratch.begin(), order_scratch.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return greatest ? r.values[a] > r.values[b]
                              : r.values[a] < r.values[b];
            });
  // Apply the permutation in place (dest[i] = src[order[i]]): chase each
  // source slot through the already-swapped prefix, then swap it into
  // position.  No per-row copies of the value/index vectors.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = order_scratch[i];
    while (j < i) j = order_scratch[j];
    if (j != i) {
      std::swap(r.values[i], r.values[j]);
      std::swap(r.indices[i], r.indices[j]);
    }
  }
}

namespace {

const PlanImpl& deref_plan(const std::shared_ptr<const PlanImpl>& impl,
                           const char* accessor) {
  if (impl == nullptr) {
    throw std::logic_error(std::string(accessor) +
                           ": empty ExecutionPlan handle");
  }
  return *impl;
}

}  // namespace

Algo ExecutionPlan::algo() const {
  return deref_plan(impl_, "ExecutionPlan::algo").algo;
}

std::size_t ExecutionPlan::batch() const {
  return deref_plan(impl_, "ExecutionPlan::batch").shape.batch;
}

std::size_t ExecutionPlan::n() const {
  return deref_plan(impl_, "ExecutionPlan::n").shape.n;
}

std::size_t ExecutionPlan::k() const {
  return deref_plan(impl_, "ExecutionPlan::k").shape.k;
}

bool ExecutionPlan::greatest() const {
  return deref_plan(impl_, "ExecutionPlan::greatest").shape.greatest;
}

KeyType ExecutionPlan::dtype() const {
  return deref_plan(impl_, "ExecutionPlan::dtype").dtype;
}

bool ExecutionPlan::u32_carrier() const {
  return deref_plan(impl_, "ExecutionPlan::u32_carrier").u32_carrier;
}

const simgpu::WorkspaceLayout& ExecutionPlan::layout() const {
  return deref_plan(impl_, "ExecutionPlan::layout").layout;
}

std::size_t ExecutionPlan::workspace_bytes() const {
  return deref_plan(impl_, "ExecutionPlan::workspace_bytes")
      .layout.total_bytes();
}

const simgpu::KernelSchedule& ExecutionPlan::schedule() const {
  return deref_plan(impl_, "ExecutionPlan::schedule").schedule;
}

ExecutionPlan plan_select(const simgpu::DeviceSpec& spec, std::size_t batch,
                          std::size_t n, std::size_t k, Algo algo,
                          const SelectOptions& opt) {
  if (!(opt.recall_target > 0.0) || opt.recall_target > 1.0) {
    std::ostringstream err;
    err << "plan_select: recall_target must be in (0, 1], got "
        << opt.recall_target;
    throw std::invalid_argument(err.str());
  }
  if (k > kMaxK) {
    std::ostringstream err;
    err << "plan_select: k=" << k << " exceeds TOPK_MAX_K=" << kMaxK
        << " (2^20), the system-wide K ceiling";
    throw std::invalid_argument(err.str());
  }
  algo = resolve_algo(algo, n, k, batch, opt.recall_target, opt.dtype);
  const AlgoRow* row = find_algo_row(algo);
  if (row == nullptr || row->plan == nullptr) {
    throw std::invalid_argument("plan_select: unknown algorithm");
  }
  if ((row->dtypes & key_type_bit(opt.dtype)) == 0) {
    std::ostringstream err;
    err << "plan_select: " << row->name << " does not support dtype "
        << key_type_name(opt.dtype)
        << " (algo_supports_dtype lists each algorithm's key types)";
    throw std::invalid_argument(err.str());
  }
  if (!row->streaming && batch * n > spec.max_select_elems) {
    std::ostringstream err;
    err << "plan_select: batch=" << batch << " x n=" << n << " = "
        << batch * n << " keys exceeds this device's single-select capacity ("
        << spec.max_select_elems
        << " elems); split the query across the device pool with "
           "topk::shard::sharded_select (serve engages it automatically, or "
           "via WorkloadHints::shards), or use the bounded-scratch streaming "
           "tier (Algo::kStreamRadix)";
    throw std::invalid_argument(err.str());
  }
  auto impl = std::make_shared<PlanImpl>();
  impl->algo = algo;
  impl->shape = Shape{batch, n, k, opt.greatest};
  impl->dtype = opt.dtype;
  impl->u32_carrier = key_type_is_integer(opt.dtype);
  // WLOG the paper selects the smallest K; algorithms without a native
  // largest-K order get a negate wrap: plan a device segment for the
  // negated copy here, apply it in run_select.  On the u32 carrier the wrap
  // is a bitwise complement of the radix ordinals, not a float negation.
  impl->negate = opt.greatest && !row->native_greatest;
  if (impl->negate) {
    impl->seg_negated =
        impl->u32_carrier
            ? impl->layout.add<std::uint32_t>("negated input", batch * n)
            : impl->layout.add<float>("negated input", batch * n);
  }
  row->plan(*impl, spec, opt);
  if (impl->negate) {
    // The plan function recorded its schedule against the caller's input
    // buffer, but under the negate wrap run_select feeds the kernels the
    // negated copy.  Rewrite the input binds to the negated segment and
    // prepend the host negation so the static auditor sees the sequence
    // that actually executes (and the segment's first write).
    for (simgpu::KernelStep& step : impl->schedule.steps) {
      for (simgpu::OperandBind& bind : step.binds) {
        if (bind.target == simgpu::kBindInput) bind.target = impl->seg_negated;
      }
    }
    simgpu::KernelStep neg;
    neg.kind = simgpu::KernelStep::Kind::kHost;
    neg.name = "negate input";
    neg.batch = batch;
    neg.n = n;
    neg.k = k;
    neg.binds = {{"in", simgpu::kBindInput, simgpu::Access::kRead},
                 {"negated", impl->seg_negated, simgpu::Access::kWrite}};
    impl->schedule.steps.insert(impl->schedule.steps.begin(), std::move(neg));
  }
  return ExecutionPlan(std::move(impl));
}

void run_select(simgpu::Device& dev, const ExecutionPlan& plan,
                simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                simgpu::DeviceBuffer<float> out_vals,
                simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const PlanImpl& impl = deref_plan(plan.impl_, "run_select");
  if (impl.u32_carrier) {
    throw std::invalid_argument(
        "run_select: this plan executes i32/u32 keys on the u32 carrier; "
        "use the DeviceBuffer<uint32_t> overload");
  }
  const AlgoRow* row = find_algo_row(impl.algo);  // non-null by construction
  ws.bind(impl.layout);
  simgpu::DeviceBuffer<float> input = in;
  if (impl.negate) {
    const std::size_t total = impl.shape.batch * impl.shape.n;
    if (in.size() < total) {
      throw std::invalid_argument("run_select: input smaller than batch*n");
    }
    simgpu::DeviceBuffer<float> neg = ws.get<float>(impl.seg_negated);
    for (std::size_t i = 0; i < total; ++i) neg.data()[i] = -in.data()[i];
    if (simgpu::Sanitizer* san = dev.sanitizer()) {
      // The host-side copy bypasses the shadow; mark it like an upload so
      // the kernels' reads are not flagged uninitialized.
      san->mark_initialized(neg.data(), total * sizeof(float));
    }
    input = neg;
  }
  row->run(dev, impl, ws, input, out_vals, out_idx);
  if (impl.negate) {
    const std::size_t out_total = impl.shape.batch * impl.shape.k;
    for (std::size_t i = 0; i < out_total; ++i) {
      out_vals.data()[i] = -out_vals.data()[i];
    }
  }
}

void run_select(simgpu::Device& dev, const ExecutionPlan& plan,
                simgpu::Workspace& ws,
                simgpu::DeviceBuffer<std::uint32_t> in,
                simgpu::DeviceBuffer<std::uint32_t> out_vals,
                simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const PlanImpl& impl = deref_plan(plan.impl_, "run_select");
  if (!impl.u32_carrier) {
    throw std::invalid_argument(
        "run_select: this plan executes on the float carrier; use the "
        "DeviceBuffer<float> overload");
  }
  const AlgoRow* row = find_algo_row(impl.algo);  // non-null by construction
  ws.bind(impl.layout);
  simgpu::DeviceBuffer<std::uint32_t> input = in;
  if (impl.negate) {
    // The largest-K wrap on radix ordinals: complement is the monotone
    // order reversal of the unsigned domain (float negation's counterpart),
    // and complementing the selected ordinals undoes it exactly.
    const std::size_t total = impl.shape.batch * impl.shape.n;
    if (in.size() < total) {
      throw std::invalid_argument("run_select: input smaller than batch*n");
    }
    simgpu::DeviceBuffer<std::uint32_t> neg =
        ws.get<std::uint32_t>(impl.seg_negated);
    for (std::size_t i = 0; i < total; ++i) neg.data()[i] = ~in.data()[i];
    if (simgpu::Sanitizer* san = dev.sanitizer()) {
      san->mark_initialized(neg.data(), total * sizeof(std::uint32_t));
    }
    input = neg;
  }
  if (row->run_u32 == nullptr) {
    throw std::logic_error("run_select: registry row lacks a u32 carrier "
                           "thunk despite an integer dtype plan");
  }
  row->run_u32(dev, impl, ws, input, out_vals, out_idx);
  if (impl.negate) {
    const std::size_t out_total = impl.shape.batch * impl.shape.k;
    for (std::size_t i = 0; i < out_total; ++i) {
      out_vals.data()[i] = ~out_vals.data()[i];
    }
  }
}

void select_device(simgpu::Device& dev, simgpu::DeviceBuffer<float> in,
                   std::size_t batch, std::size_t n, std::size_t k,
                   simgpu::DeviceBuffer<float> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx, Algo algo,
                   const SelectOptions& opt) {
  const ExecutionPlan plan = plan_select(dev.spec(), batch, n, k, algo, opt);
  simgpu::Workspace ws(dev);
  run_select(dev, plan, ws, in, out_vals, out_idx);
}

bool simcheck_env_enabled() {
  const char* v = std::getenv("TOPK_SIMCHECK");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

void throw_if_new_issues(const simgpu::Sanitizer& san,
                         std::size_t issues_before, Algo algo) {
  if (san.issue_count() <= issues_before) return;
  const simgpu::SanitizerReport rep = san.snapshot();
  std::ostringstream err;
  err << "simcheck: " << algo_name(algo) << " raised "
      << san.issue_count() - issues_before << " issue(s):\n";
  for (std::size_t i = issues_before; i < rep.issues.size(); ++i) {
    err << "  " << rep.issues[i].to_string() << "\n";
  }
  if (rep.dropped > 0) {
    err << "  (+" << rep.dropped << " dropped past the report cap)\n";
  }
  throw std::runtime_error(err.str());
}

namespace {

/// Host-entry-point argument validation with messages that name the caller
/// and echo the offending values — the serving layer surfaces these strings
/// to clients, so they must diagnose the problem on their own.
void validate_select_args(const char* fn, std::size_t data_size,
                          std::size_t batch, std::size_t n, std::size_t k,
                          double recall_target = 1.0) {
  std::ostringstream err;
  if (batch == 0) {
    err << fn << ": batch must be > 0 (got an empty batch)";
  } else if (n == 0) {
    err << fn << ": row length n must be > 0";
  } else if (k == 0) {
    err << fn << ": k must be >= 1 (got k=0)";
  } else if (k > kMaxK) {
    err << fn << ": k=" << k << " exceeds TOPK_MAX_K=" << kMaxK
        << " (2^20), the system-wide K ceiling";
  } else if (k > n) {
    err << fn << ": k=" << k << " exceeds row length n=" << n;
  } else if (data_size < batch * n) {
    err << fn << ": data holds " << data_size << " keys but batch=" << batch
        << " rows of n=" << n << " need " << batch * n
        << " (mismatched row lengths?)";
  } else if (!(recall_target > 0.0) || recall_target > 1.0) {
    err << fn << ": recall_target must be in (0, 1], got " << recall_target
        << " (1.0 = exact)";
  } else {
    return;
  }
  throw std::invalid_argument(err.str());
}

void validate_payload_arg(const char* fn, PayloadView payload,
                          std::size_t batch, std::size_t n) {
  if (!payload.present()) return;
  if (payload.size != batch * n) {
    std::ostringstream err;
    err << fn << ": payload holds " << payload.size
        << " entries but must cover every key (batch=" << batch << " x n="
        << n << " = " << batch * n << ")";
    throw std::invalid_argument(err.str());
  }
}

/// Best-first reorder in the carrier domain: carrier order equals key order
/// for every dtype (total, NaN-safe for f16/bf16 ordinals), so sorting
/// BEFORE decode avoids the float-comparison hazards a decoded sort would
/// reintroduce.  Permutes values, indices and (when present) payload.
template <typename Carrier>
void sort_carrier_row_best_first(std::vector<Carrier>& vals,
                                 std::vector<std::uint32_t>& idx,
                                 std::vector<std::uint64_t>& payload,
                                 bool greatest,
                                 std::vector<std::uint32_t>& order_scratch) {
  const std::size_t k = vals.size();
  order_scratch.resize(k);
  std::iota(order_scratch.begin(), order_scratch.end(), 0U);
  std::sort(order_scratch.begin(), order_scratch.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return greatest ? vals[b] < vals[a] : vals[a] < vals[b];
            });
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = order_scratch[i];
    while (j < i) j = order_scratch[j];
    if (j != i) {
      std::swap(vals[i], vals[j]);
      std::swap(idx[i], idx[j]);
      if (!payload.empty()) std::swap(payload[i], payload[j]);
    }
  }
}

/// Typed execution on a carrier domain: upload the encoded keys, run the
/// carrier-typed plan, then gather payloads and decode per row.  Carrier is
/// float (f32/f16/bf16) or uint32_t (i32/u32); `dtype` is the user-facing
/// key type the codec decodes back to.
template <typename Carrier>
std::vector<SelectResult> run_carrier_on_device(
    simgpu::Device& dev, std::span<const Carrier> encoded, KeyType dtype,
    std::size_t batch, std::size_t n, std::size_t k, Algo algo,
    const SelectOptions& opt, PayloadView payload) {
  algo = resolve_algo(algo, n, k, batch, opt.recall_target, dtype);
  if (simcheck_env_enabled() && dev.sanitizer() == nullptr) {
    dev.enable_sanitizer();
  }
  simgpu::Sanitizer* const san = dev.sanitizer();
  const std::size_t issues_before = san != nullptr ? san->issue_count() : 0;

  simgpu::ScopedWorkspace scoped(dev);
  auto in = dev.alloc<Carrier>(batch * n, "select input");
  dev.upload(in, encoded.first(batch * n));
  auto out_vals = dev.alloc<Carrier>(batch * k, "select output vals");
  auto out_idx = dev.alloc<std::uint32_t>(batch * k, "select output idx");
  SelectOptions topt = opt;
  topt.dtype = dtype;
  const ExecutionPlan plan =
      plan_select(dev.spec(), batch, n, k, algo, topt);
  simgpu::Workspace ws(dev);
  run_select(dev, plan, ws, in, out_vals, out_idx);
  if (san != nullptr) {
    throw_if_new_issues(*san, issues_before, algo);
  }
  std::vector<SelectResult> results(batch);
  std::vector<std::uint32_t> order;  // permutation scratch, shared by rows
  std::vector<Carrier> cvals;
  for (std::size_t b = 0; b < batch; ++b) {
    SelectResult& r = results[b];
    cvals.assign(out_vals.data() + b * k, out_vals.data() + (b + 1) * k);
    r.indices.assign(out_idx.data() + b * k, out_idx.data() + (b + 1) * k);
    if (payload.present()) {
      r.payload.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        r.payload[i] = codec::payload_at(payload, b * n + r.indices[i]);
      }
    }
    if (opt.sorted) {
      sort_carrier_row_best_first(cvals, r.indices, r.payload, opt.greatest,
                                  order);
    }
    if constexpr (std::is_same_v<Carrier, float>) {
      r.values.assign(cvals.begin(), cvals.end());
      codec::decode_result_f32(dtype, r);
    } else {
      codec::decode_result_u32(dtype, cvals, r);
    }
  }
  return results;
}

/// Typed dispatch: encode the KeyView into its carrier domain and execute.
std::vector<SelectResult> run_typed_on_device(simgpu::Device& dev,
                                              KeyView keys, std::size_t batch,
                                              std::size_t n, std::size_t k,
                                              Algo algo,
                                              const SelectOptions& opt,
                                              PayloadView payload) {
  // Encode exactly the batch*n keys the problem consumes (the view may be
  // larger; validate_select_args has already checked it is not smaller).
  const KeyView used{keys.dtype, keys.data, batch * n};
  if (codec::uses_u32_carrier(keys.dtype)) {
    std::vector<std::uint32_t> enc(batch * n);
    codec::encode_keys_u32(used, enc.data());
    return run_carrier_on_device<std::uint32_t>(
        dev, std::span<const std::uint32_t>(enc), keys.dtype, batch, n, k,
        algo, opt, payload);
  }
  std::vector<float> enc(batch * n);
  codec::encode_keys_f32(used, enc.data());
  return run_carrier_on_device<float>(dev, std::span<const float>(enc),
                                      keys.dtype, batch, n, k, algo, opt,
                                      payload);
}

std::vector<SelectResult> run_on_device(simgpu::Device& dev,
                                        std::span<const float> data,
                                        std::size_t batch, std::size_t n,
                                        std::size_t k, Algo algo,
                                        const SelectOptions& opt) {
  // Resolve auto dispatch up front so sanitizer issue attribution names the
  // concrete algorithm that actually runs.
  algo = resolve_algo(algo, n, k, batch, opt.recall_target);
  // Enable checking before the input/output allocations so they are known
  // to the shadow (attribution + uninitialized-read tracking end to end).
  if (simcheck_env_enabled() && dev.sanitizer() == nullptr) {
    dev.enable_sanitizer();
  }
  simgpu::Sanitizer* const san = dev.sanitizer();
  const std::size_t issues_before = san != nullptr ? san->issue_count() : 0;

  simgpu::ScopedWorkspace ws(dev);
  auto in = dev.alloc<float>(batch * n, "select input");
  dev.upload(in, data.first(batch * n));
  auto out_vals = dev.alloc<float>(batch * k, "select output vals");
  auto out_idx = dev.alloc<std::uint32_t>(batch * k, "select output idx");
  // select_device handles largest-K uniformly (natively for AIR, via the
  // registry's negate wrap for everything else), so out_vals already holds
  // values in the requested order.
  select_device(dev, in, batch, n, k, out_vals, out_idx, algo, opt);
  if (san != nullptr) {
    // Only issues raised by THIS selection abort it; a long-lived Device
    // whose report already holds findings from earlier runs keeps working.
    throw_if_new_issues(*san, issues_before, algo);
  }
  std::vector<SelectResult> results(batch);
  std::vector<std::uint32_t> order;  // permutation scratch, shared by rows
  for (std::size_t b = 0; b < batch; ++b) {
    SelectResult& r = results[b];
    r.values.assign(out_vals.data() + b * k, out_vals.data() + (b + 1) * k);
    r.indices.assign(out_idx.data() + b * k, out_idx.data() + (b + 1) * k);
    if (opt.sorted) sort_result_best_first(r, opt.greatest, order);
  }
  return results;
}

}  // namespace

SelectResult select(simgpu::Device& dev, std::span<const float> data,
                    std::size_t k, Algo algo, const SelectOptions& opt) {
  validate_select_args("select", data.size(), 1, data.size(), k,
                       opt.recall_target);
  return run_on_device(dev, data, 1, data.size(), k, algo, opt).front();
}

std::vector<SelectResult> select_batch(simgpu::Device& dev,
                                       std::span<const float> data,
                                       std::size_t batch, std::size_t n,
                                       std::size_t k, Algo algo,
                                       const SelectOptions& opt) {
  validate_select_args("select_batch", data.size(), batch, n, k,
                       opt.recall_target);
  return run_on_device(dev, data, batch, n, k, algo, opt);
}

SelectResult select(simgpu::Device& dev, KeyView keys, std::size_t k,
                    Algo algo, const SelectOptions& opt,
                    PayloadView payload) {
  validate_select_args("select", keys.size, 1, keys.size, k,
                       opt.recall_target);
  validate_payload_arg("select", payload, 1, keys.size);
  return run_typed_on_device(dev, keys, 1, keys.size, k, algo, opt, payload)
      .front();
}

std::vector<SelectResult> select_batch(simgpu::Device& dev, KeyView keys,
                                       std::size_t batch, std::size_t n,
                                       std::size_t k, Algo algo,
                                       const SelectOptions& opt,
                                       PayloadView payload) {
  validate_select_args("select_batch", keys.size, batch, n, k,
                       opt.recall_target);
  validate_payload_arg("select_batch", payload, batch, n);
  return run_typed_on_device(dev, keys, batch, n, k, algo, opt, payload);
}

SelectResult reference_select(std::span<const float> data, std::size_t k) {
  if (k > kMaxK) {
    std::ostringstream err;
    err << "reference_select: k=" << k << " exceeds TOPK_MAX_K=" << kMaxK
        << " (2^20), the system-wide K ceiling";
    throw std::invalid_argument(err.str());
  }
  std::vector<std::uint32_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k) - 1,
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return data[a] < data[b];
                   });
  SelectResult r;
  r.values.reserve(k);
  r.indices.assign(order.begin(), order.begin() + static_cast<long>(k));
  for (std::uint32_t i : r.indices) r.values.push_back(data[i]);
  return r;
}

std::string verify_topk(std::span<const float> data, std::size_t k,
                        const SelectResult& result) {
  std::ostringstream err;
  if (result.values.size() != k || result.indices.size() != k) {
    err << "size mismatch: got " << result.values.size() << " values, "
        << result.indices.size() << " indices, expected " << k;
    return err.str();
  }
  std::vector<bool> seen(data.size(), false);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t idx = result.indices[i];
    if (idx >= data.size()) {
      err << "index " << idx << " out of range at position " << i;
      return err.str();
    }
    if (seen[idx]) {
      err << "duplicate index " << idx << " at position " << i;
      return err.str();
    }
    seen[idx] = true;
    if (!(data[idx] == result.values[i]) &&
        !(std::isnan(data[idx]) && std::isnan(result.values[i]))) {
      err << "value mismatch at position " << i << ": index " << idx
          << " holds " << data[idx] << " but result says "
          << result.values[i];
      return err.str();
    }
  }
  // Multiset equality with the reference top-k values.
  std::vector<float> got = result.values;
  std::vector<float> want(data.begin(), data.end());
  std::nth_element(want.begin(), want.begin() + static_cast<long>(k) - 1,
                   want.end());
  want.resize(k);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < k; ++i) {
    if (got[i] != want[i]) {
      err << "value multiset differs at sorted position " << i << ": got "
          << got[i] << ", want " << want[i];
      return err.str();
    }
  }
  return {};
}

}  // namespace topk
