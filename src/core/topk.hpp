#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simgpu/simgpu.hpp"

namespace topk {

/// Every algorithm in the benchmark (paper Table 1 plus the two proposed
/// methods and their ablation variants).
enum class Algo {
  kAirTopk,             ///< AIR Top-K (this paper, §3)
  kGridSelect,          ///< GridSelect (this paper, §4)
  kRadixSelect,         ///< host-managed RadixSelect (DrTopK)
  kWarpSelect,          ///< Faiss WarpSelect: one warp, per-thread queues
  kBlockSelect,         ///< Faiss BlockSelect: one block of 4 warps
  kBitonicTopk,         ///< Bitonic Top-K (Shanbhag et al.), K <= 256
  kQuickSelect,         ///< GpuSelection QuickSelect
  kBucketSelect,        ///< GpuSelection BucketSelect
  kSampleSelect,        ///< GpuSelection SampleSelect
  kSort,                ///< full radix sort (CUB style) then take K
  // --- ablation variants ---
  kAirTopkNoAdaptive,   ///< AIR without the adaptive buffering (Fig. 9)
  kAirTopkNoEarlyStop,  ///< AIR without early stopping (Fig. 10)
  kAirTopkFusedFilter,  ///< AIR with the last filter fused (§3.1, rejected)
  kGridSelectThreadQueue,  ///< GridSelect with per-thread queues (Fig. 11)
  // --- fused row-wise family (serving-shaped micro-batches) ---
  kFusedWarpRowwise,   ///< one warp per row, whole batch in a single launch
  kFusedBlockRowwise,  ///< one block per row, partials + grid-spanning merge
  // --- sharded scale-out (queries larger than one device) ---
  kShardMerge,  ///< sorted-run merge-prune tree; the cross-shard reduction
                ///< stage of topk::shard, usable standalone (k <= 2048)
  // --- approximate tier (recall-SLO routed) ---
  kBucketApprox,  ///< bucketed one-pass approximate top-k: top-q per chunk
                  ///< plus a shared-memory refine; exact when
                  ///< recall_target = 1.0 (k <= 2048)
  // --- streaming large-K tier (RadiK direction) ---
  kStreamRadix,  ///< chunked host-loop radix select: bounded scratch
                 ///< independent of N, K up to kMaxK (2^20)
  // --- dispatch ---
  kAuto,  ///< let recommend_algorithm() pick per (n, k, batch) at run time
};

[[nodiscard]] std::string algo_name(Algo algo);

/// The short registry key for an algorithm ("air", "grid", ...; the ablation
/// variants get "air-noadaptive", "air-noearlystop", "air-fusedfilter" and
/// "grid-threadqueue").  Round-trips through parse_algo for every Algo value.
[[nodiscard]] std::string_view algo_key(Algo algo);

/// Parse a registry key back to its Algo ("auto" maps to Algo::kAuto, which
/// defers the choice to recommend_algorithm() at execution time).  Returns
/// nullopt for unknown keys.
[[nodiscard]] std::optional<Algo> parse_algo(std::string_view key);

/// Parse a short algorithm key ("air", "grid", "radixselect", "warp",
/// "block", "bitonic", "quick", "bucket", "sample", "sort", "auto") — the
/// names the CLI and scripts use.  Forwards to parse_algo (so the ablation
/// variant keys parse here too).  Returns nullopt for unknown keys.
[[nodiscard]] std::optional<Algo> algo_from_string(std::string_view key);

/// All benchmarkable algorithms in a stable order (main methods first).
[[nodiscard]] std::span<const Algo> all_algorithms();

class half;   // topk/half.hpp
class bf16;   // topk/bf16.hpp

/// Key element type of a selection problem.  Every algorithm executes on one
/// of two carrier domains:
///  - f32 carrier: f32 keys run as-is; f16/bf16 keys are encoded to their
///    exact 16-bit radix ordinal (an integer in [0, 65536), exactly
///    representable in float, totally ordered — NaNs by bit pattern) and
///    decoded back after selection.
///  - u32 carrier: i32/u32 keys are encoded to their monotone radix ordinal
///    and the algorithm is instantiated at uint32_t (largest-K wraps via
///    bitwise complement instead of float negation).
/// Registry rows declare which key types they accept (algo_supports_dtype);
/// recommend_algorithm filters its cost race by them.
enum class KeyType : std::uint8_t { kF32 = 0, kF16, kBF16, kI32, kU32 };

inline constexpr std::size_t kNumKeyTypes = 5;

[[nodiscard]] std::string_view key_type_name(KeyType t);  // "f32", ...
[[nodiscard]] std::optional<KeyType> parse_key_type(std::string_view key);

/// True for i32/u32 — key types that execute on the u32 carrier.
[[nodiscard]] constexpr bool key_type_is_integer(KeyType t) {
  return t == KeyType::kI32 || t == KeyType::kU32;
}

/// Bit for KeyType `t` in an AlgoRow dtype mask.
[[nodiscard]] constexpr unsigned key_type_bit(KeyType t) {
  return 1u << static_cast<unsigned>(t);
}
inline constexpr unsigned kDtypesFloatFamily =
    key_type_bit(KeyType::kF32) | key_type_bit(KeyType::kF16) |
    key_type_bit(KeyType::kBF16);
inline constexpr unsigned kDtypesAll =
    kDtypesFloatFamily | key_type_bit(KeyType::kI32) |
    key_type_bit(KeyType::kU32);

/// Whether the registry row for `algo` declares support for key type `t`
/// (false for Algo::kAuto — resolve first).
[[nodiscard]] bool algo_supports_dtype(Algo algo, KeyType t);

/// Hard ceiling on K across the whole system (TOPK_MAX_K): the streaming
/// large-K tier supports K up to 2^20; validate_select_args,
/// reference_select and plan_select all reject anything beyond it.
inline constexpr std::size_t kMaxK = std::size_t{1} << 20;

/// Type-erased, non-owning view of a key array.  Construct via of(); the
/// dtype travels with the pointer so typed select()/serve entry points can
/// dispatch on it.
struct KeyView {
  KeyType dtype = KeyType::kF32;
  const void* data = nullptr;
  std::size_t size = 0;  ///< elements

  KeyView() = default;
  KeyView(KeyType t, const void* p, std::size_t count)
      : dtype(t), data(p), size(count) {}

  static KeyView of(std::span<const float> s) {
    return {KeyType::kF32, s.data(), s.size()};
  }
  static KeyView of(std::span<const half> s);   // defined in key_codec.hpp
  static KeyView of(std::span<const bf16> s);   // defined in key_codec.hpp
  static KeyView of(std::span<const std::int32_t> s) {
    return {KeyType::kI32, s.data(), s.size()};
  }
  static KeyView of(std::span<const std::uint32_t> s) {
    return {KeyType::kU32, s.data(), s.size()};
  }
};

/// Optional per-key payload carried through selection (the "value" of a
/// key-value select: ANN candidate ids, document ids, ...).  u32 payloads
/// widen losslessly into the u64 result vector.
enum class PayloadKind : std::uint8_t { kNone = 0, kU32, kU64 };

struct PayloadView {
  PayloadKind kind = PayloadKind::kNone;
  const void* data = nullptr;
  std::size_t size = 0;  ///< elements; must equal batch*n when present

  PayloadView() = default;

  static PayloadView of(std::span<const std::uint32_t> s) {
    PayloadView v;
    v.kind = PayloadKind::kU32;
    v.data = s.data();
    v.size = s.size();
    return v;
  }
  static PayloadView of(std::span<const std::uint64_t> s) {
    PayloadView v;
    v.kind = PayloadKind::kU64;
    v.data = s.data();
    v.size = s.size();
    return v;
  }

  [[nodiscard]] bool present() const { return kind != PayloadKind::kNone; }
};

/// Maximum supported K for an algorithm at problem size n (0 = unsupported).
/// Partial-sorting methods have hard K limits (paper §2.2: 256 for Bitonic
/// Top-K, 2048 for the selection queues).
[[nodiscard]] std::size_t max_k(Algo algo, std::size_t n);

/// Workload description for algorithm recommendation.
struct WorkloadHints {
  /// Values are produced inside another kernel and must be consumed
  /// on-the-fly (only the WarpSelect family can do this — paper §2.2).
  bool on_the_fly = false;
  /// Independent problems executed in one launch set (the paper benchmarks
  /// batch = 100 throughout §5).  The serving layer's batch planner passes
  /// the micro-batch size it assembled; many-row micro-batches route to the
  /// fused row-wise family via the batch-aware cost estimate below.
  std::size_t batch = 1;
  /// Planned shard count for queries split across a device pool by
  /// topk::shard (0/1 = unsharded).  When > 1 the recommendation is made at
  /// the per-shard row length ceil(n / shards) — the shape each device
  /// actually selects over — and k must fit inside one shard.
  std::size_t shards = 0;
  /// Minimum acceptable recall, in (0, 1].  1.0 (the default) demands an
  /// exact result and can never route to the approximate tier; anything
  /// below enters Algo::kBucketApprox into the cost race against the exact
  /// pick, priced at the (buckets, keep) shape the planner would choose for
  /// this target.  Values outside (0, 1] are rejected with
  /// std::invalid_argument.
  double recall_target = 1.0;
  /// Key element type of the workload.  Candidates whose registry row does
  /// not declare this dtype are filtered out of the recommendation race.
  KeyType dtype = KeyType::kF32;
};

/// First-order modeled cost (microseconds) of running `algo` on one
/// (batch, n, k) micro-batch, from the default A100-class DeviceSpec
/// constants: per-launch overhead, one memory-bound input sweep, and a
/// lane-op term scaled by how many warps the algorithm can actually spawn.
/// Deliberately coarse — it only needs to rank choices whose costs differ
/// structurally: host-serial per-row pipelines (RadixSelect's run loop)
/// scale their launch count with batch and lose to any fused launch as
/// soon as rows dominate; one-warp-per-row fused scans beat
/// warps-per-row + merge structures at small n, and vice versa at mid n.
/// `recall_target` only affects Algo::kBucketApprox, whose launch count and
/// candidate volume depend on the (buckets, keep) shape the planner would
/// pick for that target; every exact algorithm ignores it.
[[nodiscard]] double estimated_batch_cost_us(Algo algo, std::size_t batch,
                                             std::size_t n, std::size_t k,
                                             double recall_target = 1.0);

/// The paper's §5.1 usage guidelines as an API, extended for the serving
/// tier's many-row micro-batches:
///  1) on-the-fly processing -> GridSelect;
///  2) many rows (batch >= 64) with queue-compatible k -> the cheapest of
///     {fused row-wise (warp/row), fused row-wise (block/row), GridSelect,
///     AIR Top-K, RadixSelect} under estimated_batch_cost_us (RadixSelect's
///     host-serial row loop prices it out here — that is the point);
///  3) large N with small K (< 256) -> GridSelect (the measured winner);
///  4) everything else -> AIR Top-K.
/// Throws if the hints are unsatisfiable (on-the-fly with k > 2048).
[[nodiscard]] Algo recommend_algorithm(std::size_t n, std::size_t k,
                                       const WorkloadHints& hints = {});

/// Resolve Algo::kAuto into a concrete algorithm via recommend_algorithm
/// (identity for every other value).  select()/select_batch()/select_device()
/// call this, so kAuto is usable anywhere a concrete Algo is.
[[nodiscard]] Algo resolve_algo(Algo algo, std::size_t n, std::size_t k,
                                std::size_t batch = 1,
                                double recall_target = 1.0,
                                KeyType dtype = KeyType::kF32);

/// Result of one top-K problem: the k smallest values and their indices in
/// the input list.  Order within the result set is unspecified.
///
/// For non-f32 key types the typed entry points fill the extra fields:
/// `values` always holds a float rendering of each selected key (exact for
/// f16/bf16; a lossy convenience cast for i32/u32 beyond 2^24), and
/// `values_bits` holds the authoritative raw storage bits — the 16-bit
/// f16/bf16 pattern zero-extended, or the 32-bit two's-complement / unsigned
/// pattern for i32/u32.  Empty for plain f32 selects.  `payload` holds the
/// gathered per-key payload (u32 widened to u64) when one was supplied.
struct SelectResult {
  std::vector<float> values;
  std::vector<std::uint32_t> indices;
  KeyType dtype = KeyType::kF32;
  std::vector<std::uint32_t> values_bits;
  std::vector<std::uint64_t> payload;
};

/// Reorder a result best-first in place: ascending values for smallest-K,
/// descending for largest-K, with values and indices permuted together.
/// `order_scratch` holds the permutation and is resized to k on every call;
/// batched post-passes hoist one scratch vector outside the row loop so the
/// sort allocates nothing per row once warm.  Shared by select()'s sorted
/// option and the serving layer's per-query post-pass.
void sort_result_best_first(SelectResult& r, bool greatest,
                            std::vector<std::uint32_t>& order_scratch);

/// Extra knobs forwarded to the algorithms.
struct SelectOptions {
  int alpha = 128;                ///< AIR adaptive threshold (paper §5: 128)
  bool greatest = false;          ///< select largest instead of smallest
  bool sorted = false;            ///< order results best-first
  /// Recall the approximate tier (Algo::kBucketApprox) sizes its bucket
  /// shape for; must be in (0, 1].  At the default 1.0 the tier keeps k
  /// candidates per bucket and is provably exact, so every exact-contract
  /// harness covers it unchanged.  Exact algorithms ignore this knob.
  double recall_target = 1.0;
  /// Key element type the plan executes.  The typed select() overloads set
  /// this from the KeyView; direct plan_select callers set it themselves.
  /// The algorithm's registry row must declare the dtype or plan_select
  /// throws.  i32/u32 plans run on the u32 carrier — use the uint32
  /// run_select overload.
  KeyType dtype = KeyType::kF32;
};

/// Run one top-K selection on the simulated device.  `data` is copied to the
/// device outside the recorded event stream (the paper's timed region also
/// starts with the data resident on the GPU).
SelectResult select(simgpu::Device& dev, std::span<const float> data,
                    std::size_t k, Algo algo, const SelectOptions& opt = {});

/// Batched selection: `data` holds `batch` problems of `n` contiguous
/// elements; returns one result per problem.
std::vector<SelectResult> select_batch(simgpu::Device& dev,
                                       std::span<const float> data,
                                       std::size_t batch, std::size_t n,
                                       std::size_t k, Algo algo,
                                       const SelectOptions& opt = {});

/// Typed key-value selection: keys of any KeyType, with an optional payload
/// gathered alongside the winners (see SelectResult).  opt.dtype is taken
/// from the KeyView.  The payload, when present, must cover every key
/// (payload.size == keys.size).
SelectResult select(simgpu::Device& dev, KeyView keys, std::size_t k,
                    Algo algo, const SelectOptions& opt = {},
                    PayloadView payload = {});

/// Typed batched key-value selection; keys.size must equal batch*n and the
/// payload (when present) covers all batch*n entries.  Indices (and payload
/// gathers) are row-local, as in the float overload.
std::vector<SelectResult> select_batch(simgpu::Device& dev, KeyView keys,
                                       std::size_t batch, std::size_t n,
                                       std::size_t k, Algo algo,
                                       const SelectOptions& opt = {},
                                       PayloadView payload = {});

struct PlanImpl;  // registry internals (topk/registry.hpp)

/// Cacheable handle to a planned selection: the resolved algorithm, shape,
/// and the workspace layout run_select() binds.  Produced by plan_select();
/// copies are cheap (one shared_ptr) and the underlying plan is immutable,
/// so one plan can serve concurrent workers and repeated runs.  A default-
/// constructed handle is invalid (valid() == false) and run_select() rejects
/// it.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
  [[nodiscard]] Algo algo() const;      ///< concrete (never kAuto)
  [[nodiscard]] std::size_t batch() const;
  [[nodiscard]] std::size_t n() const;
  [[nodiscard]] std::size_t k() const;
  [[nodiscard]] bool greatest() const;
  [[nodiscard]] KeyType dtype() const;
  /// True when the plan executes on the u32 carrier (i32/u32 keys); such
  /// plans run through the uint32 run_select overload.
  [[nodiscard]] bool u32_carrier() const;
  /// Named workspace segments (sizes/alignments) this plan's run binds.
  [[nodiscard]] const simgpu::WorkspaceLayout& layout() const;
  /// Scratch bytes one bound workspace slab needs for this plan.
  [[nodiscard]] std::size_t workspace_bytes() const;
  /// The nominal kernel sequence the plan function recorded against the
  /// layout: every launch with its grid and operand-to-segment binds, plus
  /// host transfer/compute steps.  Consumed by the static plan auditor
  /// (src/verify); run_select never reads it.
  [[nodiscard]] const simgpu::KernelSchedule& schedule() const;

 private:
  friend ExecutionPlan plan_select(const simgpu::DeviceSpec&, std::size_t,
                                   std::size_t, std::size_t, Algo,
                                   const SelectOptions&);
  friend void run_select(simgpu::Device&, const ExecutionPlan&,
                         simgpu::Workspace&, simgpu::DeviceBuffer<float>,
                         simgpu::DeviceBuffer<float>,
                         simgpu::DeviceBuffer<std::uint32_t>);
  friend void run_select(simgpu::Device&, const ExecutionPlan&,
                         simgpu::Workspace&,
                         simgpu::DeviceBuffer<std::uint32_t>,
                         simgpu::DeviceBuffer<std::uint32_t>,
                         simgpu::DeviceBuffer<std::uint32_t>);

  explicit ExecutionPlan(std::shared_ptr<const PlanImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<const PlanImpl> impl_;
};

/// Phase 1 of the two-phase execution contract: validate the problem, pick
/// the concrete algorithm (kAuto resolves via recommend_algorithm), and
/// precompute everything the run needs — kernel schedule, grids, interned
/// kernel names, and the named workspace segments.  Pure function of
/// (spec, shape, algo, opt): no Device needed, safe to cache and share.
/// Largest-K on an algorithm without a native descending order plans an
/// extra "negated input" segment; run_select applies the negation wrap.
[[nodiscard]] ExecutionPlan plan_select(const simgpu::DeviceSpec& spec,
                                        std::size_t batch, std::size_t n,
                                        std::size_t k, Algo algo,
                                        const SelectOptions& opt = {});

/// Phase 2: bind the plan's layout into `ws` (pooled; a warm workspace whose
/// slab already fits re-binds without touching the pool) and execute.  This
/// path performs zero allocations — device or host — once `ws` is warm;
/// bench_substrate gates its steady-state alloc counter at exactly 0 on it.
/// `in` holds batch*n keys resident on the device; results land unordered
/// in out_vals/out_idx (batch*k each).
void run_select(simgpu::Device& dev, const ExecutionPlan& plan,
                simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                simgpu::DeviceBuffer<float> out_vals,
                simgpu::DeviceBuffer<std::uint32_t> out_idx);

/// u32-carrier run: same contract as the float overload, for plans built
/// with an integer dtype (i32/u32 keys encoded to radix ordinals).  Largest-K
/// on a non-native-greatest algorithm wraps via bitwise complement of the
/// ordinals instead of float negation.
void run_select(simgpu::Device& dev, const ExecutionPlan& plan,
                simgpu::Workspace& ws,
                simgpu::DeviceBuffer<std::uint32_t> in,
                simgpu::DeviceBuffer<std::uint32_t> out_vals,
                simgpu::DeviceBuffer<std::uint32_t> out_idx);

/// Device-side entry point used by the benches: input already resident on
/// the device, outputs written to device buffers, events recorded on `dev`.
/// One-shot wrapper over plan_select + run_select with a local workspace
/// (steady-state callers should cache the plan and reuse a Workspace).
void select_device(simgpu::Device& dev, simgpu::DeviceBuffer<float> in,
                   std::size_t batch, std::size_t n, std::size_t k,
                   simgpu::DeviceBuffer<float> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx, Algo algo,
                   const SelectOptions& opt = {});

/// True when the TOPK_SIMCHECK environment variable requests the simcheck
/// sanitizer (set and neither empty nor "0"); read per call so tests can
/// toggle it.  When it is set, select()/select_batch() attach a sanitizer to
/// the Device (if none is attached yet) and abort with std::runtime_error on
/// any issue the selection raises.
[[nodiscard]] bool simcheck_env_enabled();

/// Throw std::runtime_error formatting every sanitizer issue recorded after
/// `issues_before` (the simcheck abort used by select/select_batch, exposed
/// so the abort path is directly testable).
void throw_if_new_issues(const simgpu::Sanitizer& san,
                         std::size_t issues_before, Algo algo);

/// Reference result via std::nth_element (for verification).
SelectResult reference_select(std::span<const float> data, std::size_t k);

/// Check that `result` is a correct top-k answer for `data`: indices valid
/// and distinct, values match data[index], and the value multiset equals the
/// reference top-k multiset.  Returns an empty string on success, otherwise
/// a description of the first violation.
std::string verify_topk(std::span<const float> data, std::size_t k,
                        const SelectResult& result);

}  // namespace topk
