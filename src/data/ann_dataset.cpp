#include "data/ann_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace topk::data {

namespace {

void fill_deep_row(std::mt19937_64& rng, float* row, std::size_t dim) {
  std::normal_distribution<float> dist(0.0f, 1.0f);
  double norm_sq = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    row[d] = dist(rng);
    norm_sq += static_cast<double>(row[d]) * row[d];
  }
  const auto inv = static_cast<float>(1.0 / std::sqrt(std::max(norm_sq, 1e-12)));
  for (std::size_t d = 0; d < dim; ++d) row[d] *= inv;
}

void fill_sift_row(std::mt19937_64& rng, float* row, std::size_t dim) {
  // SIFT descriptors are gradient-orientation histograms: non-negative,
  // heavy-tailed, clipped.  |N(0, 60)| clipped to [0, 218] reproduces the
  // classic uint8 profile closely enough for distance-array statistics.
  std::normal_distribution<float> dist(0.0f, 60.0f);
  for (std::size_t d = 0; d < dim; ++d) {
    row[d] = std::min(std::abs(dist(rng)), 218.0f);
  }
}

}  // namespace

AnnDataset make_deep_like(std::size_t count, std::uint64_t seed,
                          std::size_t dim) {
  AnnDataset ds;
  ds.name = "DEEP-like";
  ds.dim = dim;
  ds.count = count;
  ds.vectors.resize(count * dim);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    fill_deep_row(rng, ds.vectors.data() + i * dim, dim);
  }
  return ds;
}

AnnDataset make_sift_like(std::size_t count, std::uint64_t seed,
                          std::size_t dim) {
  AnnDataset ds;
  ds.name = "SIFT-like";
  ds.dim = dim;
  ds.count = count;
  ds.vectors.resize(count * dim);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    fill_sift_row(rng, ds.vectors.data() + i * dim, dim);
  }
  return ds;
}

std::vector<float> l2_distances(const AnnDataset& dataset, const float* query,
                                std::size_t n) {
  if (n > dataset.count) {
    throw std::invalid_argument("l2_distances: n exceeds dataset size");
  }
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = dataset.vector(i);
    double acc = 0.0;
    for (std::size_t d = 0; d < dataset.dim; ++d) {
      const double diff = static_cast<double>(row[d]) - query[d];
      acc += diff * diff;
    }
    out[i] = static_cast<float>(acc);
  }
  return out;
}

std::vector<float> make_queries(const AnnDataset& dataset, std::size_t count,
                                std::uint64_t seed) {
  std::vector<float> out(count * dataset.dim);
  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  for (std::size_t i = 0; i < count; ++i) {
    float* row = out.data() + i * dataset.dim;
    if (dataset.name == "SIFT-like") {
      fill_sift_row(rng, row, dataset.dim);
    } else {
      fill_deep_row(rng, row, dataset.dim);
    }
  }
  return out;
}

}  // namespace topk::data
