#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace topk::data {

/// A synthetic stand-in for the ANN benchmark datasets used in the paper's
/// Fig. 13 (DEEP1B and SIFT).  We cannot ship the real datasets, so we
/// generate vector sets with matched dimensionality and first-order
/// statistics; what the top-K algorithms consume is the *distance array*
/// between a query and the candidates, and those arrays have the same
/// qualitative shape (narrow, positively skewed value ranges) as the real
/// ones.  See DESIGN.md for the substitution rationale.
struct AnnDataset {
  std::string name;
  std::size_t dim = 0;
  std::size_t count = 0;
  /// Row-major `count x dim` vectors.
  std::vector<float> vectors;

  [[nodiscard]] const float* vector(std::size_t i) const {
    return vectors.data() + i * dim;
  }
};

/// DEEP1B-like: 96-dimensional CNN descriptors, L2-normalized Gaussian.
AnnDataset make_deep_like(std::size_t count, std::uint64_t seed,
                          std::size_t dim = 96);

/// SIFT-like: 128-dimensional non-negative local descriptors with the
/// heavy-tailed, clipped-magnitude profile of SIFT histograms (values in
/// [0, 218] like the classic uint8-quantized descriptors).
AnnDataset make_sift_like(std::size_t count, std::uint64_t seed,
                          std::size_t dim = 128);

/// Squared L2 distances between `query` (length dataset.dim) and the first
/// `n` dataset vectors — the input array the top-K step of an ANN search
/// consumes.
std::vector<float> l2_distances(const AnnDataset& dataset, const float* query,
                                std::size_t n);

/// Generate `count` query vectors with the same distribution as the dataset.
std::vector<float> make_queries(const AnnDataset& dataset, std::size_t count,
                                std::uint64_t seed);

}  // namespace topk::data
