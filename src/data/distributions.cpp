#include "data/distributions.hpp"

#include <bit>
#include <random>
#include <stdexcept>

namespace topk::data {

std::string DistributionSpec::name() const {
  switch (kind) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kNormal:
      return "normal";
    case Distribution::kAdversarial:
      return "adversarial(M=" + std::to_string(adversarial_m) + ")";
  }
  return "unknown";
}

std::vector<float> uniform_values(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // (0, 1]: the paper's uniform range excludes zero.
  std::uniform_real_distribution<float> dist(
      std::nextafter(0.0f, 1.0f), 1.0f);
  std::vector<float> out(count);
  for (float& v : out) v = dist(rng);
  return out;
}

std::vector<float> normal_values(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<float> out(count);
  for (float& v : out) v = dist(rng);
  return out;
}

std::vector<float> radix_adversarial_values(std::size_t count, int m,
                                            std::uint64_t seed) {
  if (m < 1 || m > 31) {
    throw std::invalid_argument("adversarial M must be in [1, 31]");
  }
  std::mt19937_64 rng(seed);
  // Base pattern 1.0f = 0x3F800000: sign 0, exponent 0x7F.  Keeping the top
  // m bits fixed and randomizing the rest yields floats in a narrow range
  // just above 1.0 whose first m bits are identical.
  const std::uint32_t base = 0x3F800000u;
  const std::uint32_t low_mask = (m >= 32) ? 0u : (0xFFFFFFFFu >> m);
  std::uniform_int_distribution<std::uint32_t> dist(0u, 0xFFFFFFFFu);
  std::vector<float> out(count);
  for (float& v : out) {
    const std::uint32_t bits = (base & ~low_mask) | (dist(rng) & low_mask);
    v = std::bit_cast<float>(bits);
  }
  return out;
}

std::vector<float> generate(const DistributionSpec& spec, std::size_t count,
                            std::uint64_t seed) {
  switch (spec.kind) {
    case Distribution::kUniform:
      return uniform_values(count, seed);
    case Distribution::kNormal:
      return normal_values(count, seed);
    case Distribution::kAdversarial:
      return radix_adversarial_values(count, spec.adversarial_m, seed);
  }
  throw std::invalid_argument("unknown distribution");
}

std::vector<std::uint32_t> uniform_u32(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist;
  std::vector<std::uint32_t> out(count);
  for (auto& v : out) v = dist(rng);
  return out;
}

}  // namespace topk::data
