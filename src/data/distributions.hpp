#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace topk::data {

/// The three synthetic input distributions of the paper's benchmark (§5.1):
///  - kUniform:     uniform in (0, 1]
///  - kNormal:      normal with mean 0, standard deviation 1
///  - kAdversarial: "radix-adversarial" — the first M bits of every
///    element's IEEE-754 representation are identical (e.g. floats in
///    [1.0, 1.00049] share their first 20 bits), so early radix passes
///    cannot discard any candidate.
enum class Distribution { kUniform, kNormal, kAdversarial };

struct DistributionSpec {
  Distribution kind = Distribution::kUniform;
  /// For kAdversarial: number of identical leading bits M (paper uses
  /// M = 20 for the main benchmark, M in {10, 20} for Fig. 9).
  int adversarial_m = 20;

  [[nodiscard]] std::string name() const;
};

/// Generate `count` values of the given distribution.  Deterministic in
/// `seed`.
std::vector<float> generate(const DistributionSpec& spec, std::size_t count,
                            std::uint64_t seed);

std::vector<float> uniform_values(std::size_t count, std::uint64_t seed);
std::vector<float> normal_values(std::size_t count, std::uint64_t seed);

/// Floats whose first `m` bits (sign + leading exponent/mantissa bits) are
/// all identical; the remaining low bits are uniformly random.
std::vector<float> radix_adversarial_values(std::size_t count, int m,
                                            std::uint64_t seed);

/// Uniformly random 32-bit unsigned keys (used by integer-key tests).
std::vector<std::uint32_t> uniform_u32(std::size_t count, std::uint64_t seed);

}  // namespace topk::data
