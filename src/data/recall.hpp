#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace topk::data {

/// Recall@k between an approximate result and the exact top-k, compared as
/// value multisets: |approx ∩ exact| / k with duplicate values matched
/// one-for-one.  Value-level (not index-level) on purpose — the library's
/// exactness contract (verify_topk, the invariance tests) already treats
/// index choice between equal keys as open, and an approximate tier that
/// returns a different witness for a tied value has lost nothing the exact
/// tier promised.
///
/// Both spans must hold exactly the k values each side selected; `exact`
/// is the ground truth (e.g. std::partial_sort of the row).  Neither needs
/// to be sorted.
inline double recall_at_k(std::span<const float> approx,
                          std::span<const float> exact) {
  if (exact.empty()) {
    throw std::invalid_argument("recall_at_k: exact reference is empty");
  }
  if (approx.size() != exact.size()) {
    throw std::invalid_argument(
        "recall_at_k: approx and exact result sizes differ");
  }
  std::vector<float> a(approx.begin(), approx.end());
  std::vector<float> e(exact.begin(), exact.end());
  std::sort(a.begin(), a.end());
  std::sort(e.begin(), e.end());
  std::vector<float> both;
  both.reserve(e.size());
  std::set_intersection(a.begin(), a.end(), e.begin(), e.end(),
                        std::back_inserter(both));
  return static_cast<double>(both.size()) / static_cast<double>(e.size());
}

/// Exact top-k reference for recall measurement: the k smallest (or largest)
/// values of `row`, sorted best-first.
inline std::vector<float> exact_topk_values(std::span<const float> row,
                                            std::size_t k,
                                            bool greatest = false) {
  if (k > row.size()) {
    throw std::invalid_argument("exact_topk_values: k exceeds row length");
  }
  std::vector<float> v(row.begin(), row.end());
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(k);
  if (greatest) {
    std::partial_sort(v.begin(), mid, v.end(), std::greater<float>());
  } else {
    std::partial_sort(v.begin(), mid, v.end());
  }
  v.resize(k);
  return v;
}

}  // namespace topk::data
