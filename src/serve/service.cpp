#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "shard/shard.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/key_codec.hpp"

namespace topk::serve {

namespace {

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// A request executes with its bucket's padded k; cut the padded result back
/// down to the request's own k.  The k best of the bucket's k_exec best are
/// exactly the k best of the whole row, so trimming preserves correctness.
SelectResult trim_result(SelectResult&& r, std::size_t k, bool greatest,
                         bool sorted) {
  if (r.values.size() <= k) return std::move(r);
  if (sorted) {
    // Already ordered best-first by select_batch; the prefix is the answer.
    r.values.resize(k);
    r.indices.resize(k);
    return std::move(r);
  }
  std::vector<std::uint32_t> order(r.values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k) - 1,
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     return greatest ? r.values[a] > r.values[b]
                                     : r.values[a] < r.values[b];
                   });
  SelectResult out;
  out.values.reserve(k);
  out.indices.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.values.push_back(r.values[order[i]]);
    out.indices.push_back(r.indices[order[i]]);
  }
  return out;
}

double percentile(const std::vector<double>& sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_samples.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_samples[std::min(idx, sorted_samples.size() - 1)];
}

/// Latency sample cap: enough for any realistic soak/bench run while
/// bounding service memory under sustained traffic.
constexpr std::size_t kMaxLatencySamples = std::size_t{1} << 20;

}  // namespace

const char* query_status_name(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kTimedOut: return "timed-out";
    case QueryStatus::kFailed: return "failed";
  }
  return "unknown";
}

/// One cached micro-batch shape: the algorithm's ExecutionPlan plus the IO
/// layout (input row block and the two output blocks) the worker's io
/// workspace binds for it.  Cached per worker in a std::map, whose node
/// stability keeps the layouts alive for as long as they stay bound.
struct PlanEntry {
  ExecutionPlan plan;
  simgpu::WorkspaceLayout io;
  std::size_t seg_vals = 0;
  std::size_t seg_idx = 0;
};

struct TopkService::Worker {
  simgpu::Device dev;
  /// Algorithm scratch (the plan's layout) — persists across flushes, so a
  /// steady stream of same-shaped batches binds it with zero allocations.
  simgpu::Workspace algo_ws;
  /// Input/output blocks for the assembled micro-batch, same reuse story.
  simgpu::Workspace io_ws;
  /// (n, k_exec, requested algo, rows, recall SLO, dtype) -> planned
  /// execution.
  std::map<std::tuple<std::size_t, std::size_t, Algo, std::size_t, double,
                      KeyType>,
           PlanEntry>
      plans;
  /// Multi-device coordinator for sharded requests, built lazily on the
  /// first one (it owns ServiceConfig::shard_devices simulated devices of
  /// its own); driven only by this worker's thread.  The *_seen cursors
  /// track how much of its cumulative plan-cache traffic has already been
  /// folded into the service counters.
  std::unique_ptr<shard::Coordinator> shard_coord;
  std::size_t shard_plan_hits_seen = 0;
  std::size_t shard_plan_misses_seen = 0;

  explicit Worker(const simgpu::DeviceSpec& spec)
      : dev(spec), algo_ws(dev), io_ws(dev) {}
};

TopkService::TopkService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.num_devices == 0) {
    throw std::invalid_argument("TopkService: num_devices must be > 0");
  }
  if (cfg_.max_batch == 0) {
    throw std::invalid_argument("TopkService: max_batch must be > 0");
  }
  if (cfg_.admission_capacity == 0) {
    throw std::invalid_argument("TopkService: admission_capacity must be > 0");
  }
  worker_counters_.resize(cfg_.num_devices);
  batcher_ = std::thread([this] { batcher_loop(); });
  workers_.reserve(cfg_.num_devices);
  for (std::size_t i = 0; i < cfg_.num_devices; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TopkService::~TopkService() { shutdown(); }

void TopkService::shutdown() {
  {
    std::scoped_lock lock(mu_);
    accepting_ = false;
    stopping_ = true;
  }
  batcher_cv_.notify_all();
  worker_cv_.notify_all();
  // Joins are guarded by joinable(): a second shutdown() (e.g. explicit call
  // followed by the destructor) finds the threads already reaped.  Callers
  // must not race two shutdown() calls from different threads.
  if (batcher_.joinable()) batcher_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<QueryResult> TopkService::submit(
    std::vector<float> keys, std::size_t k,
    std::optional<std::chrono::microseconds> deadline,
    std::optional<Algo> algo, std::optional<WorkloadHints> hints) {
  return submit_carrier(std::move(keys), KeyType::kF32, k, deadline, algo,
                        hints);
}

std::future<QueryResult> TopkService::submit(
    KeyView keys, std::size_t k,
    std::optional<std::chrono::microseconds> deadline,
    std::optional<Algo> algo, std::optional<WorkloadHints> hints) {
  if (key_type_is_integer(keys.dtype)) {
    std::ostringstream err;
    err << "TopkService::submit: dtype " << key_type_name(keys.dtype)
        << " is not supported by the float-carrier serving path";
    throw std::invalid_argument(err.str());
  }
  if (keys.size == 0) {
    throw std::invalid_argument("TopkService::submit: keys must be non-empty");
  }
  // Encode into the carrier row the bucket stages; the worker decodes the
  // executed batch back per request.  For f32 this is a plain copy — the
  // same one std::vector<float>'s move-in submit avoids, which is why the
  // float overload stays the fast path.
  std::vector<float> carrier(keys.size);
  codec::encode_keys_f32(keys, carrier.data());
  return submit_carrier(std::move(carrier), keys.dtype, k, deadline, algo,
                        hints);
}

std::future<QueryResult> TopkService::submit_carrier(
    std::vector<float> keys, KeyType dtype, std::size_t k,
    std::optional<std::chrono::microseconds> deadline,
    std::optional<Algo> algo, std::optional<WorkloadHints> hints) {
  const std::size_t n = keys.size();
  if (n == 0) {
    throw std::invalid_argument("TopkService::submit: keys must be non-empty");
  }
  if (k == 0) {
    throw std::invalid_argument("TopkService::submit: k must be >= 1");
  }
  if (k > n) {
    std::ostringstream err;
    err << "TopkService::submit: k=" << k << " exceeds row length n=" << n;
    throw std::invalid_argument(err.str());
  }

  const double recall_target = hints ? hints->recall_target : 1.0;
  if (!(recall_target > 0.0) || recall_target > 1.0) {
    std::ostringstream err;
    err << "TopkService::submit: recall_target must be in (0, 1], got "
        << recall_target << " (1.0 = exact)";
    throw std::invalid_argument(err.str());
  }

  // Sharded routing: an explicit multi-shard hint, or a row no single
  // device can hold — the shape the coalesced path could never serve.
  const std::size_t shard_hint = hints ? hints->shards : 0;
  const bool sharded =
      shard_hint > 1 || n > cfg_.device_spec.max_select_elems;

  const Clock::time_point now = Clock::now();
  Request req;
  req.k = k;
  req.shard_hint = shard_hint;
  req.submit_time = now;
  if (deadline) req.deadline = now + *deadline;
  std::future<QueryResult> fut = req.promise.get_future();

  BucketKey key;
  key.n = n;
  // Sharded requests never coalesce, so k is executed exactly, unpadded.
  key.k_exec = sharded ? k : std::min(n, std::bit_ceil(k));
  key.algo = algo.value_or(cfg_.default_algo);
  key.dtype = dtype;
  // Sharded requests stay exact: the cross-shard merge assumes each shard
  // returns its true local top-k, so a sub-1.0 SLO only applies to the
  // coalesced single-device path.
  key.recall = sharded ? 1.0 : recall_target;

  std::optional<std::string> reject;
  bool notify_worker = false;
  bool notify_batcher = false;
  {
    std::scoped_lock lock(mu_);
    ++submitted_;
    if (!accepting_) {
      ++rejected_;
      reject = "service is shut down";
    } else if (queued_ >= cfg_.admission_capacity) {
      ++rejected_;
      std::ostringstream err;
      err << "admission queue full (capacity " << cfg_.admission_capacity
          << ")";
      reject = err.str();
    } else if (sharded) {
      ++accepted_;
      ++queued_;
      // Straight to the ready queue as its own single-row batch; the row
      // vector itself becomes the staged buffer (no copy).
      Batch b;
      b.key = key;
      b.staged = std::move(keys);
      b.reqs.push_back(std::move(req));
      b.sharded = true;
      ready_.push_back(std::move(b));
      notify_worker = true;
    } else {
      ++accepted_;
      ++queued_;
      Bucket& b = buckets_[key];
      if (b.reqs.empty()) {
        b.oldest = now;
        b.earliest_due = now + cfg_.max_wait;
        if (!staged_spares_.empty()) {
          b.staged = std::move(staged_spares_.back());
          staged_spares_.pop_back();
          b.staged.clear();  // keeps the (warm) capacity
        }
        b.staged.reserve(cfg_.max_batch * n);
        notify_batcher = true;  // new bucket: the flush timer must arm
      }
      if (req.deadline && *req.deadline < b.earliest_due) {
        b.earliest_due = *req.deadline;
        notify_batcher = true;  // deadline tightened: timer must re-arm
      }
      // Stage the row into the bucket's contiguous buffer here, so the
      // worker can bind the batch input with no gather pass.  The copy is
      // one row (admission-rate work, bounded by n) and runs under mu_;
      // submission is already serialized on the lock either way.
      b.staged.insert(b.staged.end(), keys.begin(), keys.end());
      b.reqs.push_back(std::move(req));
      if (b.reqs.size() >= cfg_.max_batch) {
        ready_.push_back(Batch{key, std::move(b.reqs), std::move(b.staged)});
        buckets_.erase(key);
        notify_worker = true;
        // A filled bucket leaves nothing for the flush timer to track; the
        // batcher re-derives its wait from the surviving buckets on its own.
        notify_batcher = false;
      }
    }
  }
  if (reject) {
    QueryResult qr;
    qr.status = QueryStatus::kRejected;
    qr.error = *reject;
    qr.wall_us = us_between(now, Clock::now());
    req.promise.set_value(std::move(qr));
  }
  if (notify_worker) worker_cv_.notify_one();
  if (notify_batcher) batcher_cv_.notify_one();
  return fut;
}

void TopkService::batcher_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (stopping_) {
      // Graceful drain: everything still bucketed becomes a final wave of
      // (possibly partial) batches for the workers to run.
      for (auto& [key, bucket] : buckets_) {
        ready_.push_back(
            Batch{key, std::move(bucket.reqs), std::move(bucket.staged)});
      }
      buckets_.clear();
      batcher_done_ = true;
      lock.unlock();
      worker_cv_.notify_all();
      return;
    }
    if (buckets_.empty()) {
      batcher_cv_.wait(lock, [&] { return stopping_ || !buckets_.empty(); });
      continue;
    }
    Clock::time_point due = buckets_.begin()->second.earliest_due;
    for (const auto& [key, bucket] : buckets_) {
      due = std::min(due, bucket.earliest_due);
    }
    const Clock::time_point now = Clock::now();
    if (now >= due) {
      bool flushed = false;
      for (auto it = buckets_.begin(); it != buckets_.end();) {
        if (now >= it->second.earliest_due) {
          ready_.push_back(Batch{it->first, std::move(it->second.reqs),
                                 std::move(it->second.staged)});
          it = buckets_.erase(it);
          flushed = true;
        } else {
          ++it;
        }
      }
      if (flushed) worker_cv_.notify_all();
      continue;
    }
    batcher_cv_.wait_until(lock, due);
  }
}

void TopkService::worker_loop(std::size_t worker_id) {
  // The Device is created and driven entirely by this thread, honoring the
  // substrate's single-driver contract; execute_batch attaches the simcheck
  // sanitizer to it when TOPK_SIMCHECK requests one.  The plan cache and
  // pooled workspaces in the Worker live for the thread's whole life, which
  // is what makes repeat shapes zero-allocation.
  Worker w(cfg_.device_spec);
  for (;;) {
    Batch batch;
    {
      std::unique_lock lock(mu_);
      worker_cv_.wait(lock, [&] {
        return !ready_.empty() || (stopping_ && batcher_done_);
      });
      if (ready_.empty()) return;  // stopped and fully drained
      batch = std::move(ready_.front());
      ready_.pop_front();
      queued_ -= batch.reqs.size();
    }
    if (batch.sharded) {
      execute_sharded(w, worker_id, std::move(batch));
    } else {
      execute_batch(w, worker_id, std::move(batch));
    }
  }
}

void TopkService::execute_sharded(Worker& w, std::size_t /*worker_id*/,
                                  Batch batch) {
  const Clock::time_point dispatch = Clock::now();
  Request req = std::move(batch.reqs.front());
  QueryResult qr;
  const bool expired = req.deadline && *req.deadline <= dispatch;
  if (expired) {
    qr.status = QueryStatus::kTimedOut;
    qr.error = "deadline expired before dispatch";
    qr.wall_us = us_between(req.submit_time, dispatch);
  } else {
    if (w.shard_coord == nullptr) {
      shard::ShardConfig scfg;
      scfg.devices = cfg_.shard_devices;
      scfg.device_spec = cfg_.device_spec;
      scfg.options.greatest = cfg_.greatest;
      scfg.options.sorted = cfg_.sorted_results;
      w.shard_coord = std::make_unique<shard::Coordinator>(scfg);
    }
    try {
      shard::ShardedResult res = w.shard_coord->select(
          std::span<const float>(batch.staged), batch.key.k_exec,
          req.shard_hint, batch.key.algo);
      // The staged row is carrier-encoded (exact for f16/bf16 ordinals);
      // decode the merged winners back to the request's dtype.
      codec::decode_result_f32(batch.key.dtype, res.topk);
      qr.status = QueryStatus::kOk;
      qr.topk = std::move(res.topk);
      qr.algo = res.shard_algo;
      qr.batch_rows = 1;
      qr.shards = res.shards;
      qr.device_us = res.timing.total_us;
    } catch (const std::exception& e) {
      qr.status = QueryStatus::kFailed;
      qr.error = e.what();
    }
    qr.wall_us = us_between(req.submit_time, Clock::now());
  }

  {
    std::scoped_lock lock(mu_);
    if (expired) {
      ++timed_out_;
    } else if (qr.status == QueryStatus::kOk) {
      ++completed_;
      ++batches_;
      ++batch_rows_histogram_[1];
      modeled_device_us_ += qr.device_us;
      ++sharded_queries_;
      sharded_device_us_ += qr.device_us;
      if (latency_us_.size() < kMaxLatencySamples) {
        latency_us_.push_back(qr.wall_us);
      }
    } else {
      failed_ += 1;
    }
    // Fold the coordinator's cumulative plan-cache traffic into the service
    // counters (delta since the last fold), success or not.
    if (w.shard_coord != nullptr) {
      plan_cache_hits_ +=
          w.shard_coord->plan_cache_hits() - w.shard_plan_hits_seen;
      plan_cache_misses_ +=
          w.shard_coord->plan_cache_misses() - w.shard_plan_misses_seen;
      w.shard_plan_hits_seen = w.shard_coord->plan_cache_hits();
      w.shard_plan_misses_seen = w.shard_coord->plan_cache_misses();
    }
  }
  req.promise.set_value(std::move(qr));
}

void TopkService::execute_batch(Worker& w, std::size_t worker_id,
                                Batch batch) {
  simgpu::Device& dev = w.dev;
  const Clock::time_point dispatch = Clock::now();
  std::vector<Request> live;
  std::vector<Request> expired;
  live.reserve(batch.reqs.size());
  // Staged rows are positional: dropping an expired request compacts the
  // survivors' rows down so live[i]'s keys stay at staged[i * n].
  for (std::size_t i = 0; i < batch.reqs.size(); ++i) {
    Request& r = batch.reqs[i];
    if (r.deadline && *r.deadline <= dispatch) {
      expired.push_back(std::move(r));
    } else {
      if (live.size() != i) {
        std::memmove(batch.staged.data() + live.size() * batch.key.n,
                     batch.staged.data() + i * batch.key.n,
                     batch.key.n * sizeof(float));
      }
      live.push_back(std::move(r));
    }
  }

  const std::size_t n = batch.key.n;
  const std::size_t k_exec = batch.key.k_exec;
  const std::size_t rows = live.size();
  std::vector<SelectResult> results;
  Algo planned = batch.key.algo;
  double model_us = 0.0;
  std::string fail;
  bool plan_cache_hit = false;
  bool plan_looked_up = false;
  if (!live.empty()) {
    try {
      planned = resolve_algo(batch.key.algo, n, k_exec, rows, batch.key.recall,
                             batch.key.dtype);
      if (k_exec > max_k(planned, n)) {
        std::ostringstream err;
        err << "plan " << algo_name(planned) << " cannot serve k=" << k_exec
            << " at n=" << n << " (max " << max_k(planned, n) << ")";
        throw std::invalid_argument(err.str());
      }
      SelectOptions opt;
      opt.greatest = cfg_.greatest;
      opt.sorted = cfg_.sorted_results;
      opt.recall_target = batch.key.recall;
      opt.dtype = batch.key.dtype;

      // Plans are keyed on the micro-batch bucket (row length, padded k,
      // requested algorithm, recall SLO, dtype) plus the assembled row
      // count; a repeat shape reuses the cached ExecutionPlan and both
      // pooled workspaces. Recall is part of the key so a 0.9-SLO plan
      // (smaller per-bucket keep) can never be replayed for an exact
      // request; dtype so an f16-ordinal plan never serves raw f32 rows.
      const auto key = std::make_tuple(n, k_exec, batch.key.algo, rows,
                                       batch.key.recall, batch.key.dtype);
      plan_looked_up = true;
      auto it = w.plans.find(key);
      plan_cache_hit = it != w.plans.end();
      if (!plan_cache_hit) {
        PlanEntry e;
        e.plan = plan_select(dev.spec(), rows, n, k_exec, planned, opt);
        e.seg_vals = e.io.add<float>("serve output vals", rows * k_exec);
        e.seg_idx = e.io.add<std::uint32_t>("serve output idx", rows * k_exec);
        it = w.plans.emplace(key, std::move(e)).first;
      }
      const PlanEntry& entry = it->second;

      // Same sanitizer contract as select_batch: enable on request before
      // the IO segments bind so they are known to the shadow, and abort on
      // any issue this batch raises (earlier findings keep the device
      // serving).
      if (simcheck_env_enabled() && dev.sanitizer() == nullptr) {
        dev.enable_sanitizer();
      }
      simgpu::Sanitizer* const san = dev.sanitizer();
      const std::size_t issues_before =
          san != nullptr ? san->issue_count() : 0;

      w.io_ws.bind(entry.io);
      // The batch input IS the bucket's staged buffer: rows were laid out
      // contiguously at submit time, so the device binds them in place —
      // no per-row gather copy on the execution critical path.
      simgpu::DeviceBuffer<float> in(batch.staged.data(), rows * n);
      if (san != nullptr) {
        // Introduce the externally owned staging storage to the shadow and
        // mark it initialized, exactly as an upload into a fresh device
        // allocation would be.
        dev.register_region(in.data(), rows * n, sizeof(float),
                            "serve staged input");
        san->mark_initialized(in.data(), rows * n * sizeof(float));
      }
      simgpu::DeviceBuffer<float> out_vals =
          w.io_ws.get<float>(entry.seg_vals);
      simgpu::DeviceBuffer<std::uint32_t> out_idx =
          w.io_ws.get<std::uint32_t>(entry.seg_idx);

      dev.clear_events();
      run_select(dev, entry.plan, w.algo_ws, in, out_vals, out_idx);
      if (san != nullptr) {
        throw_if_new_issues(*san, issues_before, planned);
      }
      model_us = simgpu::CostModel(dev.spec()).total_us(dev.events());

      results.resize(rows);
      std::vector<std::uint32_t> order;  // permutation scratch, shared by rows
      for (std::size_t b = 0; b < rows; ++b) {
        SelectResult& r = results[b];
        r.values.assign(out_vals.data() + b * k_exec,
                        out_vals.data() + (b + 1) * k_exec);
        r.indices.assign(out_idx.data() + b * k_exec,
                         out_idx.data() + (b + 1) * k_exec);
        if (opt.sorted) sort_result_best_first(r, opt.greatest, order);
      }
    } catch (const std::exception& e) {
      fail = e.what();
    }
  }

  // Build every outcome first, fold it into the counters, and only then
  // resolve the promises: a caller observing a resolved future must see
  // counters that already account for it.
  std::vector<QueryResult> outcomes;
  outcomes.reserve(batch.reqs.size());
  for (Request& r : expired) {
    QueryResult qr;
    qr.status = QueryStatus::kTimedOut;
    qr.error = "deadline expired before dispatch";
    qr.wall_us = us_between(r.submit_time, dispatch);
    outcomes.push_back(std::move(qr));
  }
  const double device_share =
      live.empty() ? 0.0 : model_us / static_cast<double>(live.size());
  const Clock::time_point resolved = Clock::now();
  for (std::size_t i = 0; i < live.size(); ++i) {
    Request& r = live[i];
    QueryResult qr;
    if (!fail.empty()) {
      qr.status = QueryStatus::kFailed;
      qr.error = fail;
    } else {
      qr.status = QueryStatus::kOk;
      qr.algo = planned;
      qr.batch_rows = live.size();
      qr.device_us = device_share;
      qr.topk = trim_result(std::move(results[i]), r.k, cfg_.greatest,
                            cfg_.sorted_results);
      // Trim compares carrier values (carrier order equals key order, so
      // the cut is exact for f16/bf16); decode only the surviving k.
      codec::decode_result_f32(batch.key.dtype, qr.topk);
    }
    qr.wall_us = us_between(r.submit_time, resolved);
    outcomes.push_back(std::move(qr));
  }

  {
    std::scoped_lock lock(mu_);
    // Retire the staging buffer into the spare pool (bounded) so the next
    // bucket starts on warm pages.  The batch input wrap died with
    // run_select above; nothing references this storage anymore.
    if (batch.staged.capacity() > 0 &&
        staged_spares_.size() <= workers_.size()) {
      staged_spares_.push_back(std::move(batch.staged));
    }
    timed_out_ += expired.size();
    if (plan_looked_up) {
      if (plan_cache_hit) {
        ++plan_cache_hits_;
      } else {
        ++plan_cache_misses_;
      }
    }
    // Publish this worker's cumulative pool/alloc counters; stats() sums
    // the per-worker snapshots.
    WorkerCounters& wc = worker_counters_[worker_id];
    const simgpu::MemoryPool::Stats ps = dev.memory_pool().stats();
    wc.pool_hits = ps.hits;
    wc.pool_misses = ps.misses;
    wc.pool_high_water = ps.high_water;
    wc.device_allocs = dev.alloc_calls();
    if (!live.empty()) {
      if (!fail.empty()) {
        failed_ += live.size();
      } else {
        completed_ += live.size();
        if (planned == Algo::kBucketApprox) approx_queries_ += live.size();
        ++batches_;
        ++batch_rows_histogram_[live.size()];
        modeled_device_us_ += model_us;
        for (const QueryResult& qr : outcomes) {
          if (qr.status == QueryStatus::kOk &&
              latency_us_.size() < kMaxLatencySamples) {
            latency_us_.push_back(qr.wall_us);
          }
        }
      }
    }
  }

  std::size_t next = 0;
  for (Request& r : expired) r.promise.set_value(std::move(outcomes[next++]));
  for (Request& r : live) r.promise.set_value(std::move(outcomes[next++]));
}

ServiceStats TopkService::stats() const {
  ServiceStats s;
  std::vector<double> samples;
  {
    std::scoped_lock lock(mu_);
    s.submitted = submitted_;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.timed_out = timed_out_;
    s.completed = completed_;
    s.failed = failed_;
    s.batches = batches_;
    s.modeled_device_us = modeled_device_us_;
    s.batch_rows_histogram = batch_rows_histogram_;
    s.plan_cache_hits = plan_cache_hits_;
    s.plan_cache_misses = plan_cache_misses_;
    s.sharded_queries = sharded_queries_;
    s.sharded_device_us = sharded_device_us_;
    s.approx_queries = approx_queries_;
    for (const WorkerCounters& wc : worker_counters_) {
      s.pool_hits += wc.pool_hits;
      s.pool_misses += wc.pool_misses;
      s.pool_high_water += wc.pool_high_water;
      s.device_allocs += wc.device_allocs;
    }
    samples = latency_us_;
  }
  std::sort(samples.begin(), samples.end());
  s.latency.count = samples.size();
  s.latency.p50_us = percentile(samples, 0.50);
  s.latency.p95_us = percentile(samples, 0.95);
  s.latency.p99_us = percentile(samples, 0.99);
  s.latency.max_us = samples.empty() ? 0.0 : samples.back();
  s.latency.mean_us =
      samples.empty()
          ? 0.0
          : std::accumulate(samples.begin(), samples.end(), 0.0) /
                static_cast<double>(samples.size());
  return s;
}

}  // namespace topk::serve
