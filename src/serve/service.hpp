#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/topk.hpp"
#include "simgpu/device_spec.hpp"

namespace topk::serve {

/// The steady clock every deadline and latency in the service is measured on.
using Clock = std::chrono::steady_clock;

/// Terminal state of one submitted query.
enum class QueryStatus {
  kOk,        ///< executed; `topk` holds the answer
  kRejected,  ///< never admitted (queue full or service stopped)
  kTimedOut,  ///< admitted but its deadline expired before execution
  kFailed,    ///< admitted but execution raised an error (see `error`)
};

[[nodiscard]] const char* query_status_name(QueryStatus s);

/// What a query's future resolves to.  Every future resolves exactly once —
/// rejected and timed-out queries resolve with the corresponding status
/// instead of blocking forever.
struct QueryResult {
  QueryStatus status = QueryStatus::kFailed;
  SelectResult topk;           ///< valid when status == kOk
  Algo algo = Algo::kAuto;     ///< concrete algorithm executed (kOk only)
  std::size_t batch_rows = 0;  ///< rows in the micro-batch this query rode in
  /// Shard count the query executed with: 0 for the ordinary coalesced path,
  /// >= 1 when it ran through the sharded multi-device coordinator.
  std::size_t shards = 0;
  double wall_us = 0.0;        ///< submit -> resolution wall latency
  double device_us = 0.0;      ///< modeled device-time share of the batch
  std::string error;           ///< diagnostic for kRejected / kFailed
};

/// Service tuning knobs.  Defaults favor throughput over latency: requests
/// wait up to `max_wait` for a compatible partner before a partial batch is
/// flushed.
struct ServiceConfig {
  /// Device workers.  Each worker thread owns one simgpu::Device and drives
  /// it exclusively, honoring the substrate's single-driver contract; the
  /// workers share the process-wide block pool.
  std::size_t num_devices = 1;
  simgpu::DeviceSpec device_spec = simgpu::DeviceSpec::a100();
  /// Micro-batch row cap: a bucket is dispatched the moment it holds this
  /// many requests.
  std::size_t max_batch = 32;
  /// A non-full bucket is flushed when its oldest request has waited this
  /// long (or sooner, if a request in it has an earlier deadline).
  std::chrono::microseconds max_wait{500};
  /// Admission bound: total requests queued (bucketed + ready, not yet
  /// executing).  submit() beyond this resolves the future with kRejected.
  std::size_t admission_capacity = 1024;
  /// Plan used when submit() passes no override.  kAuto defers to
  /// recommend_algorithm(n, k_exec, {.batch = rows}) per micro-batch.
  Algo default_algo = Algo::kAuto;
  bool greatest = false;        ///< select largest-K instead of smallest-K
  bool sorted_results = false;  ///< order each result best-first
  /// Device pool size of each worker's sharded coordinator (topk::shard).
  /// A query goes sharded when its WorkloadHints ask for shards > 1 or when
  /// its row exceeds `device_spec.max_select_elems` — rows no single device
  /// can hold are served by splitting instead of being rejected.  The
  /// coordinator (and its shard_devices simulated devices) is built lazily
  /// on the first sharded query, so unsharded workloads pay nothing.
  std::size_t shard_devices = 4;
};

/// Latency distribution summary over completed queries (microseconds).
struct LatencySummary {
  std::size_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
};

/// Point-in-time snapshot of the service counters.  Invariants (asserted by
/// the soak test):  submitted == accepted + rejected  and
/// accepted == completed + timed_out + failed  once the service is drained.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;  ///< micro-batches executed (>= 1 live row)
  double modeled_device_us = 0.0;  ///< sum of modeled batch times
  /// rows-per-executed-batch -> number of batches of that size.
  std::map<std::size_t, std::uint64_t> batch_rows_histogram;
  LatencySummary latency;  ///< wall latency of completed queries

  // Execution-layer counters (two-phase plan/workspace path, summed over
  // device workers).  Each worker caches one ExecutionPlan per micro-batch
  // shape and reuses two pooled workspaces across flushes, so in steady
  // state every batch is a plan-cache hit, every workspace bind is a pool
  // hit, and device_allocs stops growing.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Sharded-path counters: queries routed through the multi-device
  /// coordinator (each is one single-row batch; its plan-cache traffic is
  /// folded into plan_cache_hits / plan_cache_misses above).
  std::uint64_t sharded_queries = 0;
  double sharded_device_us = 0.0;  ///< modeled time of sharded queries
  /// Queries whose batch executed on the approximate tier
  /// (Algo::kBucketApprox) under a sub-1.0 recall_target hint.
  std::uint64_t approx_queries = 0;
  std::uint64_t pool_hits = 0;    ///< workspace binds served by a warm slab
  std::uint64_t pool_misses = 0;  ///< binds that had to fetch/grow a slab
  std::size_t pool_high_water = 0;  ///< peak pooled bytes, summed over devices
  std::uint64_t device_allocs = 0;  ///< Device::alloc_calls(), summed

  /// Steady-state workspace reuse quality: pool hits over all binds.
  [[nodiscard]] double pool_hit_rate() const {
    const std::uint64_t total = pool_hits + pool_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(pool_hits) /
                            static_cast<double>(total);
  }
};

/// An asynchronous multi-device top-K query service.
///
/// submit() hands over one row of keys and returns a future immediately.
/// Compatible requests — same row length and the same power-of-two k bucket
/// (k is padded up to the bucket's k and trimmed back per request) — are
/// coalesced into dynamic micro-batches, which is the batching lever the
/// paper shows dominates serving throughput (batch = 100 in every figure).
/// A bucket is dispatched when it reaches `max_batch` rows, when its oldest
/// request has waited `max_wait`, or when a member's deadline comes due;
/// dispatched batches are planned (auto dispatch via recommend_algorithm or
/// an explicit per-request Algo override) and executed on a pool of device
/// workers, one host thread per simgpu::Device.
///
/// Backpressure: at most `admission_capacity` requests queue; beyond that
/// submit() resolves the future with kRejected instead of blocking.
/// Deadlines are enforced at dispatch: an expired request resolves with
/// kTimedOut and never reaches a device.  shutdown() stops admission, drains
/// every queued and in-flight batch, and joins all threads; the destructor
/// calls it.  All entry points are thread-safe.
class TopkService {
 public:
  explicit TopkService(ServiceConfig cfg = {});
  ~TopkService();

  TopkService(const TopkService&) = delete;
  TopkService& operator=(const TopkService&) = delete;

  /// Enqueue one top-K query over `keys` (the row is consumed).  `deadline`
  /// is relative to now; a request not dispatched by then resolves with
  /// kTimedOut.  `algo` overrides the config's default plan for this request
  /// (and only coalesces with requests of the same override).  `hints`
  /// steers execution: WorkloadHints::shards > 1 routes the request through
  /// the sharded multi-device path — as does, automatically, any row longer
  /// than device_spec.max_select_elems.  Sharded requests bypass coalescing
  /// (each is its own single-row dispatch).  WorkloadHints::recall_target
  /// below 1.0 lets auto dispatch race the approximate tier for this
  /// request's batch (requests only coalesce with the same recall SLO);
  /// the sharded path ignores it and stays exact.  Throws
  /// std::invalid_argument for malformed arguments (empty keys, k == 0,
  /// k > keys.size(), recall_target outside (0, 1]) — malformed requests
  /// are caller bugs, not load.
  std::future<QueryResult> submit(
      std::vector<float> keys, std::size_t k,
      std::optional<std::chrono::microseconds> deadline = std::nullopt,
      std::optional<Algo> algo = std::nullopt,
      std::optional<WorkloadHints> hints = std::nullopt);

  /// Typed submit: float-family keys (f32/f16/bf16) are encoded into the
  /// staged float-carrier row at admission and decoded after execution
  /// (QueryResult::topk carries dtype + values_bits).  The dtype is part of
  /// the coalescing BucketKey and the worker plan-cache key, so an f16
  /// request never rides in an f32 batch (their carrier domains differ).
  /// Integer key types throw std::invalid_argument — the coalesced serving
  /// path is float-carrier only.
  std::future<QueryResult> submit(
      KeyView keys, std::size_t k,
      std::optional<std::chrono::microseconds> deadline = std::nullopt,
      std::optional<Algo> algo = std::nullopt,
      std::optional<WorkloadHints> hints = std::nullopt);

  /// Stop admitting, flush every bucket, drain the ready queue and in-flight
  /// batches, then join the batcher and worker threads.  Idempotent.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

 private:
  struct Request {
    std::promise<QueryResult> promise;
    std::size_t k = 0;
    std::size_t shard_hint = 0;  ///< requested shard count (0 = recommend)
    Clock::time_point submit_time;
    std::optional<Clock::time_point> deadline;
  };

  /// Coalescing key: requests agree on the row length, the executed
  /// (padded) k, the plan override, the recall SLO — a 0.9-recall request
  /// must never ride in (and approximate) a 1.0-recall batch — and the key
  /// dtype, whose carrier encoding the staged rows share.
  struct BucketKey {
    std::size_t n = 0;
    std::size_t k_exec = 0;
    Algo algo = Algo::kAuto;
    double recall = 1.0;
    KeyType dtype = KeyType::kF32;

    bool operator<(const BucketKey& o) const {
      if (n != o.n) return n < o.n;
      if (k_exec != o.k_exec) return k_exec < o.k_exec;
      if (algo != o.algo) return static_cast<int>(algo) < static_cast<int>(o.algo);
      if (recall != o.recall) return recall < o.recall;
      return static_cast<int>(dtype) < static_cast<int>(o.dtype);
    }
  };

  struct Bucket {
    std::vector<Request> reqs;
    /// Members' key rows, staged contiguously in request order at submit
    /// time.  The worker wraps this storage as the batch's device input
    /// directly — coalescing happens once, on admission, instead of a
    /// second row-gather copy on the execution critical path.
    std::vector<float> staged;
    Clock::time_point oldest;         ///< submit time of the first member
    Clock::time_point earliest_due;   ///< min(oldest + max_wait, deadlines)
  };

  struct Batch {
    BucketKey key;
    std::vector<Request> reqs;
    std::vector<float> staged;  ///< reqs' rows, contiguous (see Bucket)
    /// Sharded single-row dispatch: `staged` is the one row, `key.k_exec`
    /// the exact (unpadded) k, and the worker routes it to its coordinator.
    bool sharded = false;
  };

  /// Per-worker execution context: the Device plus the plan cache and the
  /// two pooled workspaces that persist across micro-batch flushes (defined
  /// in service.cpp; workers own one each on their stack).
  struct Worker;

  std::future<QueryResult> submit_carrier(
      std::vector<float> carrier, KeyType dtype, std::size_t k,
      std::optional<std::chrono::microseconds> deadline,
      std::optional<Algo> algo, std::optional<WorkloadHints> hints);

  void batcher_loop();
  void worker_loop(std::size_t worker_id);
  void execute_batch(Worker& w, std::size_t worker_id, Batch batch);
  void execute_sharded(Worker& w, std::size_t worker_id, Batch batch);

  // All methods below require `mu_` to be held.
  void enqueue_ready_locked(Batch&& batch);
  void resolve_rejected_locked(Request& req, const std::string& why);

  ServiceConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable batcher_cv_;  ///< bucket set / shutdown changes
  std::condition_variable worker_cv_;   ///< ready queue / shutdown changes

  bool accepting_ = true;
  bool stopping_ = false;
  bool batcher_done_ = false;
  std::map<BucketKey, Bucket> buckets_;
  std::deque<Batch> ready_;
  std::size_t queued_ = 0;  ///< requests in buckets_ + ready_
  /// Retired staging buffers, recycled into new buckets so steady-state
  /// admission re-touches warm pages instead of first-faulting a fresh
  /// max_batch * n allocation per batch.  Bounded: one spare per worker
  /// plus one in flight between them.
  std::vector<std::vector<float>> staged_spares_;

  // Counters (guarded by mu_).
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  double modeled_device_us_ = 0.0;
  std::map<std::size_t, std::uint64_t> batch_rows_histogram_;
  std::vector<double> latency_us_;  ///< wall latency of completed queries
  std::uint64_t plan_cache_hits_ = 0;
  std::uint64_t plan_cache_misses_ = 0;
  std::uint64_t sharded_queries_ = 0;
  double sharded_device_us_ = 0.0;
  std::uint64_t approx_queries_ = 0;

  /// Latest pool/alloc snapshot per worker (cumulative counters owned by the
  /// worker's Device; published under mu_ after each batch and summed by
  /// stats()).
  struct WorkerCounters {
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::size_t pool_high_water = 0;
    std::uint64_t device_allocs = 0;
  };
  std::vector<WorkerCounters> worker_counters_;

  std::thread batcher_;
  std::vector<std::thread> workers_;
};

}  // namespace topk::serve
