#include "shard/shard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "topk/common.hpp"
#include "topk/key_codec.hpp"
#include "topk/partial_sort_common.hpp"

namespace topk::shard {

namespace {

/// Shard-boundary validation with messages that diagnose on their own (the
/// serving layer surfaces them to clients verbatim).
void validate_query(std::size_t n, std::size_t k) {
  std::ostringstream err;
  if (n == 0) {
    err << "sharded_select: n must be > 0";
  } else if (k == 0 || k > n) {
    err << "sharded_select: k must be in [1, n], got k=" << k << " n=" << n;
  } else if (k > kMaxSelectionK) {
    err << "sharded_select: k=" << k << " exceeds the cross-shard merge's "
        << kMaxSelectionK << " candidate-list limit";
  } else if (n > std::numeric_limits<std::uint32_t>::max()) {
    err << "sharded_select: n=" << n << " exceeds the 32-bit index space";
  } else {
    return;
  }
  throw std::invalid_argument(err.str());
}

}  // namespace

std::size_t min_shards(std::size_t n, const simgpu::DeviceSpec& spec) {
  const std::size_t cap = std::max<std::size_t>(1, spec.max_select_elems);
  return std::max<std::size_t>(1, (n + cap - 1) / cap);
}

std::size_t max_shards(std::size_t n, std::size_t k) {
  return std::max<std::size_t>(1, n / std::max<std::size_t>(1, k));
}

double estimated_sharded_cost_us(Algo algo, std::size_t shards,
                                 std::size_t devices, std::size_t n,
                                 std::size_t k,
                                 const simgpu::DeviceSpec& spec) {
  shards = std::max<std::size_t>(1, shards);
  devices = std::max<std::size_t>(1, devices);
  const std::size_t n_shard = (n + shards - 1) / shards;
  if (algo == Algo::kAuto) {
    WorkloadHints hints;
    hints.shards = shards;
    algo = recommend_algorithm(n, k, hints);
  }
  const double rounds =
      static_cast<double>((shards + devices - 1) / devices);
  const double lat = spec.pcie_latency_us;
  const double bw = spec.pcie_bytes_per_us();
  const double kk = static_cast<double>(k);
  // Selection: shards run device-parallel, rounds serialize; the gather is
  // two D2H copies (values + indices) per shard.
  double cost = rounds * estimated_batch_cost_us(algo, 1, n_shard, k) +
                static_cast<double>(shards) * (2.0 * lat + kk * 8.0 / bw);
  if (shards > 1) {
    // Candidate H2D to the merge device, the merge tree, result D2H.
    cost += lat + static_cast<double>(shards) * kk * 4.0 / bw;
    cost += estimated_batch_cost_us(Algo::kShardMerge, 1, shards * k, k);
    cost += 2.0 * lat + kk * 8.0 / bw;
  }
  return cost;
}

std::size_t recommend_shards(std::size_t n, std::size_t k,
                             std::size_t devices,
                             const simgpu::DeviceSpec& spec) {
  validate_query(n, k);
  devices = std::max<std::size_t>(1, devices);
  const std::size_t lo = min_shards(n, spec);
  const std::size_t hi = max_shards(n, k);
  if (lo > hi) {
    std::ostringstream err;
    err << "recommend_shards: k=" << k << " does not fit a device-sized "
        << "shard (every shard holds at most " << spec.max_select_elems
        << " of n=" << n << " keys but must hold at least k)";
    throw std::invalid_argument(err.str());
  }
  std::size_t best = lo;
  double best_cost = std::numeric_limits<double>::infinity();
  // Race the feasibility floor (the unsharded candidate when lo == 1) and
  // its doublings; stop once shards far outnumber the pool — past that the
  // round count grows linearly and nothing can win.
  for (std::size_t s = lo; s <= hi; s *= 2) {
    const double cost = estimated_sharded_cost_us(Algo::kAuto, s, devices, n,
                                                  k, spec);
    if (cost < best_cost) {
      best = s;
      best_cost = cost;
    }
    if (s > 8 * devices) break;
  }
  return best;
}

ShardedPlan plan_sharded(const simgpu::DeviceSpec& spec, std::size_t n,
                         std::size_t k, std::size_t shards, Algo algo,
                         const SelectOptions& opt) {
  validate_query(n, k);
  shards = std::clamp(shards == 0 ? recommend_shards(n, k, 1, spec) : shards,
                      min_shards(n, spec), max_shards(n, k));
  if (algo == Algo::kAuto) {
    WorkloadHints hints;
    hints.shards = shards;
    algo = recommend_algorithm(n, k, hints);
  }

  ShardedPlan sp;
  sp.shards = shards;
  sp.n = n;
  sp.k = k;
  sp.shard_algo = algo;
  // Shards see smallest-K plans: largest-K is negated once at the
  // coordinator boundary, never inside the per-shard plans.
  SelectOptions shard_opt;
  shard_opt.alpha = opt.alpha;
  // block_chunk yields at most two distinct shard lengths (base + 1 for the
  // leading remainder chunks, base for the rest) — the first and last shard
  // between them exhibit both.
  std::size_t prev_len = 0;
  for (const std::size_t s :
       {std::size_t{0}, shards - 1}) {
    const auto [begin, end] =
        topk::block_chunk(n, static_cast<int>(shards), static_cast<int>(s));
    const std::size_t len = end - begin;
    if (len == prev_len) continue;
    prev_len = len;
    std::ostringstream label;
    label << "shard " << algo_key(algo) << " n=" << len << " k=" << k;
    sp.plans.emplace_back(label.str(),
                          plan_select(spec, 1, len, k, algo, shard_opt));
  }
  if (shards > 1) {
    std::ostringstream label;
    label << "merge shard-merge n=" << shards * k << " k=" << k;
    sp.plans.emplace_back(
        label.str(),
        plan_select(spec, 1, shards * k, k, Algo::kShardMerge, {}));
  }
  return sp;
}

struct Coordinator::DeviceSlot {
  simgpu::Device dev;
  simgpu::Workspace ws;
  simgpu::DeviceBuffer<float> in;
  simgpu::DeviceBuffer<float> out_vals;
  simgpu::DeviceBuffer<std::uint32_t> out_idx;
  simgpu::DeviceBuffer<float> merge_in;  ///< slot 0 only
  std::size_t in_cap = 0;
  std::size_t out_cap = 0;
  std::size_t merge_cap = 0;

  explicit DeviceSlot(const simgpu::DeviceSpec& spec) : dev(spec), ws(dev) {}
};

Coordinator::Coordinator(const ShardConfig& cfg) : cfg_(cfg) {
  cfg_.devices = std::max<std::size_t>(1, cfg_.devices);
  slots_.reserve(cfg_.devices);
  for (std::size_t d = 0; d < cfg_.devices; ++d) {
    slots_.push_back(std::make_unique<DeviceSlot>(cfg_.device_spec));
  }
}

Coordinator::~Coordinator() = default;

ShardedResult Coordinator::select(std::span<const float> data, std::size_t k,
                                  std::size_t shards, Algo algo) {
  const std::size_t n = data.size();
  validate_query(n, k);

  const simgpu::DeviceSpec& spec = cfg_.device_spec;
  const std::size_t lo = min_shards(n, spec);
  const std::size_t hi = max_shards(n, k);
  if (lo > hi) {
    std::ostringstream err;
    err << "sharded_select: k=" << k << " does not fit a device-sized shard "
        << "(per-device capacity " << spec.max_select_elems << " keys, n="
        << n << ")";
    throw std::invalid_argument(err.str());
  }
  if (shards == 0) shards = cfg_.shards;
  const std::size_t S = std::clamp(
      shards != 0 ? shards : recommend_shards(n, k, slots_.size(), spec), lo,
      hi);

  if (algo == Algo::kAuto) algo = cfg_.algo;
  if (algo == Algo::kAuto) {
    WorkloadHints hints;
    hints.shards = S;
    algo = recommend_algorithm(n, k, hints);
  }

  // Largest-K, handled exactly once: shards select the smallest of the
  // negated input, the merged values are negated back below.  Per-shard
  // plans therefore never carry their own negate wrap.
  const bool negate = cfg_.options.greatest;
  std::span<const float> src = data;
  if (negate) {
    stage_.resize(n);
    for (std::size_t i = 0; i < n; ++i) stage_[i] = -data[i];
    src = stage_;
  }
  SelectOptions shard_opt;
  shard_opt.alpha = cfg_.options.alpha;

  const std::size_t devices_used = std::min(S, slots_.size());
  const bool simcheck = simcheck_env_enabled();
  const simgpu::CostModel model(spec);
  for (std::size_t d = 0; d < devices_used; ++d) {
    if (simcheck && slots_[d]->dev.sanitizer() == nullptr) {
      slots_[d]->dev.enable_sanitizer();
    }
    slots_[d]->dev.clear_events();
  }

  const auto plan_for = [&](std::size_t pn, Algo palgo) -> const ExecutionPlan& {
    const auto key = std::make_tuple(pn, k, palgo);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++plan_hits_;
      return it->second;
    }
    ++plan_misses_;
    const SelectOptions& popt =
        palgo == Algo::kShardMerge ? SelectOptions{} : shard_opt;
    return plans_.emplace(key, plan_select(spec, 1, pn, k, palgo, popt))
        .first->second;
  };

  ShardedResult res;
  res.shards = S;
  res.devices = devices_used;
  res.shard_algo = algo;
  res.shard_us.resize(S, 0.0);

  // ---- phase 1: per-shard selection + candidate gather -------------------
  std::vector<float> cand_vals(S * k);
  std::vector<std::uint32_t> cand_idx(S * k);
  std::vector<double> dev_select_us(devices_used, 0.0);
  std::vector<double> dev_gather_us(devices_used, 0.0);
  for (std::size_t s = 0; s < S; ++s) {
    const auto [begin, end] =
        topk::block_chunk(n, static_cast<int>(S), static_cast<int>(s));
    const std::size_t len = end - begin;
    DeviceSlot& slot = *slots_[s % devices_used];
    if (slot.in_cap < len) {
      slot.in = slot.dev.alloc<float>(len, "shard input");
      slot.in_cap = len;
    }
    if (slot.out_cap < k) {
      slot.out_vals = slot.dev.alloc<float>(k, "shard out vals");
      slot.out_idx = slot.dev.alloc<std::uint32_t>(k, "shard out idx");
      slot.out_cap = k;
    }
    const ExecutionPlan& plan = plan_for(len, algo);
    // Scatter is an unrecorded upload: like the paper's measured regions
    // (and select()'s own staging), a shard's timed region starts with its
    // slice resident on the device.
    slot.dev.upload(slot.in, src.subspan(begin, len));
    simgpu::Sanitizer* const san = slot.dev.sanitizer();
    const std::size_t issues_before = san != nullptr ? san->issue_count() : 0;
    const double before = model.total_us(slot.dev.events());
    run_select(slot.dev, plan, slot.ws, slot.in, slot.out_vals, slot.out_idx);
    const double selected = model.total_us(slot.dev.events());
    slot.dev.copy_to_host(slot.out_vals, std::span<float>(cand_vals).subspan(s * k, k),
                          "shard gather vals");
    slot.dev.copy_to_host(slot.out_idx,
                          std::span<std::uint32_t>(cand_idx).subspan(s * k, k),
                          "shard gather idx");
    const double gathered = model.total_us(slot.dev.events());
    res.shard_us[s] = gathered - before;
    dev_select_us[s % devices_used] += selected - before;
    dev_gather_us[s % devices_used] += gathered - selected;
    if (san != nullptr) throw_if_new_issues(*san, issues_before, algo);
    // Rebase shard-local indices into the query's index space host-side.
    const auto base = static_cast<std::uint32_t>(begin);
    for (std::size_t i = 0; i < k; ++i) cand_idx[s * k + i] += base;
  }
  // Devices run concurrently: each phase costs its busiest device.
  for (std::size_t d = 0; d < devices_used; ++d) {
    res.timing.select_us = std::max(res.timing.select_us, dev_select_us[d]);
    res.timing.gather_us = std::max(res.timing.gather_us, dev_gather_us[d]);
  }

  // ---- phase 2: hierarchical cross-shard merge on device 0 ---------------
  res.topk.values.resize(k);
  res.topk.indices.resize(k);
  if (S == 1) {
    std::copy_n(cand_vals.begin(), k, res.topk.values.begin());
    std::copy_n(cand_idx.begin(), k, res.topk.indices.begin());
    // Unsharded: the gather copies ARE the final result transfer.
    res.timing.output_us = res.timing.gather_us;
    res.timing.gather_us = 0.0;
  } else {
    DeviceSlot& m = *slots_[0];
    const std::size_t nm = S * k;
    if (m.merge_cap < nm) {
      m.merge_in = m.dev.alloc<float>(nm, "shard merge candidates");
      m.merge_cap = nm;
    }
    const ExecutionPlan& mplan = plan_for(nm, Algo::kShardMerge);
    simgpu::Sanitizer* const san = m.dev.sanitizer();
    const std::size_t issues_before = san != nullptr ? san->issue_count() : 0;
    const double before = model.total_us(m.dev.events());
    m.dev.upload_recorded(m.merge_in, std::span<const float>(cand_vals),
                          "shard candidate gather");
    run_select(m.dev, mplan, m.ws, m.merge_in, m.out_vals, m.out_idx);
    const double merged = model.total_us(m.dev.events());
    std::vector<std::uint32_t> merge_pos(k);
    m.dev.copy_to_host(m.out_vals, std::span<float>(res.topk.values),
                       "merged vals");
    m.dev.copy_to_host(m.out_idx, std::span<std::uint32_t>(merge_pos),
                       "merged idx");
    res.timing.merge_us = merged - before;
    res.timing.output_us = model.total_us(m.dev.events()) - merged;
    if (san != nullptr) {
      throw_if_new_issues(*san, issues_before, Algo::kShardMerge);
    }
    // The merge indexes the candidate array; map back through the gathered
    // (already rebased) per-shard indices.
    for (std::size_t i = 0; i < k; ++i) {
      res.topk.indices[i] = cand_idx[merge_pos[i]];
    }
  }

  if (negate) {
    for (float& v : res.topk.values) v = -v;
  }
  if (cfg_.options.sorted) {
    std::vector<std::uint32_t> order;
    sort_result_best_first(res.topk, cfg_.options.greatest, order);
  }
  res.timing.total_us = res.timing.select_us + res.timing.gather_us +
                        res.timing.merge_us + res.timing.output_us;
  return res;
}

ShardedResult Coordinator::select_typed(KeyView keys, std::size_t k,
                                        PayloadView payload,
                                        std::size_t shards, Algo algo) {
  if (key_type_is_integer(keys.dtype)) {
    std::ostringstream err;
    err << "sharded_select: dtype " << key_type_name(keys.dtype)
        << " is not supported by the float-carrier shard pipeline (use the "
           "streaming tier, Algo::kStreamRadix, for integer keys)";
    throw std::invalid_argument(err.str());
  }
  if (payload.present() && payload.size != keys.size) {
    std::ostringstream err;
    err << "sharded_select: payload holds " << payload.size
        << " entries but must cover every key (n=" << keys.size << ")";
    throw std::invalid_argument(err.str());
  }
  ShardedResult res;
  if (keys.dtype == KeyType::kF32) {
    res = select(std::span<const float>(
                     static_cast<const float*>(keys.data), keys.size),
                 k, shards, algo);
  } else {
    // Encode to the exact float carrier (the 16-bit radix ordinal) so the
    // shards and the merge see a totally ordered float stream; decoded back
    // after the merge.  The negate-at-boundary wrap composes: carrier order
    // is key order, so negating carriers selects the key-largest.
    typed_stage_.resize(keys.size);
    codec::encode_keys_f32(keys, typed_stage_.data());
    res = select(std::span<const float>(typed_stage_), k, shards, algo);
    codec::decode_result_f32(keys.dtype, res.topk);
  }
  if (payload.present()) {
    res.topk.payload.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      res.topk.payload[i] = codec::payload_at(payload, res.topk.indices[i]);
    }
  }
  return res;
}

ShardedResult sharded_select(std::span<const float> data, std::size_t k,
                             const ShardConfig& cfg) {
  Coordinator coord(cfg);
  return coord.select(data, k);
}

}  // namespace topk::shard
