#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/topk.hpp"
#include "simgpu/simgpu.hpp"

/// Sharded multi-device top-K: execute one query whose N exceeds any single
/// device by splitting the input across a pool of simulated devices, running
/// the ordinary per-shard selection through the plan/run layer, and reducing
/// the per-shard candidate lists with a hierarchical device-side merge
/// (Algo::kShardMerge).
///
/// Execution shape (one query, S shards, D devices):
///
///   host input ──split──> shard 0..S-1  (device s % D, round-robin rounds)
///        per shard: cached ExecutionPlan + pooled Workspace -> top-k
///        candidates gathered D2H (recorded), indices rebased to the query
///   candidates ──H2D──> merge device ──ShardMerge plan──> exact top-k
///
/// Largest-K is handled ONCE at the coordinator boundary: the input is
/// negated while staging shards and the final values are negated back, so
/// neither the per-shard plans nor the merge ever see a negate wrap of
/// their own (no double negation, no per-shard wrap overhead).
namespace topk::shard {

/// Pool + query configuration for a Coordinator.
struct ShardConfig {
  /// Devices in the pool (>= 1).  The merge runs on device 0.
  std::size_t devices = 4;
  /// Spec of every pooled device.  `max_select_elems` is the per-device
  /// ceiling that forces sharding; cap it low (e.g. 1 << 22) to scale out.
  simgpu::DeviceSpec device_spec{};
  /// Shard count; 0 picks recommend_shards() per query.  Clamped so every
  /// shard fits one device and still holds at least k keys.
  std::size_t shards = 0;
  /// Per-shard selection algorithm (kAuto recommends at the per-shard
  /// shape via WorkloadHints::shards).
  Algo algo = Algo::kAuto;
  /// greatest / sorted / alpha, applied at the coordinator boundary.
  SelectOptions options{};
};

/// Modeled-time breakdown of one sharded query (CostModel over each pooled
/// device's event log; devices run concurrently, so the selection phase
/// costs the busiest device, not the sum).
struct ShardTiming {
  double select_us = 0.0;  ///< busiest device: per-shard selection kernels
  double gather_us = 0.0;  ///< busiest device: candidate D2H copies
  double merge_us = 0.0;   ///< merge device: candidate H2D + merge kernels
  double output_us = 0.0;  ///< final result D2H (every path pays this)
  double total_us = 0.0;   ///< sum of the four phases
};

/// Result of one sharded query.
struct ShardedResult {
  SelectResult topk;          ///< indices into the original host input
  Algo shard_algo = Algo::kAuto;  ///< concrete per-shard algorithm
  std::size_t shards = 0;
  std::size_t devices = 0;    ///< devices actually used (min(shards, pool))
  ShardTiming timing;
  std::vector<double> shard_us;  ///< modeled per-shard selection time
};

/// The plans one sharded query executes, labeled for audit tooling:
/// one per distinct shard shape (block_chunk yields at most two) plus the
/// cross-shard merge plan when shards > 1.  `topk_audit --sharded` walks
/// these through the same static schedule auditor as single-device plans.
struct ShardedPlan {
  std::size_t shards = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  Algo shard_algo = Algo::kAuto;
  std::vector<std::pair<std::string, ExecutionPlan>> plans;
};

/// Host-side coordinator owning the device pool, per-device pooled
/// workspaces, and the per-shape plan caches.  Single-driver contract: one
/// thread drives a Coordinator (matching simgpu::Device).
class Coordinator {
 public:
  explicit Coordinator(const ShardConfig& cfg);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Execute one top-k query over `data`, sharded per the config.  `shards`
  /// / `algo` override the config for this query when non-zero / non-kAuto
  /// (the serving layer forwards per-request WorkloadHints through them).
  ShardedResult select(std::span<const float> data, std::size_t k,
                       std::size_t shards = 0, Algo algo = Algo::kAuto);

  /// Typed key-value variant: float-family keys (f32/f16/bf16) are encoded
  /// to their exact float carrier, sharded and merged in the carrier domain
  /// (carrier order equals key order, so ties/NaNs shard exactly), and the
  /// result is decoded back (SelectResult::values_bits).  A payload, when
  /// present, must cover every key; the winners' entries are gathered into
  /// SelectResult::payload after the cross-shard merge.  Integer key types
  /// throw std::invalid_argument — the shard pipeline is float-carrier only;
  /// route i32/u32 queries through the streaming tier instead.
  ShardedResult select_typed(KeyView keys, std::size_t k,
                             PayloadView payload = {}, std::size_t shards = 0,
                             Algo algo = Algo::kAuto);

  [[nodiscard]] const ShardConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t plan_cache_hits() const { return plan_hits_; }
  [[nodiscard]] std::size_t plan_cache_misses() const { return plan_misses_; }

 private:
  struct DeviceSlot;

  ShardConfig cfg_;
  std::vector<std::unique_ptr<DeviceSlot>> slots_;
  /// (n, k, algo) -> plan; block_chunk keeps this at <= 2 live shard shapes
  /// per (n, k, shards) triple, plus one merge-plan entry per (shards, k).
  std::map<std::tuple<std::size_t, std::size_t, Algo>, ExecutionPlan> plans_;
  std::vector<float> stage_;  ///< host staging scratch (negation, slicing)
  std::vector<float> typed_stage_;  ///< f16/bf16 carrier-encoded keys
  std::size_t plan_hits_ = 0;
  std::size_t plan_misses_ = 0;
};

/// One-shot convenience wrapper: build a Coordinator, run one query.
ShardedResult sharded_select(std::span<const float> data, std::size_t k,
                             const ShardConfig& cfg = {});

/// Shard-count floor/ceiling for a query: every shard must fit the device
/// (ceil(n / max_select_elems) at least) and still hold >= k keys (n / k at
/// most).  Throws when the interval is empty (k too large for the pool).
[[nodiscard]] std::size_t min_shards(std::size_t n,
                                     const simgpu::DeviceSpec& spec);
[[nodiscard]] std::size_t max_shards(std::size_t n, std::size_t k);

/// First-order modeled cost (microseconds) of a sharded query: per-shard
/// selection cost (estimated_batch_cost_us at the per-shard shape) times
/// the round count ceil(shards / devices), plus the PCIe gather terms and
/// the merge-tree cost when shards > 1.  Used by recommend_shards and by
/// the serving recommender's cost race.
[[nodiscard]] double estimated_sharded_cost_us(
    Algo algo, std::size_t shards, std::size_t devices, std::size_t n,
    std::size_t k, const simgpu::DeviceSpec& spec = {});

/// Pick a shard count for (n, k) on a pool of `devices`: race the unsharded
/// candidate (when it fits the device at all) against doublings from the
/// feasibility floor, under estimated_sharded_cost_us.
[[nodiscard]] std::size_t recommend_shards(std::size_t n, std::size_t k,
                                           std::size_t devices,
                                           const simgpu::DeviceSpec& spec);

/// Pure planning view of one sharded query, for the static auditor: the
/// per-shard plans (one per distinct block_chunk shape) and the merge plan,
/// exactly as Coordinator::select would cache them.  No Device is created.
[[nodiscard]] ShardedPlan plan_sharded(const simgpu::DeviceSpec& spec,
                                       std::size_t n, std::size_t k,
                                       std::size_t shards, Algo algo,
                                       const SelectOptions& opt = {});

}  // namespace topk::shard
