#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>

namespace simgpu {

/// A non-owning, pointer-like handle to a typed region of simulated device
/// memory, analogous to a raw device pointer captured by value in a CUDA
/// kernel.  The storage is owned by the Device that allocated it; handles
/// remain valid until the Device is destroyed or reset.
///
/// Kernels must access device memory through the BlockCtx accessors
/// (`load`/`store`/`atomic_*`) so that device-memory traffic is accounted;
/// the raw `data()` escape hatch exists for host-side code (memcpy, result
/// verification) only.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(T* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size_bytes() const { return size_ * sizeof(T); }

  /// Host-side view of the underlying storage (no traffic accounting).
  [[nodiscard]] std::span<T> host_span() const { return {data_, size_}; }

  /// Sub-range view, like pointer arithmetic on a device pointer.  Unlike
  /// raw pointer arithmetic, a view past the end of this buffer is refused
  /// rather than silently minted.
  [[nodiscard]] DeviceBuffer<T> subspan(std::size_t offset,
                                        std::size_t count) const {
    if (offset > size_ || count > size_ - offset) {
      throw std::out_of_range("DeviceBuffer::subspan: range exceeds buffer");
    }
    return DeviceBuffer<T>(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace simgpu
