#include "simgpu/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace simgpu {

KernelCost CostModel::kernel_cost(const KernelStats& stats) const {
  const double warps_total =
      static_cast<double>(stats.grid_blocks) * stats.warps_per_block();
  const double saturating_warps =
      static_cast<double>(spec_.sm_count) * spec_.saturating_warps_per_sm;
  const double bw_frac = std::min(1.0, warps_total / saturating_warps);

  const double mem_rate =
      spec_.mem_bytes_per_us() * spec_.mem_efficiency * bw_frac;
  const double mem_t =
      mem_rate > 0.0 ? static_cast<double>(stats.bytes_total()) / mem_rate
                     : 0.0;

  // Compute throughput: each active SM retires lane_ops_per_clock lanes per
  // cycle; a block with fewer lanes than that cannot fill its SM.
  const double per_sm_frac =
      std::min(1.0, static_cast<double>(stats.block_threads) /
                        spec_.lane_ops_per_clock);
  const double sm_frac = std::min(
      1.0, static_cast<double>(stats.grid_blocks) / spec_.sm_count);
  const double compute_frac = std::max(1e-6, sm_frac * per_sm_frac);
  const double comp_t = static_cast<double>(stats.lane_ops) /
                        (spec_.lane_ops_per_us() * compute_frac);
  const double atomic_t =
      static_cast<double>(stats.atomic_ops) /
          (spec_.atomic_ops_per_sec * 1e-6) +
      static_cast<double>(stats.scattered_atomic_ops) /
          (spec_.scattered_atomic_ops_per_sec * 1e-6);

  // Straggler bound: the kernel cannot retire before its heaviest block,
  // which runs with only its own warps' share of the device.
  const double block_bw_frac =
      std::min(1.0, static_cast<double>(stats.warps_per_block()) /
                        saturating_warps);
  const double straggler_mem_t =
      static_cast<double>(stats.max_block_bytes) /
      (spec_.mem_bytes_per_us() * spec_.mem_efficiency *
       std::max(block_bw_frac, 1e-9));
  const double straggler_comp_t =
      static_cast<double>(stats.max_block_lane_ops) /
      (spec_.lane_ops_per_us() * std::max(per_sm_frac / spec_.sm_count, 1e-9));
  const double straggler_t = std::max(straggler_mem_t, straggler_comp_t);

  KernelCost cost;
  cost.bandwidth_cap = bw_frac;
  cost.duration_us =
      std::max({spec_.min_kernel_duration_us, mem_t, comp_t + atomic_t,
                straggler_t});
  cost.mem_sol = static_cast<double>(stats.bytes_total()) /
                 (cost.duration_us * spec_.mem_bytes_per_us());
  cost.compute_sol = static_cast<double>(stats.lane_ops) /
                     (cost.duration_us * spec_.lane_ops_per_us());
  return cost;
}

Timeline CostModel::simulate(const EventLog& events) const {
  Timeline tl;
  double host = 0.0;      // host-side clock
  double dev_free = 0.0;  // when the device stream drains

  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (const auto* k = std::get_if<KernelEvent>(&e)) {
      const double issue = host;
      host += spec_.kernel_launch_overhead_us;
      tl.host_us += spec_.kernel_launch_overhead_us;
      tl.spans.push_back({i, SpanTiming::Lane::kHost, issue, host,
                          "launch " + std::string(k->stats.name)});
      const KernelCost cost = kernel_cost(k->stats);
      const double start = std::max(host, dev_free);
      const double end = start + cost.duration_us;
      dev_free = end;
      tl.device_busy_us += cost.duration_us;
      tl.spans.push_back(
          {i, SpanTiming::Lane::kDevice, start, end,
           std::string(k->stats.name)});
    } else if (const auto* m = std::get_if<MemcpyEvent>(&e)) {
      // cudaMemcpy semantics: wait for the device, then transfer.
      host = std::max(host, dev_free);
      const double dur = spec_.pcie_latency_us +
                         static_cast<double>(m->bytes) /
                             spec_.pcie_bytes_per_us();
      tl.spans.push_back({i, SpanTiming::Lane::kTransfer, host, host + dur,
                          m->dir == MemcpyEvent::Dir::kHostToDevice
                              ? "MemcpyHtoD"
                              : "MemcpyDtoH"});
      host += dur;
      tl.transfer_us += dur;
      dev_free = std::max(dev_free, host);
    } else if (std::get_if<SyncEvent>(&e) != nullptr) {
      const double begin = host;
      host = std::max(host, dev_free) + spec_.host_sync_overhead_us;
      tl.host_us += host - begin;
      tl.spans.push_back({i, SpanTiming::Lane::kHost, begin, host, "sync"});
    } else if (const auto* h = std::get_if<HostComputeEvent>(&e)) {
      const double dur = static_cast<double>(h->host_ops) /
                         (spec_.host_ops_per_sec * 1e-6);
      tl.spans.push_back(
          {i, SpanTiming::Lane::kHost, host, host + dur, h->label});
      host += dur;
      tl.host_us += dur;
    }
  }
  tl.total_us = std::max(host, dev_free);
  return tl;
}

}  // namespace simgpu
