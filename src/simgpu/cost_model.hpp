#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "simgpu/device_spec.hpp"
#include "simgpu/event.hpp"

namespace simgpu {

/// Modeled cost of one kernel execution.
struct KernelCost {
  double duration_us = 0.0;
  /// Achieved fraction of peak DRAM bandwidth ("Memory SOL" in Nsight).
  double mem_sol = 0.0;
  /// Achieved fraction of peak lane throughput ("Compute SOL" in Nsight).
  double compute_sol = 0.0;
  /// Occupancy-limited bandwidth fraction available to this launch shape.
  double bandwidth_cap = 0.0;
};

/// One rendered interval of the modeled execution.
struct SpanTiming {
  enum class Lane { kHost, kDevice, kTransfer };
  std::size_t event_index = 0;
  Lane lane = Lane::kDevice;
  double start_us = 0.0;
  double end_us = 0.0;
  std::string label;
};

/// Modeled timeline of an event log.
struct Timeline {
  std::vector<SpanTiming> spans;
  double total_us = 0.0;
  double device_busy_us = 0.0;   ///< sum of kernel durations
  double transfer_us = 0.0;      ///< time spent in PCIe transfers
  double host_us = 0.0;          ///< host compute + sync + launch overhead
};

/// Analytic first-order performance model for a simulated device.
///
/// Kernel duration = max(memory time, compute time), where
///  - memory time charges counted DRAM bytes against peak bandwidth scaled by
///    an occupancy factor (resident warps vs. warps needed to saturate), and
///  - compute time charges counted lane ops against peak lane throughput
///    scaled by how many SMs the grid can cover, plus global-atomic
///    serialization.
/// Host-side costs (launch overhead, synchronization, PCIe latency and
/// bandwidth, intermediate CPU work) are charged per event, which is what
/// produces the idle "white space" the paper's Fig. 8 shows for host-managed
/// baselines.
class CostModel {
 public:
  explicit CostModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  [[nodiscard]] KernelCost kernel_cost(const KernelStats& stats) const;

  /// Walk the event log, assigning start/end times to every event.
  [[nodiscard]] Timeline simulate(const EventLog& events) const;

  /// Convenience: total modeled time of an event log in microseconds.
  [[nodiscard]] double total_us(const EventLog& events) const {
    return simulate(events).total_us;
  }

 private:
  DeviceSpec spec_;
};

}  // namespace simgpu
