#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "simgpu/buffer.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/event.hpp"
#include "simgpu/memory_pool.hpp"
#include "simgpu/sanitizer.hpp"
#include "simgpu/thread_pool.hpp"

namespace simgpu {

/// A simulated GPU: owns device memory, records the host-visible event stream
/// (kernel launches, copies, synchronizations, interleaved host work) that
/// the cost model later turns into a timeline, and carries the device spec.
///
/// Memory management mirrors a stack/arena style: `mark()` captures the
/// current allocation state and `release_to()` rolls back to it, so an
/// algorithm can allocate scratch space and return it wholesale when done
/// (see ScopedWorkspace).  Underlying chunks are retained and reused across
/// runs, so benchmark loops do not thrash the host allocator.
///
/// Host-side methods (alloc, memcpy, launch bookkeeping) must be called from
/// a single host thread, matching how a CUDA stream is driven.
class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec::a100())
      : spec_(std::move(spec)) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// ---- Memory ----------------------------------------------------------

  /// Allocate `n` elements of uninitialized device memory.  `name` labels
  /// the buffer in sanitizer reports (unused when checking is off).
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t n, std::string_view name = {}) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "device memory holds trivially copyable types only");
    void* p = raw_alloc(n * sizeof(T), alignof(T));
    ++alloc_seq_;
    ++alloc_calls_;
    if (sanitizer_) {
      sanitizer_->on_alloc(p, n, sizeof(T), std::string(name), alloc_seq_);
    }
    return DeviceBuffer<T>(static_cast<T*>(p), n);
  }

  /// Allocate and zero-fill (cudaMemset analogue; not charged as traffic —
  /// setup cost is outside all measured regions in the paper as well).
  template <typename T>
  DeviceBuffer<T> alloc_zero(std::size_t n, std::string_view name = {}) {
    DeviceBuffer<T> b = alloc<T>(n, name);
    std::memset(static_cast<void*>(b.data()), 0, b.size_bytes());
    if (sanitizer_) sanitizer_->mark_initialized(b.data(), b.size_bytes());
    return b;
  }

  /// Copy host data into a fresh device buffer, recording a H2D transfer.
  template <typename T>
  DeviceBuffer<T> to_device(std::span<const T> host, std::string label = {}) {
    DeviceBuffer<T> b = alloc<T>(host.size(), label);
    std::memcpy(b.data(), host.data(), host.size_bytes());
    if (sanitizer_) sanitizer_->mark_initialized(b.data(), host.size_bytes());
    events_.push_back(MemcpyEvent{MemcpyEvent::Dir::kHostToDevice,
                                  host.size_bytes(), std::move(label)});
    return b;
  }

  /// Copy host data into an existing device buffer WITHOUT recording a
  /// transfer — for staging inputs before a timed region (the paper's
  /// measurements start with the data already resident on the device).
  template <typename T>
  void upload(DeviceBuffer<T> dst, std::span<const T> src) {
    if (src.size() > dst.size()) {
      throw std::out_of_range("upload: source larger than destination");
    }
    std::memcpy(dst.data(), src.data(), src.size_bytes());
    if (sanitizer_) sanitizer_->mark_initialized(dst.data(), src.size_bytes());
  }

  /// Copy host data into an existing device buffer AND record a H2D
  /// transfer — the allocation-free counterpart of to_device() for two-phase
  /// algorithms whose run() must not allocate: the destination is a
  /// pre-planned workspace segment.  Records the same MemcpyEvent
  /// (bytes + label) a to_device() of `src` would, so the event stream stays
  /// bit-identical across the one-phase and two-phase entry points.
  template <typename T>
  void upload_recorded(DeviceBuffer<T> dst, std::span<const T> src,
                       std::string label = {}) {
    if (src.size() > dst.size()) {
      throw std::out_of_range(
          "upload_recorded: source larger than destination");
    }
    std::memcpy(dst.data(), src.data(), src.size_bytes());
    if (sanitizer_) sanitizer_->mark_initialized(dst.data(), src.size_bytes());
    events_.push_back(MemcpyEvent{MemcpyEvent::Dir::kHostToDevice,
                                  src.size_bytes(), std::move(label)});
  }

  /// Host-side element fill of a device buffer (cudaMemset-style setup,
  /// outside the recorded stream; use a kernel for accounted clears inside
  /// timed regions).
  template <typename T>
  void fill(DeviceBuffer<T> b, const T& value) {
    std::fill(b.data(), b.data() + b.size(), value);
    if (sanitizer_) sanitizer_->mark_initialized(b.data(), b.size_bytes());
  }

  /// Host-side byte memset of a device buffer (cudaMemset analogue, outside
  /// the recorded stream).
  template <typename T>
  void memset_device(DeviceBuffer<T> b, int byte_value = 0) {
    std::memset(static_cast<void*>(b.data()), byte_value, b.size_bytes());
    if (sanitizer_) sanitizer_->mark_initialized(b.data(), b.size_bytes());
  }

  /// Copy a device buffer back to the host, recording a D2H transfer.
  /// Like cudaMemcpy, this synchronizes the host with the device.
  template <typename T>
  std::vector<T> to_host(DeviceBuffer<T> buf, std::string label = {}) {
    std::vector<T> out(buf.size());
    if (sanitizer_) {
      sanitizer_->check_host_read(buf.data(), buf.size_bytes(), label);
    }
    std::memcpy(out.data(), buf.data(), buf.size_bytes());
    events_.push_back(MemcpyEvent{MemcpyEvent::Dir::kDeviceToHost,
                                  buf.size_bytes(), std::move(label)});
    return out;
  }

  /// Copy a prefix of a device buffer to host storage (D2H transfer).
  template <typename T>
  void copy_to_host(DeviceBuffer<T> buf, std::span<T> out,
                    std::string label = {}) {
    if (out.size() > buf.size()) {
      throw std::out_of_range("copy_to_host: destination larger than buffer");
    }
    if (sanitizer_) {
      sanitizer_->check_host_read(buf.data(), out.size_bytes(), label);
    }
    std::memcpy(out.data(), buf.data(), out.size_bytes());
    events_.push_back(MemcpyEvent{MemcpyEvent::Dir::kDeviceToHost,
                                  out.size_bytes(), std::move(label)});
  }

  /// ---- Sanitizer (simcheck) --------------------------------------------

  /// Attach a fresh sanitizer; all subsequent allocations and kernel
  /// launches are checked.  Storage allocated before this call is unknown to
  /// the shadow and silently skipped.  Default: no sanitizer, zero cost.
  void enable_sanitizer(SanitizerConfig cfg = {}) {
    sanitizer_ = std::make_unique<Sanitizer>(cfg);
  }

  void disable_sanitizer() { sanitizer_.reset(); }

  /// The attached sanitizer, or nullptr when checking is off.
  [[nodiscard]] Sanitizer* sanitizer() const { return sanitizer_.get(); }

  /// Allocation mark for stack-style scratch release.
  struct MemoryMark {
    std::size_t chunk_index = 0;
    std::size_t chunk_offset = 0;
    std::size_t live_bytes = 0;
    std::uint64_t alloc_seq = 0;
  };

  [[nodiscard]] MemoryMark mark() const {
    return {chunks_.size() == 0 ? 0 : active_chunk_, active_offset_,
            live_bytes_, alloc_seq_};
  }

  /// Roll allocation state back to `m`.  Buffers allocated after the mark
  /// become invalid (their storage may be reused by later allocations).
  void release_to(const MemoryMark& m) {
    active_chunk_ = m.chunk_index;
    active_offset_ = m.chunk_offset;
    live_bytes_ = m.live_bytes;
    if (sanitizer_) sanitizer_->on_release(m.alloc_seq);
  }

  [[nodiscard]] std::size_t live_bytes() const {
    return live_bytes_ + pool_live_bytes_;
  }
  [[nodiscard]] std::size_t peak_live_bytes() const { return peak_bytes_; }
  void reset_peak_live_bytes() { peak_bytes_ = live_bytes(); }

  /// Count of alloc<T>() calls since construction.  Two-phase run() paths
  /// must not allocate: benches snapshot this counter around timed regions
  /// and gate the delta at zero (register_region() does not count — binding
  /// a pooled workspace is not an allocation).
  [[nodiscard]] std::uint64_t alloc_calls() const { return alloc_calls_; }

  /// ---- Pooled workspaces ------------------------------------------------

  /// Pool of retained slabs Workspace binds draw from (see workspace.hpp).
  [[nodiscard]] MemoryPool& memory_pool() { return memory_pool_; }

  /// Workspace slab checkout, with modeled-memory accounting: slab bytes
  /// count toward live_bytes()/peak_live_bytes() like arena allocations, but
  /// are tracked outside the arena's mark()/release_to() stack (a workspace
  /// may be bound inside a ScopedWorkspace region and released after it).
  [[nodiscard]] MemoryPool::Slab pool_acquire(std::size_t bytes) {
    MemoryPool::Slab s = memory_pool_.acquire(bytes);
    pool_live_bytes_ += s.bytes;
    peak_bytes_ = std::max(peak_bytes_, live_bytes());
    return s;
  }

  /// Return a workspace slab to the pool (see MemoryPool::release).
  void pool_release(MemoryPool::Slab&& slab, bool poison) {
    if (!slab.empty()) pool_live_bytes_ -= slab.bytes;
    memory_pool_.release(std::move(slab), poison);
  }

  /// Introduce an externally owned storage region (a workspace segment) to
  /// the device, as if it had just been allocated: the sanitizer opens a
  /// fresh shadow region for it — evicting any overlapping region from an
  /// earlier bind, so data left by a previous layout reads as uninitialized
  /// — and attributes subsequent accesses to `name`.  No storage changes
  /// hands and alloc_calls() is not bumped.
  void register_region(const void* base, std::size_t elems,
                       std::size_t elem_size, std::string_view name) {
    ++alloc_seq_;
    if (sanitizer_) {
      sanitizer_->on_alloc(base, elems, elem_size, std::string(name),
                           alloc_seq_);
    }
  }

  /// ---- Host/device interaction events ----------------------------------

  /// cudaDeviceSynchronize analogue: the host blocks until the device
  /// drains.  Charged by the cost model.
  void synchronize(std::string label = {}) {
    events_.push_back(SyncEvent{std::move(label)});
  }

  /// Record host-side CPU work of roughly `host_ops` scalar operations
  /// (used by baselines that process intermediate data on the CPU).
  void host_compute(std::string label, std::uint64_t host_ops) {
    events_.push_back(HostComputeEvent{std::move(label), host_ops});
  }

  void record_kernel(KernelStats stats) {
    events_.push_back(KernelEvent{std::move(stats)});
  }

  [[nodiscard]] const EventLog& events() const { return events_; }
  EventLog take_events() { return std::exchange(events_, {}); }
  void clear_events() { events_.clear(); }

  [[nodiscard]] ThreadPool& pool() const { return ThreadPool::instance(); }

 private:
  static constexpr std::size_t kChunkBytes = std::size_t{64} << 20;
  static constexpr std::size_t kAlign = 256;

  struct Chunk {
    std::unique_ptr<std::byte[]> storage;
    std::byte* base = nullptr;  // storage aligned up to kAlign
    std::size_t capacity = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t /*align*/) {
    const std::size_t rounded = (bytes + kAlign - 1) / kAlign * kAlign;
    if (chunks_.empty()) add_chunk(std::max(rounded, kChunkBytes));
    if (active_offset_ + rounded > chunks_[active_chunk_].capacity) {
      // Advance to the next chunk that fits, appending one if needed.
      std::size_t next = active_chunk_ + 1;
      while (next < chunks_.size() && chunks_[next].capacity < rounded) ++next;
      if (next == chunks_.size()) add_chunk(std::max(rounded, kChunkBytes));
      active_chunk_ = next;
      active_offset_ = 0;
    }
    std::byte* p = chunks_[active_chunk_].base + active_offset_;
    active_offset_ += rounded;
    live_bytes_ += rounded;
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
    return p;
  }

  void add_chunk(std::size_t capacity) {
    Chunk c;
    c.storage = std::make_unique<std::byte[]>(capacity + kAlign);
    const auto addr = reinterpret_cast<std::uintptr_t>(c.storage.get());
    const std::uintptr_t aligned = (addr + kAlign - 1) / kAlign * kAlign;
    c.base = c.storage.get() + (aligned - addr);
    c.capacity = capacity;
    chunks_.push_back(std::move(c));
  }

  DeviceSpec spec_;
  std::vector<Chunk> chunks_;
  std::size_t active_chunk_ = 0;
  std::size_t active_offset_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::uint64_t alloc_seq_ = 0;
  std::uint64_t alloc_calls_ = 0;
  EventLog events_;
  std::unique_ptr<Sanitizer> sanitizer_;
  MemoryPool memory_pool_;
  std::size_t pool_live_bytes_ = 0;
};

/// RAII guard releasing all device allocations made during its lifetime.
class ScopedWorkspace {
 public:
  explicit ScopedWorkspace(Device& dev) : dev_(dev), mark_(dev.mark()) {}
  ~ScopedWorkspace() { dev_.release_to(mark_); }
  ScopedWorkspace(const ScopedWorkspace&) = delete;
  ScopedWorkspace& operator=(const ScopedWorkspace&) = delete;

 private:
  Device& dev_;
  Device::MemoryMark mark_;
};

}  // namespace simgpu
