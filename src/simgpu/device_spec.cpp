#include "simgpu/device_spec.hpp"

namespace simgpu {

DeviceSpec DeviceSpec::a100() {
  DeviceSpec s;
  s.name = "A100";
  s.sm_count = 108;
  s.mem_bandwidth_gbps = 1555.0;
  s.core_clock_ghz = 1.41;
  s.lane_ops_per_clock = 64.0;
  s.saturating_warps_per_sm = 8;
  s.max_warps_per_sm = 64;
  s.shared_mem_per_block = 164 * 1024;
  return s;
}

DeviceSpec DeviceSpec::h100() {
  DeviceSpec s;
  s.name = "H100";
  s.sm_count = 132;
  s.mem_bandwidth_gbps = 3350.0;
  s.core_clock_ghz = 1.83;
  s.lane_ops_per_clock = 128.0;
  s.saturating_warps_per_sm = 8;
  s.max_warps_per_sm = 64;
  s.shared_mem_per_block = 228 * 1024;
  return s;
}

DeviceSpec DeviceSpec::a10() {
  DeviceSpec s;
  s.name = "A10";
  s.sm_count = 72;
  s.mem_bandwidth_gbps = 600.0;
  s.core_clock_ghz = 1.70;
  s.lane_ops_per_clock = 128.0;
  s.saturating_warps_per_sm = 12;
  s.max_warps_per_sm = 48;
  s.shared_mem_per_block = 100 * 1024;
  return s;
}

}  // namespace simgpu
