#pragma once

#include <cstddef>
#include <string>

namespace simgpu {

/// Static description of a simulated CUDA-class accelerator.
///
/// The numbers drive the analytic cost model (see cost_model.hpp): kernel
/// durations are derived from counted device-memory traffic, lane operations
/// and launch/synchronization overheads, scaled by how much of the device the
/// launch shape can actually occupy.  Profiles for the three GPUs used in the
/// paper (A100, H100, A10) are provided as named constructors.
struct DeviceSpec {
  std::string name;

  /// Number of streaming multiprocessors.
  int sm_count = 108;
  /// Peak device-memory bandwidth in GB/s (1e9 bytes per second).
  double mem_bandwidth_gbps = 1555.0;
  /// Fraction of peak bandwidth reachable by a well-tuned streaming kernel.
  double mem_efficiency = 0.92;
  /// Core clock in GHz.
  double core_clock_ghz = 1.41;
  /// FP32/INT32 lane operations retired per SM per clock.
  double lane_ops_per_clock = 64.0;
  /// Resident warps per SM needed to saturate memory bandwidth.
  int saturating_warps_per_sm = 8;
  /// Maximum resident warps per SM (occupancy ceiling).
  int max_warps_per_sm = 64;
  /// Shared memory available to one thread block, in bytes.
  std::size_t shared_mem_per_block = 48 * 1024;
  /// 32-bit registers available per thread.
  int registers_per_thread = 255;
  /// Same-address (contended) global atomics retired per second.
  double atomic_ops_per_sec = 8e9;
  /// Distinct-address global atomics per second (spread over L2 slices).
  double scattered_atomic_ops_per_sec = 5e10;

  /// Host-side cost of issuing one kernel launch, microseconds.
  double kernel_launch_overhead_us = 2.5;
  /// Minimum duration of any kernel on the device, microseconds.
  double min_kernel_duration_us = 3.0;
  /// Host<->device synchronization overhead, microseconds.
  double host_sync_overhead_us = 10.0;
  /// PCIe transfer latency, microseconds.
  double pcie_latency_us = 8.0;
  /// PCIe bandwidth in GB/s.
  double pcie_bandwidth_gbps = 25.0;
  /// Host scalar throughput for intermediate CPU work, ops per second.
  double host_ops_per_sec = 1.5e9;

  /// Largest single-plan selection input (batch * n keys) one device accepts.
  /// A policy ceiling, not a byte count: real devices derive it from memory
  /// capacity minus algorithm scratch headroom, and plan_select() rejects
  /// anything above it with a message pointing at the sharded path
  /// (topk::shard splits oversized rows across a device pool and merges the
  /// per-shard candidates).  The default sits above every paper sweep shape;
  /// scale-out tests and the shard demo cap it (e.g. at 2^22) to force
  /// sharding.
  std::size_t max_select_elems = std::size_t{1} << 28;

  /// Peak device-memory bandwidth in bytes per microsecond.
  [[nodiscard]] double mem_bytes_per_us() const {
    return mem_bandwidth_gbps * 1e3;
  }
  /// Peak lane-op throughput in ops per microsecond.
  [[nodiscard]] double lane_ops_per_us() const {
    return static_cast<double>(sm_count) * lane_ops_per_clock * core_clock_ghz *
           1e3;
  }
  /// PCIe bandwidth in bytes per microsecond.
  [[nodiscard]] double pcie_bytes_per_us() const {
    return pcie_bandwidth_gbps * 1e3;
  }

  /// NVIDIA A100 SXM4 80GB (the paper's primary device).
  static DeviceSpec a100();
  /// NVIDIA H100 SXM5.
  static DeviceSpec h100();
  /// NVIDIA A10 (inference-class device).
  static DeviceSpec a10();
};

}  // namespace simgpu
