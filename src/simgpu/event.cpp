#include "simgpu/event.hpp"

#include <sstream>

namespace simgpu {

std::string describe(const Event& event) {
  std::ostringstream os;
  if (const auto* k = std::get_if<KernelEvent>(&event)) {
    os << "kernel " << k->stats.name << " <<<" << k->stats.grid_blocks << ", "
       << k->stats.block_threads << ">>> read=" << k->stats.bytes_read
       << "B written=" << k->stats.bytes_written
       << "B ops=" << k->stats.lane_ops;
  } else if (const auto* m = std::get_if<MemcpyEvent>(&event)) {
    os << (m->dir == MemcpyEvent::Dir::kHostToDevice ? "MemcpyHtoD"
                                                     : "MemcpyDtoH")
       << " " << m->bytes << "B";
    if (!m->label.empty()) os << " (" << m->label << ")";
  } else if (const auto* s = std::get_if<SyncEvent>(&event)) {
    os << "sync";
    if (!s->label.empty()) os << " (" << s->label << ")";
  } else if (const auto* h = std::get_if<HostComputeEvent>(&event)) {
    os << "host " << h->label << " ops=" << h->host_ops;
  }
  return os.str();
}

}  // namespace simgpu
