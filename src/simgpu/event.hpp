#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace simgpu {

/// Aggregated resource usage of one kernel execution, accumulated from the
/// per-block counters while the kernel runs.  These numbers feed the cost
/// model; they are what a profiler would report as memory/compute throughput
/// sources on real hardware.
struct KernelStats {
  /// Kernel name.  A view, not an owning string, so recording a kernel event
  /// performs no heap allocation on the hot path: launch sites name kernels
  /// with string literals, and dynamically built names (per-pass suffixes)
  /// must be interned once via simgpu::intern_name(), whose storage is
  /// permanent.
  std::string_view name;
  int grid_blocks = 0;
  int block_threads = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t lane_ops = 0;
  /// Contended atomics (many threads updating the same counter).
  std::uint64_t atomic_ops = 0;
  /// Scattered atomics (distinct addresses, e.g. histogram-bin flushes);
  /// these distribute across L2 slices and are much cheaper.
  std::uint64_t scattered_atomic_ops = 0;
  std::uint64_t block_syncs = 0;
  /// Heaviest single block's device traffic / lane ops: a kernel cannot
  /// finish before its straggler block does (load imbalance matters for
  /// last-block reductions and single-block merge phases).
  std::uint64_t max_block_bytes = 0;
  std::uint64_t max_block_lane_ops = 0;

  [[nodiscard]] int warps_per_block() const { return block_threads / 32; }
  [[nodiscard]] std::uint64_t bytes_total() const {
    return bytes_read + bytes_written;
  }
};

/// A kernel launch recorded on the device timeline.  Launches are
/// asynchronous with respect to the host: the host pays only the launch
/// overhead and continues.
struct KernelEvent {
  KernelStats stats;
};

/// A host<->device copy.  Like cudaMemcpy, a copy synchronizes the host with
/// the device before the transfer starts.
struct MemcpyEvent {
  enum class Dir { kHostToDevice, kDeviceToHost };
  Dir dir = Dir::kHostToDevice;
  std::uint64_t bytes = 0;
  std::string label;
};

/// An explicit host-side synchronization (cudaDeviceSynchronize analogue).
struct SyncEvent {
  std::string label;
};

/// Host-side CPU work between device operations (e.g. the prefix-sum the
/// host-managed RadixSelect baseline performs on a copied-back histogram).
struct HostComputeEvent {
  std::string label;
  std::uint64_t host_ops = 0;
};

using Event = std::variant<KernelEvent, MemcpyEvent, SyncEvent, HostComputeEvent>;

using EventLog = std::vector<Event>;

/// Human-readable one-line description of an event (used by the timeline
/// renderer and in test diagnostics).
std::string describe(const Event& event);

}  // namespace simgpu
