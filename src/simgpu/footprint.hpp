#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// Kernel footprint contracts.
///
/// A KernelFootprint declares, per operand, how a kernel touches device
/// memory: the access mode (read / write / read-write / atomic), the write
/// scope (which concurrency discipline makes concurrent writes safe), and a
/// conservative element-count bound expressed as an affine function of the
/// launch shape (n, k, batch, grid, block) via AffineExpr.  Footprints are
/// registered once per kernel name at *plan* time and consumed by two
/// independent checkers:
///
///  - simgpu::launch cross-checks the observed KernelStats against the
///    declaration in debug builds (see check_launch_against_footprint), so a
///    contract that drifts from the kernel it describes fails the first
///    debug-mode test run that launches it — contracts can't rot.
///  - topk::verify::audit_schedule walks a plan's recorded KernelSchedule
///    symbolically against its WorkspaceLayout and proves segment sizing,
///    initialization order, write-race freedom and segment lifetimes without
///    executing anything (see src/verify/plan_audit.hpp).
///
/// The checking is strictly post-hoc and read-only: it never touches
/// BlockCounters, KernelStats or the event log, so modeled time stays
/// bit-identical with checking on or off.
namespace simgpu {

/// How a kernel operand touches its buffer.
enum class Access : std::uint8_t {
  kRead,       ///< element loads only
  kWrite,      ///< element stores only
  kReadWrite,  ///< both plain loads and stores
  kAtomic,     ///< atomic RMW / atomic load / atomic store traffic
};

/// Concurrency discipline that makes a *written* operand safe when the
/// launch has more than one block.  Purely declarative — the static auditor
/// uses it to tell protocol-safe concurrent writes from genuine races.
enum class WriteScope : std::uint8_t {
  kNone,        ///< not written (read-only operands)
  kBlockLocal,  ///< blocks write disjoint ranges (block_chunk / per-problem)
  kReserved,    ///< positions reserved through an atomic cursor before the
                ///< store (AggregatedAppender / ScatterWriter protocols)
  kSingleBlock, ///< safe only when grid == 1 (serial scan / memset / emit)
};

/// Variables an AffineExpr term can reference.  All evaluate from the launch
/// shape except kSegElems, which stands for "the element count of whatever
/// workspace segment this operand is bound to" — the escape hatch for bounds
/// that are data- or tuning-dependent (candidate buffers, partial lists).
/// kSegElems is evaluable only by the plan auditor (which knows the bound
/// segment); the launch-time checker skips ceilings that involve it.
enum class AffineVar : std::uint8_t {
  kOne,       ///< the constant 1
  kN,         ///< per-problem input length
  kK,         ///< selection size
  kBatch,     ///< number of problems covered by the launch
  kBatchN,    ///< batch * n
  kBatchK,    ///< batch * k
  kGrid,      ///< grid blocks of the launch
  kBlock,     ///< threads per block
  kSegElems,  ///< element count of the bound segment (audit-time only)
};

/// One term of an affine bound: ceil(mul * var / div) elements.  The ceiling
/// division covers per-block partitioning bounds such as ceil(n / grid).
struct AffineTerm {
  AffineVar var = AffineVar::kOne;
  std::uint64_t mul = 1;
  std::uint64_t div = 1;
};

/// Conservative element-count bound: the sum of its terms.
struct AffineExpr {
  std::vector<AffineTerm> terms;

  AffineExpr() = default;
  AffineExpr(std::initializer_list<AffineTerm> t) : terms(t) {}

  [[nodiscard]] bool references(AffineVar v) const {
    for (const AffineTerm& t : terms) {
      if (t.var == v) return true;
    }
    return false;
  }
};

/// Shape bindings for AffineExpr evaluation.  `seg_elems` may be left 0 when
/// the expression does not reference kSegElems (launch-time checking).
struct ShapeBindings {
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  std::uint64_t batch = 0;
  std::uint64_t grid = 0;
  std::uint64_t block = 0;
  std::uint64_t seg_elems = 0;
};

[[nodiscard]] inline std::uint64_t eval(const AffineExpr& e,
                                        const ShapeBindings& s) {
  std::uint64_t total = 0;
  for (const AffineTerm& t : e.terms) {
    std::uint64_t v = 0;
    switch (t.var) {
      case AffineVar::kOne: v = 1; break;
      case AffineVar::kN: v = s.n; break;
      case AffineVar::kK: v = s.k; break;
      case AffineVar::kBatch: v = s.batch; break;
      case AffineVar::kBatchN: v = s.batch * s.n; break;
      case AffineVar::kBatchK: v = s.batch * s.k; break;
      case AffineVar::kGrid: v = s.grid; break;
      case AffineVar::kBlock: v = s.block; break;
      case AffineVar::kSegElems: v = s.seg_elems; break;
    }
    const std::uint64_t div = t.div == 0 ? 1 : t.div;
    total += (t.mul * v + div - 1) / div;
  }
  return total;
}

/// One declared operand of a kernel.
struct OperandSpec {
  /// Role name; the KernelSchedule's OperandBind entries use the same
  /// spelling to attach workspace segments to roles.
  std::string name;
  Access access = Access::kRead;
  WriteScope scope = WriteScope::kNone;
  /// Conservative bound on the highest element index touched + 1.
  AffineExpr extent;
  /// Conservative bytes per element (used only for launch-time byte
  /// ceilings; declare the max the kernel template can instantiate with, so
  /// e.g. value-typed operands declare 8 even when runs use float).
  std::size_t elem_size = 4;
  /// Optional operands (external index buffers, direct-output alternates)
  /// may be left unbound by a schedule step.
  bool optional = false;
};

[[nodiscard]] inline bool is_readable(Access a) {
  return a == Access::kRead || a == Access::kReadWrite;
}
[[nodiscard]] inline bool is_writable(Access a) {
  return a == Access::kWrite || a == Access::kReadWrite;
}
/// Whether the operand's contents are consumed (its segment must have been
/// written first).  Atomic RMW reads the previous value, so it counts.
[[nodiscard]] inline bool consumes(Access a) {
  return a != Access::kWrite;
}
/// Whether the operand's segment holds (possibly partial) results afterward.
[[nodiscard]] inline bool produces(Access a) {
  return a != Access::kRead;
}

/// Declared footprint of one kernel.  `kernel` is the kernel's name as it
/// appears in LaunchConfig; per-pass kernels whose names carry a "(pass)"
/// suffix (e.g. "Filter(2)") register under the bare family name ("Filter")
/// and lookups strip the suffix.
struct KernelFootprint {
  std::string kernel;
  std::vector<OperandSpec> operands;
};

namespace footprint_detail {

struct Registry {
  std::mutex mu;
  std::map<std::string, KernelFootprint, std::less<>> by_name;
};

inline Registry& registry() {
  static Registry r;
  return r;
}

/// "Filter(2)" -> "Filter"; names without a "(digits)" suffix are returned
/// unchanged.
[[nodiscard]] inline std::string_view strip_pass_suffix(
    std::string_view name) {
  if (name.empty() || name.back() != ')') return name;
  const std::size_t open = name.rfind('(');
  if (open == std::string_view::npos || open == 0) return name;
  for (std::size_t i = open + 1; i + 1 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return name;
  }
  return name.substr(0, open);
}

}  // namespace footprint_detail

/// Register a kernel footprint.  Idempotent by kernel name: the first
/// registration wins and later identical-name registrations are ignored, so
/// plan functions may register unconditionally on every call.  Because of
/// this, extents must be shape-generic — never fold a plan-specific constant
/// (a digit width, an adaptive buffer divisor) into a coefficient; use
/// AffineVar::kSegElems for bounds that depend on tuning options.
inline void register_footprint(KernelFootprint fp) {
  auto& reg = footprint_detail::registry();
  const std::scoped_lock lock(reg.mu);
  reg.by_name.try_emplace(fp.kernel, std::move(fp));
}

/// Look up a footprint by launch name; per-pass "(digits)" suffixes fall
/// back to the bare family name.  Returns nullptr when none is registered.
/// The pointer stays valid for the process lifetime (registrations are never
/// removed).
[[nodiscard]] inline const KernelFootprint* find_footprint(
    std::string_view kernel) {
  auto& reg = footprint_detail::registry();
  const std::scoped_lock lock(reg.mu);
  auto it = reg.by_name.find(kernel);
  if (it == reg.by_name.end()) {
    it = reg.by_name.find(footprint_detail::strip_pass_suffix(kernel));
  }
  return it == reg.by_name.end() ? nullptr : &it->second;
}

/// All registered footprint names (sorted), for audit tooling.
[[nodiscard]] inline std::vector<std::string> registered_footprint_names() {
  auto& reg = footprint_detail::registry();
  const std::scoped_lock lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.by_name.size());
  for (const auto& [name, fp] : reg.by_name) names.push_back(name);
  return names;
}

/// ---- Recorded kernel schedules -------------------------------------------

/// Pseudo segment targets for the run-time buffers that are not workspace
/// segments: the external input and the two output buffers.
inline constexpr int kBindInput = -1;
inline constexpr int kBindOutVals = -2;
inline constexpr int kBindOutIdx = -3;

/// Binds one footprint operand role to a workspace segment (id >= 0) or one
/// of the pseudo targets above.  `access` is consulted only for host steps
/// (launch steps take access modes from the registered footprint).
struct OperandBind {
  std::string operand;
  int target = kBindInput;
  Access access = Access::kRead;
};

/// One step of a plan's execution, recorded at plan time.
struct KernelStep {
  enum class Kind : std::uint8_t {
    kLaunch,   ///< a device kernel launch (footprint-checked)
    kHost,     ///< host-side traffic: copy_to_host / upload_recorded /
               ///< host-side transforms touching workspace segments
    kRelease,  ///< the bound targets' lifetimes end here
  };
  Kind kind = Kind::kLaunch;
  std::string_view name;  ///< kernel name (interned) or a host-step label
  int grid = 1;
  int block_threads = 1;
  std::size_t batch = 0;  ///< problems covered by this step
  std::size_t n = 0;
  std::size_t k = 0;
  std::vector<OperandBind> binds;
};

/// The kernel sequence a plan will execute, in order, with every operand ->
/// segment binding made explicit.  Algorithms with data-dependent control
/// flow (iterative filtering, early stopping) record a conservative nominal
/// unrolling: the first pass from the input plus one representative pass
/// from the candidate buffers, with extents bounded as if nothing had been
/// filtered — a superset of any real execution's footprint.
struct KernelSchedule {
  std::vector<KernelStep> steps;

  /// Append a launch step.  No-op helper-style overloads below accept a null
  /// schedule pointer so plan functions can record unconditionally.
  void add_launch(std::string_view kernel, int grid, int block_threads,
                  std::size_t batch, std::size_t n, std::size_t k,
                  std::vector<OperandBind> binds) {
    KernelStep s;
    s.kind = KernelStep::Kind::kLaunch;
    s.name = kernel;
    s.grid = grid;
    s.block_threads = block_threads;
    s.batch = batch;
    s.n = n;
    s.k = k;
    s.binds = std::move(binds);
    steps.push_back(std::move(s));
  }

  void add_host(std::string_view label, std::vector<OperandBind> binds) {
    KernelStep s;
    s.kind = KernelStep::Kind::kHost;
    s.name = label;
    s.binds = std::move(binds);
    steps.push_back(std::move(s));
  }

  void add_release(std::vector<int> targets) {
    KernelStep s;
    s.kind = KernelStep::Kind::kRelease;
    s.name = "release";
    for (int t : targets) s.binds.push_back({"", t, Access::kRead});
    steps.push_back(std::move(s));
  }
};

/// Null-tolerant recording helpers: plan functions take an optional
/// KernelSchedule* and call these unconditionally.
inline void record_launch(KernelSchedule* sched, std::string_view kernel,
                          int grid, int block_threads, std::size_t batch,
                          std::size_t n, std::size_t k,
                          std::vector<OperandBind> binds) {
  if (sched == nullptr) return;
  sched->add_launch(kernel, grid, block_threads, batch, n, k,
                    std::move(binds));
}

inline void record_host(KernelSchedule* sched, std::string_view label,
                        std::vector<OperandBind> binds) {
  if (sched == nullptr) return;
  sched->add_host(label, std::move(binds));
}

/// ---- Launch-time contract cross-check ------------------------------------

/// Whether simgpu::launch cross-checks KernelStats against registered
/// footprints.  Defaults on in debug builds (NDEBUG off), off in release;
/// the environment variable TOPK_FOOTPRINT_CHECK overrides either way
/// ("0" disables, anything else enables).
[[nodiscard]] inline bool footprint_check_enabled() {
  static const bool enabled = [] {
    if (const char* v = std::getenv("TOPK_FOOTPRINT_CHECK")) {
      return !(v[0] == '0' && v[1] == '\0');
    }
#ifndef NDEBUG
    return true;
#else
    return false;
#endif
  }();
  return enabled;
}

/// Thrown when an observed launch contradicts the kernel's declared
/// footprint.
class FootprintViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Cross-check one launch's observed counters against the registered
/// footprint for `kernel` (no-op when none is registered).
///
/// Two families of checks:
///  - direction consistency (shape-free): observed reads require a readable
///    operand, observed writes a writable one, observed atomics an atomic
///    one — catches access-mode rot on every launch;
///  - byte ceilings (only when the launch site supplied shape context,
///    batch > 0): bytes_read / bytes_written must not exceed the summed
///    declared extents of the readable / writable operands.  A ceiling whose
///    operands include a kSegElems-bounded extent is skipped — that bound is
///    only evaluable by the plan auditor.
///
/// Atomic traffic is charged to atomic counters, never bytes, so atomic
/// operands never contribute to the byte ceilings.
inline void check_launch_against_footprint(
    std::string_view kernel, std::uint64_t bytes_read,
    std::uint64_t bytes_written, std::uint64_t atomic_ops, int grid,
    int block_threads, std::size_t batch, std::size_t n, std::size_t k) {
  const KernelFootprint* fp = find_footprint(kernel);
  if (fp == nullptr) return;

  bool any_read = false, any_write = false, any_atomic = false;
  for (const OperandSpec& op : fp->operands) {
    any_read = any_read || is_readable(op.access);
    any_write = any_write || is_writable(op.access);
    any_atomic = any_atomic || op.access == Access::kAtomic;
  }
  const auto fail = [&](const std::string& what) {
    throw FootprintViolation("footprint contract violated by kernel '" +
                             std::string(kernel) + "': " + what);
  };
  if (bytes_read > 0 && !any_read) {
    fail("observed " + std::to_string(bytes_read) +
         " bytes read but no operand is declared readable");
  }
  if (bytes_written > 0 && !any_write) {
    fail("observed " + std::to_string(bytes_written) +
         " bytes written but no operand is declared writable");
  }
  if (atomic_ops > 0 && !any_atomic) {
    fail("observed " + std::to_string(atomic_ops) +
         " atomic ops but no operand is declared atomic");
  }

  if (batch == 0) return;  // no shape context at this launch site
  ShapeBindings shape;
  shape.n = n;
  shape.k = k;
  shape.batch = batch;
  shape.grid = static_cast<std::uint64_t>(grid);
  shape.block = static_cast<std::uint64_t>(block_threads);

  const auto ceiling = [&](bool want_read) -> std::uint64_t {
    std::uint64_t total = 0;
    for (const OperandSpec& op : fp->operands) {
      const bool relevant =
          want_read ? is_readable(op.access) : is_writable(op.access);
      if (!relevant) continue;
      if (op.extent.references(AffineVar::kSegElems)) return 0;  // skip
      total += eval(op.extent, shape) *
               static_cast<std::uint64_t>(op.elem_size);
    }
    return total;
  };
  if (const std::uint64_t cap = ceiling(true);
      cap > 0 && bytes_read > cap) {
    fail("observed " + std::to_string(bytes_read) +
         " bytes read exceeds the declared ceiling of " +
         std::to_string(cap) + " bytes");
  }
  if (const std::uint64_t cap = ceiling(false);
      cap > 0 && bytes_written > cap) {
    fail("observed " + std::to_string(bytes_written) +
         " bytes written exceeds the declared ceiling of " +
         std::to_string(cap) + " bytes");
  }
}

}  // namespace simgpu
