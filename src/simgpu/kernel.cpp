#include "simgpu/kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace simgpu {

namespace {

/// -1 until first read, then 0/1.  Relaxed is enough: the switch is flipped
/// from the driving host thread between launches, never mid-kernel.
std::atomic<int> g_tile_path{-1};

int tile_path_from_env() {
  const char* v = std::getenv("TOPK_SIM_TILE");
  return (v != nullptr && std::string_view(v) == "0") ? 0 : 1;
}

}  // namespace

bool tile_path_enabled() {
  int v = g_tile_path.load(std::memory_order_relaxed);
  if (v < 0) {
    v = tile_path_from_env();
    g_tile_path.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_tile_path_enabled(bool enabled) {
  g_tile_path.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace simgpu
