#include "simgpu/kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

namespace simgpu {

namespace {

/// -1 until first read, then 0/1.  Relaxed is enough: the switches are
/// flipped from the driving host thread between launches, never mid-kernel.
std::atomic<int> g_tile_path{-1};
std::atomic<int> g_warpfast_path{-1};
std::atomic<int> g_pool{-1};

int toggle_from_env(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && std::string_view(v) == "0") ? 0 : 1;
}

bool lazy_toggle(std::atomic<int>& toggle, const char* env) {
  int v = toggle.load(std::memory_order_relaxed);
  if (v < 0) {
    v = toggle_from_env(env);
    toggle.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

}  // namespace

bool tile_path_enabled() { return lazy_toggle(g_tile_path, "TOPK_SIM_TILE"); }

void set_tile_path_enabled(bool enabled) {
  g_tile_path.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool warpfast_path_enabled() {
  return lazy_toggle(g_warpfast_path, "TOPK_SIM_WARPFAST");
}

void set_warpfast_path_enabled(bool enabled) {
  g_warpfast_path.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool pool_enabled() { return lazy_toggle(g_pool, "TOPK_SIM_POOL"); }

void set_pool_enabled(bool enabled) {
  g_pool.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::string_view intern_name(std::string_view name) {
  // std::set gives stable node addresses for the lifetime of the program;
  // the transparent comparator lets the lookup avoid a temporary string on
  // repeat interning.  Called at plan time only, so the mutex is cold.
  static std::mutex mu;
  static std::set<std::string, std::less<>>* names =
      new std::set<std::string, std::less<>>();  // leaked: views must outlive
                                                 // every event log
  std::lock_guard<std::mutex> lock(mu);
  auto it = names->find(name);
  if (it == names->end()) it = names->emplace(name).first;
  return *it;
}

}  // namespace simgpu
