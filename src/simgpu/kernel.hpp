#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "simgpu/buffer.hpp"
#include "simgpu/device.hpp"
#include "simgpu/footprint.hpp"
#include "simgpu/sanitizer.hpp"
#include "simgpu/shared_arena.hpp"
#include "simgpu/simd.hpp"

namespace simgpu {

inline constexpr int kWarpSize = 32;

/// Elements per tile used by the bulk device-memory accessors below and the
/// algorithm scan helpers: large enough to amortize the per-tile accounting
/// to noise, small enough that a staged tile (keys + indices) stays resident
/// in L1.
inline constexpr std::size_t kTileElems = 1024;

/// Runtime switch for the tile-granular fast path (BlockCtx::load_tile /
/// store_tile / for_each_elem and the algorithm scan loops built on them).
/// Default on; set the environment variable TOPK_SIM_TILE=0 to start
/// disabled.  The switch exists for A/B benchmarking (bench_substrate) and
/// the counter-invariance suite — KernelStats and modeled time are
/// bit-identical in both modes by construction, only wall-clock changes.
[[nodiscard]] bool tile_path_enabled();
void set_tile_path_enabled(bool enabled);

/// Runtime switch for the threshold-gated warp fast path of the WarpSelect
/// algorithm family (GridSelect shared/thread queues, WarpSelect,
/// BlockSelect, and the streaming SharedQueueEngine): warp rounds proven
/// candidate-free by a vectorized compare skip the exact ballot/insertion
/// emulation and bulk-charge the identical counters.  Default on; set
/// TOPK_SIM_WARPFAST=0 to start disabled.  The path additionally requires
/// the tile path (it scans load_tile spans) and is forced off while a
/// sanitizer is attached so simcheck observes every lane access —
/// BlockCtx::warpfast_enabled() is the combined gate kernels consult.
[[nodiscard]] bool warpfast_path_enabled();
void set_warpfast_path_enabled(bool enabled);

/// Runtime switch for the per-device MemoryPool (see memory_pool.hpp):
/// with the pool on, Workspace slabs released back to the pool are retained
/// and reused by size class; off, every release frees and every acquire
/// mallocs.  Default on; set TOPK_SIM_POOL=0 to start disabled.  The switch
/// exists for A/B benchmarking — allocation provenance never feeds the cost
/// model, so KernelStats and modeled time are bit-identical in both modes.
[[nodiscard]] bool pool_enabled();
void set_pool_enabled(bool enabled);

/// Intern a kernel/segment name into permanent storage and return a stable
/// view of it.  LaunchConfig and KernelStats hold string_views so recording
/// a kernel event never heap-allocates on the hot path; names built
/// dynamically (per-pass suffixes such as "Filter(2)") must be interned
/// once at *plan* time and the views reused across runs.  Interned storage
/// is never freed, so views outlive every plan and event log.  Idempotent:
/// interning the same spelling twice returns the same view.
[[nodiscard]] std::string_view intern_name(std::string_view name);

/// Largest number of warps one thread block can hold (1024 threads).
inline constexpr int kMaxWarpsPerBlock = 1024 / kWarpSize;

/// A warp: 32 lanes executed in lockstep by the emulator.  Kernels written
/// against this class are structured exactly like warp-synchronous CUDA
/// code: per-lane state lives in `std::array<T, 32>` "registers" and the
/// collective primitives (ballot, rank, reductions) have the same semantics
/// as `__ballot_sync` / `__popc` / shuffle-based reductions.
class Warp {
 public:
  /// `active_lane`, when provided, is updated with the lane currently
  /// executing inside each() — the sanitizer uses it for attribution.
  explicit Warp(int index, int* active_lane = nullptr)
      : index_(index), active_lane_(active_lane) {}

  [[nodiscard]] int index() const { return index_; }

  /// Execute `f(lane)` for each lane in order — the moral equivalent of one
  /// SIMT instruction region.
  template <typename F>
  void each(F&& f) const {
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (active_lane_ != nullptr) *active_lane_ = lane;
      f(lane);
    }
    if (active_lane_ != nullptr) *active_lane_ = -1;
  }

  /// __ballot_sync analogue: bit `lane` is set iff `pred(lane)` is true.
  template <typename Pred>
  [[nodiscard]] static std::uint32_t ballot(Pred&& pred) {
    std::uint32_t mask = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (pred(lane)) mask |= (1u << lane);
    }
    return mask;
  }

  [[nodiscard]] static int popc(std::uint32_t mask) {
    return std::popcount(mask);
  }

  /// Number of set bits strictly below `lane` — the exclusive rank used for
  /// the two-step insertion's storing positions.
  [[nodiscard]] static int rank_below(std::uint32_t mask, int lane) {
    return std::popcount(mask & ((1u << lane) - 1u));
  }

 private:
  int index_;
  int* active_lane_ = nullptr;
};

/// Resource counters accumulated by one thread block while it runs; flushed
/// into the kernel's KernelStats when the block retires.
struct BlockCounters {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t lane_ops = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t scattered_atomic_ops = 0;
  std::uint64_t block_syncs = 0;
};

/// Thrown when a kernel requests more shared memory than the device spec
/// provides per block (the analogue of a CUDA launch failure).
class SharedMemoryOverflow : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BlockCtx;

namespace detail {
/// Suppressed-access sink for out-of-bounds shared references.
template <typename T>
T* shared_sink() {
  static thread_local T sink{};
  return &sink;
}
}  // namespace detail

/// Reference into block shared memory, returned by SharedSpan::operator[].
/// Reads and writes route through the owning BlockCtx so the sanitizer can
/// shadow them; with checking off every operation degenerates to one null
/// test around the raw access.
template <typename T>
class SharedRef {
 public:
  SharedRef(BlockCtx* ctx, T* p) : ctx_(ctx), p_(p) {}

  operator T() const;                           // NOLINT: deliberate implicit
  SharedRef& operator=(T v);                    // NOLINT
  SharedRef& operator=(const SharedRef& other); // NOLINT: deep assign
  SharedRef(const SharedRef&) = default;

  T operator++();     ///< pre-increment, returns the new value
  T operator++(int);  ///< post-increment, returns the old value
  SharedRef& operator+=(T v);
  SharedRef& operator-=(T v);

 private:
  BlockCtx* ctx_;
  T* p_;
};

/// View of a block shared-memory allocation (what BlockCtx::shared returns).
/// Mirrors the std::span surface the kernels use, but indexes through
/// SharedRef so the sanitizer observes every element access, and refuses
/// out-of-range indices/subspans when checking is on.  Implicitly converts
/// to std::span<const T> for read-only helpers; there is deliberately no
/// implicit mutable-span conversion — raw writes would bypass the shadow
/// valid bits and poison uninitialized-read tracking.
template <typename T>
class SharedSpan {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;

  SharedSpan() = default;
  SharedSpan(BlockCtx* ctx, T* data, std::size_t size,
             std::size_t arena_offset)
      : ctx_(ctx), data_(data), size_(size), off_(arena_offset) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  SharedRef<T> operator[](std::size_t i) const;

  [[nodiscard]] SharedSpan subspan(std::size_t offset,
                                   std::size_t count) const {
    if (offset > size_ || count > size_ - offset) {
      throw std::out_of_range("SharedSpan::subspan: range exceeds span");
    }
    return SharedSpan(ctx_, data_ + offset, count, off_ + offset * sizeof(T));
  }

  /// Read-only raw view (element reads through it are not shadowed).
  operator std::span<const T>() const { return {data_, size_}; }  // NOLINT

  /// Raw mutable pointer for the tile fast path, or nullptr when the caller
  /// must go through SharedRef.  Non-null only when the tile path is enabled
  /// AND no sanitizer is attached: shared-memory accesses are not charged to
  /// BlockCounters, so writing through the raw pointer cannot perturb
  /// KernelStats, and with the sanitizer off there is no shadow state to
  /// keep element-exact.  Hot loops hoist this once and fall back to
  /// operator[] on nullptr.
  [[nodiscard]] T* unchecked_data() const;

 private:
  BlockCtx* ctx_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t off_ = 0;  ///< byte offset within the block's shared arena
};

/// Accounted scattered element stores (see BlockCtx::scatter_writer).
///
/// Kernels whose store destinations are data-dependent (radix scatter by
/// digit, filter compaction) cannot use store_tile, but when the per-element
/// store COUNT is known up front the byte accounting can still be bulk: the
/// factory pre-charges `count` element writes and put() degenerates to a raw
/// write.  With the tile path off, or with a sanitizer attached, put()
/// instead charges/shadows per element exactly like BlockCtx::store — the
/// caller contract (exactly `count` puts per writer) makes the charged
/// totals identical in every mode.
template <typename T>
class ScatterWriter {
 public:
  /// The hot branch is a raw store so it inlines into big scatter loops;
  /// the per-element charge/shadow mode lives out of line.
  void put(std::size_t i, T v) {
    if (bulk_charged_) {
      data_[i] = v;  // bounds unchecked, exactly like store() w/o simcheck
      return;
    }
    put_slow(i, v);
  }

 private:
  void put_slow(std::size_t i, T v);

  friend class BlockCtx;
  ScatterWriter(BlockCtx* ctx, const DeviceBuffer<T>& b, bool bulk_charged)
      : ctx_(ctx),
        data_(b.data()),
        size_(b.size()),
        bulk_charged_(bulk_charged) {}

  BlockCtx* ctx_;
  T* data_;
  std::size_t size_;
  bool bulk_charged_;
};

/// Execution context of one thread block.
///
/// One OS thread runs the whole block, iterating its warps with
/// `for_each_warp`.  A phase between two `sync()` calls must be written as a
/// single `for_each_warp` pass; because warps of a phase run to completion
/// before the next phase starts, `__syncthreads` semantics hold by
/// construction (sync() just counts the barrier for the cost model).
/// Different blocks of a grid run concurrently on the host thread pool, so
/// all grid-level cooperation (atomic result appends, last-block election)
/// is genuinely concurrent.
///
/// When the owning Device has a Sanitizer attached, every load/store/atomic
/// and every SharedRef access is shadow-checked (see sanitizer.hpp).  All
/// hooks are guarded by one null test, and the resource counters are bumped
/// identically with checking on or off, so modeled time and traffic are
/// bit-identical either way.
class BlockCtx {
 public:
  BlockCtx(int block_idx, int grid_dim, int block_threads,
           std::byte* shared_arena, std::size_t shared_capacity,
           Sanitizer* sanitizer = nullptr,
           std::string_view kernel_name = {},
           std::uint32_t launch_id = 0)
      : block_idx_(block_idx),
        grid_dim_(grid_dim),
        block_threads_(block_threads),
        shared_arena_(shared_arena),
        shared_capacity_(shared_capacity),
        san_(sanitizer),
        kernel_name_(kernel_name),
        launch_id_(launch_id) {
    if (san_ != nullptr) {
      sshadow_ = std::make_unique<SharedShadow>();
      sshadow_->cells.resize(shared_capacity_);
    }
    // Sampled once per block: the toggles are only flipped from the driving
    // host thread between launches, never while a grid is in flight.
    warpfast_ = tile_path_enabled() && warpfast_path_enabled() &&
                san_ == nullptr;
  }

  [[nodiscard]] int block_idx() const { return block_idx_; }
  [[nodiscard]] int grid_dim() const { return grid_dim_; }
  [[nodiscard]] int block_threads() const { return block_threads_; }
  [[nodiscard]] int num_warps() const { return block_threads_ / kWarpSize; }

  template <typename F>
  void for_each_warp(F&& f) {
    for (int w = 0; w < num_warps(); ++w) {
      active_warp_ = w;
      Warp warp(w, san_ != nullptr ? &active_lane_ : nullptr);
      f(warp);
    }
    active_warp_ = -1;
    active_lane_ = -1;
  }

  /// __syncthreads analogue; a semantic no-op by phase construction, counted
  /// for the cost model.  With the sanitizer on it also advances the shared
  /// -memory race epoch, and flags barriers issued from inside a warp region
  /// (on hardware those would not be reached uniformly by the block).
  void sync() {
    ++counters_.block_syncs;
    if (san_ != nullptr) {
      if (active_warp_ >= 0 && san_->config().check_sync) {
        SanitizerIssue issue;
        issue.kind = IssueKind::kSyncDivergence;
        issue.kernel = std::string(kernel_name_);
        issue.block = block_idx_;
        issue.warp = active_warp_;
        issue.lane = active_lane_;
        issue.detail =
            "sync() issued inside a for_each_warp region — the barrier is "
            "not reached uniformly by all warps of the block";
        san_->report(std::move(issue));
      }
      ++sync_epoch_;
    }
  }

  /// ---- Shared memory ----------------------------------------------------

  /// Allocate `n` elements of block shared memory (uninitialized).  `name`
  /// labels the allocation in sanitizer reports.
  template <typename T>
  SharedSpan<T> shared(std::size_t n, const char* name = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t align = alignof(T);
    std::size_t offset = (shared_offset_ + align - 1) / align * align;
    if (offset + n * sizeof(T) > shared_capacity_) {
      throw SharedMemoryOverflow(
          "shared memory request exceeds per-block capacity");
    }
    T* p = reinterpret_cast<T*>(shared_arena_ + offset);
    shared_offset_ = offset + n * sizeof(T);
    if (san_ != nullptr) {
      sshadow_->allocs.push_back(
          {offset, n * sizeof(T), name != nullptr ? name : "<shared>"});
    }
    return SharedSpan<T>(this, p, n, offset);
  }

  /// Allocate zero-initialized shared memory.
  template <typename T>
  SharedSpan<T> shared_zero(std::size_t n, const char* name = nullptr) {
    auto s = shared<T>(n, name);
    std::memset(static_cast<void*>(shared_arena_ + shared_offset_ -
                                   n * sizeof(T)),
                0, n * sizeof(T));
    if (san_ != nullptr) {
      const std::size_t begin = shared_offset_ - n * sizeof(T);
      for (std::size_t b = begin; b < shared_offset_; ++b) {
        sshadow_->cells[b].valid = true;
      }
    }
    return s;
  }

  /// ---- Accounted device memory access -----------------------------------

  template <typename T>
  T load(const DeviceBuffer<T>& b, std::size_t i) {
    counters_.bytes_read += sizeof(T);
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), true, false,
                          false)) {
      return T{};
    }
    return b.data()[i];
  }

  template <typename T>
  void store(const DeviceBuffer<T>& b, std::size_t i,
             std::type_identity_t<T> v) {
    counters_.bytes_written += sizeof(T);
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), false, true,
                          false)) {
      return;
    }
    b.data()[i] = v;
  }

  /// Atomic read-modify-write on device memory (atomicAdd analogue).
  /// Atomics are L2-resident on modern GPUs, so they are charged to the
  /// atomic counter rather than DRAM traffic.
  template <typename T>
  T atomic_add(const DeviceBuffer<T>& b, std::size_t i,
               std::type_identity_t<T> v) {
    ++counters_.atomic_ops;
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), true, true,
                          true)) {
      return T{};
    }
    std::atomic_ref<T> ref(b.data()[i]);
    return ref.fetch_add(v, std::memory_order_seq_cst);
  }

  /// Atomic add to an address that is NOT a contended hot counter — e.g.
  /// flushing a per-block shared-memory histogram into global bins.  Same
  /// semantics as atomic_add, charged at the scattered-atomic rate.
  template <typename T>
  T atomic_add_scattered(const DeviceBuffer<T>& b, std::size_t i,
                         std::type_identity_t<T> v) {
    ++counters_.scattered_atomic_ops;
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), true, true,
                          true)) {
      return T{};
    }
    std::atomic_ref<T> ref(b.data()[i]);
    return ref.fetch_add(v, std::memory_order_seq_cst);
  }

  template <typename T>
  T atomic_min(const DeviceBuffer<T>& b, std::size_t i,
               std::type_identity_t<T> v) {
    ++counters_.atomic_ops;
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), true, true,
                          true)) {
      return T{};
    }
    std::atomic_ref<T> ref(b.data()[i]);
    T cur = ref.load(std::memory_order_seq_cst);
    while (v < cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_seq_cst)) {
    }
    return cur;
  }

  template <typename T>
  T atomic_max(const DeviceBuffer<T>& b, std::size_t i,
               std::type_identity_t<T> v) {
    ++counters_.atomic_ops;
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), true, true,
                          true)) {
      return T{};
    }
    std::atomic_ref<T> ref(b.data()[i]);
    T cur = ref.load(std::memory_order_seq_cst);
    while (cur < v &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_seq_cst)) {
    }
    return cur;
  }

  /// Atomic load with acquire semantics (volatile read analogue).
  template <typename T>
  T atomic_load(const DeviceBuffer<T>& b, std::size_t i) {
    ++counters_.atomic_ops;
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), true, false,
                          true)) {
      return T{};
    }
    std::atomic_ref<T> ref(b.data()[i]);
    return ref.load(std::memory_order_seq_cst);
  }

  template <typename T>
  void atomic_store(const DeviceBuffer<T>& b, std::size_t i,
                    std::type_identity_t<T> v) {
    ++counters_.atomic_ops;
    if (san_ != nullptr &&
        !device_access_ok(b.data(), sizeof(T), i, b.size(), false, true,
                          true)) {
      return;
    }
    std::atomic_ref<T> ref(b.data()[i]);
    ref.store(v, std::memory_order_seq_cst);
  }

  /// ---- Tile-granular device memory access (fast path) --------------------
  ///
  /// Bulk counterparts of load/store.  They charge BlockCounters once per
  /// tile instead of once per element and expose contiguous spans the
  /// compiler can autovectorize, which is what lets the emulator touch each
  /// element through a wide, cheap path.  With a sanitizer attached every
  /// element of the tile is shadow-checked exactly as the scalar accessors
  /// would check it (simcheck loses no precision); counters are charged
  /// identically with checking on or off and identically to an equivalent
  /// sequence of scalar load/store calls, so KernelStats and modeled time
  /// are bit-identical across the scalar path, the tile path, and both
  /// simcheck modes.

  /// Accounted read of `count` contiguous elements starting at `first`.
  /// Returns a read-only view of the tile.  A tile reaching past the buffer
  /// extent is suppressed wholesale (empty span) and reported through the
  /// sanitizer when one is attached — the scalar path suppresses the same
  /// accesses element by element.
  template <typename T>
  [[nodiscard]] std::span<const T> load_tile(const DeviceBuffer<T>& b,
                                             std::size_t first,
                                             std::size_t count) {
    counters_.bytes_read += count * sizeof(T);
    if (count == 0) return {};
    if (first > b.size() || count > b.size() - first) {
      if (san_ != nullptr) {
        (void)device_access_ok(b.data(), sizeof(T),
                               first > b.size() ? first : b.size(), b.size(),
                               true, false, false);
      }
      return {};
    }
    if (san_ != nullptr) {
      for (std::size_t i = 0; i < count; ++i) {
        (void)device_access_ok(b.data(), sizeof(T), first + i, b.size(), true,
                               false, false);
      }
    }
    return {b.data() + first, count};
  }

  /// Accounted write of `src` into b[first, first + src.size()).  One memcpy
  /// when unchecked; per-element shadowed stores when the sanitizer is
  /// attached, so shadow valid bits and race slots stay element-exact.
  template <typename T>
  void store_tile(const DeviceBuffer<T>& b, std::size_t first,
                  std::span<const T> src) {
    counters_.bytes_written += src.size_bytes();
    if (src.empty()) return;
    if (first > b.size() || src.size() > b.size() - first) {
      if (san_ != nullptr) {
        (void)device_access_ok(b.data(), sizeof(T),
                               first > b.size() ? first : b.size(), b.size(),
                               false, true, false);
      }
      return;
    }
    if (san_ != nullptr) {
      for (std::size_t i = 0; i < src.size(); ++i) {
        if (device_access_ok(b.data(), sizeof(T), first + i, b.size(), false,
                             true, false)) {
          b.data()[first + i] = src[i];
        }
      }
      return;
    }
    std::memcpy(b.data() + first, src.data(), src.size_bytes());
  }

  /// Visit b[first + j] for j in [0, count), calling `f(j, value)` —
  /// tile-granular (kTileElems per tile) when the fast path is enabled,
  /// scalar load() per element otherwise.  The single entry point hot loops
  /// use so both paths share one body and charge identical counters.
  template <typename T, typename F>
  void for_each_elem(const DeviceBuffer<T>& b, std::size_t first,
                     std::size_t count, F&& f) {
    if (tile_path_enabled()) {
      std::size_t j = 0;
      while (j < count) {
        const std::size_t c = std::min(kTileElems, count - j);
        const std::span<const T> tile = load_tile(b, first + j, c);
        for (std::size_t u = 0; u < tile.size(); ++u) f(j + u, tile[u]);
        j += c;
      }
    } else {
      for (std::size_t j = 0; j < count; ++j) f(j, load(b, first + j));
    }
  }

  /// Writer for exactly `count` data-dependent (scattered) element stores
  /// into `b`.  On the tile fast path without a sanitizer the byte cost is
  /// charged here in bulk and each put() is a raw write; otherwise put()
  /// charges and shadows per element, identically to store().  Calling put()
  /// a different number of times than `count` breaks counter invariance
  /// between the two modes — the count is the caller's promise.
  template <typename T>
  [[nodiscard]] ScatterWriter<T> scatter_writer(const DeviceBuffer<T>& b,
                                                std::size_t count) {
    const bool bulk = tile_path_enabled() && san_ == nullptr;
    if (bulk) counters_.bytes_written += count * sizeof(T);
    return ScatterWriter<T>(this, b, bulk);
  }

  /// ---- Threshold-gated warp fast path ------------------------------------

  /// True when kernels may take the threshold-gated warp fast path for this
  /// block: the warpfast AND tile toggles are on and no sanitizer is
  /// attached.  With a sanitizer the exact per-lane round machinery runs so
  /// simcheck keeps element-exact attribution (the fallback is enforced by
  /// tile_invariance_test's {tile × warpfast × simcheck} grid).
  [[nodiscard]] bool warpfast_enabled() const { return warpfast_; }

  /// Vectorizable scan primitive for threshold-gated warp rounds: how many
  /// elements of `tile` are strictly below `threshold`.  The compare is
  /// branch-free so -O2 autovectorizes it.  Purely an emulator-side compute
  /// helper — it charges nothing; callers charge the authoritative round
  /// formula (a candidate-free round costs exactly what the exact
  /// ballot-based round charges, see topk::kEmptyRoundLaneOps).
  template <typename T>
  [[nodiscard]] static std::size_t count_below(std::span<const T> tile,
                                               T threshold) {
    if constexpr (std::is_same_v<T, float>) {
      return simd::count_below_f32(tile.data(), tile.size(), threshold);
    } else {
      std::size_t below = 0;
      for (const T& v : tile) below += static_cast<std::size_t>(v < threshold);
      return below;
    }
  }

  /// ---- Compute accounting ------------------------------------------------

  /// Charge `n` lane operations to the compute model (comparisons, digit
  /// extractions, bitonic exchange steps, ...).
  void ops(std::uint64_t n) { counters_.lane_ops += n; }

  [[nodiscard]] const BlockCounters& counters() const { return counters_; }
  [[nodiscard]] BlockCounters& counters() { return counters_; }

 private:
  template <typename>
  friend class SharedRef;
  template <typename>
  friend class SharedSpan;
  template <typename>
  friend class ScatterWriter;

  [[nodiscard]] bool sanitizing() const { return san_ != nullptr; }

  [[nodiscard]] AccessSite site() const {
    return {kernel_name_, launch_id_, block_idx_, active_warp_, active_lane_};
  }

  bool device_access_ok(const void* base, std::size_t elem_size,
                        std::size_t index, std::size_t extent, bool is_read,
                        bool is_write, bool is_atomic) {
    return san_->check_device_access(base, elem_size, index, extent, is_read,
                                     is_write, is_atomic, site(), &hb_clock_);
  }

  /// SharedRef access hook: `p` points into this block's shared arena.
  void note_shared(const void* p, std::size_t bytes, std::size_t elem_size,
                   bool is_read, bool is_write) {
    if (san_ == nullptr) return;
    const auto off = static_cast<std::size_t>(
        reinterpret_cast<const std::byte*>(p) - shared_arena_);
    san_->note_shared_access(*sshadow_, off, bytes, elem_size, is_read,
                             is_write, sync_epoch_, site());
  }

  void report_shared_oob(std::size_t arena_off, std::size_t index,
                         std::size_t extent) {
    SanitizerIssue issue;
    issue.kind = IssueKind::kOutOfBounds;
    issue.kernel = std::string(kernel_name_);
    issue.block = block_idx_;
    issue.warp = active_warp_;
    issue.lane = active_lane_;
    issue.index = index;
    if (const SharedShadow::Alloc* a = sshadow_->find(arena_off)) {
      issue.buffer = a->name;
    }
    issue.detail = "shared-memory access at element " + std::to_string(index) +
                   " past span extent " + std::to_string(extent) +
                   " (suppressed; redirected to a sink)";
    san_->report(std::move(issue));
  }

  int block_idx_;
  int grid_dim_;
  int block_threads_;
  std::byte* shared_arena_;
  std::size_t shared_capacity_;
  std::size_t shared_offset_ = 0;
  BlockCounters counters_;
  Sanitizer* san_ = nullptr;
  std::string_view kernel_name_;
  std::uint32_t launch_id_ = 0;
  std::uint32_t hb_clock_ = 0;
  std::uint32_t sync_epoch_ = 0;
  int active_warp_ = -1;
  int active_lane_ = -1;
  bool warpfast_ = false;
  std::unique_ptr<SharedShadow> sshadow_;
};

/// ---- SharedRef / SharedSpan out-of-line definitions ----------------------

template <typename T>
SharedRef<T>::operator T() const {
  ctx_->note_shared(p_, sizeof(T), sizeof(T), true, false);
  return *p_;
}

template <typename T>
SharedRef<T>& SharedRef<T>::operator=(T v) {
  ctx_->note_shared(p_, sizeof(T), sizeof(T), false, true);
  *p_ = v;
  return *this;
}

template <typename T>
SharedRef<T>& SharedRef<T>::operator=(const SharedRef& other) {
  const T v = static_cast<T>(other);
  return (*this = v);
}

template <typename T>
T SharedRef<T>::operator++() {
  ctx_->note_shared(p_, sizeof(T), sizeof(T), true, true);
  return ++*p_;
}

template <typename T>
T SharedRef<T>::operator++(int) {
  ctx_->note_shared(p_, sizeof(T), sizeof(T), true, true);
  const T old = *p_;
  ++*p_;
  return old;
}

template <typename T>
SharedRef<T>& SharedRef<T>::operator+=(T v) {
  ctx_->note_shared(p_, sizeof(T), sizeof(T), true, true);
  *p_ += v;
  return *this;
}

template <typename T>
SharedRef<T>& SharedRef<T>::operator-=(T v) {
  ctx_->note_shared(p_, sizeof(T), sizeof(T), true, true);
  *p_ -= v;
  return *this;
}

template <typename T>
T* SharedSpan<T>::unchecked_data() const {
  if (!tile_path_enabled()) return nullptr;
  if (ctx_ != nullptr && ctx_->sanitizing()) return nullptr;
  return data_;
}

template <typename T>
void ScatterWriter<T>::put_slow(std::size_t i, T v) {
  ctx_->counters_.bytes_written += sizeof(T);
  if (ctx_->san_ != nullptr &&
      !ctx_->device_access_ok(data_, sizeof(T), i, size_, false, true,
                              false)) {
    return;
  }
  data_[i] = v;
}

template <typename T>
SharedRef<T> SharedSpan<T>::operator[](std::size_t i) const {
  if (ctx_ != nullptr && ctx_->sanitizing() && i >= size_) {
    ctx_->report_shared_oob(off_, i, size_);
    return SharedRef<T>(ctx_, detail::shared_sink<T>());
  }
  return SharedRef<T>(ctx_, data_ + i);
}

/// Launch shape of a kernel.  `name` is a view so the hot launch path never
/// heap-allocates: use a string literal, or intern_name() for names built
/// dynamically at plan time (the view must outlive the recorded event log).
struct LaunchConfig {
  std::string_view name;
  int grid = 1;                 ///< number of thread blocks
  int block_threads = 256;      ///< threads per block, multiple of 32
  /// Optional shape context for the footprint cross-check (footprint.hpp):
  /// how many problems this launch covers and their n/k.  batch == 0 means
  /// no context — the byte-ceiling checks are skipped for this launch.
  /// Purely diagnostic; never feeds KernelStats or the cost model.
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
};

/// Launch a kernel: run `body(BlockCtx&)` for every block of the grid on the
/// thread pool, accumulate the block counters, and record the kernel event on
/// the device timeline.  Launches are asynchronous with respect to the
/// modeled host (no SyncEvent is recorded); wall-clock-wise the call blocks
/// until the grid drains, like a correctness-checking emulator must.
template <typename Body>
KernelStats launch(Device& dev, const LaunchConfig& cfg, Body&& body) {
  if (cfg.grid <= 0) throw std::invalid_argument("launch: grid must be > 0");
  if (cfg.block_threads <= 0 || cfg.block_threads % kWarpSize != 0) {
    throw std::invalid_argument(
        "launch: block_threads must be a positive multiple of 32");
  }
  std::atomic<std::uint64_t> bytes_read{0}, bytes_written{0}, lane_ops{0},
      atomic_ops{0}, scattered_atomic_ops{0}, block_syncs{0};
  std::atomic<std::uint64_t> max_block_bytes{0}, max_block_lane_ops{0};
  const auto fetch_max = [](std::atomic<std::uint64_t>& target,
                            std::uint64_t v) {
    std::uint64_t cur = target.load(std::memory_order_relaxed);
    while (cur < v && !target.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  };
  const std::size_t shared_cap = dev.spec().shared_mem_per_block;
  Sanitizer* const san = dev.sanitizer();
  const std::uint32_t launch_id = san != nullptr ? san->begin_launch() : 0;

  dev.pool().run_blocks(
      static_cast<std::size_t>(cfg.grid), [&](std::size_t b) {
        std::vector<std::byte>& arena = detail::shared_arena();
        if (arena.size() < shared_cap) arena.resize(shared_cap);
        BlockCtx ctx(static_cast<int>(b), cfg.grid, cfg.block_threads,
                     arena.data(), shared_cap, san, cfg.name, launch_id);
        body(ctx);
        const BlockCounters& c = ctx.counters();
        bytes_read.fetch_add(c.bytes_read, std::memory_order_relaxed);
        bytes_written.fetch_add(c.bytes_written, std::memory_order_relaxed);
        lane_ops.fetch_add(c.lane_ops, std::memory_order_relaxed);
        atomic_ops.fetch_add(c.atomic_ops, std::memory_order_relaxed);
        scattered_atomic_ops.fetch_add(c.scattered_atomic_ops,
                                       std::memory_order_relaxed);
        block_syncs.fetch_add(c.block_syncs, std::memory_order_relaxed);
        fetch_max(max_block_bytes, c.bytes_read + c.bytes_written);
        fetch_max(max_block_lane_ops, c.lane_ops);
      });

  KernelStats stats;
  stats.name = cfg.name;
  stats.grid_blocks = cfg.grid;
  stats.block_threads = cfg.block_threads;
  stats.bytes_read = bytes_read.load();
  stats.bytes_written = bytes_written.load();
  stats.lane_ops = lane_ops.load();
  stats.atomic_ops = atomic_ops.load();
  stats.scattered_atomic_ops = scattered_atomic_ops.load();
  stats.block_syncs = block_syncs.load();
  stats.max_block_bytes = max_block_bytes.load();
  stats.max_block_lane_ops = max_block_lane_ops.load();
  // Contract cross-check (debug builds / TOPK_FOOTPRINT_CHECK=1): the
  // observed counters must be explainable by the kernel's registered
  // footprint.  Strictly read-only over the already-assembled stats, so
  // KernelStats and modeled time are bit-identical with checking on or off.
  if (footprint_check_enabled()) {
    check_launch_against_footprint(
        cfg.name, stats.bytes_read, stats.bytes_written,
        stats.atomic_ops + stats.scattered_atomic_ops, cfg.grid,
        cfg.block_threads, cfg.batch, cfg.n, cfg.k);
  }
  dev.record_kernel(stats);
  return stats;
}

}  // namespace simgpu
