#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "simgpu/buffer.hpp"
#include "simgpu/device.hpp"

namespace simgpu {

inline constexpr int kWarpSize = 32;

/// A warp: 32 lanes executed in lockstep by the emulator.  Kernels written
/// against this class are structured exactly like warp-synchronous CUDA
/// code: per-lane state lives in `std::array<T, 32>` "registers" and the
/// collective primitives (ballot, rank, reductions) have the same semantics
/// as `__ballot_sync` / `__popc` / shuffle-based reductions.
class Warp {
 public:
  explicit Warp(int index) : index_(index) {}

  [[nodiscard]] int index() const { return index_; }

  /// Execute `f(lane)` for each lane in order — the moral equivalent of one
  /// SIMT instruction region.
  template <typename F>
  void each(F&& f) const {
    for (int lane = 0; lane < kWarpSize; ++lane) f(lane);
  }

  /// __ballot_sync analogue: bit `lane` is set iff `pred(lane)` is true.
  template <typename Pred>
  [[nodiscard]] static std::uint32_t ballot(Pred&& pred) {
    std::uint32_t mask = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (pred(lane)) mask |= (1u << lane);
    }
    return mask;
  }

  [[nodiscard]] static int popc(std::uint32_t mask) {
    return std::popcount(mask);
  }

  /// Number of set bits strictly below `lane` — the exclusive rank used for
  /// the two-step insertion's storing positions.
  [[nodiscard]] static int rank_below(std::uint32_t mask, int lane) {
    return std::popcount(mask & ((1u << lane) - 1u));
  }

 private:
  int index_;
};

/// Resource counters accumulated by one thread block while it runs; flushed
/// into the kernel's KernelStats when the block retires.
struct BlockCounters {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t lane_ops = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t scattered_atomic_ops = 0;
  std::uint64_t block_syncs = 0;
};

/// Thrown when a kernel requests more shared memory than the device spec
/// provides per block (the analogue of a CUDA launch failure).
class SharedMemoryOverflow : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Execution context of one thread block.
///
/// One OS thread runs the whole block, iterating its warps with
/// `for_each_warp`.  A phase between two `sync()` calls must be written as a
/// single `for_each_warp` pass; because warps of a phase run to completion
/// before the next phase starts, `__syncthreads` semantics hold by
/// construction (sync() just counts the barrier for the cost model).
/// Different blocks of a grid run concurrently on the host thread pool, so
/// all grid-level cooperation (atomic result appends, last-block election)
/// is genuinely concurrent.
class BlockCtx {
 public:
  BlockCtx(int block_idx, int grid_dim, int block_threads,
           std::byte* shared_arena, std::size_t shared_capacity)
      : block_idx_(block_idx),
        grid_dim_(grid_dim),
        block_threads_(block_threads),
        shared_arena_(shared_arena),
        shared_capacity_(shared_capacity) {}

  [[nodiscard]] int block_idx() const { return block_idx_; }
  [[nodiscard]] int grid_dim() const { return grid_dim_; }
  [[nodiscard]] int block_threads() const { return block_threads_; }
  [[nodiscard]] int num_warps() const { return block_threads_ / kWarpSize; }

  template <typename F>
  void for_each_warp(F&& f) {
    for (int w = 0; w < num_warps(); ++w) {
      Warp warp(w);
      f(warp);
    }
  }

  /// __syncthreads analogue; a semantic no-op by phase construction, counted
  /// for the cost model.
  void sync() { ++counters_.block_syncs; }

  /// ---- Shared memory ----------------------------------------------------

  /// Allocate `n` elements of block shared memory (uninitialized).
  template <typename T>
  std::span<T> shared(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t align = alignof(T);
    std::size_t offset = (shared_offset_ + align - 1) / align * align;
    if (offset + n * sizeof(T) > shared_capacity_) {
      throw SharedMemoryOverflow(
          "shared memory request exceeds per-block capacity");
    }
    T* p = reinterpret_cast<T*>(shared_arena_ + offset);
    shared_offset_ = offset + n * sizeof(T);
    return {p, n};
  }

  /// Allocate zero-initialized shared memory.
  template <typename T>
  std::span<T> shared_zero(std::size_t n) {
    auto s = shared<T>(n);
    std::memset(static_cast<void*>(s.data()), 0, n * sizeof(T));
    return s;
  }

  /// ---- Accounted device memory access -----------------------------------

  template <typename T>
  T load(const DeviceBuffer<T>& b, std::size_t i) {
    counters_.bytes_read += sizeof(T);
    return b.data()[i];
  }

  template <typename T>
  void store(const DeviceBuffer<T>& b, std::size_t i, T v) {
    counters_.bytes_written += sizeof(T);
    b.data()[i] = v;
  }

  /// Atomic read-modify-write on device memory (atomicAdd analogue).
  /// Atomics are L2-resident on modern GPUs, so they are charged to the
  /// atomic counter rather than DRAM traffic.
  template <typename T>
  T atomic_add(const DeviceBuffer<T>& b, std::size_t i, T v) {
    ++counters_.atomic_ops;
    std::atomic_ref<T> ref(b.data()[i]);
    return ref.fetch_add(v, std::memory_order_seq_cst);
  }

  /// Atomic add to an address that is NOT a contended hot counter — e.g.
  /// flushing a per-block shared-memory histogram into global bins.  Same
  /// semantics as atomic_add, charged at the scattered-atomic rate.
  template <typename T>
  T atomic_add_scattered(const DeviceBuffer<T>& b, std::size_t i, T v) {
    ++counters_.scattered_atomic_ops;
    std::atomic_ref<T> ref(b.data()[i]);
    return ref.fetch_add(v, std::memory_order_seq_cst);
  }

  template <typename T>
  T atomic_min(const DeviceBuffer<T>& b, std::size_t i, T v) {
    ++counters_.atomic_ops;
    std::atomic_ref<T> ref(b.data()[i]);
    T cur = ref.load(std::memory_order_seq_cst);
    while (v < cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_seq_cst)) {
    }
    return cur;
  }

  template <typename T>
  T atomic_max(const DeviceBuffer<T>& b, std::size_t i, T v) {
    ++counters_.atomic_ops;
    std::atomic_ref<T> ref(b.data()[i]);
    T cur = ref.load(std::memory_order_seq_cst);
    while (cur < v &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_seq_cst)) {
    }
    return cur;
  }

  /// Atomic load with acquire semantics (volatile read analogue).
  template <typename T>
  T atomic_load(const DeviceBuffer<T>& b, std::size_t i) {
    ++counters_.atomic_ops;
    std::atomic_ref<T> ref(b.data()[i]);
    return ref.load(std::memory_order_seq_cst);
  }

  template <typename T>
  void atomic_store(const DeviceBuffer<T>& b, std::size_t i, T v) {
    ++counters_.atomic_ops;
    std::atomic_ref<T> ref(b.data()[i]);
    ref.store(v, std::memory_order_seq_cst);
  }

  /// ---- Compute accounting ------------------------------------------------

  /// Charge `n` lane operations to the compute model (comparisons, digit
  /// extractions, bitonic exchange steps, ...).
  void ops(std::uint64_t n) { counters_.lane_ops += n; }

  [[nodiscard]] const BlockCounters& counters() const { return counters_; }
  [[nodiscard]] BlockCounters& counters() { return counters_; }

 private:
  int block_idx_;
  int grid_dim_;
  int block_threads_;
  std::byte* shared_arena_;
  std::size_t shared_capacity_;
  std::size_t shared_offset_ = 0;
  BlockCounters counters_;
};

/// Launch shape of a kernel.
struct LaunchConfig {
  std::string name;
  int grid = 1;                 ///< number of thread blocks
  int block_threads = 256;      ///< threads per block, multiple of 32
};

/// Launch a kernel: run `body(BlockCtx&)` for every block of the grid on the
/// thread pool, accumulate the block counters, and record the kernel event on
/// the device timeline.  Launches are asynchronous with respect to the
/// modeled host (no SyncEvent is recorded); wall-clock-wise the call blocks
/// until the grid drains, like a correctness-checking emulator must.
template <typename Body>
KernelStats launch(Device& dev, const LaunchConfig& cfg, Body&& body) {
  if (cfg.grid <= 0) throw std::invalid_argument("launch: grid must be > 0");
  if (cfg.block_threads <= 0 || cfg.block_threads % kWarpSize != 0) {
    throw std::invalid_argument(
        "launch: block_threads must be a positive multiple of 32");
  }
  std::atomic<std::uint64_t> bytes_read{0}, bytes_written{0}, lane_ops{0},
      atomic_ops{0}, scattered_atomic_ops{0}, block_syncs{0};
  std::atomic<std::uint64_t> max_block_bytes{0}, max_block_lane_ops{0};
  const auto fetch_max = [](std::atomic<std::uint64_t>& target,
                            std::uint64_t v) {
    std::uint64_t cur = target.load(std::memory_order_relaxed);
    while (cur < v && !target.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  };
  const std::size_t shared_cap = dev.spec().shared_mem_per_block;

  dev.pool().run_blocks(
      static_cast<std::size_t>(cfg.grid), [&](std::size_t b) {
        thread_local std::vector<std::byte> arena;
        if (arena.size() < shared_cap) arena.resize(shared_cap);
        BlockCtx ctx(static_cast<int>(b), cfg.grid, cfg.block_threads,
                     arena.data(), shared_cap);
        body(ctx);
        const BlockCounters& c = ctx.counters();
        bytes_read.fetch_add(c.bytes_read, std::memory_order_relaxed);
        bytes_written.fetch_add(c.bytes_written, std::memory_order_relaxed);
        lane_ops.fetch_add(c.lane_ops, std::memory_order_relaxed);
        atomic_ops.fetch_add(c.atomic_ops, std::memory_order_relaxed);
        scattered_atomic_ops.fetch_add(c.scattered_atomic_ops,
                                       std::memory_order_relaxed);
        block_syncs.fetch_add(c.block_syncs, std::memory_order_relaxed);
        fetch_max(max_block_bytes, c.bytes_read + c.bytes_written);
        fetch_max(max_block_lane_ops, c.lane_ops);
      });

  KernelStats stats;
  stats.name = cfg.name;
  stats.grid_blocks = cfg.grid;
  stats.block_threads = cfg.block_threads;
  stats.bytes_read = bytes_read.load();
  stats.bytes_written = bytes_written.load();
  stats.lane_ops = lane_ops.load();
  stats.atomic_ops = atomic_ops.load();
  stats.scattered_atomic_ops = scattered_atomic_ops.load();
  stats.block_syncs = block_syncs.load();
  stats.max_block_bytes = max_block_bytes.load();
  stats.max_block_lane_ops = max_block_lane_ops.load();
  dev.record_kernel(stats);
  return stats;
}

}  // namespace simgpu
