#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace simgpu {

/// See kernel.hpp: runtime switch (TOPK_SIM_POOL) consulted by MemoryPool /
/// Workspace to decide whether released slabs are retained for reuse.
[[nodiscard]] bool pool_enabled();
void set_pool_enabled(bool enabled);

/// A per-device pool of retained memory slabs with power-of-two size-class
/// reuse.  Workspace (workspace.hpp) acquires one slab per bind and either
/// keeps it across binds (the steady-state, counted as a hit via note_hit)
/// or releases/re-acquires when the layout grows.  With the pool disabled
/// (pool_enabled() == false), release() frees instead of retaining and every
/// acquire is a fresh host allocation — the A/B mode bench_serving measures.
///
/// The pool hands out raw host storage; it knows nothing about the cost
/// model, so pooling cannot perturb KernelStats or modeled time.  Stale-data
/// hazards introduced by reuse are surfaced, not hidden: release() poisons
/// the slab bytes (0xDB) when asked, and Workspace re-registers every
/// segment with the sanitizer on each bind, resetting the shadow to
/// "uninitialized" so a kernel reading a recycled byte before writing it is
/// reported by simcheck.
///
/// Like Device, a pool is driven from a single host thread.
class MemoryPool {
 public:
  /// Byte filled into released slabs when poisoning is requested.
  static constexpr int kPoisonByte = 0xDB;
  /// Slab base alignment, matching Device's device-memory alignment.
  static constexpr std::size_t kAlign = 256;
  /// Smallest size class, so tiny layouts don't fragment the freelist.
  static constexpr std::size_t kMinSlabBytes = std::size_t{4} << 10;

  /// One pooled allocation.  `bytes` is the size class (>= the requested
  /// size); `base` is 256-aligned.  Default-constructed slabs are empty.
  struct Slab {
    std::unique_ptr<std::byte[]> storage;
    std::byte* base = nullptr;
    std::size_t bytes = 0;

    [[nodiscard]] bool empty() const { return base == nullptr; }
  };

  struct Stats {
    std::uint64_t hits = 0;    ///< acquires served from a retained slab
    std::uint64_t misses = 0;  ///< acquires that hit the host allocator
    std::size_t bytes_held = 0;   ///< bytes idle on the freelist right now
    std::size_t bytes_live = 0;   ///< bytes in slabs currently handed out
    std::size_t high_water = 0;   ///< max of bytes_live + bytes_held

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  MemoryPool() = default;
  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Get a slab of at least `bytes` (rounded up to the next power-of-two
  /// size class).  Reuses the smallest retained slab that fits when the
  /// pool is enabled; otherwise allocates fresh.
  [[nodiscard]] Slab acquire(std::size_t bytes) {
    const std::size_t want = size_class(bytes);
    if (pool_enabled()) {
      std::size_t best = free_.size();
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i].bytes >= want &&
            (best == free_.size() || free_[i].bytes < free_[best].bytes)) {
          best = i;
        }
      }
      if (best != free_.size()) {
        Slab s = std::move(free_[best]);
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
        bytes_held_ -= s.bytes;
        bytes_live_ += s.bytes;
        ++hits_;
        note_high_water();
        return s;
      }
    }
    ++misses_;
    Slab s;
    s.storage = std::make_unique<std::byte[]>(want + kAlign);
    const auto addr = reinterpret_cast<std::uintptr_t>(s.storage.get());
    const std::uintptr_t aligned = (addr + kAlign - 1) / kAlign * kAlign;
    s.base = s.storage.get() + (aligned - addr);
    s.bytes = want;
    bytes_live_ += s.bytes;
    note_high_water();
    return s;
  }

  /// Return a slab.  Retained for reuse when the pool is enabled, freed
  /// otherwise.  `poison` overwrites the slab so a stale read of recycled
  /// storage sees garbage rather than plausible old results (callers pass
  /// true when a sanitizer is attached; see Workspace::release).
  void release(Slab&& slab, bool poison = false) {
    if (slab.empty()) return;
    bytes_live_ -= slab.bytes;
    if (poison) std::memset(slab.base, kPoisonByte, slab.bytes);
    if (!pool_enabled()) return;  // slab's storage frees on scope exit
    bytes_held_ += slab.bytes;
    note_high_water();
    free_.push_back(std::move(slab));
  }

  /// Record a bind served by a slab the Workspace already held — the
  /// steady-state reuse path.  Counted as a hit so hit_rate() reflects how
  /// often binding avoided the host allocator.
  void note_hit() { ++hits_; }

  /// Drop every retained slab (returns the memory to the host).
  void trim() {
    free_.clear();
    bytes_held_ = 0;
  }

  [[nodiscard]] Stats stats() const {
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.bytes_held = bytes_held_;
    s.bytes_live = bytes_live_;
    s.high_water = high_water_;
    return s;
  }

 private:
  static std::size_t size_class(std::size_t bytes) {
    return std::bit_ceil(std::max(bytes, kMinSlabBytes));
  }

  void note_high_water() {
    high_water_ = std::max(high_water_, bytes_live_ + bytes_held_);
  }

  std::vector<Slab> free_;
  std::size_t bytes_held_ = 0;
  std::size_t bytes_live_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// The named-segment memory map an ExecutionPlan describes: each segment has
/// a stable name (for sanitizer attribution), a byte offset aligned to
/// MemoryPool::kAlign, an element size, and a host flag.  Host segments are
/// staging scratch the CPU reads/writes directly (e.g. copied-back
/// histograms) and are not registered as device regions.
///
/// Segment names are string_views captured by reference: use string
/// literals or simgpu::intern_name()'d views, since plans (and their
/// layouts) are cached and the names must outlive every bind.
struct WorkspaceLayout {
  struct Segment {
    std::string_view name;
    std::size_t offset = 0;
    std::size_t bytes = 0;
    std::size_t elem_size = 1;
    bool host = false;
  };

  std::vector<Segment> segments;

  /// Append a segment of `elems` elements of T; returns its id (the index
  /// Workspace::get() takes).
  template <typename T>
  std::size_t add(std::string_view name, std::size_t elems,
                  bool host = false) {
    Segment s;
    s.name = name;
    s.offset = total_;
    s.bytes = elems * sizeof(T);
    s.elem_size = sizeof(T);
    s.host = host;
    segments.push_back(s);
    total_ = align_up(total_ + s.bytes);
    return segments.size() - 1;
  }

  [[nodiscard]] std::size_t total_bytes() const { return total_; }

  /// Empty the layout, keeping segment capacity (for layouts rebuilt every
  /// bind, e.g. the serving layer's per-batch I/O layout).
  void reset() {
    segments.clear();
    total_ = 0;
  }

 private:
  static std::size_t align_up(std::size_t off) {
    return (off + MemoryPool::kAlign - 1) / MemoryPool::kAlign *
           MemoryPool::kAlign;
  }

  std::size_t total_ = 0;
};

}  // namespace simgpu
