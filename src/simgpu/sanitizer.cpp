#include "simgpu/sanitizer.hpp"

#include <algorithm>
#include <sstream>

namespace simgpu {

const char* issue_kind_name(IssueKind kind) {
  switch (kind) {
    case IssueKind::kOutOfBounds: return "out-of-bounds access";
    case IssueKind::kDeviceRace: return "device-memory race";
    case IssueKind::kSharedRace: return "shared-memory race";
    case IssueKind::kUninitDeviceRead: return "uninitialized device read";
    case IssueKind::kUninitSharedRead: return "uninitialized shared read";
    case IssueKind::kSyncDivergence: return "sync divergence";
  }
  return "unknown";
}

std::string SanitizerIssue::to_string() const {
  std::ostringstream os;
  os << "[simcheck] " << issue_kind_name(kind) << ": kernel '"
     << (kernel.empty() ? "<host>" : kernel) << "'";
  if (block >= 0) os << " block " << block;
  if (warp >= 0) os << " warp " << warp;
  if (lane >= 0) os << " lane " << lane;
  os << ": " << detail;
  if (!buffer.empty()) {
    os << " (buffer '" << buffer << "', element " << index << ")";
  }
  return os.str();
}

std::string SanitizerReport::to_string() const {
  if (clean()) return "[simcheck] clean: no issues detected";
  std::ostringstream os;
  os << "[simcheck] " << issues.size() + dropped << " issue(s) detected";
  if (dropped > 0) os << " (" << dropped << " beyond the report cap)";
  os << ":\n";
  for (const SanitizerIssue& issue : issues) os << "  " << issue.to_string()
                                                << "\n";
  return os.str();
}

const SharedShadow::Alloc* SharedShadow::find(std::size_t offset) const {
  for (const Alloc& a : allocs) {
    if (offset >= a.offset && offset < a.offset + a.bytes) return &a;
  }
  return nullptr;
}

void Sanitizer::on_alloc(const void* base, std::size_t elems,
                         std::size_t elem_size, std::string name,
                         std::uint64_t seq) {
  std::scoped_lock lk(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  const std::size_t bytes = elems * elem_size;
  // Evict any region the new storage overlaps (arena reuse after a
  // release_to the sanitizer did not observe, e.g. it was enabled later).
  for (auto it = regions_.begin(); it != regions_.end();) {
    const bool overlaps =
        it->second.base < addr + bytes && addr < it->second.base +
                                                     it->second.bytes;
    it = overlaps ? regions_.erase(it) : std::next(it);
  }
  Region r;
  r.base = addr;
  r.bytes = bytes;
  r.elem_size = elem_size == 0 ? 1 : elem_size;
  r.name = name.empty() ? "<unnamed>" : std::move(name);
  r.seq = seq;
  r.cells.resize(elems);
  regions_.emplace(addr, std::move(r));
}

void Sanitizer::on_release(std::uint64_t seq_watermark) {
  std::scoped_lock lk(mu_);
  for (auto it = regions_.begin(); it != regions_.end();) {
    it = it->second.seq > seq_watermark ? regions_.erase(it) : std::next(it);
  }
}

void Sanitizer::mark_initialized(const void* base, std::size_t bytes) {
  std::scoped_lock lk(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  for (auto& [rbase, region] : regions_) {
    const std::uintptr_t lo = std::max(addr, region.base);
    const std::uintptr_t hi =
        std::min(addr + bytes, region.base + region.bytes);
    if (lo >= hi) continue;
    const std::size_t first = (lo - region.base) / region.elem_size;
    const std::size_t last = (hi - region.base + region.elem_size - 1) /
                             region.elem_size;
    for (std::size_t i = first; i < last && i < region.cells.size(); ++i) {
      region.cells[i].valid = true;
    }
  }
}

void Sanitizer::check_host_read(const void* base, std::size_t bytes,
                                const std::string& label) {
  std::scoped_lock lk(mu_);
  if (!cfg_.check_uninit) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  for (auto& [rbase, region] : regions_) {
    const std::uintptr_t lo = std::max(addr, region.base);
    const std::uintptr_t hi =
        std::min(addr + bytes, region.base + region.bytes);
    if (lo >= hi) continue;
    const std::size_t first = (lo - region.base) / region.elem_size;
    const std::size_t last = std::min(
        (hi - region.base + region.elem_size - 1) / region.elem_size,
        region.cells.size());
    std::size_t bad = 0;
    std::size_t first_bad = 0;
    for (std::size_t i = first; i < last; ++i) {
      if (!region.cells[i].valid) {
        if (bad == 0) first_bad = i;
        ++bad;
        region.cells[i].valid = true;  // squelch repeats of the same copy
      }
    }
    if (bad > 0) {
      SanitizerIssue issue;
      issue.kind = IssueKind::kUninitDeviceRead;
      issue.kernel = "<host>";
      issue.buffer = region.name;
      issue.index = first_bad;
      std::ostringstream os;
      os << "device-to-host copy '" << (label.empty() ? "<unlabeled>" : label)
         << "' reads " << bad << " uninitialized element(s)";
      issue.detail = os.str();
      report_locked(std::move(issue));
    }
  }
}

std::uint32_t Sanitizer::begin_launch() {
  std::scoped_lock lk(mu_);
  return ++launch_counter_;
}

Sanitizer::Region* Sanitizer::find_region(std::uintptr_t addr,
                                          std::size_t size) {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return nullptr;
  --it;
  Region& r = it->second;
  if (addr >= r.base && addr + size <= r.base + r.bytes) return &r;
  return nullptr;
}

bool Sanitizer::check_device_access(const void* base, std::size_t elem_size,
                                    std::size_t index, std::size_t extent,
                                    bool is_read, bool is_write,
                                    bool is_atomic, const AccessSite& site,
                                    std::uint32_t* hb_clock) {
  std::scoped_lock lk(mu_);
  const auto kernel_name = [&] { return std::string(site.kernel); };
  if (index >= extent) {
    if (cfg_.check_bounds) {
      SanitizerIssue issue;
      issue.kind = IssueKind::kOutOfBounds;
      issue.kernel = kernel_name();
      issue.block = site.block;
      issue.warp = site.warp;
      issue.lane = site.lane;
      issue.index = index;
      const auto addr = reinterpret_cast<std::uintptr_t>(base);
      if (Region* region = find_region(addr, 1)) issue.buffer = region->name;
      std::ostringstream os;
      os << (is_atomic ? "atomic" : is_write ? "store" : "load")
         << " at element " << index << " past buffer extent " << extent;
      issue.detail = os.str();
      report_locked(std::move(issue));
    }
    return false;  // suppress the physical access
  }

  const auto addr =
      reinterpret_cast<std::uintptr_t>(base) + index * elem_size;
  Region* region = find_region(addr, elem_size);
  if (region == nullptr) return true;  // unregistered storage: skip shadow
  const std::size_t cell_index = (addr - region->base) / region->elem_size;
  if (region->elem_size != elem_size ||
      (addr - region->base) % region->elem_size != 0 ||
      cell_index >= region->cells.size()) {
    return true;  // type-punned view; element shadow not meaningful
  }
  DevCell& c = region->cells[cell_index];

  if (c.launch != site.launch_id) {
    c.launch = site.launch_id;
    c.sync_clock = 0;
    c.writer = Slot{};
    c.reader1 = Slot{};
    c.reader2 = Slot{};
  }

  // Atomics are the release/acquire channel: join the block clock with the
  // cell clock so chains of atomics order the accesses they guard.
  std::uint32_t clk = *hb_clock;
  if (is_atomic) {
    clk = std::max(clk, c.sync_clock) + 1;
    c.sync_clock = clk;
    *hb_clock = clk;
  }

  const auto report_race = [&](const Slot& other, bool other_is_writer) {
    SanitizerIssue issue;
    issue.kind = IssueKind::kDeviceRace;
    issue.kernel = kernel_name();
    issue.buffer = region->name;
    issue.index = cell_index;
    issue.block = site.block;
    issue.warp = site.warp;
    issue.lane = site.lane;
    std::ostringstream os;
    os << (is_atomic ? "atomic " : "non-atomic ")
       << (is_write ? "write" : "read") << " conflicts with "
       << (other.atomic ? "an atomic " : "a non-atomic ")
       << (other_is_writer ? "write" : "read") << " by block " << other.block
       << " in the same launch (no atomic happens-before chain orders them)";
    issue.detail = os.str();
    report_locked(std::move(issue));
  };

  if (cfg_.check_device_races && site.block >= 0) {
    // A prior access conflicts if it came from another block, at least one
    // side writes, they are not both atomic, and no clock chain orders it
    // before us (recorded clock >= our clock means "not provably ordered").
    const auto conflicts = [&](const Slot& other, bool other_is_writer) {
      return other.block >= 0 && other.block != site.block &&
             (is_write || other_is_writer) && !(other.atomic && is_atomic) &&
             other.clock >= clk;
    };
    if (conflicts(c.writer, true)) {
      report_race(c.writer, true);
    } else if (is_write) {
      if (conflicts(c.reader1, false)) {
        report_race(c.reader1, false);
      } else if (conflicts(c.reader2, false)) {
        report_race(c.reader2, false);
      }
    }
  }

  if (is_read && cfg_.check_uninit && !c.valid) {
    SanitizerIssue issue;
    issue.kind = IssueKind::kUninitDeviceRead;
    issue.kernel = kernel_name();
    issue.buffer = region->name;
    issue.index = cell_index;
    issue.block = site.block;
    issue.warp = site.warp;
    issue.lane = site.lane;
    issue.detail = "read of device memory no store or host copy initialized";
    report_locked(std::move(issue));
    c.valid = true;  // squelch cascades from the same element
  }

  // Update the shadow slots.
  if (is_write) {
    c.valid = true;
    if (c.writer.block < 0 || clk >= c.writer.clock) {
      c.writer = Slot{site.block, clk, is_atomic};
    }
  }
  if (is_read && site.block >= 0) {
    if (c.reader1.block == site.block) {
      c.reader1.clock = std::max(c.reader1.clock, clk);
      c.reader1.atomic = c.reader1.atomic && is_atomic;
    } else {
      if (c.reader1.block >= 0) c.reader2 = c.reader1;
      c.reader1 = Slot{site.block, clk, is_atomic};
    }
  }
  return true;
}

void Sanitizer::note_shared_access(SharedShadow& shadow, std::size_t offset,
                                   std::size_t bytes, std::size_t elem_size,
                                   bool is_read, bool is_write,
                                   std::uint32_t epoch,
                                   const AccessSite& site) {
  std::scoped_lock lk(mu_);
  const SharedShadow::Alloc* alloc = shadow.find(offset);
  const auto attribution = [&](SanitizerIssue& issue) {
    issue.kernel = std::string(site.kernel);
    issue.block = site.block;
    issue.warp = site.warp;
    issue.lane = site.lane;
    if (alloc != nullptr) {
      issue.buffer = alloc->name;
      issue.index = (offset - alloc->offset) / (elem_size ? elem_size : 1);
    }
  };
  bool race_reported = false;
  bool uninit_reported = false;
  const std::uint32_t tag = epoch + 1;  // 0 marks a fresh cell
  const std::size_t end = std::min(offset + bytes, shadow.cells.size());
  for (std::size_t b = offset; b < end; ++b) {
    SharedShadow::Cell& c = shadow.cells[b];
    if (c.epoch != tag) {
      c.epoch = tag;
      c.writer = SharedShadow::kNone;
      c.reader = SharedShadow::kNone;
    }
    if (cfg_.check_shared_races && site.warp >= 0) {
      const auto warp = static_cast<std::int16_t>(site.warp);
      if (!race_reported) {
        const bool writer_conflict =
            c.writer != SharedShadow::kNone && c.writer != warp;
        const bool reader_conflict =
            is_write && c.reader != SharedShadow::kNone &&
            (c.reader == SharedShadow::kMulti || c.reader != warp);
        if (writer_conflict || reader_conflict) {
          SanitizerIssue issue;
          issue.kind = IssueKind::kSharedRace;
          attribution(issue);
          std::ostringstream os;
          os << "shared-memory " << (is_write ? "write" : "read")
             << " conflicts with a "
             << (writer_conflict ? "write" : "read") << " by warp "
             << (writer_conflict ? c.writer : c.reader)
             << " in the same sync phase (no barrier separates them)";
          issue.detail = os.str();
          report_locked(std::move(issue));
          race_reported = true;
        }
      }
      if (is_write) c.writer = warp;
      if (is_read) {
        c.reader = c.reader == SharedShadow::kNone || c.reader == warp
                       ? warp
                       : SharedShadow::kMulti;
      }
    }
    if (is_read && cfg_.check_uninit && !c.valid) {
      if (!uninit_reported) {
        SanitizerIssue issue;
        issue.kind = IssueKind::kUninitSharedRead;
        attribution(issue);
        issue.detail =
            "read of shared memory never written in this block (shared_zero "
            "or a prior store would initialize it)";
        report_locked(std::move(issue));
        uninit_reported = true;
      }
      c.valid = true;
    }
    if (is_write) c.valid = true;
  }
}

void Sanitizer::report(SanitizerIssue issue) {
  std::scoped_lock lk(mu_);
  report_locked(std::move(issue));
}

void Sanitizer::report_locked(SanitizerIssue issue) {
  ++total_issues_;
  if (report_.issues.size() >= cfg_.max_issues) {
    ++report_.dropped;
    return;
  }
  report_.issues.push_back(std::move(issue));
}

std::size_t Sanitizer::issue_count() const {
  std::scoped_lock lk(mu_);
  return total_issues_;
}

SanitizerReport Sanitizer::snapshot() const {
  std::scoped_lock lk(mu_);
  return report_;
}

void Sanitizer::clear() {
  std::scoped_lock lk(mu_);
  report_ = SanitizerReport{};
  total_issues_ = 0;
}

}  // namespace simgpu
