#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// simcheck: an opt-in, compute-sanitizer-style shadow-memory layer for the
/// simgpu substrate.
///
/// The emulator executes the warps of a block sequentially and blocks of a
/// grid concurrently, so several bug classes that corrupt results on a real
/// GPU run silently here.  When a Sanitizer is attached to a Device (see
/// Device::enable_sanitizer), BlockCtx and the Device memory API feed every
/// access into the shadow state below and the following defects are reported
/// with kernel/block/warp/lane and buffer/offset attribution:
///
///  1. out-of-bounds load/store/atomic against DeviceBuffer extents and the
///     shared-memory arena (the faulting access is suppressed, loads return
///     T{}, so checking continues instead of corrupting the host heap);
///  2. conflicting non-atomic device-memory accesses to the same element
///     from different blocks within one kernel launch (real inter-block data
///     races that the concurrent block pool may or may not surface);
///  3. intra-block shared-memory write/write and read/write conflicts
///     between different warps within the same sync phase — races the
///     sequential warp loop hides entirely;
///  4. reads of uninitialized device or shared memory (shadow valid bits,
///     seeded by to_device/upload/alloc_zero/fill/shared_zero and by
///     instrumented stores);
///  5. sync-count divergence: sync() issued from inside a warp region, which
///     on hardware would be a barrier not reached uniformly by the block.
///
/// Inter-block ordering (class 2) is tracked with per-block scalar Lamport
/// clocks joined through atomics — the only cross-block communication
/// channel simgpu offers.  Every atomic on a cell advances the block clock
/// past the cell's clock, so release/acquire chains (atomic result cursors,
/// last-block election counters) order the accesses they guard and do not
/// produce false positives.  A prior access whose recorded clock is below
/// the current block clock is treated as ordered; this can under-report
/// races whose interleaving was benign by accident, but never flags a
/// correctly synchronized pattern.
///
/// The layer is strictly opt-in: with no Sanitizer attached every hook is a
/// null-pointer test, and modeled times / counted traffic are bit-identical
/// to an unchecked run.
namespace simgpu {

enum class IssueKind {
  kOutOfBounds,
  kDeviceRace,
  kSharedRace,
  kUninitDeviceRead,
  kUninitSharedRead,
  kSyncDivergence,
};

[[nodiscard]] const char* issue_kind_name(IssueKind kind);

/// One reported defect.  `buffer` is the allocation label (or the shared
/// allocation label for shared-memory issues), `index` the element offset
/// within it.  block/warp/lane are -1 where not applicable (warp -1 means
/// block-serial code outside for_each_warp; kernel "<host>" means a
/// host-side D2H check).
struct SanitizerIssue {
  IssueKind kind = IssueKind::kOutOfBounds;
  std::string kernel;
  std::string buffer;
  std::size_t index = 0;
  int block = -1;
  int warp = -1;
  int lane = -1;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

/// Which defect classes to check.  Everything defaults on; max_issues caps
/// the stored report (further findings only bump SanitizerReport::dropped).
struct SanitizerConfig {
  bool check_bounds = true;
  bool check_device_races = true;
  bool check_shared_races = true;
  bool check_uninit = true;
  bool check_sync = true;
  std::size_t max_issues = 256;
};

struct SanitizerReport {
  std::vector<SanitizerIssue> issues;
  std::size_t dropped = 0;

  [[nodiscard]] bool clean() const { return issues.empty() && dropped == 0; }
  [[nodiscard]] std::string to_string() const;
};

/// Where an access came from; threaded from BlockCtx into every check.
struct AccessSite {
  std::string_view kernel;              ///< kernel name (empty => host)
  std::uint32_t launch_id = 0;          ///< begin_launch() ticket
  int block = -1;
  int warp = -1;  ///< -1 while running block-serial code
  int lane = -1;
};

/// Per-block shadow of the shared-memory arena (one cell per byte) plus the
/// labels of the shared allocations carved from it.  Owned by BlockCtx,
/// logic lives in Sanitizer::note_shared_access.
struct SharedShadow {
  static constexpr std::int16_t kNone = -2;
  static constexpr std::int16_t kMulti = -3;

  struct Cell {
    std::uint32_t epoch = 0;  ///< sync epoch + 1 of the race slots (0 fresh)
    std::int16_t writer = kNone;  ///< warp of last warp-scoped writer
    std::int16_t reader = kNone;  ///< warp of last warp-scoped reader
    bool valid = false;           ///< byte holds initialized data
  };

  struct Alloc {
    std::size_t offset = 0;
    std::size_t bytes = 0;
    std::string name;
  };

  std::vector<Cell> cells;
  std::vector<Alloc> allocs;

  /// The allocation covering arena byte `offset`, or null.
  [[nodiscard]] const Alloc* find(std::size_t offset) const;
};

/// The shared checking engine: owns the device-memory shadow (keyed by the
/// registered allocations), the issue report, and the launch/clock state.
/// Host-side hooks are called from the driving thread; device-side hooks are
/// called concurrently from pool threads, so everything is mutex-guarded —
/// acceptable because the sanitizer is off on every measured path.
class Sanitizer {
 public:
  explicit Sanitizer(SanitizerConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const SanitizerConfig& config() const { return cfg_; }

  /// ---- Host-side shadow maintenance (Device calls these) ---------------

  /// Register a device allocation. Overlapping earlier regions (storage
  /// reuse after release_to) are evicted first.
  void on_alloc(const void* base, std::size_t elems, std::size_t elem_size,
                std::string name, std::uint64_t seq);

  /// Drop every region allocated after `seq_watermark` (release_to rollback;
  /// accesses to dropped storage are no longer attributable and are skipped).
  void on_release(std::uint64_t seq_watermark);

  /// Seed valid bits for [base, base+bytes) (H2D copy, memset, fill).
  void mark_initialized(const void* base, std::size_t bytes);

  /// D2H copy of [base, base+bytes): report (once per region) if it reads
  /// elements no kernel or host API ever initialized.
  void check_host_read(const void* base, std::size_t bytes,
                       const std::string& label);

  /// New launch ticket; device shadow cells lazily reset when they see it.
  [[nodiscard]] std::uint32_t begin_launch();

  /// ---- Device-side hooks (BlockCtx calls these from pool threads) ------

  /// Validate + shadow one device-memory element access.  Returns false if
  /// the access is out of bounds and must be suppressed by the caller.
  /// `hb_clock` is the calling block's Lamport clock (advanced by atomics).
  bool check_device_access(const void* base, std::size_t elem_size,
                           std::size_t index, std::size_t extent, bool is_read,
                           bool is_write, bool is_atomic,
                           const AccessSite& site, std::uint32_t* hb_clock);

  /// Shadow one shared-memory access of `bytes` bytes at arena `offset`.
  /// `elem_size` attributes the element index within the covering alloc.
  void note_shared_access(SharedShadow& shadow, std::size_t offset,
                          std::size_t bytes, std::size_t elem_size,
                          bool is_read, bool is_write, std::uint32_t epoch,
                          const AccessSite& site);

  /// ---- Reporting --------------------------------------------------------

  void report(SanitizerIssue issue);

  /// Total defects seen so far (stored + dropped); cheap monotonic counter
  /// for callers that diff across a region of interest.
  [[nodiscard]] std::size_t issue_count() const;

  [[nodiscard]] SanitizerReport snapshot() const;

  void clear();

 private:
  struct Slot {
    std::int32_t block = -1;  ///< -1 empty
    std::uint32_t clock = 0;
    bool atomic = false;
  };

  /// Per-element device shadow cell.  Race slots reset lazily per launch;
  /// the valid bit persists for the lifetime of the allocation.
  struct DevCell {
    std::uint32_t launch = 0;
    std::uint32_t sync_clock = 0;  ///< joined by atomics (release chain)
    Slot writer;
    Slot reader1;  ///< most recent reader
    Slot reader2;  ///< most recent reader from a block != reader1.block
    bool valid = false;
  };

  struct Region {
    std::uintptr_t base = 0;
    std::size_t bytes = 0;
    std::size_t elem_size = 1;
    std::string name;
    std::uint64_t seq = 0;
    std::vector<DevCell> cells;
  };

  /// Region containing [addr, addr+size), or null.  Requires mu_.
  Region* find_region(std::uintptr_t addr, std::size_t size);

  void report_locked(SanitizerIssue issue);

  mutable std::mutex mu_;
  SanitizerConfig cfg_;
  SanitizerReport report_;
  std::size_t total_issues_ = 0;
  std::map<std::uintptr_t, Region> regions_;
  std::uint32_t launch_counter_ = 0;
};

}  // namespace simgpu
