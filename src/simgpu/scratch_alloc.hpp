#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <new>
#include <vector>

namespace simgpu {

namespace scratch_detail {

/// Per-thread freelist of power-of-two byte blocks backing the engines'
/// host-side scratch vectors (TopkList's merge scratch, the warp engines'
/// staging queues).  Those vectors are short-lived — constructed inside a
/// kernel body and destroyed when the block retires — so without pooling
/// every simulated block pays host-allocator round trips on the hot path,
/// and the two-phase run() contract (zero allocations in steady state,
/// gated by bench_substrate's operator-new hook) could never hold for the
/// partial-sorting family.  With the freelist, the first execution of a
/// given shape warms the per-thread buckets and every later block reuses
/// the same blocks; deallocation never calls operator new (push_back into
/// reserved bucket capacity), so the steady state is allocation-free.
///
/// The freelist is bounded per size class; overflow blocks are freed
/// normally.  Blocks may migrate between threads (allocated on one, freed
/// into another's freelist) — both freelists serve future acquires, and
/// each freelist is thread-local so there are no races.
class Freelist {
 public:
  static Freelist& instance() {
    thread_local Freelist fl;
    return fl;
  }

  void* take(std::size_t bytes) {
    auto& bucket = buckets_[size_class(bytes)];
    if (!bucket.empty()) {
      void* p = bucket.back();
      bucket.pop_back();
      return p;
    }
    return ::operator new(class_bytes(size_class(bytes)));
  }

  void give(void* p, std::size_t bytes) noexcept {
    auto& bucket = buckets_[size_class(bytes)];
    if (bucket.size() >= kMaxPerClass) {
      ::operator delete(p);
      return;
    }
    // Growing the bucket allocates, but that happens O(log) times per
    // thread and class — never in steady state.
    bucket.push_back(p);
  }

  Freelist(const Freelist&) = delete;
  Freelist& operator=(const Freelist&) = delete;

 private:
  // 2^6 .. 2^31 byte classes; anything larger is served class 31-equivalent
  // by index clamping below (no engine scratch approaches that size).
  static constexpr std::size_t kMinShift = 6;
  static constexpr std::size_t kNumClasses = 26;
  /// Bound on idle blocks retained per class: must cover the peak number of
  /// same-sized live vectors per thread (one block's worth of engines, each
  /// holding a handful of vectors) with headroom.
  static constexpr std::size_t kMaxPerClass = 64;

  Freelist() = default;
  ~Freelist() {
    for (auto& bucket : buckets_) {
      for (void* p : bucket) ::operator delete(p);
    }
  }

  static std::size_t size_class(std::size_t bytes) {
    const std::size_t rounded = std::bit_ceil(bytes | (std::size_t{1} << kMinShift));
    const auto cls = static_cast<std::size_t>(std::countr_zero(rounded)) - kMinShift;
    return cls < kNumClasses ? cls : kNumClasses - 1;
  }

  static std::size_t class_bytes(std::size_t cls) {
    return std::size_t{1} << (cls + kMinShift);
  }

  std::array<std::vector<void*>, kNumClasses> buckets_;
};

}  // namespace scratch_detail

/// Allocator routing through the per-thread scratch freelist above.  Used
/// for the short-lived per-block scratch vectors of the selection engines so
/// repeated kernel executions of the same shape perform no host allocations
/// after warm-up.  Stateless: all instances are interchangeable.
template <typename T>
struct ScratchAlloc {
  using value_type = T;

  ScratchAlloc() = default;
  template <typename U>
  ScratchAlloc(const ScratchAlloc<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        scratch_detail::Freelist::instance().take(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    scratch_detail::Freelist::instance().give(p, n * sizeof(T));
  }

  friend bool operator==(const ScratchAlloc&, const ScratchAlloc&) {
    return true;
  }
};

/// A std::vector drawing from the scratch freelist.
template <typename T>
using ScratchVec = std::vector<T, ScratchAlloc<T>>;

}  // namespace simgpu
