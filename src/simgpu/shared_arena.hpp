#pragma once

#include <cstddef>
#include <vector>

namespace simgpu::detail {

/// Fixed per-thread backing size for simulated shared memory.  Covers the
/// largest shared_mem_per_block of any built-in DeviceSpec (228 KiB on the
/// H100-class spec) with headroom, so a thread's arena is sized exactly once
/// and never grows across kernels or devices.  Keeping the size constant is
/// what makes steady-state launches allocation-free: block-to-thread
/// assignment is nondeterministic, so a cap that tracked the *current*
/// kernel's shared_cap would let a cold pool thread resize mid-launch.
inline constexpr std::size_t kSharedArenaBytes = 256 * 1024;

/// The calling thread's shared-memory arena, allocated on first touch.
/// ThreadPool workers touch it at thread start, before any kernel can be
/// launched, so worker-side first touches never land inside a timed region;
/// driver threads touch it on their first launch (callers that gate on
/// steady-state allocations must issue one warm-up launch, which they need
/// anyway to warm caches and pools).
inline std::vector<std::byte>& shared_arena() {
  thread_local std::vector<std::byte> arena(kSharedArenaBytes);
  return arena;
}

}  // namespace simgpu::detail
