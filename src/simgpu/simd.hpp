#pragma once

#include <cstddef>
#include <cstdint>

/// Host-side vector kernels for the emulator's warpfast scan path.  These are
/// pure compute helpers: they never touch BlockCounters, so they cannot
/// perturb KernelStats or modeled time — only wall clock.  Each entry point
/// dispatches once (cached cpuid probe) between a hand-written AVX-512 body
/// and a portable scalar fallback, so the library still builds and runs on
/// baseline x86-64 and non-x86 hosts.
///
/// Dispatch happens per call through a predictable branch rather than an
/// ifunc so the helpers stay header-only and work in static archives.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SIMGPU_SIMD_X86 1
#include <immintrin.h>
#else
#define SIMGPU_SIMD_X86 0
#endif

namespace simgpu::simd {

#if SIMGPU_SIMD_X86
[[nodiscard]] inline bool have_avx512f() {
  static const bool v = __builtin_cpu_supports("avx512f");
  return v;
}
#endif

namespace detail {

inline void ce(std::uint64_t& x, std::uint64_t& y) {
  // Min/max selects rather than a conditional swap: the compare outcome is
  // data-dependent, so this must compile to cmovs.
  const std::uint64_t mn = x < y ? x : y;
  const std::uint64_t mx = x < y ? y : x;
  x = mn;
  y = mx;
}

/// Batcher odd-even 19-comparator sorting network for 8 elements.  Eight
/// uint64s fit the x86-64 integer register file, so unlike a monolithic
/// 32-element network (32 live values, heavy spilling) every exchange stays
/// register-resident.
inline void sort8_u64(std::uint64_t* v) {
  std::uint64_t a = v[0], b = v[1], c = v[2], d = v[3];
  std::uint64_t e = v[4], f = v[5], g = v[6], h = v[7];
  ce(a, b); ce(c, d); ce(e, f); ce(g, h);
  ce(a, c); ce(b, d); ce(e, g); ce(f, h);
  ce(b, c); ce(f, g); ce(a, e); ce(d, h);
  ce(b, f); ce(c, g);
  ce(b, e); ce(d, g);
  ce(c, e); ce(d, f);
  ce(d, e);
  v[0] = a; v[1] = b; v[2] = c; v[3] = d;
  v[4] = e; v[5] = f; v[6] = g; v[7] = h;
}

/// Branchless clamped-index merge of two sorted runs of length H into
/// dst[2H].  Ties prefer x, so equal pad entries (~0) drain in a stable
/// order and the cursors can never index past the clamp.
template <std::size_t H>
inline void merge_runs_u64(std::uint64_t* dst, const std::uint64_t* x,
                           const std::uint64_t* y) {
  std::size_t i = 0, j = 0;
  for (std::size_t t = 0; t < 2 * H; ++t) {
    const std::uint64_t xv = x[i < H ? i : H - 1];
    const std::uint64_t yv = y[j < H ? j : H - 1];
    const bool tx = (j >= H) | ((i < H) & (xv <= yv));
    dst[t] = tx ? xv : yv;
    i += tx ? 1 : 0;
    j += tx ? 0 : 1;
  }
}

/// Scalar sort16: two register-resident sort8 networks plus one branchless
/// binary merge (same construction as sort32 below, one level down).
inline void sort16_u64_scalar(std::uint64_t* v) {
  sort8_u64(v);
  sort8_u64(v + 8);
  std::uint64_t tmp[16];
  merge_runs_u64<8>(tmp, v, v + 8);
  for (std::size_t i = 0; i < 16; ++i) v[i] = tmp[i];
}

/// Scalar sort32: four register-resident sort8 networks plus three
/// branchless binary merges.  ~1.6x faster than the monolithic bitonic
/// network, whose 32 live values spill every exchange through the stack.
inline void sort32_u64_scalar(std::uint64_t* v) {
  sort8_u64(v);
  sort8_u64(v + 8);
  sort8_u64(v + 16);
  sort8_u64(v + 24);
  std::uint64_t tmp[32];
  merge_runs_u64<8>(tmp, v, v + 8);
  merge_runs_u64<8>(tmp + 16, v + 16, v + 24);
  merge_runs_u64<16>(v, tmp, tmp + 16);
}

#if SIMGPU_SIMD_X86

/// One intra-register bitonic stage: compare-exchange each lane with lane^j
/// (the permutation), keeping min or max per the stage's direction mask.
__attribute__((target("avx512f"))) inline __m512i ce_stage(__m512i v,
                                                           __m512i perm,
                                                           __mmask8 take_max) {
  const __m512i w = _mm512_permutexvar_epi64(perm, v);
  const __m512i mn = _mm512_min_epu64(v, w);
  const __m512i mx = _mm512_max_epu64(v, w);
  return _mm512_mask_mov_epi64(mn, take_max, mx);
}

/// Full bitonic sort-32 over four zmm registers of uint64 lanes.  Stages
/// with partner distance j < 8 are intra-register permute/min/max/blend
/// triples; j >= 8 stages are whole-register min/max pairs.  The blend
/// masks encode, per lane i, whether it keeps the max — i.e. whether bit j
/// of i is set XOR the subsequence at i is descending ((i & k) != 0).
__attribute__((target("avx512f"))) inline void sort32_u64_avx512(
    std::uint64_t* v) {
  const __m512i p1 = _mm512_setr_epi64(1, 0, 3, 2, 5, 4, 7, 6);
  const __m512i p2 = _mm512_setr_epi64(2, 3, 0, 1, 6, 7, 4, 5);
  const __m512i p4 = _mm512_setr_epi64(4, 5, 6, 7, 0, 1, 2, 3);
  __m512i z0 = _mm512_loadu_si512(v);
  __m512i z1 = _mm512_loadu_si512(v + 8);
  __m512i z2 = _mm512_loadu_si512(v + 16);
  __m512i z3 = _mm512_loadu_si512(v + 24);
  // k=2
  z0 = ce_stage(z0, p1, 0x66); z1 = ce_stage(z1, p1, 0x66);
  z2 = ce_stage(z2, p1, 0x66); z3 = ce_stage(z3, p1, 0x66);
  // k=4
  z0 = ce_stage(z0, p2, 0x3C); z1 = ce_stage(z1, p2, 0x3C);
  z2 = ce_stage(z2, p2, 0x3C); z3 = ce_stage(z3, p2, 0x3C);
  z0 = ce_stage(z0, p1, 0x5A); z1 = ce_stage(z1, p1, 0x5A);
  z2 = ce_stage(z2, p1, 0x5A); z3 = ce_stage(z3, p1, 0x5A);
  // k=8
  z0 = ce_stage(z0, p4, 0xF0); z1 = ce_stage(z1, p4, 0x0F);
  z2 = ce_stage(z2, p4, 0xF0); z3 = ce_stage(z3, p4, 0x0F);
  z0 = ce_stage(z0, p2, 0xCC); z1 = ce_stage(z1, p2, 0x33);
  z2 = ce_stage(z2, p2, 0xCC); z3 = ce_stage(z3, p2, 0x33);
  z0 = ce_stage(z0, p1, 0xAA); z1 = ce_stage(z1, p1, 0x55);
  z2 = ce_stage(z2, p1, 0xAA); z3 = ce_stage(z3, p1, 0x55);
  // k=16, j=8: cross-register, z0/z1 ascending, z2/z3 descending
  {
    const __m512i a = _mm512_min_epu64(z0, z1);
    const __m512i b = _mm512_max_epu64(z0, z1);
    z0 = a; z1 = b;
    const __m512i c = _mm512_max_epu64(z2, z3);
    const __m512i d = _mm512_min_epu64(z2, z3);
    z2 = c; z3 = d;
  }
  z0 = ce_stage(z0, p4, 0xF0); z1 = ce_stage(z1, p4, 0xF0);
  z2 = ce_stage(z2, p4, 0x0F); z3 = ce_stage(z3, p4, 0x0F);
  z0 = ce_stage(z0, p2, 0xCC); z1 = ce_stage(z1, p2, 0xCC);
  z2 = ce_stage(z2, p2, 0x33); z3 = ce_stage(z3, p2, 0x33);
  z0 = ce_stage(z0, p1, 0xAA); z1 = ce_stage(z1, p1, 0xAA);
  z2 = ce_stage(z2, p1, 0x55); z3 = ce_stage(z3, p1, 0x55);
  // k=32, j=16 then j=8: cross-register, all ascending
  {
    const __m512i a = _mm512_min_epu64(z0, z2);
    const __m512i b = _mm512_max_epu64(z0, z2);
    z0 = a; z2 = b;
    const __m512i c = _mm512_min_epu64(z1, z3);
    const __m512i d = _mm512_max_epu64(z1, z3);
    z1 = c; z3 = d;
  }
  {
    const __m512i a = _mm512_min_epu64(z0, z1);
    const __m512i b = _mm512_max_epu64(z0, z1);
    z0 = a; z1 = b;
    const __m512i c = _mm512_min_epu64(z2, z3);
    const __m512i d = _mm512_max_epu64(z2, z3);
    z2 = c; z3 = d;
  }
  z0 = ce_stage(z0, p4, 0xF0); z1 = ce_stage(z1, p4, 0xF0);
  z2 = ce_stage(z2, p4, 0xF0); z3 = ce_stage(z3, p4, 0xF0);
  z0 = ce_stage(z0, p2, 0xCC); z1 = ce_stage(z1, p2, 0xCC);
  z2 = ce_stage(z2, p2, 0xCC); z3 = ce_stage(z3, p2, 0xCC);
  z0 = ce_stage(z0, p1, 0xAA); z1 = ce_stage(z1, p1, 0xAA);
  z2 = ce_stage(z2, p1, 0xAA); z3 = ce_stage(z3, p1, 0xAA);
  _mm512_storeu_si512(v, z0);
  _mm512_storeu_si512(v + 8, z1);
  _mm512_storeu_si512(v + 16, z2);
  _mm512_storeu_si512(v + 24, z3);
}

/// Bitonic sort-16 over two zmm registers — sort32_u64_avx512 truncated one
/// level: the same intra-register stage schedule, one cross-register
/// min/max at k=16, and the final three clean-up stages.
__attribute__((target("avx512f"))) inline void sort16_u64_avx512(
    std::uint64_t* v) {
  const __m512i p1 = _mm512_setr_epi64(1, 0, 3, 2, 5, 4, 7, 6);
  const __m512i p2 = _mm512_setr_epi64(2, 3, 0, 1, 6, 7, 4, 5);
  const __m512i p4 = _mm512_setr_epi64(4, 5, 6, 7, 0, 1, 2, 3);
  __m512i z0 = _mm512_loadu_si512(v);
  __m512i z1 = _mm512_loadu_si512(v + 8);
  // k=2
  z0 = ce_stage(z0, p1, 0x66); z1 = ce_stage(z1, p1, 0x66);
  // k=4
  z0 = ce_stage(z0, p2, 0x3C); z1 = ce_stage(z1, p2, 0x3C);
  z0 = ce_stage(z0, p1, 0x5A); z1 = ce_stage(z1, p1, 0x5A);
  // k=8: z0 ascending, z1 descending
  z0 = ce_stage(z0, p4, 0xF0); z1 = ce_stage(z1, p4, 0x0F);
  z0 = ce_stage(z0, p2, 0xCC); z1 = ce_stage(z1, p2, 0x33);
  z0 = ce_stage(z0, p1, 0xAA); z1 = ce_stage(z1, p1, 0x55);
  // k=16, j=8: cross-register, both ascending
  {
    const __m512i a = _mm512_min_epu64(z0, z1);
    const __m512i b = _mm512_max_epu64(z0, z1);
    z0 = a; z1 = b;
  }
  z0 = ce_stage(z0, p4, 0xF0); z1 = ce_stage(z1, p4, 0xF0);
  z0 = ce_stage(z0, p2, 0xCC); z1 = ce_stage(z1, p2, 0xCC);
  z0 = ce_stage(z0, p1, 0xAA); z1 = ce_stage(z1, p1, 0xAA);
  _mm512_storeu_si512(v, z0);
  _mm512_storeu_si512(v + 8, z1);
}

/// Load 8 uint64 lanes from p, padding lanes past `rem` with ~0 so pads
/// sort to the tail of any merge they enter.
__attribute__((target("avx512f"))) inline __m512i load8_pad_u64(
    const std::uint64_t* p, std::size_t rem) {
  if (rem >= 8) return _mm512_loadu_si512(p);
  return _mm512_mask_loadu_epi64(
      _mm512_set1_epi64(-1), static_cast<__mmask8>((1u << rem) - 1u), p);
}

/// Vector body of merge_sorted_u64 (see below for the contract).  The
/// classic 8-lane register merge: keep an 8-element carry `v`, and per
/// iteration load 8 from whichever run has the smaller head, run one
/// 16-element bitonic merge step (reverse + min/max + three cleanup
/// stages per half), emit the low 8, keep the high 8 as the new carry.
/// Emitted batches are globally smallest among everything unloaded: any
/// unloaded element is >= its run's head, and the low 8 of the 16 in
/// registers cannot contain an element above either head (that would
/// force 9 elements below it into the low half).  Requires an % 8 == 0,
/// outn % 8 == 0, outn <= an, bn >= 1; b's ragged tail is loaded with
/// ~0-padding, and pads can never be emitted because the union holds at
/// least outn real elements.
__attribute__((target("avx512f"))) inline void merge_sorted_u64_avx512(
    const std::uint64_t* a, std::size_t an, const std::uint64_t* b,
    std::size_t bn, std::uint64_t* out, std::size_t outn) {
  const __m512i rev = _mm512_setr_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i p1 = _mm512_setr_epi64(1, 0, 3, 2, 5, 4, 7, 6);
  const __m512i p2 = _mm512_setr_epi64(2, 3, 0, 1, 6, 7, 4, 5);
  const __m512i p4 = _mm512_setr_epi64(4, 5, 6, 7, 0, 1, 2, 3);
  std::size_t ai = 0;
  std::size_t bi = 0;
  __m512i v;
  if (b[0] < a[0]) {
    v = load8_pad_u64(b, bn);
    bi = 8;
  } else {
    v = _mm512_loadu_si512(a);
    ai = 8;
  }
  for (std::size_t t = 0; t < outn; t += 8) {
    // One side always has a block left: the loop consumes t + 16 lanes
    // through iteration t and an + 8 * ceil(bn / 8) >= outn + 8.
    const bool from_b = (bi < bn) && (ai >= an || b[bi] < a[ai]);
    __m512i u;
    if (from_b) {
      u = load8_pad_u64(b + bi, bn - bi);
      bi += 8;
    } else {
      u = _mm512_loadu_si512(a + ai);
      ai += 8;
    }
    const __m512i r = _mm512_permutexvar_epi64(rev, v);
    __m512i lo = _mm512_min_epu64(u, r);
    __m512i hi = _mm512_max_epu64(u, r);
    lo = ce_stage(lo, p4, 0xF0);
    hi = ce_stage(hi, p4, 0xF0);
    lo = ce_stage(lo, p2, 0xCC);
    hi = ce_stage(hi, p2, 0xCC);
    lo = ce_stage(lo, p1, 0xAA);
    hi = ce_stage(hi, p1, 0xAA);
    _mm512_storeu_si512(out + t, lo);
    v = hi;
  }
}

/// Monotone float->uint32 ordinal map (sign-flip trick), vectorized:
/// ord = bits ^ (0x80000000 | (bits >> 31 arithmetic)).  Negative floats get
/// all bits flipped, non-negatives get the sign bit set.
__attribute__((target("avx512f"))) inline __m512i ord_f32_avx512(__m512 v) {
  const __m512i b = _mm512_castps_si512(v);
  const __m512i flip = _mm512_or_si512(_mm512_srai_epi32(b, 31),
                                       _mm512_set1_epi32(INT32_MIN));
  return _mm512_xor_si512(b, flip);
}

/// One 16-lane step of pack_below_f32: pack (ord << 32 | idx) for every lane
/// whose key is strictly below the threshold and compress-store the packed
/// candidates at `out`, preserving lane order.  Returns how many were kept.
__attribute__((target("avx512f"))) inline std::size_t pack_below16_avx512(
    __m512 v, __mmask16 livemask, __m512i idx, __m512 t, std::uint64_t* out) {
  const __mmask16 below =
      _mm512_mask_cmp_ps_mask(livemask, v, t, _CMP_LT_OQ);
  const __m512i ord = ord_f32_avx512(v);
  // Widen (ord, idx) pairs to u64 lanes: packed = ord << 32 | idx.
  const __m512i lo = _mm512_or_si512(
      _mm512_slli_epi64(
          _mm512_cvtepu32_epi64(_mm512_castsi512_si256(ord)), 32),
      _mm512_cvtepu32_epi64(_mm512_castsi512_si256(idx)));
  const __m512i hi = _mm512_or_si512(
      _mm512_slli_epi64(
          _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(ord, 1)), 32),
      _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(idx, 1)));
  const auto mlo = static_cast<__mmask8>(below);
  const auto mhi = static_cast<__mmask8>(below >> 8);
  _mm512_mask_compressstoreu_epi64(out, mlo, lo);
  std::size_t m = static_cast<std::size_t>(__builtin_popcount(mlo));
  _mm512_mask_compressstoreu_epi64(out + m, mhi, hi);
  m += static_cast<std::size_t>(__builtin_popcount(mhi));
  return m;
}

/// Fused threshold-filter + pack for one warp round (n <= 32 floats):
/// append (ord << 32 | index) for every key strictly below `threshold` to
/// `out`, in lane order, and return the candidate count.  Indices are
/// ext_idx[u] when given, else base_index + u.
__attribute__((target("avx512f"))) inline std::size_t pack_below_f32_avx512(
    const float* p, const std::uint32_t* ext_idx, std::uint32_t base_index,
    std::size_t n, float threshold, std::uint64_t* out) {
  const __m512 t = _mm512_set1_ps(threshold);
  const __m512i iota =
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; i += 16) {
    const __mmask16 live =
        n - i >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 v = _mm512_maskz_loadu_ps(live, p + i);
    const __m512i idx =
        ext_idx != nullptr
            ? _mm512_maskz_loadu_epi32(live, ext_idx + i)
            : _mm512_add_epi32(
                  _mm512_set1_epi32(
                      static_cast<int>(base_index + static_cast<std::uint32_t>(i))),
                  iota);
    m += pack_below16_avx512(v, live, idx, t, out + m);
  }
  return m;
}

/// Vector body of histogram_digits_f32: 16 keys per iteration through the
/// ordinal map, xor, shift and mask; the 16 digits spill to a stack array and
/// the histogram bumps stay scalar (radix 256/2048 bins alias too heavily for
/// conflict-detection gathers to win).
__attribute__((target("avx512f"))) inline void histogram_digits_f32_avx512(
    const float* p, std::size_t n, std::uint32_t xor_mask, int shift,
    std::uint32_t digit_mask, std::uint32_t* hist) {
  const __m512i xm = _mm512_set1_epi32(static_cast<int>(xor_mask));
  const __m512i dm = _mm512_set1_epi32(static_cast<int>(digit_mask));
  const __m128i sh = _mm_cvtsi32_si128(shift);
  alignas(64) std::uint32_t digits[16];
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i ord = ord_f32_avx512(_mm512_loadu_ps(p + i));
    const __m512i d = _mm512_and_si512(
        _mm512_srl_epi32(_mm512_xor_si512(ord, xm), sh), dm);
    _mm512_store_si512(digits, d);
    for (std::size_t u = 0; u < 16; ++u) ++hist[digits[u]];
  }
  for (; i < n; ++i) {
    std::uint32_t b;
    __builtin_memcpy(&b, p + i, sizeof(b));
    const std::uint32_t ord = (b & 0x80000000u) ? ~b : (b | 0x80000000u);
    ++hist[((ord ^ xor_mask) >> shift) & digit_mask];
  }
}

__attribute__((target("avx512f"))) inline std::size_t count_below_f32_avx512(
    const float* p, std::size_t n, float threshold) {
  const __m512 t = _mm512_set1_ps(threshold);
  std::size_t below = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 m = _mm512_cmp_ps_mask(_mm512_loadu_ps(p + i), t, _CMP_LT_OQ);
    below += static_cast<std::size_t>(__builtin_popcount(m));
  }
  if (i < n) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 v = _mm512_maskz_loadu_ps(tail, p + i);
    const __mmask16 m = _mm512_mask_cmp_ps_mask(tail, v, t, _CMP_LT_OQ);
    below += static_cast<std::size_t>(__builtin_popcount(m));
  }
  return below;
}

#endif  // SIMGPU_SIMD_X86

}  // namespace detail

/// Sort 16 uint64s ascending, in place.  Data-independent cost; pad short
/// batches with ~0 so pads sort to the tail.
inline void sort16_u64(std::uint64_t* v) {
#if SIMGPU_SIMD_X86
  if (have_avx512f()) {
    detail::sort16_u64_avx512(v);
    return;
  }
#endif
  detail::sort16_u64_scalar(v);
}

/// Sort 32 uint64s ascending, in place.  Data-independent cost; pad short
/// batches with ~0 so pads sort to the tail.
inline void sort32_u64(std::uint64_t* v) {
#if SIMGPU_SIMD_X86
  if (have_avx512f()) {
    detail::sort32_u64_avx512(v);
    return;
  }
#endif
  detail::sort32_u64_scalar(v);
}

/// How many of p[0..n) are strictly below `threshold` (float keys).
[[nodiscard]] inline std::size_t count_below_f32(const float* p, std::size_t n,
                                                 float threshold) {
#if SIMGPU_SIMD_X86
  if (have_avx512f()) return detail::count_below_f32_avx512(p, n, threshold);
#endif
  std::size_t below = 0;
  for (std::size_t i = 0; i < n; ++i)
    below += static_cast<std::size_t>(p[i] < threshold);
  return below;
}

/// Write the `outn` smallest of the union of two ascending-sorted uint64
/// runs a[0..an) and b[0..bn) into out[0..outn), ascending.  Requires
/// outn <= an + bn; `out` must not alias either input.  Equal values are
/// interchangeable bit patterns, so the result does not depend on which
/// body runs.
inline void merge_sorted_u64(const std::uint64_t* a, std::size_t an,
                             const std::uint64_t* b, std::size_t bn,
                             std::uint64_t* out, std::size_t outn) {
  if (an == 0 || bn == 0) {
    const std::uint64_t* s = an == 0 ? b : a;
    for (std::size_t t = 0; t < outn; ++t) out[t] = s[t];
    return;
  }
#if SIMGPU_SIMD_X86
  if (an % 8 == 0 && outn % 8 == 0 && outn <= an && have_avx512f()) {
    detail::merge_sorted_u64_avx512(a, an, b, bn, out, outn);
    return;
  }
#endif
  // Clamp-then-select instead of branching on the exhausted sides: the
  // take side alternates data-dependently, so a conditional branch here
  // would mispredict about half the time and dominate the loop.
  const std::size_t imax = an - 1;
  const std::size_t jmax = bn - 1;
  std::size_t i = 0;
  std::size_t j = 0;
  for (std::size_t t = 0; t < outn; ++t) {
    const std::uint64_t av = a[i < an ? i : imax];
    const std::uint64_t bv = b[j < bn ? j : jmax];
    const bool takeb = (i >= an) | ((j < bn) & (bv < av));
    out[t] = takeb ? bv : av;
    j += takeb ? 1 : 0;
    i += takeb ? 0 : 1;
  }
}

/// Radix-digit histogram over float keys: for each of p[0..n), bump
/// hist[((ord(key) ^ xor_mask) >> shift) & digit_mask], where `ord` is the
/// same monotone sign-flip map as topk::RadixTraits<float>::to_radix (and
/// key_to_ord).  The accumulation order is irrelevant to the result, so the
/// vector and scalar bodies are bit-identical.  Used by the histogram passes
/// of the AIR / RadixSelect families on their contiguous input tiles.
inline void histogram_digits_f32(const float* p, std::size_t n,
                                 std::uint32_t xor_mask, int shift,
                                 std::uint32_t digit_mask,
                                 std::uint32_t* hist) {
#if SIMGPU_SIMD_X86
  if (have_avx512f()) {
    detail::histogram_digits_f32_avx512(p, n, xor_mask, shift, digit_mask,
                                        hist);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t b;
    __builtin_memcpy(&b, p + i, sizeof(b));
    const std::uint32_t ord = (b & 0x80000000u) ? ~b : (b | 0x80000000u);
    ++hist[((ord ^ xor_mask) >> shift) & digit_mask];
  }
}

/// Filter-and-pack one warp round of float keys: write
/// (ord(key) << 32 | index) to out[] for each key strictly below
/// `threshold`, preserving lane order, and return the count.  `ord` is the
/// same monotone sign-flip map as topk::key_to_ord<float>.  Indices are
/// ext_idx[u] when non-null, else base_index + u.  `out` must hold n slots;
/// the scalar fallback writes (then overwrites) at the cursor branchlessly,
/// so slots beyond the returned count may hold garbage.
inline std::size_t pack_below_f32(const float* p, const std::uint32_t* ext_idx,
                                  std::uint32_t base_index, std::size_t n,
                                  float threshold, std::uint64_t* out) {
#if SIMGPU_SIMD_X86
  if (have_avx512f())
    return detail::pack_below_f32_avx512(p, ext_idx, base_index, n, threshold,
                                         out);
#endif
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t b;
    __builtin_memcpy(&b, p + i, sizeof(b));
    const std::uint32_t ord = (b & 0x80000000u) ? ~b : (b | 0x80000000u);
    const std::uint32_t idx =
        ext_idx != nullptr ? ext_idx[i]
                           : base_index + static_cast<std::uint32_t>(i);
    out[m] = (static_cast<std::uint64_t>(ord) << 32) | idx;
    m += static_cast<std::size_t>(p[i] < threshold);
  }
  return m;
}

}  // namespace simgpu::simd
