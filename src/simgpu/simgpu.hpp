#pragma once

/// Umbrella header for the simulated-GPU substrate.
///
/// simgpu emulates the CUDA execution model on the host CPU:
///  - Device: device-memory arena + the host-visible event stream
///  - launch()/BlockCtx/Warp: grid/block/warp SIMT execution with accounted
///    device-memory traffic, lane ops, atomics and barriers
///  - CostModel: turns the counted event stream into modeled time on a real
///    device profile (A100/H100/A10), including PCIe and launch overheads
///  - render_timeline: ASCII Gantt of the modeled execution
///  - MemoryPool/Workspace: pooled slab reuse + named scratch segments for
///    the two-phase (plan/run) algorithm entry points

#include "simgpu/buffer.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/device.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/event.hpp"
#include "simgpu/footprint.hpp"
#include "simgpu/kernel.hpp"
#include "simgpu/memory_pool.hpp"
#include "simgpu/sanitizer.hpp"
#include "simgpu/scratch_alloc.hpp"
#include "simgpu/thread_pool.hpp"
#include "simgpu/timeline.hpp"
#include "simgpu/workspace.hpp"
