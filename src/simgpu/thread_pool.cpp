#include "simgpu/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "simgpu/shared_arena.hpp"

namespace simgpu {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads > 0 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool([] {
    if (const char* v = std::getenv("TOPK_SIM_THREADS")) {
      const long n = std::atol(v);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return static_cast<std::size_t>(
        std::max(2u, std::thread::hardware_concurrency()));
  }());
  return pool;
}

void ThreadPool::drain(Batch& batch) {
  const std::size_t chunk = batch.chunk;
  for (;;) {
    const std::size_t begin =
        batch.next.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= batch.num_blocks) break;
    const std::size_t end = std::min(begin + chunk, batch.num_blocks);
    try {
      batch.invoke(batch.ctx, begin, end);
    } catch (...) {
      std::scoped_lock lock(batch.error_mutex);
      if (!batch.error) batch.error = std::current_exception();
    }
    batch.done.fetch_add(end - begin, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  // Size this worker's simulated shared-memory arena before any kernel can
  // hand it blocks: block-to-thread assignment varies run to run, so a lazy
  // first touch here could otherwise allocate inside a caller's timed region.
  detail::shared_arena();
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        return shutting_down_ || (current_ && generation_ != seen_generation);
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      batch = current_;
      batch->active.fetch_add(1, std::memory_order_relaxed);
    }
    drain(*batch);
    // `batch` may be destroyed by the issuing thread as soon as `active`
    // reaches zero and all blocks are done, so the decrement is the last
    // touch; the notification is guarded by the pool mutex to pair with the
    // issuer's predicate check.
    {
      std::scoped_lock lock(mutex_);
      batch->active.fetch_sub(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::run_ranges(std::size_t num_blocks, RangeFn invoke,
                            void* ctx) {
  if (num_blocks == 0) return;
  Batch batch;
  batch.num_blocks = num_blocks;
  batch.invoke = invoke;
  batch.ctx = ctx;
  // Aim for several chunks per thread so stragglers can be absorbed, but
  // never claim one block at a time for large grids: the shared cursor then
  // stops being a contention point.
  batch.chunk = std::clamp<std::size_t>(num_blocks / (size() * 8), 1, 64);
  {
    std::scoped_lock lock(mutex_);
    current_ = &batch;
    ++generation_;
  }
  cv_.notify_all();
  drain(batch);
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch.done.load(std::memory_order_acquire) >= num_blocks &&
             batch.active.load(std::memory_order_acquire) == 0;
    });
    current_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace simgpu
