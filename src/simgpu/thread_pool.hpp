#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simgpu {

/// A fixed-size pool of worker threads used to execute the thread blocks of a
/// simulated kernel grid concurrently.
///
/// The pool exposes a single bulk primitive, `run_blocks(n, fn)`, which calls
/// `fn(block_index)` exactly once for every index in [0, n).  Worker threads
/// claim block indices from a shared atomic cursor, so load imbalance between
/// blocks is absorbed the same way a GPU's block scheduler absorbs it.
///
/// Exceptions thrown by `fn` are captured and the first one is rethrown on
/// the calling thread once the grid has drained (kernels must not half-run).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execute `fn(i)` for every i in [0, num_blocks).  Blocks until complete.
  /// The calling thread participates in the work.
  void run_blocks(std::size_t num_blocks,
                  const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Process-wide pool sized to the host's hardware concurrency.
  static ThreadPool& instance();

 private:
  struct Batch {
    std::size_t num_blocks = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> active{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  static void drain(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Batch* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool shutting_down_ = false;
};

}  // namespace simgpu
