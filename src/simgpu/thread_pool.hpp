#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace simgpu {

/// A fixed-size pool of worker threads used to execute the thread blocks of a
/// simulated kernel grid concurrently.
///
/// The pool exposes a single bulk primitive, `run_blocks(n, fn)`, which calls
/// `fn(block_index)` exactly once for every index in [0, n).  Worker threads
/// claim contiguous *chunks* of block indices from a shared atomic cursor —
/// one fetch_add per chunk instead of one per block — so large grids do not
/// serialize on the cursor, while small chunks still absorb load imbalance
/// the same way a GPU's block scheduler absorbs it.
///
/// `fn` is passed as a non-owning callable reference: no type-erasure
/// allocation happens per launch (the old `const std::function&` signature
/// constructed a heap-backed functor for every kernel launch).
///
/// Exceptions thrown by `fn` are captured and the first one is rethrown on
/// the calling thread once the grid has drained (kernels must not half-run).
/// When `fn(i)` throws, the remaining indices of the chunk that contained
/// `i` are skipped; other chunks still execute.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execute `fn(i)` for every i in [0, num_blocks).  Blocks until complete.
  /// The calling thread participates in the work.  `fn` is borrowed for the
  /// duration of the call — no copy, no allocation.
  template <typename F>
  void run_blocks(std::size_t num_blocks, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_ranges(num_blocks,
               [](void* ctx, std::size_t begin, std::size_t end) {
                 Fn& f = *static_cast<Fn*>(ctx);
                 for (std::size_t i = begin; i < end; ++i) f(i);
               },
               const_cast<void*>(
                   static_cast<const void*>(std::addressof(fn))));
  }

  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Process-wide pool sized to the host's hardware concurrency, or to
  /// TOPK_SIM_THREADS when that environment variable is a positive integer.
  static ThreadPool& instance();

 private:
  /// Type-erased-but-non-owning range invoker: `ctx` points at the caller's
  /// callable, which outlives the batch by construction.
  using RangeFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  struct Batch {
    std::size_t num_blocks = 0;
    std::size_t chunk = 1;  ///< indices claimed per cursor fetch_add
    RangeFn invoke = nullptr;
    void* ctx = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> active{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void run_ranges(std::size_t num_blocks, RangeFn invoke, void* ctx);
  void worker_loop();
  static void drain(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Batch* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool shutting_down_ = false;
};

}  // namespace simgpu
