#include "simgpu/timeline.hpp"

#include <algorithm>
#include <array>
#include <iomanip>
#include <sstream>

namespace simgpu {

namespace {

constexpr std::array<const char*, 3> kLaneNames = {"Host    ", "Transfer",
                                                   "Device  "};

int lane_row(SpanTiming::Lane lane) {
  switch (lane) {
    case SpanTiming::Lane::kHost:
      return 0;
    case SpanTiming::Lane::kTransfer:
      return 1;
    case SpanTiming::Lane::kDevice:
      return 2;
  }
  return 0;
}

char lane_glyph(SpanTiming::Lane lane) {
  switch (lane) {
    case SpanTiming::Lane::kHost:
      return 'h';
    case SpanTiming::Lane::kTransfer:
      return '=';
    case SpanTiming::Lane::kDevice:
      return '#';
  }
  return '?';
}

}  // namespace

std::string render_timeline(const Timeline& timeline, int width) {
  std::ostringstream os;
  const double total = std::max(timeline.total_us, 1e-9);
  std::array<std::string, 3> rows;
  rows.fill(std::string(static_cast<std::size_t>(width), '.'));

  for (const SpanTiming& s : timeline.spans) {
    const int row = lane_row(s.lane);
    int begin = static_cast<int>(s.start_us / total * width);
    int end = static_cast<int>(s.end_us / total * width);
    begin = std::clamp(begin, 0, width - 1);
    end = std::clamp(end, begin + 1, width);
    for (int c = begin; c < end; ++c) {
      rows[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] =
          lane_glyph(s.lane);
    }
  }

  os << std::fixed << std::setprecision(1);
  os << "total " << timeline.total_us << " us | device busy "
     << timeline.device_busy_us << " us | transfers " << timeline.transfer_us
     << " us | host " << timeline.host_us << " us\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << kLaneNames[r] << " |" << rows[r] << "|\n";
  }
  os << "          0" << std::string(static_cast<std::size_t>(width) - 6, ' ')
     << std::setprecision(0) << total << "us\n";
  return os.str();
}

std::string describe_timeline(const Timeline& timeline) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  for (const SpanTiming& s : timeline.spans) {
    const char* lane = kLaneNames[static_cast<std::size_t>(lane_row(s.lane))];
    os << std::setw(9) << s.start_us << " -> " << std::setw(9) << s.end_us
       << " us  [" << lane << "] " << s.label << "\n";
  }
  return os.str();
}

}  // namespace simgpu
