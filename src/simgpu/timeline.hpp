#pragma once

#include <string>

#include "simgpu/cost_model.hpp"

namespace simgpu {

/// Render a modeled timeline as an ASCII Gantt chart with three lanes
/// (Host / Transfer / Device), the shape used to reproduce the paper's
/// Fig. 8 breakdown of RadixSelect vs. AIR Top-K.
///
/// `width` is the number of character columns for the time axis.
std::string render_timeline(const Timeline& timeline, int width = 100);

/// Tabular listing of every span with start/end/duration (µs).
std::string describe_timeline(const Timeline& timeline);

}  // namespace simgpu
