#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "simgpu/buffer.hpp"
#include "simgpu/device.hpp"
#include "simgpu/memory_pool.hpp"

namespace simgpu {

/// Arena of named scratch segments backing one two-phase algorithm run:
/// plan() describes the segments in a WorkspaceLayout; bind() materializes
/// them inside one pooled slab; run() reads them back as DeviceBuffers via
/// get().  A Workspace is reusable — the steady-state pattern (bench loops,
/// topk::serve workers) binds the same or similar layouts repeatedly, and
/// as long as the held slab is large enough no allocation happens at all
/// (counted as a pool hit).
///
/// Sanitizer semantics: every bind re-registers each non-host segment as a
/// fresh device region (Device::register_region), so simcheck attributes
/// accesses to the segment name and, crucially, treats recycled bytes as
/// uninitialized — slab reuse cannot silently satisfy a stale read.
///
/// The bound layout is captured by reference and must outlive the binding
/// (plans own their layouts and are cached by callers, so this holds by
/// construction).
class Workspace {
 public:
  explicit Workspace(Device& dev) : dev_(&dev) {}
  ~Workspace() { release(); }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Materialize `layout` in pooled storage.  Reuses the held slab when it
  /// is big enough and pooling is on; otherwise swaps it for one from the
  /// device pool.
  void bind(const WorkspaceLayout& layout) {
    const std::size_t need = layout.total_bytes();
    if (!slab_.empty() && slab_.bytes >= need && pool_enabled()) {
      dev_->memory_pool().note_hit();
    } else {
      release();
      slab_ = dev_->pool_acquire(need);
    }
    layout_ = &layout;
    for (const WorkspaceLayout::Segment& seg : layout.segments) {
      if (seg.host) continue;
      dev_->register_region(slab_.base + seg.offset, seg.bytes / seg.elem_size,
                            seg.elem_size, seg.name);
    }
  }

  /// The bound segment `id` (the index WorkspaceLayout::add returned) as a
  /// typed device buffer.  T must match the planned element size.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> get(std::size_t id) const {
    const WorkspaceLayout::Segment& seg = segment(id);
    if (seg.elem_size != sizeof(T)) {
      throw std::invalid_argument(
          "Workspace::get: element type does not match the planned segment");
    }
    return DeviceBuffer<T>(reinterpret_cast<T*>(slab_.base + seg.offset),
                           seg.bytes / sizeof(T));
  }

  /// Host staging segment `id` as raw bytes (layout must have added it with
  /// host = true; host segments are not device regions).
  template <typename T>
  [[nodiscard]] T* host_ptr(std::size_t id) const {
    const WorkspaceLayout::Segment& seg = segment(id);
    if (seg.elem_size != sizeof(T)) {
      throw std::invalid_argument(
          "Workspace::host_ptr: element type does not match the segment");
    }
    return reinterpret_cast<T*>(slab_.base + seg.offset);
  }

  /// Return the held slab to the device pool.  Poisons it first when a
  /// sanitizer is attached, so reuse after release cannot leak plausible
  /// old values past the shadow (defense in depth on top of the re-register
  /// -on-bind rule).
  void release() {
    if (slab_.empty()) return;
    dev_->pool_release(std::move(slab_),
                       /*poison=*/dev_->sanitizer() != nullptr);
    slab_ = {};
    layout_ = nullptr;
  }

  [[nodiscard]] bool bound() const { return layout_ != nullptr; }
  [[nodiscard]] std::size_t slab_bytes() const { return slab_.bytes; }

 private:
  [[nodiscard]] const WorkspaceLayout::Segment& segment(std::size_t id) const {
    if (layout_ == nullptr || id >= layout_->segments.size()) {
      throw std::out_of_range("Workspace: no such segment bound");
    }
    return layout_->segments[id];
  }

  Device* dev_;
  MemoryPool::Slab slab_;
  const WorkspaceLayout* layout_ = nullptr;
};

}  // namespace simgpu
