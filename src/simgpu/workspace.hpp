#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simgpu/buffer.hpp"
#include "simgpu/device.hpp"
#include "simgpu/memory_pool.hpp"

namespace simgpu {

/// Arena of named scratch segments backing one two-phase algorithm run:
/// plan() describes the segments in a WorkspaceLayout; bind() materializes
/// them inside one pooled slab; run() reads them back as DeviceBuffers via
/// get().  A Workspace is reusable — the steady-state pattern (bench loops,
/// topk::serve workers) binds the same or similar layouts repeatedly, and
/// as long as the held slab is large enough no allocation happens at all
/// (counted as a pool hit).
///
/// Sanitizer semantics: every bind re-registers each non-host segment as a
/// fresh device region (Device::register_region), so simcheck attributes
/// accesses to the segment name and, crucially, treats recycled bytes as
/// uninitialized — slab reuse cannot silently satisfy a stale read.
///
/// The bound layout is captured by reference and must outlive the binding
/// (plans own their layouts and are cached by callers, so this holds by
/// construction).
class Workspace {
 public:
  explicit Workspace(Device& dev) : dev_(&dev) {}
  ~Workspace() { release(); }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Materialize `layout` in pooled storage.  Reuses the held slab when it
  /// is big enough and pooling is on; otherwise swaps it for one from the
  /// device pool.
  void bind(const WorkspaceLayout& layout) {
    const std::size_t need = layout.total_bytes();
    if (!slab_.empty() && slab_.bytes >= need && pool_enabled()) {
      dev_->memory_pool().note_hit();
    } else {
      release();
      slab_ = dev_->pool_acquire(need);
    }
    layout_ = &layout;
    // Keep a copy of the device-segment metadata for release(): the caller's
    // layout only has to outlive the *binding*, and a Workspace destroyed
    // after its layout (reverse declaration order in a scope) must not read
    // through the stale pointer.  Segment names are literals/interned views,
    // so copying the Segment structs is enough; assign() reuses capacity, so
    // warm rebinds stay allocation-free.
    device_segments_.assign(layout.segments.begin(), layout.segments.end());
    for (const WorkspaceLayout::Segment& seg : device_segments_) {
      if (seg.host) continue;
      dev_->register_region(slab_.base + seg.offset, seg.bytes / seg.elem_size,
                            seg.elem_size, seg.name);
    }
  }

  /// The bound segment `id` (the index WorkspaceLayout::add returned) as a
  /// typed device buffer.  T must match the planned element size.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> get(std::size_t id) const {
    const WorkspaceLayout::Segment& seg = segment(id);
    if (seg.elem_size != sizeof(T)) {
      throw std::invalid_argument(
          "Workspace::get: element type does not match the planned segment");
    }
    return DeviceBuffer<T>(reinterpret_cast<T*>(slab_.base + seg.offset),
                           seg.bytes / sizeof(T));
  }

  /// Host staging segment `id` as raw bytes (layout must have added it with
  /// host = true; host segments are not device regions).
  template <typename T>
  [[nodiscard]] T* host_ptr(std::size_t id) const {
    const WorkspaceLayout::Segment& seg = segment(id);
    if (seg.elem_size != sizeof(T)) {
      throw std::invalid_argument(
          "Workspace::host_ptr: element type does not match the segment");
    }
    return reinterpret_cast<T*>(slab_.base + seg.offset);
  }

  /// Return the held slab to the device pool.  The segment handles are
  /// poisoned, not just the pooled slab: every device segment is
  /// re-registered as a fresh "released" shadow region, so a kernel touching
  /// a stale DeviceBuffer from before the release is reported by simcheck as
  /// reading a released segment — the same verdict the static plan auditor's
  /// lifetime rule gives (see src/verify/plan_audit.hpp).  The slab bytes
  /// are poisoned unconditionally so stale reads in unchecked builds see
  /// garbage rather than plausible old results.
  void release() {
    if (slab_.empty()) return;
    if (dev_->sanitizer() != nullptr) {
      for (const WorkspaceLayout::Segment& seg : device_segments_) {
        if (seg.host) continue;
        dev_->register_region(slab_.base + seg.offset,
                              seg.bytes / seg.elem_size, seg.elem_size,
                              "released segment '" + std::string(seg.name) +
                                  "'");
      }
    }
    dev_->pool_release(std::move(slab_), /*poison=*/true);
    slab_ = {};
    layout_ = nullptr;
    device_segments_.clear();
  }

  [[nodiscard]] bool bound() const { return layout_ != nullptr; }
  [[nodiscard]] std::size_t slab_bytes() const { return slab_.bytes; }

 private:
  [[nodiscard]] const WorkspaceLayout::Segment& segment(std::size_t id) const {
    if (layout_ == nullptr || id >= layout_->segments.size()) {
      throw std::out_of_range("Workspace: no such segment bound");
    }
    return layout_->segments[id];
  }

  Device* dev_;
  MemoryPool::Slab slab_;
  const WorkspaceLayout* layout_ = nullptr;
  /// Snapshot of the bound layout's segments, owned here so release() can
  /// poison the shadow regions even after the layout object is gone.
  std::vector<WorkspaceLayout::Segment> device_segments_;
};

}  // namespace simgpu
