#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "simgpu/simd.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/radix_traits.hpp"

namespace topk {

/// Options for AIR Top-K (paper §3).  Defaults follow the paper: 11-bit
/// digits, alpha = 128, adaptive buffering and early stopping enabled.  The
/// `adaptive` and `early_stopping` switches exist to reproduce the ablations
/// of Fig. 9 and Fig. 10.
struct AirTopkOptions {
  int alpha = 128;
  bool adaptive = true;
  bool early_stopping = true;
  /// Fuse the final filtering into the last iteration-fused kernel's last
  /// thread block instead of launching a separate grid-wide filter kernel.
  /// Saves one launch, but the single last block then scans all remaining
  /// candidates alone — disastrous when the adversarial distribution leaves
  /// ~N candidates unbuffered, which is exactly why the paper evaluates but
  /// does not adopt this design (§3.1).
  bool fuse_last_filter = false;
  int digit_bits = 11;
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
  /// Select the LARGEST k instead of the smallest (RAFT's select_max):
  /// implemented natively by complementing the radix keys, so no extra
  /// passes or input rewriting are needed.
  bool greatest = false;
  /// Optional input indices (size batch*n).  When set, the reported result
  /// indices are taken from this buffer instead of the positions in `in` —
  /// the RAFT select_k `in_idx` feature used to chain selections (e.g. a
  /// coarse top-4k followed by a refined top-k keeps the original ids).
  simgpu::DeviceBuffer<std::uint32_t> in_idx{};
};

namespace air_detail {

/// Per-problem device-side control state (Algorithm 1's K, C, C',
/// target-digit prefix, plus output/buffer cursors and early-stop flags).
enum Field : std::size_t {
  kKRem = 0,    ///< K still to be found among current candidates
  kCand,        ///< C: candidate count after the latest completed pass
  kCandPrev,    ///< C': candidate count one pass earlier
  kPrefix,      ///< radix bits of the K-th element found so far (MSB-aligned)
  kOutCount,    ///< results written (atomic cursor into out_vals/out_idx)
  kTieCount,    ///< ticket counter for elements equal to the K-th value
  kBufCount0,   ///< write cursor of candidate buffer 0
  kBufCount1,   ///< write cursor of candidate buffer 1
  kDone,        ///< early stopping triggered (K == C)
  kCopied,      ///< early-stop copy-out already performed
  kNumFields
};

struct PassPlan {
  int start_bit = 0;  ///< LSB position of this pass's digit
  int width = 0;      ///< digit width in bits
};

/// Upper bound on the radix pass count: 64-bit keys with 1-bit digits.
inline constexpr int kMaxPasses = 64;

/// MSB-to-LSB digit plan: e.g. 32-bit keys with 11-bit digits give passes
/// over bits [21,32), [10,21), [0,10).
inline std::vector<PassPlan> plan_passes(int total_bits, int digit_bits) {
  std::vector<PassPlan> plan;
  int covered = 0;
  while (covered < total_bits) {
    const int width = std::min(digit_bits, total_bits - covered);
    covered += width;
    plan.push_back({total_bits - covered, width});
  }
  return plan;
}

}  // namespace air_detail

/// Execution plan for AIR Top-K: the MSB-to-LSB digit schedule with interned
/// per-pass kernel names, the launch grid (AIR uses one grid shape for every
/// kernel) and the workspace segments for control state, per-pass histograms,
/// last-block election counters and the adaptive candidate double buffer.
template <typename T>
struct AirTopkPlan {
  AirTopkOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::vector<air_detail::PassPlan> passes;
  std::vector<std::string_view> pass_names;  // interned per-pass kernel names
  int num_passes = 0;
  std::uint64_t n_over_alpha = 0;
  std::size_t bufcap = 0;
  GridShape shape;
  std::size_t seg_st = 0;
  std::size_t seg_finish = 0;
  std::size_t seg_val[2] = {0, 0};
  std::size_t seg_idx[2] = {0, 0};
  std::vector<std::size_t> seg_hist;  // one segment per radix pass
};

/// Footprint contracts for the AIR Top-K kernels.  Every scratch bound is
/// segment-sized (candidate capacity depends on the adaptive flag, histogram
/// widths on the digit schedule); result appends and the control-state
/// updates go through atomic-reserved cursors or the last-block election, so
/// they are declared kReserved rather than block-local.  air_init binds one
/// "hist" operand per radix pass — repeated binds of one operand are part of
/// the contract.
inline void register_air_topk_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"air_init",
       {
           {"st",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"finish",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
           {"hist",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"iteration_fused_kernel",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"in_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            4,
            /*optional=*/true},
           {"buf_in_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"buf_in_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"st", Access::kReadWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 8},
           {"hist", Access::kReadWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 4},
           {"finish", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
           {"buf_out_val",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"buf_out_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"out_vals",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            4},
       }});
  simgpu::register_footprint(
      {"last_filter_kernel",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"in_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            4,
            /*optional=*/true},
           {"buf_in_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"buf_in_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"st", Access::kReadWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 8},
           {"finish",
            Access::kAtomic,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"out_vals",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Phase 1 of AIR Top-K: validate, build the digit schedule and lay out the
/// workspace.  The candidate buffer capacity depends on the adaptive flag —
/// N/alpha + 1 when adaptive buffering is on, N when off — so toggling the
/// Fig. 9 ablation changes the plan's memory footprint, as in RAFT.
template <typename T>
AirTopkPlan<T> air_topk_plan(const Shape& s, const simgpu::DeviceSpec& spec,
                             const AirTopkOptions& opt,
                             simgpu::WorkspaceLayout& layout,
                             simgpu::KernelSchedule* sched = nullptr) {
  using Traits = RadixTraits<T>;
  using namespace air_detail;

  validate_problem(s.n, s.k, s.batch);
  if (opt.alpha < 4) {
    // 4C memory accesses for buffered candidates vs N loads (paper §3.2).
    throw std::invalid_argument("air_topk: alpha must be >= 4");
  }
  if (opt.digit_bits < 1 ||
      (std::size_t{4} << opt.digit_bits) > spec.shared_mem_per_block) {
    // The per-block histogram (2^b counters) must fit in shared memory —
    // the constraint that makes b = 11 "a suitable value" in §3.1.
    throw std::invalid_argument(
        "air_topk: digit_bits histogram exceeds shared memory");
  }
  if (!opt.in_idx.empty() && opt.in_idx.size() < s.batch * s.n) {
    throw std::invalid_argument("air_topk: in_idx too small");
  }

  AirTopkPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.passes = plan_passes(Traits::kBits, opt.digit_bits);
  p.num_passes = static_cast<int>(p.passes.size());
  p.pass_names.reserve(p.passes.size());
  for (int i = 0; i < p.num_passes; ++i) {
    p.pass_names.push_back(simgpu::intern_name(
        "iteration_fused_kernel(" + std::to_string(i + 1) + ")"));
  }
  p.n_over_alpha =
      static_cast<std::uint64_t>(s.n) / static_cast<std::uint64_t>(opt.alpha);
  p.bufcap =
      opt.adaptive ? static_cast<std::size_t>(p.n_over_alpha) + 1 : s.n;
  p.shape = make_grid(s.batch, s.n, spec, opt.block_threads,
                      opt.items_per_block);

  p.seg_st = layout.add<std::uint64_t>("air state", s.batch * kNumFields);
  p.seg_hist.reserve(p.passes.size());
  for (const PassPlan& pp : p.passes) {
    p.seg_hist.push_back(
        layout.add<std::uint32_t>("air hist", s.batch << pp.width));
  }
  // One last-block election counter per (pass + last filter) per problem.
  p.seg_finish = layout.add<std::uint32_t>(
      "air finish", (static_cast<std::size_t>(p.num_passes) + 1) * s.batch);
  p.seg_val[0] = layout.add<T>("air cand vals 0", s.batch * p.bufcap);
  p.seg_val[1] = layout.add<T>("air cand vals 1", s.batch * p.bufcap);
  p.seg_idx[0] = layout.add<std::uint32_t>("air cand idx 0",
                                           s.batch * p.bufcap);
  p.seg_idx[1] = layout.add<std::uint32_t>("air cand idx 1",
                                           s.batch * p.bufcap);

  if (sched != nullptr) {
    register_air_topk_footprints();
    // Nominal schedule: init, one fused kernel per pass (later passes bind
    // both the input and the candidate buffer — the adaptive read source is
    // data-dependent, so the superset is recorded), then the last filter
    // unless it is fused away.
    const bool has_in_idx = !opt.in_idx.empty();
    std::vector<simgpu::OperandBind> init_binds;
    init_binds.push_back({"st", static_cast<int>(p.seg_st)});
    init_binds.push_back({"finish", static_cast<int>(p.seg_finish)});
    for (const std::size_t seg : p.seg_hist) {
      init_binds.push_back({"hist", static_cast<int>(seg)});
    }
    simgpu::record_launch(sched, "air_init", static_cast<int>(s.batch),
                          opt.block_threads, s.batch, s.n, s.k,
                          std::move(init_binds));
    const int last_kernel =
        opt.fuse_last_filter ? p.num_passes - 1 : p.num_passes;
    for (int pass = 0; pass <= last_kernel; ++pass) {
      const bool is_last_filter = (pass == p.num_passes);
      std::vector<simgpu::OperandBind> binds;
      binds.push_back({"in", simgpu::kBindInput});
      if (has_in_idx) binds.push_back({"in_idx", simgpu::kBindInput});
      if (pass >= 2) {
        binds.push_back(
            {"buf_in_val", static_cast<int>(p.seg_val[(pass + 1) & 1])});
        binds.push_back(
            {"buf_in_idx", static_cast<int>(p.seg_idx[(pass + 1) & 1])});
      }
      binds.push_back({"st", static_cast<int>(p.seg_st)});
      if (!is_last_filter) {
        binds.push_back(
            {"hist",
             static_cast<int>(p.seg_hist[static_cast<std::size_t>(pass)])});
      }
      binds.push_back({"finish", static_cast<int>(p.seg_finish)});
      if (pass >= 1 && !is_last_filter) {
        binds.push_back(
            {"buf_out_val", static_cast<int>(p.seg_val[pass & 1])});
        binds.push_back(
            {"buf_out_idx", static_cast<int>(p.seg_idx[pass & 1])});
      }
      binds.push_back({"out_vals", simgpu::kBindOutVals});
      binds.push_back({"out_idx", simgpu::kBindOutIdx});
      simgpu::record_launch(
          sched,
          is_last_filter ? std::string_view{"last_filter_kernel"}
                         : p.pass_names[static_cast<std::size_t>(pass)],
          p.shape.total_blocks(), opt.block_threads, s.batch, s.n, s.k,
          std::move(binds));
    }
  }
  return p;
}

/// Phase 2 of AIR Top-K: Adaptive and Iteration-fused Radix Top-K (paper §3).
///
/// Finds, for each of `batch` independent problems of `n` elements laid out
/// contiguously in `in`, the `k` smallest values and their indices.  The
/// whole computation consists of one init kernel (the analogue of
/// cudaMemsetAsync on the control state), one iteration-fused kernel per
/// radix pass, and one last-filter kernel; the host only launches kernels —
/// there are no host<->device transfers or synchronizations.
///
/// Output order within the result set is unspecified (as with the RAFT
/// implementation); the result *set* is deterministic except for which
/// elements tie at the K-th value.
template <typename T>
void air_topk_run(simgpu::Device& dev, const AirTopkPlan<T>& plan,
                  simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  using Traits = RadixTraits<T>;
  using Bits = typename Traits::Bits;
  using namespace air_detail;

  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const AirTopkOptions& opt = plan.opt;
  if (in.size() < batch * n) {
    throw std::invalid_argument("air_topk: input too small");
  }
  if (out_vals.size() < batch * k || out_idx.size() < batch * k) {
    throw std::invalid_argument("air_topk: output buffers too small");
  }
  const bool has_in_idx = !opt.in_idx.empty();
  const auto in_idx = opt.in_idx;
  // Largest-k == smallest-k in complemented key space.
  const Bits order_mask = opt.greatest ? static_cast<Bits>(~Bits{0}) : Bits{0};

  const int num_passes = plan.num_passes;
  const std::uint64_t n_over_alpha = plan.n_over_alpha;
  const std::size_t bufcap = plan.bufcap;

  auto st = ws.get<std::uint64_t>(plan.seg_st);
  // Kernels capture raw pointers into these function-scope arrays (launch
  // runs the blocks to completion before returning, so the storage outlives
  // every block); capturing the plan's std::vectors by value would allocate.
  simgpu::DeviceBuffer<std::uint32_t> hist_local[kMaxPasses];
  for (int i = 0; i < num_passes; ++i) {
    hist_local[i] =
        ws.get<std::uint32_t>(plan.seg_hist[static_cast<std::size_t>(i)]);
  }
  const simgpu::DeviceBuffer<std::uint32_t>* const hist = hist_local;
  const PassPlan* const passes = plan.passes.data();
  auto finish = ws.get<std::uint32_t>(plan.seg_finish);
  simgpu::DeviceBuffer<T> buf_val[2] = {ws.get<T>(plan.seg_val[0]),
                                        ws.get<T>(plan.seg_val[1])};
  simgpu::DeviceBuffer<std::uint32_t> buf_idx[2] = {
      ws.get<std::uint32_t>(plan.seg_idx[0]),
      ws.get<std::uint32_t>(plan.seg_idx[1])};

  const GridShape shape = plan.shape;
  const int bpp = shape.blocks_per_problem;

  const auto sidx = [](std::size_t prob, Field f) {
    return prob * kNumFields + static_cast<std::size_t>(f);
  };

  // ---- init kernel: control state + histograms (cudaMemsetAsync analogue)
  {
    simgpu::LaunchConfig cfg{"air_init", static_cast<int>(batch),
                             opt.block_threads, batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto prob = static_cast<std::size_t>(ctx.block_idx());
      ctx.store<std::uint64_t>(st, sidx(prob, kKRem), k);
      ctx.store<std::uint64_t>(st, sidx(prob, kCand), n);
      ctx.store<std::uint64_t>(st, sidx(prob, kCandPrev), n);
      ctx.store<std::uint64_t>(st, sidx(prob, kPrefix), 0);
      ctx.store<std::uint64_t>(st, sidx(prob, kOutCount), 0);
      ctx.store<std::uint64_t>(st, sidx(prob, kTieCount), 0);
      ctx.store<std::uint64_t>(st, sidx(prob, kBufCount0), 0);
      ctx.store<std::uint64_t>(st, sidx(prob, kBufCount1), 0);
      ctx.store<std::uint64_t>(st, sidx(prob, kDone), 0);
      ctx.store<std::uint64_t>(st, sidx(prob, kCopied), 0);
      for (int p = 0; p <= num_passes; ++p) {
        ctx.store<std::uint32_t>(
            finish, static_cast<std::size_t>(p) * batch + prob, 0);
      }
      for (int p = 0; p < num_passes; ++p) {
        const std::size_t nb = std::size_t{1} << passes[p].width;
        for (std::size_t d = 0; d < nb; ++d) {
          ctx.store<std::uint32_t>(hist[p], (prob << passes[p].width) + d, 0);
        }
      }
      ctx.ops(1u << opt.digit_bits);
    });
  }

  // ---- one iteration-fused kernel per pass, then the last filter ---------
  const int last_kernel = opt.fuse_last_filter ? num_passes - 1 : num_passes;
  for (int p = 0; p <= last_kernel; ++p) {
    const bool is_last_filter = (p == num_passes);
    const bool fuse_filter_here =
        opt.fuse_last_filter && (p == num_passes - 1);
    const PassPlan cur = is_last_filter ? PassPlan{} : passes[p];
    const PassPlan prev = (p > 0) ? passes[p - 1] : PassPlan{};
    const std::size_t nb = std::size_t{1} << cur.width;
    const std::uint32_t digit_mask = (1u << cur.width) - 1u;
    const auto ghist =
        is_last_filter ? simgpu::DeviceBuffer<std::uint32_t>{} : hist[p];
    const auto buf_in_val = buf_val[(p + 1) & 1];
    const auto buf_in_idx = buf_idx[(p + 1) & 1];
    const auto buf_out_val = buf_val[p & 1];
    const auto buf_out_idx = buf_idx[p & 1];
    const Field buf_out_count = ((p & 1) != 0) ? kBufCount1 : kBufCount0;
    const bool adaptive = opt.adaptive;
    const bool early = opt.early_stopping;

    simgpu::LaunchConfig cfg{
        is_last_filter ? std::string_view{"last_filter_kernel"}
                       : plan.pass_names[static_cast<std::size_t>(p)],
        shape.total_blocks(), opt.block_threads, batch, n, k};

    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const std::size_t prob = shape.problem_of(ctx.block_idx());
      const int bip = shape.block_in_problem(ctx.block_idx());

      const std::uint64_t done = ctx.load(st, sidx(prob, kDone));
      const std::uint64_t copied = ctx.load(st, sidx(prob, kCopied));
      if (done != 0 && copied != 0) return;  // early-stopped and drained
      const bool copy_mode = done != 0;

      const std::uint64_t cand = ctx.load(st, sidx(prob, kCand));
      const std::uint64_t cand_prev = ctx.load(st, sidx(prob, kCandPrev));
      const std::uint64_t prefix = ctx.load(st, sidx(prob, kPrefix));
      const std::uint64_t k_rem = ctx.load(st, sidx(prob, kKRem));

      // Where do we read from?  Pass 0 and pass 1 always scan the input;
      // later passes read the candidate buffer iff the previous pass stored
      // candidates (Algorithm 1 line 7, generalized by the adaptive flag).
      const bool from_buf =
          (p >= 2) && (adaptive ? (cand_prev < n_over_alpha) : true);
      // Do we store candidates this pass?  (Algorithm 1 line 17.)
      const bool store_flag =
          (p >= 1) && !is_last_filter && !copy_mode &&
          (adaptive ? (cand < n_over_alpha) : true);

      const std::size_t count = from_buf ? cand_prev : n;
      const auto [begin, end] = block_chunk(count, bpp, bip);

      // Result and candidate-buffer appends use warp-aggregated atomics
      // (one reservation per staged batch), as the RAFT kernels do.
      AggregatedAppender<T, std::uint64_t> out_app(
          out_vals, out_idx, prob * k, st, sidx(prob, kOutCount), k,
          "air_topk results");
      AggregatedAppender<T, std::uint64_t> buf_app(
          buf_out_val, buf_out_idx, prob * bufcap, st,
          sidx(prob, buf_out_count), bufcap, "air_topk candidates");
      auto emit = [&](T value, std::uint32_t index) {
        out_app.push(ctx, value, index);
      };

      // Tie tickets (elements equal to the K-th value in the last filter)
      // are likewise reserved in warp-sized batches.
      T tie_v[32];
      std::uint32_t tie_i[32];
      std::size_t tie_staged = 0;
      auto flush_ties = [&]() {
        if (tie_staged == 0) return;
        const std::uint64_t base = ctx.atomic_add(
            st, sidx(prob, kTieCount), static_cast<std::uint64_t>(tie_staged));
        for (std::size_t i = 0; i < tie_staged; ++i) {
          if (base + i < k_rem) emit(tie_v[i], tie_i[i]);
        }
        ctx.ops(2);
        tie_staged = 0;
      };

      simgpu::SharedSpan<std::uint32_t> shist;
      if (!is_last_filter && !copy_mode) {
        shist = ctx.shared_zero<std::uint32_t>(nb, "air digit histogram");
      }
      // Raw histogram pointer on the unsanitized tile path (shared accesses
      // are uncounted, so this cannot perturb KernelStats); nullptr means go
      // through the shadowed SharedRef.
      std::uint32_t* const hraw = shist.unchecked_data();

      // The per-element body; fed by the tile-granular scan helpers below
      // (or scalar loads when the fast path is off — identical counters).
      const auto process = [&](std::size_t, T value, std::uint32_t index) {
        const Bits key = Traits::to_radix(value) ^ order_mask;

        if (p != 0) {
          const Bits pk = static_cast<Bits>(key >> prev.start_bit);
          const auto target = static_cast<Bits>(prefix);
          if (pk == target) {
            // still a candidate
          } else if (pk < target &&
                     (pk >> prev.width) == (target >> prev.width)) {
            // Newly discovered top-K result: earlier digits all match the
            // K-th prefix and the previous pass's digit is smaller.
            emit(value, index);
            return;
          } else {
            return;  // definitely not in the top-K (or already emitted)
          }
        }

        if (copy_mode) {
          // Early stopping: every remaining candidate is a result.
          emit(value, index);
          return;
        }
        if (is_last_filter) {
          // Tie at the K-th value: take the first k_rem by batched ticket.
          tie_v[tie_staged] = value;
          tie_i[tie_staged] = index;
          if (++tie_staged == 32) flush_ties();
          return;
        }
        if (store_flag) {
          buf_app.push(ctx, value, index);
        }
        const std::uint32_t digit =
            static_cast<std::uint32_t>(key >> cur.start_bit) & digit_mask;
        if (hraw != nullptr) {
          ++hraw[digit];
        } else {
          ++shist[digit];
        }
      };

      const auto scan_with = [&](auto&& body) {
        if (from_buf) {
          scan_pairs(ctx, buf_in_val, buf_in_idx, prob * bufcap, begin, end,
                     body);
        } else if (has_in_idx) {
          scan_pairs(ctx, in, in_idx, prob * n, begin, end, body);
        } else {
          ctx.for_each_elem(in, prob * n + begin, end - begin,
                            [&](std::size_t j, T value) {
                              body(begin + j, value,
                                   static_cast<std::uint32_t>(begin + j));
                            });
        }
      };

      // Specialized bodies for the histogram passes on the unsanitized tile
      // path.  They are behaviorally identical to `process` with the branches
      // that are loop-invariant for these passes (copy_mode, is_last_filter,
      // p == 0, hraw) resolved outside the loop — at -O2 nothing unswitches
      // them for us, and they dominate the whole-input scans of passes 0/1.
      // All loop invariants are copied to function-scope locals so raw
      // histogram stores cannot force reloads of captured state.
      if (hraw != nullptr && !copy_mode && !is_last_filter) {
        const Bits fom = order_mask;
        const int fsb = cur.start_bit;
        const std::uint32_t fdm = digit_mask;
        if (p == 0) {
          bool vectorized = false;
          if constexpr (std::is_same_v<T, float>) {
            if (!from_buf && !has_in_idx) {
              // SIMD-ized pass-0 histogram over the contiguous input chunk
              // (hraw != nullptr already implies the unsanitized tile path).
              // load_tile charges the same bytes the scalar scan would and
              // the bulk ctx.ops below is shared, so KernelStats stay
              // bit-identical; the histogram is order-independent.
              std::size_t i = begin;
              while (i < end) {
                const std::size_t c = std::min(simgpu::kTileElems, end - i);
                const std::span<const float> tv =
                    ctx.load_tile(in, prob * n + i, c);
                simgpu::simd::histogram_digits_f32(
                    tv.data(), tv.size(),  // lint:allow-raw-access
                    static_cast<std::uint32_t>(fom), fsb, fdm, hraw);
                i += c;
              }
              vectorized = true;
            }
          }
          if (!vectorized) {
            scan_with([&](std::size_t, T value, std::uint32_t) {
              const Bits key = Traits::to_radix(value) ^ fom;
              ++hraw[static_cast<std::uint32_t>(key >> fsb) & fdm];
            });
          }
        } else {
          const int psb = prev.start_bit;
          const int pw = prev.width;
          const auto target = static_cast<Bits>(prefix);
          const bool fstore = store_flag;
          scan_with([&](std::size_t, T value, std::uint32_t index) {
            const Bits key = Traits::to_radix(value) ^ fom;
            const Bits pk = static_cast<Bits>(key >> psb);
            if (pk == target) {
              if (fstore) buf_app.push(ctx, value, index);
              ++hraw[static_cast<std::uint32_t>(key >> fsb) & fdm];
            } else if (pk < target && (pk >> pw) == (target >> pw)) {
              emit(value, index);
            }
          });
        }
      } else {
        scan_with(process);
      }
      // ~10 lane ops per element: load issue, radix transform, prefix
      // compare chain, digit extract (shift+mask), shared-histogram address
      // arithmetic + increment, loop bookkeeping.
      ctx.ops(10 * (end - begin));

      // Drain the staged appends before the block retires.
      flush_ties();
      out_app.flush(ctx);
      buf_app.flush(ctx);

      // Fused epilogue: flush the block histogram and let the last block of
      // this problem compute prefix sum + target digit (Algorithm 1 l.23-28).
      if (!is_last_filter && !copy_mode) {
        ctx.sync();
        for (std::size_t d = 0; d < nb; ++d) {
          if (shist[d] != 0) {
            ctx.atomic_add_scattered(ghist, (prob << cur.width) + d, shist[d]);
          }
        }
        ctx.ops(nb);
      }
      if (is_last_filter && !copy_mode) return;

      const std::uint32_t finished = ctx.atomic_add(
          finish, static_cast<std::size_t>(p) * batch + prob, 1u);
      if (finished != static_cast<std::uint32_t>(bpp - 1)) return;

      // ---- last thread block of this problem ----
      if (copy_mode) {
        ctx.store<std::uint64_t>(st, sidx(prob, kCopied), 1);
        return;
      }
      std::uint64_t total = 0;
      std::uint32_t target_digit = 0;
      std::uint64_t less = 0;
      std::uint64_t target_count = 0;
      for (std::size_t d = 0; d < nb; ++d) {
        const std::uint32_t c = ctx.load(ghist, (prob << cur.width) + d);
        if (total + c >= k_rem) {
          target_digit = static_cast<std::uint32_t>(d);
          less = total;
          target_count = c;
          break;
        }
        total += c;
      }
      ctx.ops(2 * nb);
      ctx.store<std::uint64_t>(st, sidx(prob, kCandPrev), cand);
      ctx.store<std::uint64_t>(st, sidx(prob, kCand), target_count);
      ctx.store<std::uint64_t>(st, sidx(prob, kKRem), k_rem - less);
      ctx.store<std::uint64_t>(st, sidx(prob, kPrefix),
                               (prefix << cur.width) | target_digit);
      ctx.store<std::uint64_t>(
          st, sidx(prob, ((p + 1) & 1) != 0 ? kBufCount1 : kBufCount0), 0);
      if (early && (k_rem - less) == target_count) {
        ctx.store<std::uint64_t>(st, sidx(prob, kDone), 1);
      }

      if (fuse_filter_here) {
        // Fused final filter: this (single) last thread block scans the
        // remaining candidates by itself and writes the final results.
        const auto kth = static_cast<Bits>((prefix << cur.width) |
                                           target_digit);
        const std::uint64_t ties_needed = k_rem - less;
        std::uint64_t ties_taken = 0;
        const std::size_t fcount = store_flag ? cand : n;
        const auto filter = [&](std::size_t, T value, std::uint32_t index) {
          const Bits key = Traits::to_radix(value) ^ order_mask;
          if (key == kth) {
            if (ties_taken < ties_needed) {
              emit(value, index);
              ++ties_taken;
            }
          } else if (key < kth &&
                     (key >> cur.width) == (kth >> cur.width)) {
            emit(value, index);
          }
        };
        if (store_flag) {
          scan_pairs(ctx, buf_out_val, buf_out_idx, prob * bufcap, 0, fcount,
                     filter);
        } else if (has_in_idx) {
          scan_pairs(ctx, in, in_idx, prob * n, 0, fcount, filter);
        } else {
          ctx.for_each_elem(in, prob * n, fcount,
                            [&](std::size_t j, T value) {
                              filter(j, value,
                                     static_cast<std::uint32_t>(j));
                            });
        }
        ctx.ops(6 * fcount);
        out_app.flush(ctx);
      }
    });
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void air_topk(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
              std::size_t batch, std::size_t n, std::size_t k,
              simgpu::DeviceBuffer<T> out_vals,
              simgpu::DeviceBuffer<std::uint32_t> out_idx,
              const AirTopkOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      air_topk_plan<T>(Shape{batch, n, k, opt.greatest}, dev.spec(), opt,
                       layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  air_topk_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
