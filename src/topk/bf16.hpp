#pragma once

#include <bit>
#include <cstdint>

#include "topk/radix_traits.hpp"

namespace topk {

/// Minimal bfloat16 storage type: the top 16 bits of an IEEE-754 binary32.
/// Conversion from float uses round-to-nearest-even (with NaN payloads
/// preserved quiet so a NaN never rounds into an infinity); conversion back
/// is exact — every bfloat16 value is a float with 16 zero mantissa bits.
class bf16 {
 public:
  bf16() = default;

  explicit bf16(float f) : bits_(float_to_bf16_bits(f)) {}

  static bf16 from_bits(std::uint16_t bits) {
    bf16 h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] std::uint16_t bits() const { return bits_; }

  explicit operator float() const {
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits_) << 16);
  }

  friend bool operator<(bf16 a, bf16 b) {
    return static_cast<float>(a) < static_cast<float>(b);
  }
  friend bool operator==(bf16 a, bf16 b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }

  static std::uint16_t float_to_bf16_bits(float f) {
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    if ((x & 0x7F800000u) == 0x7F800000u && (x & 0x7FFFFFu) != 0) {
      // NaN: truncate the payload but force the quiet bit so the result
      // cannot collapse to an infinity encoding.
      return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
    }
    // Round to nearest even on the dropped 16 mantissa bits.  Overflow into
    // the exponent is correct by construction (carries ripple into inf).
    const std::uint32_t rounding_bias = 0x7FFFu + ((x >> 16) & 1u);
    return static_cast<std::uint16_t>((x + rounding_bias) >> 16);
  }

 private:
  std::uint16_t bits_ = 0;
};

/// Radix traits for bfloat16: identical sign-flip trick as float/half on the
/// 16-bit storage pattern.  Total order: -NaN < -inf < finite < +inf < +NaN,
/// with -0 ordered just below +0 (distinct ordinals).
template <>
struct RadixTraits<bf16> {
  using Bits = std::uint16_t;
  static constexpr int kBits = 16;

  static Bits to_radix(bf16 v) {
    const std::uint16_t b = v.bits();
    return (b & 0x8000u) ? static_cast<Bits>(~b)
                         : static_cast<Bits>(b | 0x8000u);
  }
  static bf16 from_radix(Bits b) {
    const std::uint16_t raw =
        (b & 0x8000u) ? static_cast<std::uint16_t>(b & 0x7FFFu)
                      : static_cast<std::uint16_t>(~b);
    return bf16::from_bits(raw);
  }
};

}  // namespace topk
