#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>

#include "simgpu/kernel.hpp"

namespace topk {

/// Largest representable value, used to pad partial-sort working sets up to
/// power-of-two lengths (the analogue of Faiss' `Limits<T>::getMax()`).
template <typename K>
constexpr K sort_sentinel() {
  if constexpr (std::numeric_limits<K>::has_infinity) {
    return std::numeric_limits<K>::infinity();
  } else {
    return std::numeric_limits<K>::max();
  }
}

/// A key/index store the bitonic networks can sort: any indexable view with
/// an element_type (std::span, simgpu::SharedSpan).  Plain containers like
/// std::vector do not satisfy this — wrap them in a span (the std::span
/// overloads below do it implicitly).
template <typename S>
concept SortableView = requires(const S& s, std::size_t i) {
  typename S::element_type;
  typename S::value_type;
  s.size();
  s[i];
};

/// True for views whose operator[] returns a sanitizer-aware proxy
/// (simgpu::SharedSpan); false for raw std::span views.
template <typename V>
inline constexpr bool kProxyView = requires(const V& v) {
  v.unchecked_data();
};

/// Unwrap a view to an equivalent raw std::span when uncounted raw element
/// access is legal.  For std::span views this is the identity; for
/// simgpu::SharedSpan it is unchecked_data(), which is non-null only while
/// the tile fast path is on and no sanitizer is attached (shared-memory
/// accesses are never charged to BlockCounters, so bypassing the proxies
/// cannot perturb KernelStats).  An empty return means "not available" —
/// callers fall back to the proxy view.
template <SortableView V>
[[nodiscard]] std::span<typename V::element_type> raw_view(const V& v) {
  if constexpr (kProxyView<V>) {
    typename V::element_type* p = v.unchecked_data();
    if (p == nullptr) return {};
    return {p, v.size()};
  } else {
    return {v.data(), v.size()};
  }
}

namespace detail {

template <SortableView KS, SortableView IS>
inline void compare_exchange(const KS& keys, const IS& idx, std::size_t i,
                             std::size_t j, bool ascending) {
  using K = typename KS::value_type;
  using I = typename IS::value_type;
  // Read-both / write-both instead of std::swap: the views may hand out
  // proxy references (SharedSpan) rather than K&.
  const K ki = keys[i];
  const K kj = keys[j];
  const bool do_swap = ascending ? (kj < ki) : (ki < kj);
  if (do_swap) {
    keys[i] = kj;
    keys[j] = ki;
    const I ii = idx[i];
    const I ij = idx[j];
    idx[i] = ij;
    idx[j] = ii;
  }
}

}  // namespace detail

/// Bitonic merge network: `keys[lo, lo+n)` must form a bitonic sequence;
/// afterwards it is sorted (ascending if `ascending`).  `n` must be a power
/// of two.  Charges one lane op per compare-exchange, as each exchange is one
/// SIMT instruction on the device.
template <SortableView KS, SortableView IS>
void bitonic_merge(simgpu::BlockCtx& ctx, KS keys, IS idx, std::size_t lo,
                   std::size_t n, bool ascending) {
  // Proxy views (SharedSpan) route every element access through the
  // sanitizer hook; when raw access is legal, run the same network over the
  // unwrapped spans so the inner compare-exchange loop stays tight.  The
  // charges below do not depend on the view type, so KernelStats are
  // identical either way.
  if constexpr (kProxyView<KS> || kProxyView<IS>) {
    const auto rk = raw_view(keys);
    const auto ri = raw_view(idx);
    if (!rk.empty() && !ri.empty()) {
      bitonic_merge(ctx, rk, ri, lo, n, ascending);
      return;
    }
  }
  for (std::size_t stride = n / 2; stride > 0; stride /= 2) {
    for (std::size_t i = lo; i < lo + n; ++i) {
      if ((i - lo) & stride) continue;  // partner handled from lower index
      detail::compare_exchange(keys, idx, i, i + stride, ascending);
    }
    ctx.ops(n / 2);
  }
}

/// Full bitonic sort network over `keys[lo, lo+n)`; `n` must be a power of
/// two.  O(n log^2 n) compare-exchanges, all charged as lane ops.
template <SortableView KS, SortableView IS>
void bitonic_sort(simgpu::BlockCtx& ctx, KS keys, IS idx, std::size_t lo,
                  std::size_t n, bool ascending = true) {
  if constexpr (kProxyView<KS> || kProxyView<IS>) {
    const auto rk = raw_view(keys);
    const auto ri = raw_view(idx);
    if (!rk.empty() && !ri.empty()) {
      bitonic_sort(ctx, rk, ri, lo, n, ascending);
      return;
    }
  }
  for (std::size_t size = 2; size <= n; size *= 2) {
    for (std::size_t chunk = lo; chunk < lo + n; chunk += size) {
      const bool dir = ascending == (((chunk - lo) / size) % 2 == 0);
      bitonic_merge(ctx, keys, idx, chunk, size, dir);
    }
  }
}

/// Convenience overloads covering a whole view.
template <SortableView KS, SortableView IS>
void bitonic_sort(simgpu::BlockCtx& ctx, KS keys, IS idx,
                  bool ascending = true) {
  bitonic_sort(ctx, keys, idx, 0, keys.size(), ascending);
}

/// std::span form, kept so callers holding containers keep the implicit
/// container-to-span conversion (`bitonic_sort<float>(ctx, vec, ivec)`).
template <typename K>
void bitonic_sort(simgpu::BlockCtx& ctx, std::span<K> keys,
                  std::span<std::uint32_t> idx, bool ascending = true) {
  bitonic_sort<std::span<K>, std::span<std::uint32_t>>(ctx, keys, idx, 0,
                                                       keys.size(), ascending);
}

/// ---- Closed-form lane-op charges of the networks above ------------------
///
/// The warpfast fast path (docs/performance.md) replaces the network
/// *execution* with cheaper host-side data structures but must charge
/// BlockCounters exactly what the emulated network would.  The networks are
/// data-oblivious, so their charges are pure functions of the length; these
/// helpers are the single source of truth and are asserted against the
/// actual networks in partial_sort_test.
///
/// Lane ops charged by bitonic_merge over a length-n network.
constexpr std::uint64_t bitonic_merge_ops(std::size_t n) {
  std::uint64_t ops = 0;
  for (std::size_t stride = n / 2; stride > 0; stride /= 2) ops += n / 2;
  return ops;
}

/// Lane ops charged by bitonic_sort over a length-n network.
constexpr std::uint64_t bitonic_sort_ops(std::size_t n) {
  std::uint64_t ops = 0;
  for (std::size_t size = 2; size <= n; size *= 2) {
    ops += (n / size) * bitonic_merge_ops(size);
  }
  return ops;
}

/// Lane ops charged by merge_prune over two length-n lists.
constexpr std::uint64_t merge_prune_ops(std::size_t n) {
  return n + bitonic_merge_ops(n);
}

/// Stack-scratch bound of merge_prune's warpfast two-pointer fast path;
/// covers every selection-family capacity (kMaxSelectionK).  Longer lists
/// fall back to the exact network.
inline constexpr std::size_t kMergePruneScratch = 2048;

/// Merge-and-prune, the core partial-sorting step of WarpSelect and
/// Bitonic Top-K: `a` and `b` are both ascending sorted, same power-of-two
/// length n.  Afterwards `a` holds the n smallest of the 2n elements, sorted
/// ascending; `b` is clobbered.
///
/// Works by the classic trick: element-wise min/max of a[i] and b[n-1-i]
/// leaves the n smallest in `a` as a bitonic sequence, which one merge
/// network pass then sorts.
template <SortableView AK, SortableView AI, SortableView BK, SortableView BI>
void merge_prune(simgpu::BlockCtx& ctx, AK a_keys, AI a_idx, BK b_keys,
                 BI b_idx) {
  // Unwrap proxy views to raw spans when legal (see bitonic_merge) — this
  // is the hot inner loop of every queue/list merge in the WarpSelect
  // family.  unchecked_data() is all-or-nothing per kernel (one global gate
  // + one sanitizer test), so a partial unwrap cannot happen in practice;
  // the fallback keeps the code correct if it ever does.
  if constexpr (kProxyView<AK> || kProxyView<AI> || kProxyView<BK> ||
                kProxyView<BI>) {
    const auto rak = raw_view(a_keys);
    const auto rai = raw_view(a_idx);
    const auto rbk = raw_view(b_keys);
    const auto rbi = raw_view(b_idx);
    if (!rak.empty() && !rai.empty() && !rbk.empty() && !rbi.empty()) {
      merge_prune(ctx, rak, rai, rbk, rbi);
      return;
    }
  }
  using K = typename AK::value_type;
  using I = typename AI::value_type;
  const std::size_t n = a_keys.size();
  // Warpfast fast path: both inputs are ascending sorted, so the n smallest
  // of the union fall out of one two-pointer pass — no min/max exchange and
  // no merge network.  The network is data-oblivious, so its closed-form
  // charge (asserted against the real network in partial_sort_test) keeps
  // KernelStats and modeled time bit-identical.  Only the order of equal
  // keys can differ from the network's, which the result contract leaves
  // open; b's leftovers are documented clobbered either way.
  if (n <= kMergePruneScratch && ctx.warpfast_enabled()) {
    ctx.ops(merge_prune_ops(n));
    K ak[kMergePruneScratch];
    I ai[kMergePruneScratch];
    for (std::size_t i = 0; i < n; ++i) {
      ak[i] = a_keys[i];
      ai[i] = a_idx[i];
    }
    std::size_t i = 0;
    std::size_t j = 0;
    for (std::size_t t = 0; t < n; ++t) {
      // i, j < n for every step: each advances at most once per element
      // taken and only n elements are taken.  Ties keep the a side.
      const K bv = b_keys[j];
      const bool takeb = bv < ak[i];
      a_keys[t] = takeb ? bv : ak[i];
      a_idx[t] = takeb ? static_cast<I>(b_idx[j]) : ai[i];
      j += takeb ? 1 : 0;
      i += takeb ? 0 : 1;
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = n - 1 - i;
    const K av = a_keys[i];
    const K bv = b_keys[j];
    if (bv < av) {
      a_keys[i] = bv;
      b_keys[j] = av;
      const I ai = a_idx[i];
      const I bi = b_idx[j];
      a_idx[i] = bi;
      b_idx[j] = ai;
    }
  }
  ctx.ops(n);
  bitonic_merge(ctx, a_keys, a_idx, 0, n, /*ascending=*/true);
}

/// std::span form (container-to-span convenience, as for bitonic_sort).
template <typename K>
void merge_prune(simgpu::BlockCtx& ctx, std::span<K> a_keys,
                 std::span<std::uint32_t> a_idx, std::span<K> b_keys,
                 std::span<std::uint32_t> b_idx) {
  merge_prune<std::span<K>, std::span<std::uint32_t>, std::span<K>,
              std::span<std::uint32_t>>(ctx, a_keys, a_idx, b_keys, b_idx);
}

/// Round up to the next power of two (minimum 1).
constexpr std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p *= 2;
  return p;
}

}  // namespace topk
