#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>

#include "simgpu/kernel.hpp"

namespace topk {

/// Largest representable value, used to pad partial-sort working sets up to
/// power-of-two lengths (the analogue of Faiss' `Limits<T>::getMax()`).
template <typename K>
constexpr K sort_sentinel() {
  if constexpr (std::numeric_limits<K>::has_infinity) {
    return std::numeric_limits<K>::infinity();
  } else {
    return std::numeric_limits<K>::max();
  }
}

/// A key/index store the bitonic networks can sort: any indexable view with
/// an element_type (std::span, simgpu::SharedSpan).  Plain containers like
/// std::vector do not satisfy this — wrap them in a span (the std::span
/// overloads below do it implicitly).
template <typename S>
concept SortableView = requires(const S& s, std::size_t i) {
  typename S::element_type;
  typename S::value_type;
  s.size();
  s[i];
};

namespace detail {

template <SortableView KS, SortableView IS>
inline void compare_exchange(const KS& keys, const IS& idx, std::size_t i,
                             std::size_t j, bool ascending) {
  using K = typename KS::value_type;
  using I = typename IS::value_type;
  // Read-both / write-both instead of std::swap: the views may hand out
  // proxy references (SharedSpan) rather than K&.
  const K ki = keys[i];
  const K kj = keys[j];
  const bool do_swap = ascending ? (kj < ki) : (ki < kj);
  if (do_swap) {
    keys[i] = kj;
    keys[j] = ki;
    const I ii = idx[i];
    const I ij = idx[j];
    idx[i] = ij;
    idx[j] = ii;
  }
}

}  // namespace detail

/// Bitonic merge network: `keys[lo, lo+n)` must form a bitonic sequence;
/// afterwards it is sorted (ascending if `ascending`).  `n` must be a power
/// of two.  Charges one lane op per compare-exchange, as each exchange is one
/// SIMT instruction on the device.
template <SortableView KS, SortableView IS>
void bitonic_merge(simgpu::BlockCtx& ctx, KS keys, IS idx, std::size_t lo,
                   std::size_t n, bool ascending) {
  for (std::size_t stride = n / 2; stride > 0; stride /= 2) {
    for (std::size_t i = lo; i < lo + n; ++i) {
      if ((i - lo) & stride) continue;  // partner handled from lower index
      detail::compare_exchange(keys, idx, i, i + stride, ascending);
    }
    ctx.ops(n / 2);
  }
}

/// Full bitonic sort network over `keys[lo, lo+n)`; `n` must be a power of
/// two.  O(n log^2 n) compare-exchanges, all charged as lane ops.
template <SortableView KS, SortableView IS>
void bitonic_sort(simgpu::BlockCtx& ctx, KS keys, IS idx, std::size_t lo,
                  std::size_t n, bool ascending = true) {
  for (std::size_t size = 2; size <= n; size *= 2) {
    for (std::size_t chunk = lo; chunk < lo + n; chunk += size) {
      const bool dir = ascending == (((chunk - lo) / size) % 2 == 0);
      bitonic_merge(ctx, keys, idx, chunk, size, dir);
    }
  }
}

/// Convenience overloads covering a whole view.
template <SortableView KS, SortableView IS>
void bitonic_sort(simgpu::BlockCtx& ctx, KS keys, IS idx,
                  bool ascending = true) {
  bitonic_sort(ctx, keys, idx, 0, keys.size(), ascending);
}

/// std::span form, kept so callers holding containers keep the implicit
/// container-to-span conversion (`bitonic_sort<float>(ctx, vec, ivec)`).
template <typename K>
void bitonic_sort(simgpu::BlockCtx& ctx, std::span<K> keys,
                  std::span<std::uint32_t> idx, bool ascending = true) {
  bitonic_sort<std::span<K>, std::span<std::uint32_t>>(ctx, keys, idx, 0,
                                                       keys.size(), ascending);
}

/// Merge-and-prune, the core partial-sorting step of WarpSelect and
/// Bitonic Top-K: `a` and `b` are both ascending sorted, same power-of-two
/// length n.  Afterwards `a` holds the n smallest of the 2n elements, sorted
/// ascending; `b` is clobbered.
///
/// Works by the classic trick: element-wise min/max of a[i] and b[n-1-i]
/// leaves the n smallest in `a` as a bitonic sequence, which one merge
/// network pass then sorts.
template <SortableView AK, SortableView AI, SortableView BK, SortableView BI>
void merge_prune(simgpu::BlockCtx& ctx, AK a_keys, AI a_idx, BK b_keys,
                 BI b_idx) {
  using K = typename AK::value_type;
  using I = typename AI::value_type;
  const std::size_t n = a_keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = n - 1 - i;
    const K av = a_keys[i];
    const K bv = b_keys[j];
    if (bv < av) {
      a_keys[i] = bv;
      b_keys[j] = av;
      const I ai = a_idx[i];
      const I bi = b_idx[j];
      a_idx[i] = bi;
      b_idx[j] = ai;
    }
  }
  ctx.ops(n);
  bitonic_merge(ctx, a_keys, a_idx, 0, n, /*ascending=*/true);
}

/// std::span form (container-to-span convenience, as for bitonic_sort).
template <typename K>
void merge_prune(simgpu::BlockCtx& ctx, std::span<K> a_keys,
                 std::span<std::uint32_t> a_idx, std::span<K> b_keys,
                 std::span<std::uint32_t> b_idx) {
  merge_prune<std::span<K>, std::span<std::uint32_t>, std::span<K>,
              std::span<std::uint32_t>>(ctx, a_keys, a_idx, b_keys, b_idx);
}

/// Round up to the next power of two (minimum 1).
constexpr std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p *= 2;
  return p;
}

}  // namespace topk
