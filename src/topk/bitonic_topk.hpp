#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/partial_sort_common.hpp"

namespace topk {

/// Options for Bitonic Top-K.
struct BitonicTopkOptions {
  int block_threads = 256;
};

/// Execution plan for Bitonic Top-K: the full halving-pass schedule (with
/// per-pass kernel names interned once, so running the plan never builds a
/// string) plus the double-buffer workspace segments.
template <typename T>
struct BitonicTopkPlan {
  BitonicTopkOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t cap = 0;     // next_pow2(k), the chunk length
  std::size_t chunks0 = 0;
  std::size_t half0 = 0;
  GridShape shape0;  // pass-0 sort+prune grid

  struct MergePass {
    std::string_view name;  // interned "BitonicTopK_merge(<pass>)"
    std::size_t pairs = 0;
    std::size_t src_chunks = 0;
    GridShape shape;
  };
  std::vector<MergePass> passes;

  std::size_t seg_val[2] = {0, 0};
  std::size_t seg_idx[2] = {0, 0};
};

/// Footprint contracts for the Bitonic Top-K kernel family.  The per-pass
/// merge kernels register under the bare family name ("BitonicTopK_merge");
/// the "(pass)" suffix of the launch names is stripped on lookup.  The
/// double-buffer bounds depend on the halving schedule, so they are
/// segment-sized.
inline void register_bitonic_topk_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"BitonicTopK_sort_prune",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"dst_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"BitonicTopK_merge",
       {
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"dst_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"BitonicTopK_emit",
       {
           {"fin_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"fin_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Phase 1 of Bitonic Top-K: validate, precompute the halving schedule
/// (every pass's grid and interned kernel name — the pass count is a pure
/// function of n and k), and describe the two double buffers as workspace
/// segments.
template <typename T>
BitonicTopkPlan<T> bitonic_topk_plan(const Shape& s,
                                     const simgpu::DeviceSpec& spec,
                                     const BitonicTopkOptions& opt,
                                     simgpu::WorkspaceLayout& layout,
                                     simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);
  if (s.k > kMaxBitonicTopkK) {
    throw std::invalid_argument("bitonic_topk: k exceeds the " +
                                std::to_string(kMaxBitonicTopkK) + " limit");
  }

  BitonicTopkPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.cap = next_pow2(s.k);
  p.chunks0 = (s.n + p.cap - 1) / p.cap;
  p.half0 = (p.chunks0 + 1) / 2;
  p.shape0 = make_grid(s.batch, p.half0 * p.cap, spec, opt.block_threads,
                       8 * p.cap);

  std::size_t chunks = p.half0;
  int pass = 1;
  while (chunks > 1) {
    typename BitonicTopkPlan<T>::MergePass mp;
    mp.pairs = (chunks + 1) / 2;
    mp.src_chunks = chunks;
    mp.shape = make_grid(s.batch, mp.pairs * p.cap, spec, opt.block_threads,
                         8 * p.cap);
    mp.name = simgpu::intern_name("BitonicTopK_merge(" +
                                  std::to_string(pass) + ")");
    p.passes.push_back(mp);
    chunks = mp.pairs;
    ++pass;
  }

  p.seg_val[0] = layout.add<T>("bitonic work vals 0", s.batch * p.half0 * p.cap);
  p.seg_val[1] = layout.add<T>("bitonic work vals 1",
                               s.batch * ((p.half0 + 1) / 2) * p.cap);
  p.seg_idx[0] = layout.add<std::uint32_t>("bitonic work idx 0",
                                           s.batch * p.half0 * p.cap);
  p.seg_idx[1] = layout.add<std::uint32_t>(
      "bitonic work idx 1", s.batch * ((p.half0 + 1) / 2) * p.cap);

  register_bitonic_topk_footprints();
  simgpu::record_launch(sched, "BitonicTopK_sort_prune(0)",
                        p.shape0.total_blocks(), p.shape0.block_threads,
                        s.batch, s.n, s.k,
                        {{"in", simgpu::kBindInput},
                         {"dst_val", static_cast<int>(p.seg_val[0])},
                         {"dst_idx", static_cast<int>(p.seg_idx[0])}});
  int cur = 0;
  for (const auto& mp : p.passes) {
    simgpu::record_launch(
        sched, mp.name, mp.shape.total_blocks(), mp.shape.block_threads,
        s.batch, s.n, s.k,
        {{"src_val", static_cast<int>(p.seg_val[cur])},
         {"src_idx", static_cast<int>(p.seg_idx[cur])},
         {"dst_val", static_cast<int>(p.seg_val[1 - cur])},
         {"dst_idx", static_cast<int>(p.seg_idx[1 - cur])}});
    cur = 1 - cur;
  }
  simgpu::record_launch(sched, "BitonicTopK_emit", static_cast<int>(s.batch),
                        opt.block_threads, s.batch, s.n, s.k,
                        {{"fin_val", static_cast<int>(p.seg_val[cur])},
                         {"fin_idx", static_cast<int>(p.seg_idx[cur])},
                         {"out_vals", simgpu::kBindOutVals},
                         {"out_idx", simgpu::kBindOutIdx}});
  return p;
}

/// Phase 2 of Bitonic Top-K (Shanbhag, Pirk, Madden 2018): a pure
/// partial-sorting method that halves the working set once per pass.  The
/// input is viewed as next_pow2(k)-sized chunks; pass 0 sorts each pair of
/// chunks and merge-prunes it to one sorted chunk, and every later pass
/// merges chunk pairs again, until a single chunk — the top K — remains.
///
/// Faithful cost structure: the whole (shrinking) working set is read and
/// written back to device memory every pass (~log2(N/K) kernels), and every
/// merge is an O(k log k) bitonic network — which is why its running time
/// climbs steeply with K (paper Fig. 6) and why K is capped at 256 by
/// shared-memory capacity (paper §2.2).
template <typename T>
void bitonic_topk_run(simgpu::Device& dev, const BitonicTopkPlan<T>& plan,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                      simgpu::DeviceBuffer<T> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("bitonic_topk: buffer too small");
  }

  const std::size_t cap = plan.cap;
  const std::size_t chunks0 = plan.chunks0;
  simgpu::DeviceBuffer<T> work_val[2] = {ws.get<T>(plan.seg_val[0]),
                                         ws.get<T>(plan.seg_val[1])};
  simgpu::DeviceBuffer<std::uint32_t> work_idx[2] = {
      ws.get<std::uint32_t>(plan.seg_idx[0]),
      ws.get<std::uint32_t>(plan.seg_idx[1])};

  // ---- pass 0: sort chunk pairs from the raw input, prune to one chunk ---
  {
    const std::size_t pairs = plan.half0;
    const GridShape shape = plan.shape0;
    const int bpp = shape.blocks_per_problem;
    simgpu::LaunchConfig cfg{"BitonicTopK_sort_prune(0)",
                             shape.total_blocks(), shape.block_threads,
                             batch, n, k};
    const auto dst_val = work_val[0];
    const auto dst_idx = work_idx[0];
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const std::size_t prob = shape.problem_of(ctx.block_idx());
      const int bip = shape.block_in_problem(ctx.block_idx());
      const auto [pbegin, pend] = block_chunk(pairs, bpp, bip);
      auto a_keys = ctx.shared<T>(cap, "bitonic chunk a keys");
      auto a_idx = ctx.shared<std::uint32_t>(cap, "bitonic chunk a idx");
      auto b_keys = ctx.shared<T>(cap, "bitonic chunk b keys");
      auto b_idx = ctx.shared<std::uint32_t>(cap, "bitonic chunk b idx");
      for (std::size_t p = pbegin; p < pend; ++p) {
        // Generic over the view type so SharedSpan stays instrumented.
        const auto load_chunk = [&](std::size_t chunk, auto keys, auto idx) {
          for (std::size_t i = 0; i < cap; ++i) {
            const std::size_t src = chunk * cap + i;
            if (chunk < chunks0 && src < n) {
              keys[i] = ctx.load(in, prob * n + src);
              idx[i] = static_cast<std::uint32_t>(src);
            } else {
              keys[i] = sort_sentinel<T>();
              idx[i] = 0;
            }
          }
        };
        load_chunk(2 * p, a_keys, a_idx);
        load_chunk(2 * p + 1, b_keys, b_idx);
        bitonic_sort(ctx, a_keys, a_idx);
        bitonic_sort(ctx, b_keys, b_idx);
        merge_prune(ctx, a_keys, a_idx, b_keys, b_idx);
        for (std::size_t i = 0; i < cap; ++i) {
          ctx.store(dst_val, (prob * pairs + p) * cap + i, a_keys[i]);
          ctx.store(dst_idx, (prob * pairs + p) * cap + i, a_idx[i]);
        }
      }
    });
  }

  // ---- halving passes: merge sorted chunk pairs until one remains --------
  int cur = 0;
  for (const auto& mp : plan.passes) {
    const std::size_t pairs = mp.pairs;
    const std::size_t src_chunks = mp.src_chunks;
    const GridShape shape = mp.shape;
    const int bpp = shape.blocks_per_problem;
    simgpu::LaunchConfig cfg{mp.name, shape.total_blocks(),
                             shape.block_threads, batch, n, k};
    const auto src_val = work_val[cur];
    const auto src_idx = work_idx[cur];
    const auto dst_val = work_val[1 - cur];
    const auto dst_idx = work_idx[1 - cur];
    const std::size_t src_stride = src_chunks;  // chunks per problem in src
    const std::size_t dst_stride = pairs;       // chunks per problem in dst
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const std::size_t prob = shape.problem_of(ctx.block_idx());
      const int bip = shape.block_in_problem(ctx.block_idx());
      const auto [pbegin, pend] = block_chunk(pairs, bpp, bip);
      auto a_keys = ctx.shared<T>(cap, "bitonic merge a keys");
      auto a_idx = ctx.shared<std::uint32_t>(cap, "bitonic merge a idx");
      auto b_keys = ctx.shared<T>(cap, "bitonic merge b keys");
      auto b_idx = ctx.shared<std::uint32_t>(cap, "bitonic merge b idx");
      for (std::size_t p = pbegin; p < pend; ++p) {
        for (std::size_t i = 0; i < cap; ++i) {
          const std::size_t src = (prob * src_stride + 2 * p) * cap + i;
          a_keys[i] = ctx.load(src_val, src);
          a_idx[i] = ctx.load(src_idx, src);
        }
        if (2 * p + 1 < src_chunks) {
          for (std::size_t i = 0; i < cap; ++i) {
            const std::size_t src = (prob * src_stride + 2 * p + 1) * cap + i;
            b_keys[i] = ctx.load(src_val, src);
            b_idx[i] = ctx.load(src_idx, src);
          }
          merge_prune(ctx, a_keys, a_idx, b_keys, b_idx);
        }
        for (std::size_t i = 0; i < cap; ++i) {
          ctx.store(dst_val, (prob * dst_stride + p) * cap + i, a_keys[i]);
          ctx.store(dst_idx, (prob * dst_stride + p) * cap + i, a_idx[i]);
        }
      }
    });
    cur = 1 - cur;
  }

  // ---- emit the surviving chunk's first K pairs ---------------------------
  {
    simgpu::LaunchConfig cfg{"BitonicTopK_emit", static_cast<int>(batch),
                             plan.opt.block_threads, batch, n, k};
    const auto fin_val = work_val[cur];
    const auto fin_idx = work_idx[cur];
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto prob = static_cast<std::size_t>(ctx.block_idx());
      for (std::size_t i = 0; i < k; ++i) {
        ctx.store(out_vals, prob * k + i, ctx.load(fin_val, prob * cap + i));
        ctx.store(out_idx, prob * k + i, ctx.load(fin_idx, prob * cap + i));
      }
    });
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void bitonic_topk(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx,
                  const BitonicTopkOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      bitonic_topk_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  bitonic_topk_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
