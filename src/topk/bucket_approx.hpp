#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/partial_sort_common.hpp"
#include "topk/shard_merge.hpp"
#include "topk/warp_select.hpp"

namespace topk {

/// Bucketed approximate top-k ("Approximate Top-k for Increased
/// Parallelism", PAPERS.md): split each row into C contiguous chunks, keep
/// the q smallest per chunk in one embarrassingly-parallel pass, then refine
/// the C*q-candidate union down to k in a single shared-memory sort.  The
/// exact tiers pay a data-dependent multi-pass cost at large N; this tier
/// reads the input once at full device occupancy and its only error mode is
/// a true top-k element hiding beyond its chunk's q-th rank.
///
/// Exactness boundary: a chunk's q smallest are found exactly (each warp
/// keeps the q smallest of its sub-range; merging warp lists keeps the q
/// smallest of the union — the shard-merge tournament argument).  So when
/// q >= k every chunk retains any of its globally top-k elements, the
/// candidate union is a superset of the true top-k, and the refine emits the
/// exact answer: recall_target = 1.0 degrades to an exact algorithm by
/// construction, not by routing convention.
struct BucketApproxOptions {
  /// Expected-recall floor the chunk/keep shape is sized for.  Must be in
  /// (0, 1]; 1.0 forces keep = k, which is exact (see above).
  double recall_target = 1.0;
  /// Override the chunk count C (rounded up to a power of two); 0 = derive
  /// from device saturation.  Exposed for tests and the bench frontier.
  std::size_t buckets = 0;
  /// Override the per-chunk keep q; 0 = smallest q whose modeled recall
  /// clears recall_target (plus a small guard band).
  std::size_t keep = 0;
};

/// The (C, q, W) shape the planner picked, plus the analytic recall it
/// promises.  Split out of the plan so the recommender can price the tier
/// without building one.
struct BucketApproxShape {
  std::size_t chunks = 1;       ///< C: contiguous chunks per row
  std::size_t keep = 0;         ///< q: candidates kept per chunk
  int warps = 1;                ///< W: warps per scan block
  double expected_recall = 1.0; ///< analytic E[|approx ∩ exact|] / k
};

namespace bucket_approx_detail {

/// Binomial(k, 1/chunks) pmf in log space (std::lgamma), so k = 2048 with
/// small chunk counts cannot underflow the recurrence the way a naive
/// f(0) = (1-p)^k seed does.
inline std::vector<double> chunk_hit_pmf(std::size_t k, std::size_t chunks) {
  std::vector<double> f(k + 1);
  const double p = 1.0 / static_cast<double>(chunks);
  const double lp = std::log(p);
  const double lq = std::log1p(-p);
  const double lgk = std::lgamma(static_cast<double>(k) + 1.0);
  for (std::size_t x = 0; x <= k; ++x) {
    const auto xd = static_cast<double>(x);
    const auto kd = static_cast<double>(k);
    f[x] = std::exp(lgk - std::lgamma(xd + 1.0) - std::lgamma(kd - xd + 1.0) +
                    xd * lp + (kd - xd) * lq);
  }
  return f;
}

}  // namespace bucket_approx_detail

/// Analytic expected recall of keeping the `keep` smallest of each of
/// `chunks` equal chunks: with the true top-k spread uniformly over chunk
/// positions (all three paper generators draw positions iid), the count X
/// landing in one chunk is Binomial(k, 1/chunks) and the chunk contributes
/// min(X, keep) captured elements, so
///   R = (chunks / k) * E[min(X, keep)].
/// keep >= k is exactly 1.0 (superset argument in the header comment);
/// splitting a chunk across warps only ever raises the captured count, so
/// this is a floor regardless of W.
inline double bucket_approx_expected_recall(std::size_t k, std::size_t chunks,
                                            std::size_t keep) {
  if (k == 0 || chunks == 0 || keep == 0) {
    throw std::invalid_argument(
        "bucket_approx_expected_recall: k, chunks, keep must be > 0");
  }
  if (keep >= k) return 1.0;
  if (chunks == 1) {
    return static_cast<double>(keep) / static_cast<double>(k);
  }
  const auto f = bucket_approx_detail::chunk_hit_pmf(k, chunks);
  double captured = 0.0;
  for (std::size_t x = 0; x <= k; ++x) {
    captured += static_cast<double>(std::min(x, keep)) * f[x];
  }
  return std::clamp(
      static_cast<double>(chunks) * captured / static_cast<double>(k), 0.0,
      1.0);
}

/// Pick (C, q, W) for a problem shape and recall target.
///
///   - C: enough blocks to saturate the device at kMaxWarpsPerBlock warps
///     each (ceil(saturating_warps / kMaxWarpsPerBlock) blocks across the
///     batch), rounded up to a power of two.  Halved while a chunk cannot
///     seed q candidates or the refine sort outgrows shared memory.
///   - q: smallest value in [ceil(k/C), k] whose modeled recall clears
///     recall_target + 0.02 — the guard band keeps measured recall from
///     straddling the SLO on sampling noise.  q = k iff recall_target = 1.0.
///   - W: warps per block, capped by device saturation and by the chunk
///     being wide enough to feed every warp at least one round.
inline BucketApproxShape bucket_approx_configure(
    std::size_t n, std::size_t k, std::size_t batch,
    const BucketApproxOptions& opt, const simgpu::DeviceSpec& spec,
    std::size_t pair_bytes = sizeof(float) + sizeof(std::uint32_t)) {
  if (!(opt.recall_target > 0.0) || opt.recall_target > 1.0) {
    throw std::invalid_argument(
        "bucket_approx: recall_target must be in (0, 1]");
  }
  const double target = std::min(1.0, opt.recall_target + 0.02);
  const auto max_w = static_cast<std::size_t>(simgpu::kMaxWarpsPerBlock);
  const std::size_t sat_warps =
      spec.sm_count * spec.saturating_warps_per_sm;
  const std::size_t sat_blocks = (sat_warps + max_w - 1) / max_w;
  std::size_t chunks = opt.buckets != 0
                           ? next_pow2(opt.buckets)
                           : next_pow2((sat_blocks + batch - 1) / batch);
  chunks = std::min(chunks, next_pow2(n));
  for (;;) {
    std::size_t keep;
    const std::size_t keep_floor = (k + chunks - 1) / chunks;
    if (opt.keep != 0) {
      keep = std::clamp(opt.keep, keep_floor, k);
    } else if (target >= 1.0) {
      keep = k;  // only q = k is analytically exact
    } else {
      keep = keep_floor;
      // The pmf depends on (k, chunks) only, so walk q upward against
      // prefix sums instead of re-integrating per candidate.
      if (keep < k && chunks > 1) {
        const auto f = bucket_approx_detail::chunk_hit_pmf(k, chunks);
        double sum_xf = 0.0;  // sum of x*f(x) for x <= keep
        double cdf = 0.0;     // sum of f(x) for x <= keep
        for (std::size_t x = 0; x <= keep; ++x) {
          sum_xf += static_cast<double>(x) * f[x];
          cdf += f[x];
        }
        const auto kd = static_cast<double>(k);
        const auto cd = static_cast<double>(chunks);
        while (keep < k) {
          const double captured =
              sum_xf + static_cast<double>(keep) * (1.0 - cdf);
          if (cd * captured / kd >= target) break;
          ++keep;
          sum_xf += static_cast<double>(keep) * f[keep];
          cdf += f[keep];
        }
      } else if (keep < k && chunks == 1) {
        keep = std::min(
            k, static_cast<std::size_t>(
                   std::ceil(target * static_cast<double>(k))));
      }
    }
    const bool fits_chunk = n / chunks >= keep;
    const bool fits_shared =
        next_pow2(chunks * keep) * pair_bytes <= spec.shared_mem_per_block;
    if ((fits_chunk && fits_shared) || chunks == 1) {
      if (chunks == 1 && !fits_shared) {
        throw std::invalid_argument(
            "bucket_approx: k too large for this device's shared memory");
      }
      const std::size_t chunk_len = std::max<std::size_t>(1, n / chunks);
      const std::size_t warp_cap =
          (chunk_len + simgpu::kWarpSize - 1) / simgpu::kWarpSize;
      const std::size_t warp_fill =
          (sat_warps + batch * chunks - 1) / (batch * chunks);
      const std::size_t warps =
          std::clamp<std::size_t>(std::min(warp_fill, warp_cap), 1, max_w);
      return BucketApproxShape{chunks, keep, static_cast<int>(warps),
                               bucket_approx_expected_recall(k, chunks, keep)};
    }
    chunks /= 2;
  }
}

/// Execution plan: one saturating scan pass (batch*C blocks of W warps, each
/// chunk reduced to its q smallest), then — unless C*q == k, where the
/// concatenated chunk lists already have output shape — one refine block per
/// problem that sorts the C*q candidates in shared memory and emits the k
/// smallest.
template <typename T>
struct BucketApproxPlan {
  BucketApproxOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t chunks = 0;    ///< C: contiguous chunks per row
  std::size_t keep = 0;      ///< q: candidates kept per chunk
  std::size_t cand = 0;      ///< C*q candidates per problem
  std::size_t sort_len = 0;  ///< next_pow2(cand): refine sort length
  int warps = 0;             ///< W: warps per scan block
  bool direct = false;       ///< C*q == k: scan emits, no refine launch
  double expected_recall = 1.0;
  std::size_t seg_cand_val = 0;  ///< refine mode only
  std::size_t seg_cand_idx = 0;  ///< refine mode only
};

/// Footprint contracts: the scan reads the whole input and writes each
/// chunk's candidate slice block-locally (segment-bounded — the candidate
/// count is a tuning choice); the refine reads the candidate segments and
/// writes each problem's k-slice of the outputs.  The direct-emit variant
/// fuses the two when the candidate union already has output shape.
inline void register_bucket_approx_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"BucketApproxScan",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"cand_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"cand_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"BucketApproxScanEmit",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
  simgpu::register_footprint(
      {"BucketApproxRefine",
       {
           {"cand_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"cand_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Phase 1: pick the (C, q, W) shape, lay out the candidate buffers, record
/// the kernel sequence.
template <typename T>
BucketApproxPlan<T> bucket_approx_plan(const Shape& s,
                                       const simgpu::DeviceSpec& spec,
                                       const BucketApproxOptions& opt,
                                       simgpu::WorkspaceLayout& layout,
                                       simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);
  if (s.k > kMaxSelectionK) {
    throw std::invalid_argument("bucket_approx: k exceeds the " +
                                std::to_string(kMaxSelectionK) +
                                " candidate-list limit");
  }
  register_bucket_approx_footprints();
  const BucketApproxShape shape = bucket_approx_configure(
      s.n, s.k, s.batch, opt, spec, sizeof(T) + sizeof(std::uint32_t));

  BucketApproxPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.chunks = shape.chunks;
  p.keep = shape.keep;
  p.warps = shape.warps;
  p.cand = p.chunks * p.keep;
  p.sort_len = next_pow2(p.cand);
  p.direct = p.cand == s.k;
  p.expected_recall = shape.expected_recall;

  const auto scan_grid = static_cast<int>(s.batch * p.chunks);
  const int scan_threads = p.warps * simgpu::kWarpSize;
  if (p.direct) {
    simgpu::record_launch(sched, "BucketApproxScanEmit", scan_grid,
                          scan_threads, s.batch, s.n, s.k,
                          {{"in", simgpu::kBindInput},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
    return p;
  }
  p.seg_cand_val = layout.add<T>("bucket approx cand val", s.batch * p.cand);
  p.seg_cand_idx =
      layout.add<std::uint32_t>("bucket approx cand idx", s.batch * p.cand);
  simgpu::record_launch(sched, "BucketApproxScan", scan_grid, scan_threads,
                        s.batch, s.n, s.k,
                        {{"in", simgpu::kBindInput},
                         {"cand_val", static_cast<int>(p.seg_cand_val)},
                         {"cand_idx", static_cast<int>(p.seg_cand_idx)}});
  simgpu::record_launch(sched, "BucketApproxRefine",
                        static_cast<int>(s.batch), 1024, s.batch, s.n, s.k,
                        {{"cand_val", static_cast<int>(p.seg_cand_val)},
                         {"cand_idx", static_cast<int>(p.seg_cand_idx)},
                         {"out_vals", simgpu::kBindOutVals},
                         {"out_idx", simgpu::kBindOutIdx}});
  return p;
}

namespace bucket_approx_detail {

/// One scan block's work: W warp engines reduce the block's chunk
/// [cbegin, cend) of the row at `base` to its q smallest, left merged into
/// engines[0] (sorted ascending, indices row-relative).  Warpfast path:
/// region-hoisted load_tile + span_rounds, the fused row-wise idiom; exact
/// path: per-round warp loads.  Both legs load every chunk element exactly
/// once and drive the same engine rounds, so per-launch charges are
/// invariant across {tile × warpfast} by the engine contracts.
template <typename T>
void scan_chunk(
    simgpu::BlockCtx& ctx, simgpu::DeviceBuffer<T> in, std::size_t base,
    std::size_t cbegin, std::size_t cend, std::size_t keep, int warps,
    bool tile,
    std::array<std::optional<faiss_detail::WarpSelectEngine<T>>,
               simgpu::kMaxWarpsPerBlock>& engines) {
  for (int w = 0; w < warps; ++w) {
    engines[static_cast<std::size_t>(w)].emplace(ctx, keep);
  }
  const std::size_t chunk_len = cend - cbegin;
  if (ctx.warpfast_enabled()) {
    for (int w = 0; w < warps; ++w) {
      auto& eng = *engines[static_cast<std::size_t>(w)];
      const auto [wb, we] = block_chunk(chunk_len, warps, w);
      const std::size_t abs0 = cbegin + wb;
      const std::size_t count = we - wb;
      const std::size_t region = 4096;
      for (std::size_t r = 0; r < count; r += region) {
        const std::size_t rc = std::min(region, count - r);
        const std::span<const T> tv = ctx.load_tile(in, base + abs0 + r, rc);
        eng.span_rounds(ctx, tv, {}, static_cast<std::uint32_t>(abs0 + r));
      }
      eng.finalize(ctx);
    }
  } else {
    ctx.for_each_warp([&](simgpu::Warp& warp) {
      auto& eng = *engines[static_cast<std::size_t>(warp.index())];
      const auto [wb, we] = block_chunk(chunk_len, warps, warp.index());
      const std::size_t abs0 = cbegin + wb;
      const std::size_t abs1 = cbegin + we;
      T values[simgpu::kWarpSize];
      std::uint32_t indices[simgpu::kWarpSize];
      bool valid[simgpu::kWarpSize];
      for (std::size_t pos = abs0; pos < abs1; pos += simgpu::kWarpSize) {
        const std::size_t c =
            std::min<std::size_t>(simgpu::kWarpSize, abs1 - pos);
        if (tile) {
          const std::span<const T> tv = ctx.load_tile(in, base + pos, c);
          warp.each([&](int lane) {
            const auto u = static_cast<std::size_t>(lane);
            valid[lane] = u < tv.size();
            if (valid[lane]) {
              values[lane] = tv[u];
              indices[lane] = static_cast<std::uint32_t>(pos + u);
            }
          });
        } else {
          warp.each([&](int lane) {
            const std::size_t i = pos + static_cast<std::size_t>(lane);
            valid[lane] = i < abs1;
            if (valid[lane]) {
              values[lane] = ctx.load(in, base + i);
              indices[lane] = static_cast<std::uint32_t>(i);
            }
          });
        }
        eng.round(ctx, values, indices, valid);
      }
      eng.finalize(ctx);
    });
  }
  ctx.sync();
  for (int w = 1; w < warps; ++w) {
    engines[0]->list().merge_list(ctx,
                                  engines[static_cast<std::size_t>(w)]->list());
  }
}

}  // namespace bucket_approx_detail

/// Phase 2: the scan pass (direct-emitting when C*q == k), then the
/// shared-memory refine sort.
template <typename T>
void bucket_approx_run(simgpu::Device& dev, const BucketApproxPlan<T>& plan,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                       simgpu::DeviceBuffer<T> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  if (in.size() < plan.batch * plan.n ||
      out_vals.size() < plan.batch * plan.k ||
      out_idx.size() < plan.batch * plan.k) {
    throw std::invalid_argument("bucket_approx: buffer too small");
  }
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const std::size_t chunks = plan.chunks;
  const std::size_t keep = plan.keep;
  const std::size_t cand = plan.cand;
  const std::size_t L = plan.sort_len;
  const int warps = plan.warps;
  const bool tile = simgpu::tile_path_enabled();
  const auto scan_grid = static_cast<int>(plan.batch * chunks);
  const int scan_threads = warps * simgpu::kWarpSize;

  if (plan.direct) {
    simgpu::LaunchConfig cfg{"BucketApproxScanEmit", scan_grid, scan_threads,
                             plan.batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto blk = static_cast<std::size_t>(ctx.block_idx());
      const std::size_t prob = blk / chunks;
      const std::size_t chunk = blk % chunks;
      const auto [cbegin, cend] =
          block_chunk(n, static_cast<int>(chunks), static_cast<int>(chunk));
      std::array<std::optional<faiss_detail::WarpSelectEngine<T>>,
                 simgpu::kMaxWarpsPerBlock>
          engines;
      bucket_approx_detail::scan_chunk(ctx, in, prob * n, cbegin, cend, keep,
                                       warps, tile, engines);
      // C*q == k: each chunk's sorted q-list is this block's slice of the
      // output — the candidate union is the (approximate) result.
      shard_merge_detail::store_list(ctx, engines[0]->list().keys(),
                                     engines[0]->list().indices(), out_vals,
                                     out_idx, prob * k + chunk * keep, keep);
    });
    return;
  }

  const auto cand_val = ws.get<T>(plan.seg_cand_val);
  const auto cand_idx = ws.get<std::uint32_t>(plan.seg_cand_idx);

  {
    simgpu::LaunchConfig cfg{"BucketApproxScan", scan_grid, scan_threads,
                             plan.batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto blk = static_cast<std::size_t>(ctx.block_idx());
      const std::size_t prob = blk / chunks;
      const std::size_t chunk = blk % chunks;
      const auto [cbegin, cend] =
          block_chunk(n, static_cast<int>(chunks), static_cast<int>(chunk));
      std::array<std::optional<faiss_detail::WarpSelectEngine<T>>,
                 simgpu::kMaxWarpsPerBlock>
          engines;
      bucket_approx_detail::scan_chunk(ctx, in, prob * n, cbegin, cend, keep,
                                       warps, tile, engines);
      shard_merge_detail::store_list(ctx, engines[0]->list().keys(),
                                     engines[0]->list().indices(), cand_val,
                                     cand_idx, (prob * chunks + chunk) * keep,
                                     keep);
    });
  }

  simgpu::LaunchConfig cfg{"BucketApproxRefine", static_cast<int>(plan.batch),
                           1024, plan.batch, n, k};
  simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
    const auto prob = static_cast<std::size_t>(ctx.block_idx());
    auto keys = ctx.shared<T>(L, "bucket refine keys");
    auto idx = ctx.shared<std::uint32_t>(L, "bucket refine idx");
    shard_merge_detail::load_list(ctx, cand_val, cand_idx, prob * cand, keys,
                                  idx, cand);
    for (std::size_t i = cand; i < L; ++i) {
      keys[i] = sort_sentinel<T>();
      idx[i] = 0;
    }
    // Same fast-path contract as the shard-merge run sort: the network
    // charge is data-oblivious, so bill it in closed form and sort packed
    // (key, index) words host-side; value sequence identical, equal-key
    // index order open (merge_prune precedent).
    if constexpr (kPackableKey<T>) {
      if (ctx.warpfast_enabled()) {
        ctx.ops(bitonic_sort_ops(L));
        const auto rk = raw_view(keys);
        const auto rx = raw_view(idx);
        simgpu::ScratchVec<std::uint64_t> packed;
        packed.resize(L);
        if (!rk.empty() && !rx.empty()) {
          for (std::size_t i = 0; i < L; ++i) {
            packed[i] = pack_key_idx<T>(rk[i], rx[i]);
          }
        } else {
          for (std::size_t i = 0; i < L; ++i) {
            packed[i] = pack_key_idx<T>(keys[i], idx[i]);
          }
        }
        std::sort(packed.begin(), packed.end());
        for (std::size_t i = 0; i < k; ++i) {
          keys[i] =
              ord_to_key<T>(static_cast<std::uint32_t>(packed[i] >> 32));
          idx[i] = static_cast<std::uint32_t>(packed[i]);
        }
        shard_merge_detail::store_list(ctx, keys, idx, out_vals, out_idx,
                                       prob * k, k);
        return;
      }
    }
    bitonic_sort(ctx, keys, idx);
    shard_merge_detail::store_list(ctx, keys, idx, out_vals, out_idx,
                                   prob * k, k);
  });
}

/// Host reference for the approximate contract: the exact k smallest of the
/// union of each chunk's exact q smallest, as a sorted value multiset (the
/// comparison granularity verify_topk and the invariance tests use — index
/// choice between equal values is open).
template <typename T>
std::vector<T> bucket_approx_reference(std::span<const T> row, std::size_t k,
                                       std::size_t chunks, std::size_t keep) {
  std::vector<T> cand;
  cand.reserve(chunks * keep);
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] =
        block_chunk(row.size(), static_cast<int>(chunks), static_cast<int>(c));
    std::vector<T> chunk(row.begin() + static_cast<std::ptrdiff_t>(begin),
                         row.begin() + static_cast<std::ptrdiff_t>(end));
    const std::size_t q = std::min(keep, chunk.size());
    std::partial_sort(chunk.begin(),
                      chunk.begin() + static_cast<std::ptrdiff_t>(q),
                      chunk.end());
    cand.insert(cand.end(), chunk.begin(),
                chunk.begin() + static_cast<std::ptrdiff_t>(q));
  }
  const std::size_t kk = std::min(k, cand.size());
  std::partial_sort(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(kk),
                    cand.end());
  cand.resize(kk);
  return cand;
}

/// One-shot entry point: plan + bind + run.
template <typename T>
void bucket_approx(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                   std::size_t batch, std::size_t n, std::size_t k,
                   simgpu::DeviceBuffer<T> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx,
                   const BucketApproxOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      bucket_approx_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  bucket_approx_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
