#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"

namespace topk {

/// Options for the BucketSelect baseline.
struct BucketSelectOptions {
  int num_buckets = 256;
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
};

/// Execution plan for BucketSelect: validated shape plus workspace segments,
/// including a host staging segment for the copied-back histogram (the
/// per-iteration grids are data-dependent arithmetic computed in run()).
template <typename T>
struct BucketSelectPlan {
  BucketSelectOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t seg_val[2] = {0, 0};
  std::size_t seg_idx[2] = {0, 0};
  std::size_t seg_minmax = 0;
  std::size_t seg_hist = 0;
  std::size_t seg_counters = 0;
  std::size_t seg_host_hist = 0;  // host staging
};

/// Footprint contracts for the BucketSelect kernels.  Histogram and
/// candidate bounds are segment-sized (bucket counts are tuning options and
/// the candidate set shrinks data-dependently); the filter's output writes
/// go through cursor-reserved aggregated appends.
inline void register_bucket_select_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"minmax_memset",
       {
           {"minmax",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 2}},
            8},
           {"counters",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 2}},
            4},
       }});
  simgpu::register_footprint(
      {"minmax_reduce",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"minmax", Access::kAtomic, WriteScope::kNone, {{AffineVar::kOne, 2}},
            8},
       }});
  // Shared with SampleSelect (which also clears its cursors here), so the
  // counters operand is part of the contract but optional.
  simgpu::register_footprint(
      {"hist_memset",
       {
           {"hist",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kSegElems}},
            4},
           {"counters",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 2}},
            4,
            /*optional=*/true},
       }});
  simgpu::register_footprint(
      {"bucket_histogram",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"hist", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
       }});
  simgpu::register_footprint(
      {"bucket_filter",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"counters", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kOne, 2}}, 4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            4},
           {"dst_val",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            4},
       }});
  register_copy_remainder_footprint();
}

/// Phase 1 of BucketSelect.
template <typename T>
BucketSelectPlan<T> bucket_select_plan(const Shape& s,
                                       const simgpu::DeviceSpec& spec,
                                       const BucketSelectOptions& opt,
                                       simgpu::WorkspaceLayout& layout,
                                       simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);

  BucketSelectPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  const auto nb = static_cast<std::size_t>(opt.num_buckets);
  p.seg_val[0] = layout.add<T>("bucket cand vals 0", s.n);
  p.seg_val[1] = layout.add<T>("bucket cand vals 1", s.n);
  p.seg_idx[0] = layout.add<std::uint32_t>("bucket cand idx 0", s.n);
  p.seg_idx[1] = layout.add<std::uint32_t>("bucket cand idx 1", s.n);
  p.seg_minmax = layout.add<T>("bucket minmax", 2);
  p.seg_hist = layout.add<std::uint32_t>("bucket histogram", nb);
  p.seg_counters = layout.add<std::uint32_t>("bucket cursors", 2);
  p.seg_host_hist = layout.add<std::uint32_t>("bucket host hist", nb,
                                              /*host=*/true);

  if (sched != nullptr) {
    register_bucket_select_footprints();
    // Nominal per-problem unrolling: two refinement iterations (the first
    // scans the input, the second the ping-pong candidates — together they
    // exercise both buffer sides) followed by the terminal remainder copy.
    const GridShape shape =
        make_grid(1, s.n, spec, opt.block_threads, opt.items_per_block);
    int cur = 0;
    for (int iter = 0; iter < 2; ++iter) {
      const bool fi = (iter == 0);
      simgpu::record_launch(sched, "minmax_memset", 1, 32, 1, s.n, s.k,
                            {{"minmax", static_cast<int>(p.seg_minmax)},
                             {"counters", static_cast<int>(p.seg_counters)}});
      std::vector<simgpu::OperandBind> reduce_binds;
      if (fi) {
        reduce_binds.push_back({"in", simgpu::kBindInput});
      } else {
        reduce_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
      }
      reduce_binds.push_back({"minmax", static_cast<int>(p.seg_minmax)});
      simgpu::record_launch(sched, "minmax_reduce", shape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(reduce_binds));
      simgpu::record_host(sched, "minmax",
                          {{"minmax", static_cast<int>(p.seg_minmax),
                            simgpu::Access::kRead}});
      simgpu::record_launch(sched, "hist_memset", 1, 32, 1, s.n, s.k,
                            {{"hist", static_cast<int>(p.seg_hist)}});
      std::vector<simgpu::OperandBind> hist_binds;
      if (fi) {
        hist_binds.push_back({"in", simgpu::kBindInput});
      } else {
        hist_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
      }
      hist_binds.push_back({"hist", static_cast<int>(p.seg_hist)});
      simgpu::record_launch(sched, "bucket_histogram", shape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(hist_binds));
      simgpu::record_host(
          sched, "bucket hist",
          {{"hist", static_cast<int>(p.seg_hist), simgpu::Access::kRead},
           {"host_hist", static_cast<int>(p.seg_host_hist),
            simgpu::Access::kWrite}});
      simgpu::record_host(sched, "scan+find_bkt",
                          {{"host_hist", static_cast<int>(p.seg_host_hist),
                            simgpu::Access::kRead}});
      std::vector<simgpu::OperandBind> filter_binds;
      if (fi) {
        filter_binds.push_back({"in", simgpu::kBindInput});
      } else {
        filter_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
        filter_binds.push_back({"src_idx", static_cast<int>(p.seg_idx[cur])});
      }
      filter_binds.push_back({"counters", static_cast<int>(p.seg_counters)});
      filter_binds.push_back({"out_vals", simgpu::kBindOutVals});
      filter_binds.push_back({"out_idx", simgpu::kBindOutIdx});
      filter_binds.push_back({"dst_val", static_cast<int>(p.seg_val[1 - cur])});
      filter_binds.push_back({"dst_idx", static_cast<int>(p.seg_idx[1 - cur])});
      simgpu::record_launch(sched, "bucket_filter", shape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(filter_binds));
      cur = 1 - cur;
    }
    simgpu::record_launch(sched, "CopyRemainder", shape.total_blocks(),
                          opt.block_threads, 1, s.n, s.k,
                          {{"src_val", static_cast<int>(p.seg_val[cur])},
                           {"src_idx", static_cast<int>(p.seg_idx[cur])},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
  }
  return p;
}

/// Phase 2 of BucketSelect (Alabi et al. 2012 / GpuSelection):
/// partition-based selection whose pivots are derived from the minimum and
/// maximum of the candidates (paper §2.2).  Each iteration runs a min/max
/// reduction, copies the extrema to the host, buckets the candidates by
/// linear interpolation, copies the histogram back, and filters into the
/// target bucket — two host round trips per iteration.
template <typename T>
void bucket_select_run(simgpu::Device& dev, const BucketSelectPlan<T>& plan,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                       simgpu::DeviceBuffer<T> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const BucketSelectOptions& opt = plan.opt;
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("bucket_select: buffer too small");
  }

  const int nb = opt.num_buckets;
  simgpu::DeviceBuffer<T> cand_val[2] = {ws.get<T>(plan.seg_val[0]),
                                         ws.get<T>(plan.seg_val[1])};
  simgpu::DeviceBuffer<std::uint32_t> cand_idx[2] = {
      ws.get<std::uint32_t>(plan.seg_idx[0]),
      ws.get<std::uint32_t>(plan.seg_idx[1])};
  auto minmax = ws.get<T>(plan.seg_minmax);
  auto ghist = ws.get<std::uint32_t>(plan.seg_hist);
  auto counters = ws.get<std::uint32_t>(plan.seg_counters);
  const std::span<std::uint32_t> host_hist(
      ws.host_ptr<std::uint32_t>(plan.seg_host_hist),
      static_cast<std::size_t>(nb));

  for (std::size_t prob = 0; prob < batch; ++prob) {
    std::uint64_t k_rem = k;
    std::uint64_t count = n;
    std::uint64_t out_cursor = prob * k;
    int cur = 0;
    bool from_input = true;

    while (true) {
      const auto src_val = cand_val[cur];
      const auto src_idx = cand_idx[cur];

      const auto copy_first = [&](std::uint64_t m) {
        const std::uint64_t dst = out_cursor;
        const bool fi = from_input;
        const GridShape shape = make_grid(1, m, dev.spec(), opt.block_threads,
                                          opt.items_per_block);
        const int bpp = shape.blocks_per_problem;
        simgpu::LaunchConfig cfg{"CopyRemainder", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(m, bpp, ctx.block_idx());
          for (std::size_t i = begin; i < end; ++i) {
            if (fi) {
              ctx.store(out_vals, dst + i, ctx.load(in, prob * n + i));
              ctx.store(out_idx, dst + i, static_cast<std::uint32_t>(i));
            } else {
              ctx.store(out_vals, dst + i, ctx.load(src_val, i));
              ctx.store(out_idx, dst + i, ctx.load(src_idx, i));
            }
          }
        });
        out_cursor += m;
      };

      if (count == k_rem) {
        copy_first(count);
        dev.synchronize("final");
        break;
      }

      // ---- kernel 1: min/max reduction ------------------------------------
      {
        simgpu::LaunchConfig cfg{"minmax_memset", 1, 32, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          ctx.store(minmax, 0, std::numeric_limits<T>::max());
          ctx.store(minmax, 1, std::numeric_limits<T>::lowest());
          ctx.store<std::uint32_t>(counters, 0, 0);
          ctx.store<std::uint32_t>(counters, 1, 0);
        });
      }
      const GridShape shape = make_grid(1, count, dev.spec(),
                                        opt.block_threads,
                                        opt.items_per_block);
      const int bpp = shape.blocks_per_problem;
      {
        simgpu::LaunchConfig cfg{"minmax_reduce", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          T lo = std::numeric_limits<T>::max();
          T hi = std::numeric_limits<T>::lowest();
          for (std::size_t i = begin; i < end; ++i) {
            const T v =
                from_input ? ctx.load(in, prob * n + i) : ctx.load(src_val, i);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
          ctx.ops(2 * (end - begin));
          if (begin < end) {
            ctx.atomic_min(minmax, 0, lo);
            ctx.atomic_max(minmax, 1, hi);
          }
        });
      }
      std::array<T, 2> host_minmax;
      dev.copy_to_host(minmax, std::span<T>(host_minmax), "minmax");
      const double lo = static_cast<double>(host_minmax[0]);
      const double hi = static_cast<double>(host_minmax[1]);
      if (!(lo < hi)) {
        // All remaining candidates are identical: any k_rem of them work.
        copy_first(k_rem);
        dev.synchronize("final");
        break;
      }
      const double scale = static_cast<double>(nb) / (hi - lo);

      // ---- kernel 2: interpolation histogram ------------------------------
      {
        simgpu::LaunchConfig cfg{"hist_memset", 1, 32, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          for (int d = 0; d < nb; ++d) {
            ctx.store<std::uint32_t>(ghist, static_cast<std::size_t>(d), 0);
          }
        });
      }
      {
        simgpu::LaunchConfig cfg{"bucket_histogram", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto shist =
              ctx.shared_zero<std::uint32_t>(static_cast<std::size_t>(nb));
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          for (std::size_t i = begin; i < end; ++i) {
            const T v =
                from_input ? ctx.load(in, prob * n + i) : ctx.load(src_val, i);
            const auto b = std::min<std::int64_t>(
                nb - 1, static_cast<std::int64_t>(
                            (static_cast<double>(v) - lo) * scale));
            ++shist[static_cast<std::size_t>(std::max<std::int64_t>(0, b))];
          }
          ctx.ops(4 * (end - begin));
          ctx.sync();
          for (int d = 0; d < nb; ++d) {
            if (shist[static_cast<std::size_t>(d)] != 0) {
              ctx.atomic_add_scattered(ghist, static_cast<std::size_t>(d),
                                       shist[static_cast<std::size_t>(d)]);
            }
          }
        });
      }
      dev.copy_to_host(ghist, host_hist, "bucket hist");
      dev.host_compute("scan+find_bkt",
                       static_cast<std::uint64_t>(3 * nb));
      std::uint64_t less = 0;
      std::uint32_t target = 0;
      std::uint64_t target_count = 0;
      for (int d = 0; d < nb; ++d) {
        const std::uint32_t c = host_hist[static_cast<std::size_t>(d)];
        if (less + c >= k_rem) {
          target = static_cast<std::uint32_t>(d);
          target_count = c;
          break;
        }
        less += c;
      }

      // ---- kernel 3: filter ------------------------------------------------
      const auto dst_val = cand_val[1 - cur];
      const auto dst_idx = cand_idx[1 - cur];
      const std::uint64_t out_base = out_cursor;
      {
        simgpu::LaunchConfig cfg{"bucket_filter", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          AggregatedAppender<T, std::uint32_t> out_app(
              out_vals, out_idx, out_base, counters, 0, less,
              "bucket_select results");
          AggregatedAppender<T, std::uint32_t> cand_app(
              dst_val, dst_idx, 0, counters, 1, count,
              "bucket_select candidates");
          for (std::size_t i = begin; i < end; ++i) {
            T v;
            std::uint32_t id;
            if (from_input) {
              v = ctx.load(in, prob * n + i);
              id = static_cast<std::uint32_t>(i);
            } else {
              v = ctx.load(src_val, i);
              id = ctx.load(src_idx, i);
            }
            const auto raw = static_cast<std::int64_t>(
                (static_cast<double>(v) - lo) * scale);
            const auto b = static_cast<std::uint32_t>(
                std::min<std::int64_t>(nb - 1, std::max<std::int64_t>(0, raw)));
            if (b < target) {
              out_app.push(ctx, v, id);
            } else if (b == target) {
              cand_app.push(ctx, v, id);
            }
          }
          out_app.flush(ctx);
          cand_app.flush(ctx);
          ctx.ops(5 * (end - begin));
        });
      }
      dev.synchronize("host check");
      out_cursor += less;
      k_rem -= less;
      count = target_count;
      cur = 1 - cur;
      from_input = false;
    }
    if (out_cursor != prob * k + k) {
      throw std::logic_error("bucket_select: result count mismatch");
    }
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void bucket_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                   std::size_t batch, std::size_t n, std::size_t k,
                   simgpu::DeviceBuffer<T> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx,
                   const BucketSelectOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      bucket_select_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  bucket_select_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
