#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "simgpu/simgpu.hpp"

namespace topk {

/// The problem shape every two-phase plan is built from: the batched
/// (batch, n, k) triple plus the selection direction.  Algorithm flags that
/// vary per algorithm (alpha, digit widths, queue shapes) live in the
/// per-algorithm Options structs, which the plan functions take alongside
/// the Shape; `greatest` sits here because the registry resolves it once for
/// all algorithms (only the AIR family selects natively in both directions —
/// everything else gets the negate-wrap at the dispatch layer).
struct Shape {
  std::size_t batch = 1;
  std::size_t n = 0;
  std::size_t k = 0;
  bool greatest = false;
};

/// Grid shape for a batched data-parallel kernel: every problem of the batch
/// gets the same number of blocks, laid out problem-major
/// (block_idx = problem * blocks_per_problem + block_in_problem).
struct GridShape {
  int blocks_per_problem = 1;
  int block_threads = 256;
  std::size_t batch = 1;

  [[nodiscard]] int total_blocks() const {
    return static_cast<int>(batch) * blocks_per_problem;
  }
  [[nodiscard]] std::size_t problem_of(int block_idx) const {
    return static_cast<std::size_t>(block_idx) / blocks_per_problem;
  }
  [[nodiscard]] int block_in_problem(int block_idx) const {
    return block_idx % blocks_per_problem;
  }
};

/// Choose a grid for scanning `n` elements per problem.  Mirrors how RAFT
/// sizes radix kernels: enough blocks to cover the device a couple of times,
/// each block owning a contiguous chunk, with a cap on the total grid so
/// huge batches do not drown the (simulated) block scheduler.
inline GridShape make_grid(std::size_t batch, std::size_t n,
                           const simgpu::DeviceSpec& spec,
                           int block_threads = 256,
                           std::size_t items_per_block = 16 * 1024,
                           int max_total_blocks = 4096) {
  GridShape g;
  g.batch = batch;
  g.block_threads = block_threads;
  const std::size_t needed = (n + items_per_block - 1) / items_per_block;
  const std::size_t device_cap =
      static_cast<std::size_t>(2 * spec.sm_count);
  const std::size_t per_problem_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(max_total_blocks) / std::max<std::size_t>(
                                                           1, batch));
  g.blocks_per_problem = static_cast<int>(
      std::clamp<std::size_t>(std::min(needed, device_cap), 1,
                              per_problem_cap));
  return g;
}

/// Balanced [begin, end) chunk of `count` items for part `part` of `parts`.
inline std::pair<std::size_t, std::size_t> block_chunk(std::size_t count,
                                                       int parts, int part) {
  const std::size_t base = count / static_cast<std::size_t>(parts);
  const std::size_t rem = count % static_cast<std::size_t>(parts);
  const auto p = static_cast<std::size_t>(part);
  const std::size_t begin = p * base + std::min(p, rem);
  const std::size_t end = begin + base + (p < rem ? 1 : 0);
  return {begin, end};
}

/// Visit the (value, index) pairs of rows [begin, end) of two parallel
/// buffers offset by `base`, calling `f(i, value, index)` with i in
/// [begin, end).  Rides the tile-granular fast path when it is enabled and
/// degrades to scalar BlockCtx::load per element otherwise; either way the
/// counted traffic is identical.  The single entry point used by the input
/// scans of the radix-family kernels.
template <typename T, typename F>
inline void scan_pairs(simgpu::BlockCtx& ctx, simgpu::DeviceBuffer<T> vals,
                       simgpu::DeviceBuffer<std::uint32_t> idx,
                       std::size_t base, std::size_t begin, std::size_t end,
                       F&& f) {
  if (simgpu::tile_path_enabled()) {
    std::size_t i = begin;
    while (i < end) {
      const std::size_t c = std::min(simgpu::kTileElems, end - i);
      const std::span<const T> tv = ctx.load_tile(vals, base + i, c);
      const std::span<const std::uint32_t> ti = ctx.load_tile(idx, base + i, c);
      const std::size_t n = std::min(tv.size(), ti.size());
      for (std::size_t u = 0; u < n; ++u) f(i + u, tv[u], ti[u]);
      i += c;
    }
  } else {
    for (std::size_t i = begin; i < end; ++i) {
      f(i, ctx.load(vals, base + i), ctx.load(idx, base + i));
    }
  }
}

/// Accounted tile-granular copy of `count` (value, index) pairs from
/// src[src_base...] to dst[dst_base...]; scalar load/store when the fast
/// path is off.
template <typename T>
inline void copy_pairs(simgpu::BlockCtx& ctx, simgpu::DeviceBuffer<T> src_val,
                       simgpu::DeviceBuffer<std::uint32_t> src_idx,
                       std::size_t src_base, simgpu::DeviceBuffer<T> dst_val,
                       simgpu::DeviceBuffer<std::uint32_t> dst_idx,
                       std::size_t dst_base, std::size_t count) {
  if (simgpu::tile_path_enabled()) {
    std::size_t i = 0;
    while (i < count) {
      const std::size_t c = std::min(simgpu::kTileElems, count - i);
      ctx.store_tile(dst_val, dst_base + i,
                     ctx.load_tile(src_val, src_base + i, c));
      ctx.store_tile(dst_idx, dst_base + i,
                     ctx.load_tile(src_idx, src_base + i, c));
      i += c;
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      ctx.store(dst_val, dst_base + i, ctx.load(src_val, src_base + i));
      ctx.store(dst_idx, dst_base + i, ctx.load(src_idx, src_base + i));
    }
  }
}

/// Warp-aggregated append into parallel (value, index) output arrays that
/// share one atomic cursor — the standard GPU idiom (used by RAFT's
/// select_radix and GpuSelection) where a warp ballots its writers, the
/// leader reserves a slot range with a single atomicAdd, and lanes write to
/// their offsets.  Emulated by staging up to kWarpSize entries and paying
/// one contended atomic per batch instead of one per element.
///
/// `flush()` must be called before the block retires.
template <typename T, typename Cursor>
class AggregatedAppender {
 public:
  AggregatedAppender(simgpu::DeviceBuffer<T> vals,
                     simgpu::DeviceBuffer<std::uint32_t> idx,
                     std::size_t dst_base,
                     simgpu::DeviceBuffer<Cursor> cursor,
                     std::size_t cursor_index, std::size_t capacity,
                     const char* overflow_what)
      : vals_(vals),
        idx_(idx),
        dst_base_(dst_base),
        cursor_(cursor),
        cursor_index_(cursor_index),
        capacity_(capacity),
        overflow_what_(overflow_what) {}

  void push(simgpu::BlockCtx& ctx, T value, std::uint32_t index) {
    staged_v_[staged_] = value;
    staged_i_[staged_] = index;
    if (++staged_ == kStage) flush(ctx);
  }

  void flush(simgpu::BlockCtx& ctx) {
    if (staged_ == 0) return;
    const Cursor base =
        ctx.atomic_add(cursor_, cursor_index_, static_cast<Cursor>(staged_));
    if (static_cast<std::size_t>(base) + staged_ > capacity_) {
      throw std::logic_error(std::string(overflow_what_) +
                             ": aggregated append overflow");
    }
    for (std::size_t i = 0; i < staged_; ++i) {
      ctx.store(vals_, dst_base_ + static_cast<std::size_t>(base) + i,
                staged_v_[i]);
      ctx.store(idx_, dst_base_ + static_cast<std::size_t>(base) + i,
                staged_i_[i]);
    }
    ctx.ops(2);  // ballot + leader election of the aggregated atomic
    staged_ = 0;
  }

 private:
  static constexpr std::size_t kStage = 32;
  simgpu::DeviceBuffer<T> vals_;
  simgpu::DeviceBuffer<std::uint32_t> idx_;
  std::size_t dst_base_;
  simgpu::DeviceBuffer<Cursor> cursor_;
  std::size_t cursor_index_;
  std::size_t capacity_;
  const char* overflow_what_;
  T staged_v_[kStage];
  std::uint32_t staged_i_[kStage];
  std::size_t staged_ = 0;
};

/// Footprint contract for the "CopyRemainder" terminal kernel shared by the
/// radix-family baselines (radix / bucket / sample select): copy the
/// surviving candidates — or, on degenerate shapes, an input prefix — into
/// the output slice.  One registration serves all three algorithms, so the
/// source operands are optional and segment-sized.
inline void register_copy_remainder_footprint() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"CopyRemainder",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Validate the (n, k, batch) triple shared by all algorithms.
inline void validate_problem(std::size_t n, std::size_t k, std::size_t batch) {
  if (batch == 0) throw std::invalid_argument("top-k: batch must be > 0");
  if (n == 0) throw std::invalid_argument("top-k: n must be > 0");
  if (k == 0 || k > n) {
    throw std::invalid_argument("top-k: k must be in [1, n]");
  }
}

}  // namespace topk
