#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/grid_select.hpp"
#include "topk/partial_sort_common.hpp"
#include "topk/warp_select.hpp"

namespace topk {

/// Options for the fused row-wise family (serving-shaped batches: many rows
/// of small-to-mid n — MoE routing, attention sparsity, ANN re-ranking).
struct FusedRowwiseOptions {
  /// Warp variant: independent rows packed into one block, one warp each.
  int rows_per_block = 8;
  /// Block variant: warps cooperating on one row (shrunk to shared memory).
  int warps_per_block = 8;
  /// Optional input indices (size batch*n), as in RAFT's select_k: result
  /// indices are taken from here instead of row positions — the natural
  /// shape for re-ranking shortlists that carry original candidate ids.
  simgpu::DeviceBuffer<std::uint32_t> in_idx{};
};

/// Execution plan for the fused row-wise kernels.  The warp variant is
/// fully register-resident (no segments); the block variant publishes one
/// sorted per-warp partial list per row into the workspace segments below
/// and prunes them in a second grid-spanning launch.
template <typename T>
struct FusedRowwisePlan {
  FusedRowwiseOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t cap = 0;  // next_pow2(k)
  bool block_variant = false;
  int rows_per_block = 1;  // warp variant: rows (= warps) per block
  int num_warps = 1;       // block variant: warps per row
  int grid = 1;
  std::size_t seg_part_val = 0;  // valid iff block_variant
  std::size_t seg_part_idx = 0;
};

/// Footprint contracts for the fused row-wise kernel family.  The warp
/// variant reads the input once and writes each row's k-slice from the one
/// block that owns the row.  The block variant's scan kernel publishes
/// per-warp partial lists into segment-bounded buffers (cap and warp count
/// are tuning-dependent), which the merge kernel consumes — the auditor
/// proves the publish-before-merge ordering statically.
inline void register_fused_rowwise_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"FusedRowwise_warp",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"in_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            4,
            /*optional=*/true},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
  simgpu::register_footprint(
      {"FusedRowwise_block",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"in_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            4,
            /*optional=*/true},
           {"part_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"part_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"FusedRowwise_block_merge",
       {
           {"part_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"part_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Phase 1 of the fused row-wise family: validate, size the launch so the
/// grid spans all rows of the micro-batch, and — for the block variant —
/// lay out the per-row partial-list segments.
template <typename T>
FusedRowwisePlan<T> fused_rowwise_plan(const Shape& s,
                                       const simgpu::DeviceSpec& spec,
                                       const FusedRowwiseOptions& opt,
                                       bool block_variant,
                                       simgpu::WorkspaceLayout& layout,
                                       simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);
  if (s.k > kMaxSelectionK) {
    throw std::invalid_argument("fused_rowwise: k exceeds the " +
                                std::to_string(kMaxSelectionK) +
                                " warp-queue limit");
  }
  if (!opt.in_idx.empty() && opt.in_idx.size() < s.batch * s.n) {
    throw std::invalid_argument("fused_rowwise: in_idx too small");
  }

  FusedRowwisePlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.cap = next_pow2(s.k);
  p.block_variant = block_variant;
  register_fused_rowwise_footprints();

  if (!block_variant) {
    p.rows_per_block = static_cast<int>(std::min<std::size_t>(
        s.batch,
        static_cast<std::size_t>(
            std::clamp(opt.rows_per_block, 1, simgpu::kMaxWarpsPerBlock))));
    p.grid = static_cast<int>(
        (s.batch + static_cast<std::size_t>(p.rows_per_block) - 1) /
        static_cast<std::size_t>(p.rows_per_block));
    std::vector<simgpu::OperandBind> binds = {{"in", simgpu::kBindInput}};
    if (!opt.in_idx.empty()) binds.push_back({"in_idx", simgpu::kBindInput});
    binds.push_back({"out_vals", simgpu::kBindOutVals});
    binds.push_back({"out_idx", simgpu::kBindOutIdx});
    simgpu::record_launch(sched, "FusedRowwise_warp", p.grid,
                          p.rows_per_block * simgpu::kWarpSize, s.batch, s.n,
                          s.k, std::move(binds));
    return p;
  }

  // Block variant: one block of shared-queue warps per row.  Shrink the
  // warp count until the per-warp queue + list state fits shared memory,
  // exactly as grid_select does.
  p.num_warps = std::clamp(opt.warps_per_block, 1, simgpu::kMaxWarpsPerBlock);
  const std::size_t per_warp_shared =
      (simgpu::kWarpSize + p.cap) * (sizeof(T) + sizeof(std::uint32_t));
  while (p.num_warps > 1 && static_cast<std::size_t>(p.num_warps) *
                                    per_warp_shared >
                                spec.shared_mem_per_block) {
    p.num_warps /= 2;
  }
  if (static_cast<std::size_t>(p.num_warps) * per_warp_shared >
      spec.shared_mem_per_block) {
    throw std::invalid_argument(
        "fused_rowwise: k too large for this device's shared memory");
  }
  p.grid = static_cast<int>(s.batch);
  const std::size_t warps = static_cast<std::size_t>(p.num_warps);
  p.seg_part_val =
      layout.add<T>("fused rowwise partial vals", s.batch * warps * p.cap);
  p.seg_part_idx = layout.add<std::uint32_t>("fused rowwise partial idx",
                                             s.batch * warps * p.cap);
  {
    std::vector<simgpu::OperandBind> binds = {{"in", simgpu::kBindInput}};
    if (!opt.in_idx.empty()) binds.push_back({"in_idx", simgpu::kBindInput});
    binds.push_back({"part_val", static_cast<int>(p.seg_part_val)});
    binds.push_back({"part_idx", static_cast<int>(p.seg_part_idx)});
    simgpu::record_launch(sched, "FusedRowwise_block", p.grid,
                          p.num_warps * simgpu::kWarpSize, s.batch, s.n, s.k,
                          std::move(binds));
    simgpu::record_launch(sched, "FusedRowwise_block_merge", p.grid, 1024,
                          s.batch, s.n, s.k,
                          {{"part_val", static_cast<int>(p.seg_part_val)},
                           {"part_idx", static_cast<int>(p.seg_part_idx)},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
  }
  return p;
}

/// Phase 2, warp variant: one launch covers the whole micro-batch.  Each
/// block packs rows_per_block independent rows, one warp per row, each warp
/// a register-resident WarpSelect engine scanning its whole row — no
/// cross-warp merge, no sync, results written directly.
template <typename T>
void fused_rowwise_run_warp(simgpu::Device& dev,
                            const FusedRowwisePlan<T>& plan,
                            simgpu::DeviceBuffer<T> in,
                            simgpu::DeviceBuffer<T> out_vals,
                            simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const int rpb = plan.rows_per_block;
  const bool tile = simgpu::tile_path_enabled();
  const bool has_in_idx = !plan.opt.in_idx.empty();
  const auto ext_idx = plan.opt.in_idx;

  simgpu::LaunchConfig cfg{"FusedRowwise_warp", plan.grid,
                           rpb * simgpu::kWarpSize, batch, n, k};
  simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
    const std::size_t row0 =
        static_cast<std::size_t>(ctx.block_idx()) * static_cast<std::size_t>(rpb);
    const int rows = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(rpb), batch - row0));
    const bool warpfast = ctx.warpfast_enabled();
    std::array<std::optional<faiss_detail::WarpSelectEngine<T>>,
               simgpu::kMaxWarpsPerBlock>
        engines;
    for (int w = 0; w < rows; ++w) {
      engines[static_cast<std::size_t>(w)].emplace(ctx, k);
    }

    if (warpfast) {
      // Pack-and-replay over the warp's CONTIGUOUS row — the structural
      // edge over the strided shared-queue scans: one vectorized
      // filter-and-pack per region feeds span_rounds(), which replays
      // only candidate-bearing rounds.  Charges stay bit-identical to
      // the exact path: every round's kEmptyRoundLaneOps floor is
      // bulk-charged, candidates are re-checked against the current
      // threshold at their round's replay point, and skipped rounds
      // never mutate the queue, so the push sequence — and its
      // content-dependent charges — is unchanged.
      const std::size_t region = std::size_t{4096};
      for (int w = 0; w < rows; ++w) {
        auto& eng = *engines[static_cast<std::size_t>(w)];
        const std::size_t base = (row0 + static_cast<std::size_t>(w)) * n;
        for (std::size_t r = 0; r < n; r += region) {
          const std::size_t rc = std::min(region, n - r);
          const std::span<const T> tv = ctx.load_tile(in, base + r, rc);
          const std::span<const std::uint32_t> ti =
              has_in_idx ? ctx.load_tile(ext_idx, base + r, rc)
                         : std::span<const std::uint32_t>{};
          eng.span_rounds(ctx, tv, ti, static_cast<std::uint32_t>(r));
        }
        eng.finalize(ctx);
      }
    } else {
      ctx.for_each_warp([&](simgpu::Warp& warp) {
        const int w = warp.index();
        if (w >= rows) return;
        auto& eng = *engines[static_cast<std::size_t>(w)];
        const std::size_t base = (row0 + static_cast<std::size_t>(w)) * n;
        T values[simgpu::kWarpSize];
        std::uint32_t indices[simgpu::kWarpSize];
        bool valid[simgpu::kWarpSize];
        for (std::size_t pos = 0; pos < n; pos += simgpu::kWarpSize) {
          const std::size_t c =
              std::min<std::size_t>(simgpu::kWarpSize, n - pos);
          if (tile) {
            const std::span<const T> tv = ctx.load_tile(in, base + pos, c);
            const std::span<const std::uint32_t> ti =
                has_in_idx ? ctx.load_tile(ext_idx, base + pos, c)
                           : std::span<const std::uint32_t>{};
            warp.each([&](int lane) {
              const auto u = static_cast<std::size_t>(lane);
              valid[lane] = u < tv.size();
              if (valid[lane]) {
                values[lane] = tv[u];
                indices[lane] = has_in_idx
                                    ? ti[u]
                                    : static_cast<std::uint32_t>(pos + u);
              }
            });
          } else {
            warp.each([&](int lane) {
              const std::size_t i = pos + static_cast<std::size_t>(lane);
              valid[lane] = i < n;
              if (valid[lane]) {
                values[lane] = ctx.load(in, base + i);
                indices[lane] = has_in_idx
                                    ? ctx.load(ext_idx, base + i)
                                    : static_cast<std::uint32_t>(i);
              }
            });
          }
          eng.round(ctx, values, indices, valid);
        }
        eng.finalize(ctx);
      });
    }

    // Direct output: each warp owns its row's k-slice.
    for (int w = 0; w < rows; ++w) {
      const std::size_t row = row0 + static_cast<std::size_t>(w);
      const auto keys = engines[static_cast<std::size_t>(w)]->list().keys();
      const auto idx = engines[static_cast<std::size_t>(w)]->list().indices();
      for (std::size_t i = 0; i < k; ++i) {
        ctx.store(out_vals, row * k + i, keys[i]);
        ctx.store(out_idx, row * k + i, idx[i]);
      }
    }
  });
}

/// Phase 2, block variant: one block of shared-queue warps per row.  The
/// scan kernel publishes each warp's sorted partial list (padded to cap)
/// into the per-row workspace segments; the grid-spanning merge kernel
/// prunes them down to k per row.  Two launches cover the whole
/// micro-batch, independent of the row count.
template <typename T>
void fused_rowwise_run_block(simgpu::Device& dev,
                             const FusedRowwisePlan<T>& plan,
                             simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                             simgpu::DeviceBuffer<T> out_vals,
                             simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const std::size_t cap = plan.cap;
  const int num_warps = plan.num_warps;
  const bool tile = simgpu::tile_path_enabled();
  const bool has_in_idx = !plan.opt.in_idx.empty();
  const auto ext_idx = plan.opt.in_idx;

  const auto part_val = ws.get<T>(plan.seg_part_val);
  const auto part_idx = ws.get<std::uint32_t>(plan.seg_part_idx);

  // ---- kernel 1: per-row scan, one sorted partial list per warp ---------
  {
    simgpu::LaunchConfig cfg{"FusedRowwise_block", plan.grid,
                             num_warps * simgpu::kWarpSize, batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto row = static_cast<std::size_t>(ctx.block_idx());
      const std::size_t base = row * n;
      const bool warpfast = ctx.warpfast_enabled();
      std::array<std::optional<SharedQueueEngine<T>>,
                 simgpu::kMaxWarpsPerBlock>
          engines;
      for (int w = 0; w < num_warps; ++w) {
        engines[static_cast<std::size_t>(w)].emplace(ctx, k);
      }

      const std::size_t stride =
          static_cast<std::size_t>(num_warps) * simgpu::kWarpSize;
      if (warpfast) {
        // Region-hoisted scan with adaptive per-warp gating, exactly as in
        // grid_select (charges are bit-identical to the exact path).
        const std::size_t region = stride * 64;
        std::array<std::uint8_t, simgpu::kMaxWarpsPerBlock> gate_sleep{};
        std::array<std::uint8_t, simgpu::kMaxWarpsPerBlock> gate_backoff{};
        for (std::size_t r = 0; r < n; r += region) {
          const std::size_t rc = std::min(region, n - r);
          const std::span<const T> tv = ctx.load_tile(in, base + r, rc);
          const std::span<const std::uint32_t> ti =
              has_in_idx ? ctx.load_tile(ext_idx, base + r, rc)
                         : std::span<const std::uint32_t>{};
          for (int w = 0; w < num_warps; ++w) {
            auto& eng = *engines[static_cast<std::size_t>(w)];
            const std::size_t warp_off =
                static_cast<std::size_t>(w) * simgpu::kWarpSize;
            if (gate_sleep[static_cast<std::size_t>(w)] == 0) {
              const T gate = eng.kth();
              std::size_t rounds = 0;
              std::size_t below = 0;
              for (std::size_t off = warp_off; off < rc; off += stride) {
                const std::size_t c =
                    std::min<std::size_t>(simgpu::kWarpSize, rc - off);
                below +=
                    simgpu::BlockCtx::count_below(tv.subspan(off, c), gate);
                ++rounds;
              }
              if (below == 0) {
                gate_backoff[static_cast<std::size_t>(w)] = 0;
                ctx.ops(rounds * kEmptyRoundLaneOps);
                continue;
              }
              const std::uint8_t next =
                  gate_backoff[static_cast<std::size_t>(w)];
              gate_backoff[static_cast<std::size_t>(w)] =
                  next == 0 ? 1
                            : static_cast<std::uint8_t>(next < 8 ? next * 2
                                                                 : 8);
              gate_sleep[static_cast<std::size_t>(w)] =
                  gate_backoff[static_cast<std::size_t>(w)];
            } else {
              --gate_sleep[static_cast<std::size_t>(w)];
            }
            for (std::size_t off = warp_off; off < rc; off += stride) {
              const std::size_t c =
                  std::min<std::size_t>(simgpu::kWarpSize, rc - off);
              eng.round_span(ctx, tv.subspan(off, c),
                             has_in_idx ? ti.subspan(off, c) : ti,
                             static_cast<std::uint32_t>(r + off));
            }
          }
        }
        for (int w = 0; w < num_warps; ++w) {
          engines[static_cast<std::size_t>(w)]->finalize(ctx);
        }
      } else {
        ctx.for_each_warp([&](simgpu::Warp& warp) {
          auto& eng = *engines[static_cast<std::size_t>(warp.index())];
          T values[simgpu::kWarpSize];
          std::uint32_t indices[simgpu::kWarpSize];
          bool valid[simgpu::kWarpSize];
          const std::size_t warp_off =
              static_cast<std::size_t>(warp.index()) * simgpu::kWarpSize;
          for (std::size_t pos = warp_off; pos < n; pos += stride) {
            const std::size_t c =
                std::min<std::size_t>(simgpu::kWarpSize, n - pos);
            if (tile) {
              const std::span<const T> tv = ctx.load_tile(in, base + pos, c);
              const std::span<const std::uint32_t> ti =
                  has_in_idx ? ctx.load_tile(ext_idx, base + pos, c)
                             : std::span<const std::uint32_t>{};
              warp.each([&](int lane) {
                const auto u = static_cast<std::size_t>(lane);
                valid[lane] = u < tv.size();
                if (valid[lane]) {
                  values[lane] = tv[u];
                  indices[lane] = has_in_idx
                                      ? ti[u]
                                      : static_cast<std::uint32_t>(pos + u);
                }
              });
            } else {
              warp.each([&](int lane) {
                const std::size_t i = pos + static_cast<std::size_t>(lane);
                valid[lane] = i < n;
                if (valid[lane]) {
                  values[lane] = ctx.load(in, base + i);
                  indices[lane] = has_in_idx
                                      ? ctx.load(ext_idx, base + i)
                                      : static_cast<std::uint32_t>(i);
                }
              });
            }
            eng.round(ctx, values, indices, valid);
          }
          eng.finalize(ctx);
        });
      }
      ctx.sync();

      // Publish each warp's sorted list (padded to cap) into the row's
      // slice of the partial segments; the merge kernel prunes them.
      for (int w = 0; w < num_warps; ++w) {
        auto& list = engines[static_cast<std::size_t>(w)]->list();
        const auto mk = list.keys();
        const auto mi = list.indices();
        const std::size_t out_base =
            (row * static_cast<std::size_t>(num_warps) +
             static_cast<std::size_t>(w)) *
            cap;
        for (std::size_t i = 0; i < cap; ++i) {
          const bool live = i < k;
          ctx.store(part_val, out_base + i,
                    live ? static_cast<T>(mk[i]) : sort_sentinel<T>());
          ctx.store(part_idx, out_base + i,
                    live ? static_cast<std::uint32_t>(mi[i])
                         : std::uint32_t{0});
        }
      }
    });
  }

  // ---- kernel 2: per-row merge of the warp partial lists -----------------
  {
    simgpu::LaunchConfig cfg{"FusedRowwise_block_merge", plan.grid, 1024,
                             batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto row = static_cast<std::size_t>(ctx.block_idx());
      auto acc_keys = ctx.shared<T>(cap, "fused merge acc keys");
      auto acc_idx = ctx.shared<std::uint32_t>(cap, "fused merge acc idx");
      auto tmp_keys = ctx.shared<T>(cap, "fused merge tmp keys");
      auto tmp_idx = ctx.shared<std::uint32_t>(cap, "fused merge tmp idx");
      // Pull one warp's sorted partial list into shared memory, riding the
      // tile path for the device-memory side when it is enabled.
      const auto load_partial = [&](auto& dst_keys, auto& dst_idx,
                                    std::size_t src_base) {
        if (tile) {
          const auto rk = raw_view(dst_keys);
          const auto ri = raw_view(dst_idx);
          std::size_t i = 0;
          while (i < cap) {
            const std::size_t c = std::min(simgpu::kTileElems, cap - i);
            const std::span<const T> tk =
                ctx.load_tile(part_val, src_base + i, c);
            const std::span<const std::uint32_t> tix =
                ctx.load_tile(part_idx, src_base + i, c);
            if (!rk.empty() && !ri.empty()) {
              std::copy(tk.begin(), tk.end(),
                        rk.begin() + static_cast<std::ptrdiff_t>(i));
              std::copy(tix.begin(), tix.end(),
                        ri.begin() + static_cast<std::ptrdiff_t>(i));
            } else {
              for (std::size_t u = 0; u < tk.size(); ++u) {
                dst_keys[i + u] = tk[u];
                dst_idx[i + u] = tix[u];
              }
            }
            i += c;
          }
        } else {
          for (std::size_t i = 0; i < cap; ++i) {
            dst_keys[i] = ctx.load(part_val, src_base + i);
            dst_idx[i] = ctx.load(part_idx, src_base + i);
          }
        }
      };
      load_partial(acc_keys, acc_idx,
                   row * static_cast<std::size_t>(num_warps) * cap);
      for (int w = 1; w < num_warps; ++w) {
        const std::size_t src_base =
            (row * static_cast<std::size_t>(num_warps) +
             static_cast<std::size_t>(w)) *
            cap;
        load_partial(tmp_keys, tmp_idx, src_base);
        merge_prune(ctx, acc_keys, acc_idx, tmp_keys, tmp_idx);
      }
      for (std::size_t i = 0; i < k; ++i) {
        ctx.store(out_vals, row * k + i, acc_keys[i]);
        ctx.store(out_idx, row * k + i, acc_idx[i]);
      }
    });
  }
}

/// Phase 2 dispatcher shared by both registry rows.
template <typename T>
void fused_rowwise_run(simgpu::Device& dev, const FusedRowwisePlan<T>& plan,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                       simgpu::DeviceBuffer<T> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  if (in.size() < plan.batch * plan.n ||
      out_vals.size() < plan.batch * plan.k ||
      out_idx.size() < plan.batch * plan.k) {
    throw std::invalid_argument("fused_rowwise: buffer too small");
  }
  if (plan.block_variant) {
    fused_rowwise_run_block(dev, plan, ws, in, out_vals, out_idx);
  } else {
    fused_rowwise_run_warp(dev, plan, in, out_vals, out_idx);
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void fused_rowwise(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                   std::size_t batch, std::size_t n, std::size_t k,
                   simgpu::DeviceBuffer<T> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx,
                   bool block_variant, const FusedRowwiseOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan = fused_rowwise_plan<T>(Shape{batch, n, k, false},
                                          dev.spec(), opt, block_variant,
                                          layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  fused_rowwise_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
