#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/partial_sort_common.hpp"
#include "topk/warp_select.hpp"

namespace topk {

/// Options for GridSelect (paper §4).
struct GridSelectOptions {
  int warps_per_block = 8;
  std::size_t items_per_block = 16 * 1024;
  /// false reproduces the Fig. 11 ablation: per-thread register queues
  /// (BlockSelect-style) inside the multi-block structure.
  bool shared_queue = true;
  /// Optional input indices (size batch*n), as in RAFT's select_k: result
  /// indices are taken from here instead of input positions.
  simgpu::DeviceBuffer<std::uint32_t> in_idx{};
};

/// One warp's GridSelect state: a single 32-entry *shared-memory* queue with
/// parallel two-step insertion (paper Fig. 5) in front of a sorted top-K
/// list.  Compared with per-thread register queues this reduces register
/// pressure and calls the expensive sort+merge only when the queue is
/// actually full.
///
/// This class is also the paper's "process data on-the-fly" device-function
/// building block: any kernel can instantiate it and push values as it
/// produces them (see examples/streaming_topk.cpp).
template <typename T>
class SharedQueueEngine {
 public:
  /// TopkList view over the engine's shared-memory storage.
  using SharedList =
      TopkList<T, simgpu::SharedSpan<T>, simgpu::SharedSpan<std::uint32_t>>;

  SharedQueueEngine(simgpu::BlockCtx& ctx, std::size_t k)
      : q_keys_(ctx.shared<T>(simgpu::kWarpSize, "gridselect queue keys")),
        q_idx_(ctx.shared<std::uint32_t>(simgpu::kWarpSize,
                                         "gridselect queue idx")),
        list_keys_(ctx.shared<T>(next_pow2(k), "gridselect list keys")),
        list_idx_(ctx.shared<std::uint32_t>(next_pow2(k),
                                            "gridselect list idx")),
        list_(list_keys_, list_idx_, k) {
    // Under the warpfast gate, candidates are staged pre-packed (see
    // pack_key_idx) in a plain member buffer instead of the shared-memory
    // queue: one 8-byte store per insert and the flush offers uint64s
    // straight into the list's packed heap.  The shared queue is still
    // allocated (shared-memory capacity modeling is unchanged) but not
    // written — its contents are unobservable except through the merge,
    // and the gate is per-block constant so a queue never mixes layouts.
    if constexpr (kPackableKey<T>) {
      packed_q_ = ctx.warpfast_enabled();
    }
  }

  [[nodiscard]] T kth() const { return list_.kth(); }

  /// Process one warp-wide round of up to 32 loaded elements with the
  /// parallel two-step insertion of Fig. 5.
  void round(simgpu::BlockCtx& ctx, const T* values,
             const std::uint32_t* indices, const bool* valid) {
    const T threshold = list_.kth();
    const std::uint32_t mask = simgpu::Warp::ballot([&](int lane) {
      return valid[lane] && values[lane] < threshold;
    });
    // The per-round floor (threshold compare per lane + the ballot) is the
    // one authoritative formula shared with the warpfast bulk charge; a
    // mask == 0 round costs exactly this and nothing else.
    ctx.ops(kEmptyRoundLaneOps);
    if (mask == 0) return;

    const std::size_t incoming =
        static_cast<std::size_t>(simgpu::Warp::popc(mask));
    // Step 1: lanes whose storing position fits insert immediately.  Walk
    // only the set mask bits (rank == popcount of lower bits, i.e.
    // Warp::rank_below); positions grow with the rank, so the first
    // overflow ends the loop — on the device the predicated store issues
    // for the candidate lanes either way, hence the same `incoming` charge.
    std::size_t rank = 0;
    for (std::uint32_t m = mask; m != 0; m &= m - 1, ++rank) {
      const std::size_t pos = q_count_ + rank;
      if (pos >= simgpu::kWarpSize) break;
      const int lane = std::countr_zero(m);
      q_put(pos, values[lane], indices[lane]);
    }
    ctx.ops(incoming);
    const std::size_t total = q_count_ + incoming;
    if (total < simgpu::kWarpSize) {
      q_count_ = total;
      return;
    }
    // Queue full: sort + merge, clear, then step 2 inserts the overflow
    // (the set bits whose position ran past the queue end in step 1).
    flush(ctx, simgpu::kWarpSize);
    rank = 0;
    for (std::uint32_t m = mask; m != 0; m &= m - 1, ++rank) {
      const std::size_t pos = q_count_overflow_base_ + rank;
      if (pos < simgpu::kWarpSize) continue;
      const int lane = std::countr_zero(m);
      q_put(pos - simgpu::kWarpSize, values[lane], indices[lane]);
    }
    ctx.ops(incoming);
    q_count_ = total - simgpu::kWarpSize;
  }

  /// round() for prefix-valid lane batches (the first `count` lanes hold
  /// loaded elements), with the threshold-gated fast path: when the block's
  /// warpfast gate is on and no element beats the current threshold, charge
  /// the exact per-round cost in bulk and return without touching any
  /// state — bit-identical to the full emulation, which would have found
  /// mask == 0.  Rounds with candidates take the exact path.
  void round_gated(simgpu::BlockCtx& ctx, const T* values,
                   const std::uint32_t* indices, std::size_t count) {
    if (ctx.warpfast_enabled() &&
        simgpu::BlockCtx::count_below(std::span<const T>(values, count),
                                      list_.kth()) == 0) {
      ctx.ops(kEmptyRoundLaneOps);
      return;
    }
    bool valid[simgpu::kWarpSize];
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      valid[lane] = static_cast<std::size_t>(lane) < count;
    }
    round(ctx, values, indices, valid);
  }

  /// Vectorized round over one contiguous prefix-valid tile (warpfast
  /// path).  Queue/list state and BlockCounters end up identical to
  /// round() over the same elements: candidates are extracted in lane
  /// order — exactly the ballot's bit order — and appended with the same
  /// two-step placement, and the charges are the same per-round floor +
  /// `incoming` per insert step.  Only the emulation work (per-lane ballot
  /// closure, bit walking) is elided.  Indices come from `ext_idx` when
  /// non-empty, else `base_index + offset`.
  void round_span(simgpu::BlockCtx& ctx, std::span<const T> tile,
                  std::span<const std::uint32_t> ext_idx,
                  std::uint32_t base_index) {
    const T threshold = list_.kth();
    ctx.ops(kEmptyRoundLaneOps);
    if constexpr (kPackableKey<T>) {
      if (packed_q_) {
        // Fused filter + pack, compressed straight onto the staging queue
        // tail (qpack_ has kWarpSize slots of slack for exactly this).
        // Candidates land in lane order — the ballot's bit order — packed
        // once as 8-byte units that stay packed through staging and the
        // list merge.  Float keys take the vcompress path in simgpu::simd;
        // other packable keys use the branchless cursor loop.
        std::uint64_t* dst = qpack_.data() + q_count_;
        std::size_t m;
        if constexpr (std::is_same_v<T, float>) {
          m = simgpu::simd::pack_below_f32(
              tile.data(), ext_idx.empty() ? nullptr : ext_idx.data(),
              base_index, tile.size(), threshold, dst);
        } else {
          m = 0;
          for (std::size_t u = 0; u < tile.size(); ++u) {
            dst[m] = pack_key_idx<T>(
                tile[u], ext_idx.empty()
                             ? base_index + static_cast<std::uint32_t>(u)
                             : ext_idx[u]);
            m += tile[u] < threshold ? 1 : 0;
          }
        }
        if (m == 0) return;
        ctx.ops(m);
        const std::size_t total = q_count_ + m;
        if (total < simgpu::kWarpSize) {
          q_count_ = total;
          return;
        }
        // Queue full: sort + merge, then step 2 moves the overflow to the
        // front — the same two-step placement as the exact round.
        flush(ctx, simgpu::kWarpSize);
        const std::size_t rem = total - simgpu::kWarpSize;
        for (std::size_t i = 0; i < rem; ++i) {
          qpack_[i] = qpack_[simgpu::kWarpSize + i];
        }
        ctx.ops(m);
        q_count_ = rem;
        return;
      }
    }
    // Vectorized precheck: most rounds carry no candidate once the
    // threshold tightens, and the compare-only scan is far cheaper than
    // the compacting one below.
    if (simgpu::BlockCtx::count_below(tile, threshold) == 0) return;
    // Unpackable key types stage through the shared-memory queue as the
    // exact path does (raw spans when legal — shared-memory traffic is
    // never charged, so this is free of KernelStats effects).
    T ck[simgpu::kWarpSize];
    std::uint32_t ci[simgpu::kWarpSize];
    std::size_t m = 0;
    if (ext_idx.empty()) {
      for (std::size_t u = 0; u < tile.size(); ++u) {
        ck[m] = tile[u];
        ci[m] = base_index + static_cast<std::uint32_t>(u);
        m += tile[u] < threshold ? 1 : 0;
      }
    } else {
      for (std::size_t u = 0; u < tile.size(); ++u) {
        ck[m] = tile[u];
        ci[m] = ext_idx[u];
        m += tile[u] < threshold ? 1 : 0;
      }
    }
    if (m == 0) return;
    T* qk = raw_view(q_keys_).data();
    std::uint32_t* qi = raw_view(q_idx_).data();
    const auto put = [&](std::size_t dst, std::size_t i) {
      if (qk != nullptr) {
        qk[dst] = ck[i];
        qi[dst] = ci[i];
      } else {
        q_keys_[dst] = ck[i];
        q_idx_[dst] = ci[i];
      }
    };
    // Step 1: the candidates that fit the queue tail.
    const std::size_t take = std::min(m, simgpu::kWarpSize - q_count_);
    for (std::size_t i = 0; i < take; ++i) put(q_count_ + i, i);
    ctx.ops(m);
    const std::size_t total = q_count_ + m;
    if (total < simgpu::kWarpSize) {
      q_count_ = total;
      return;
    }
    // Queue full: sort + merge, then step 2 re-issues the overflow.
    flush(ctx, simgpu::kWarpSize);
    for (std::size_t i = take; i < m; ++i) put(i - take, i);
    ctx.ops(m);
    q_count_ = total - simgpu::kWarpSize;
  }

  /// Drain whatever is queued into the list.
  void finalize(simgpu::BlockCtx& ctx) {
    if (q_count_ > 0) flush(ctx, q_count_);
  }

  [[nodiscard]] SharedList& list() { return list_; }

 private:
  void flush(simgpu::BlockCtx& ctx, std::size_t count) {
    q_count_overflow_base_ = q_count_;
    if constexpr (kPackableKey<T>) {
      if (packed_q_) {
        list_.merge_packed(ctx, qpack_.data(), count);
        q_count_ = 0;
        return;
      }
    }
    list_.merge(ctx, q_keys_, q_idx_, count);
    q_count_ = 0;
  }

  /// One queue insert, honoring the staging layout (see the constructor).
  void q_put(std::size_t pos, T v, std::uint32_t index) {
    if constexpr (kPackableKey<T>) {
      if (packed_q_) {
        qpack_[pos] = pack_key_idx<T>(v, index);
        return;
      }
    }
    q_keys_[pos] = v;
    q_idx_[pos] = index;
  }

  simgpu::SharedSpan<T> q_keys_;
  simgpu::SharedSpan<std::uint32_t> q_idx_;
  simgpu::SharedSpan<T> list_keys_;
  simgpu::SharedSpan<std::uint32_t> list_idx_;
  SharedList list_;
  // Staging queue for packed candidates: kWarpSize live slots plus
  // kWarpSize slots of slack so round_span can compress a full round onto
  // the tail before splitting it across a flush.
  std::array<std::uint64_t, 2 * simgpu::kWarpSize> qpack_{};
  bool packed_q_ = false;
  std::size_t q_count_ = 0;
  std::size_t q_count_overflow_base_ = 0;
};

/// Execution plan for GridSelect: the shared-memory-constrained warp count,
/// the launch grid, and — for multi-block problems — the partial-result
/// segments consumed by the cross-block merge kernel.
template <typename T>
struct GridSelectPlan {
  GridSelectOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t cap = 0;  // next_pow2(k)
  int num_warps = 0;
  GridShape shape;
  bool direct_output = false;
  std::size_t seg_part_val = 0;  // valid iff !direct_output
  std::size_t seg_part_idx = 0;
};

/// Footprint contracts for the GridSelect kernel family.  The partial
/// kernels read the input once and publish either the final outputs
/// (single-block-per-problem regime) or per-block partial lists, so the
/// output operands are optional and the partial-list bounds are
/// segment-sized (cap and blocks-per-problem are tuning-dependent).
inline void register_grid_select_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  const std::vector<simgpu::OperandSpec> partial_ops = {
      {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
      {"in_idx",
       Access::kRead,
       WriteScope::kNone,
       {{AffineVar::kBatchN}},
       4,
       /*optional=*/true},
      {"out_vals",
       Access::kWrite,
       WriteScope::kBlockLocal,
       {{AffineVar::kBatchK}},
       8,
       /*optional=*/true},
      {"out_idx",
       Access::kWrite,
       WriteScope::kBlockLocal,
       {{AffineVar::kBatchK}},
       4,
       /*optional=*/true},
      {"part_val",
       Access::kWrite,
       WriteScope::kBlockLocal,
       {{AffineVar::kSegElems}},
       8,
       /*optional=*/true},
      {"part_idx",
       Access::kWrite,
       WriteScope::kBlockLocal,
       {{AffineVar::kSegElems}},
       4,
       /*optional=*/true},
  };
  simgpu::register_footprint({"GridSelect_partial", partial_ops});
  simgpu::register_footprint({"GridSelect_partial_threadqueue", partial_ops});
  simgpu::register_footprint(
      {"GridSelect_merge",
       {
           {"part_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"part_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Phase 1 of GridSelect: validate, size the block to the device's shared
/// memory and lay out the partial-list segments (none when a single block
/// per problem writes the final results directly).
template <typename T>
GridSelectPlan<T> grid_select_plan(const Shape& s,
                                   const simgpu::DeviceSpec& spec,
                                   const GridSelectOptions& opt,
                                   simgpu::WorkspaceLayout& layout,
                                   simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);
  if (s.k > kMaxSelectionK) {
    throw std::invalid_argument("grid_select: k exceeds the " +
                                std::to_string(kMaxSelectionK) + " limit");
  }
  if (!opt.in_idx.empty() && opt.in_idx.size() < s.batch * s.n) {
    throw std::invalid_argument("grid_select: in_idx too small");
  }

  GridSelectPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.cap = next_pow2(s.k);
  // Shrink the block until the per-warp queue + list state fits the
  // device's shared memory (large K on small-shared-memory devices like
  // the A10 runs with fewer warps per block).
  p.num_warps = std::min(opt.warps_per_block, simgpu::kMaxWarpsPerBlock);
  const std::size_t per_warp_shared =
      (simgpu::kWarpSize + p.cap) * (sizeof(T) + sizeof(std::uint32_t));
  while (p.num_warps > 1 && static_cast<std::size_t>(p.num_warps) *
                                    per_warp_shared >
                                spec.shared_mem_per_block) {
    p.num_warps /= 2;
  }
  if (static_cast<std::size_t>(p.num_warps) * per_warp_shared >
      spec.shared_mem_per_block) {
    throw std::invalid_argument(
        "grid_select: k too large for this device's shared memory");
  }
  p.shape = make_grid(s.batch, s.n, spec, p.num_warps * simgpu::kWarpSize,
                      opt.items_per_block);
  // With a single block per problem no cross-block merge is needed: the
  // partial kernel writes the final results directly (this is the regime
  // where GridSelect degenerates to a BlockSelect-shaped launch).
  p.direct_output = (p.shape.blocks_per_problem == 1);
  if (!p.direct_output) {
    const std::size_t bpp =
        static_cast<std::size_t>(p.shape.blocks_per_problem);
    p.seg_part_val =
        layout.add<T>("gridselect partial vals", s.batch * bpp * p.cap);
    p.seg_part_idx = layout.add<std::uint32_t>("gridselect partial idx",
                                               s.batch * bpp * p.cap);
  }
  register_grid_select_footprints();
  {
    std::vector<simgpu::OperandBind> binds = {{"in", simgpu::kBindInput}};
    if (!opt.in_idx.empty()) binds.push_back({"in_idx", simgpu::kBindInput});
    if (p.direct_output) {
      binds.push_back({"out_vals", simgpu::kBindOutVals});
      binds.push_back({"out_idx", simgpu::kBindOutIdx});
    } else {
      binds.push_back({"part_val", static_cast<int>(p.seg_part_val)});
      binds.push_back({"part_idx", static_cast<int>(p.seg_part_idx)});
    }
    simgpu::record_launch(sched,
                          opt.shared_queue ? "GridSelect_partial"
                                           : "GridSelect_partial_threadqueue",
                          p.shape.total_blocks(), p.shape.block_threads,
                          s.batch, s.n, s.k, std::move(binds));
    if (!p.direct_output) {
      simgpu::record_launch(sched, "GridSelect_merge",
                            static_cast<int>(s.batch), 1024, s.batch, s.n,
                            s.k,
                            {{"part_val", static_cast<int>(p.seg_part_val)},
                             {"part_idx", static_cast<int>(p.seg_part_idx)},
                             {"out_vals", simgpu::kBindOutVals},
                             {"out_idx", simgpu::kBindOutIdx}});
    }
  }
  return p;
}

/// Phase 2 of GridSelect (paper §4): WarpSelect with (a) a shared-memory
/// queue with parallel two-step insertion and (b) a multi-block launch so
/// the whole device participates, followed by a cross-block merge kernel.
template <typename T>
void grid_select_run(simgpu::Device& dev, const GridSelectPlan<T>& plan,
                     simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                     simgpu::DeviceBuffer<T> out_vals,
                     simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const GridSelectOptions& opt = plan.opt;
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("grid_select: buffer too small");
  }

  const std::size_t cap = plan.cap;
  const int num_warps = plan.num_warps;
  const GridShape shape = plan.shape;
  const int bpp = shape.blocks_per_problem;
  const bool shared_queue = opt.shared_queue;
  // Captured at launch time: each warp round loads one contiguous 32-wide
  // tile instead of 32 scalar loads when the fast path is on.
  const bool tile = simgpu::tile_path_enabled();

  const bool has_in_idx = !opt.in_idx.empty();
  const auto ext_idx = opt.in_idx;

  const bool direct_output = plan.direct_output;
  simgpu::DeviceBuffer<T> part_val;
  simgpu::DeviceBuffer<std::uint32_t> part_idx;
  if (!direct_output) {
    part_val = ws.get<T>(plan.seg_part_val);
    part_idx = ws.get<std::uint32_t>(plan.seg_part_idx);
  }

  // ---- kernel 1: per-block partial selection ----------------------------
  {
    simgpu::LaunchConfig cfg{shared_queue ? "GridSelect_partial"
                                          : "GridSelect_partial_threadqueue",
                             shape.total_blocks(), shape.block_threads,
                             batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const std::size_t prob = shape.problem_of(ctx.block_idx());
      const int bip = shape.block_in_problem(ctx.block_idx());
      const auto [begin, end] = block_chunk(n, bpp, bip);
      const std::size_t base = prob * n;
      // Per-block gate: tile path + TOPK_SIM_WARPFAST + no sanitizer.
      const bool warpfast = ctx.warpfast_enabled();

      // One engine per warp, constructed in place (no per-block heap
      // traffic); shared-queue engines allocate from block shared memory,
      // the thread-queue variant keeps queues in registers.
      std::array<std::optional<SharedQueueEngine<T>>,
                 simgpu::kMaxWarpsPerBlock>
          sq;
      std::array<std::optional<faiss_detail::WarpSelectEngine<T>>,
                 simgpu::kMaxWarpsPerBlock>
          tq;
      for (int w = 0; w < num_warps; ++w) {
        if (shared_queue) {
          sq[static_cast<std::size_t>(w)].emplace(ctx, k);
        } else {
          tq[static_cast<std::size_t>(w)].emplace(ctx, k);
        }
      }

      const std::size_t stride =
          static_cast<std::size_t>(num_warps) * simgpu::kWarpSize;

      // Warpfast scan: region-hoisted tile loads.  One load_tile per
      // stride-aligned region (instead of per 32-wide round) keeps the data
      // L1-hot across each warp's threshold scans and amortizes the
      // per-call accounting.  Byte charges are identical to per-round
      // loads — every element of the chunk is loaded exactly once either
      // way and BlockCounters are per block, not per warp — and engine
      // states are warp-independent, so interleaving warps per region
      // instead of scanning warp-major changes only the order of charges,
      // never their totals.  The exact path loads the index tile every
      // round too, so the byte charges match whether or not a round has
      // candidates.
      const auto scan_warpfast = [&](auto& engs) {
        const std::size_t region = stride * 64;
        // Adaptive region gating: a failed gate (candidates present) wastes
        // its count pass, and failures cluster while the warp's threshold is
        // still loose.  After each failure the gate sleeps for twice as many
        // regions as before (capped), and any success resets the backoff.
        // Gated and ungated regions charge BlockCounters identically (the
        // per-round path floors empty rounds itself), so the heuristic only
        // ever affects wall clock.
        std::array<std::uint8_t, simgpu::kMaxWarpsPerBlock> gate_sleep{};
        std::array<std::uint8_t, simgpu::kMaxWarpsPerBlock> gate_backoff{};
        for (std::size_t r = begin; r < end; r += region) {
          const std::size_t rc = std::min(region, end - r);
          const std::span<const T> tv = ctx.load_tile(in, base + r, rc);
          const std::span<const std::uint32_t> ti =
              has_in_idx ? ctx.load_tile(ext_idx, base + r, rc)
                         : std::span<const std::uint32_t>{};
          for (int w = 0; w < num_warps; ++w) {
            auto& eng = *engs[static_cast<std::size_t>(w)];
            const std::size_t warp_off =
                static_cast<std::size_t>(w) * simgpu::kWarpSize;
            // Region gate: count candidates across all of this warp's
            // sub-rounds under the region-entry threshold.  The threshold
            // only tightens, and only at flushes — which need candidates —
            // so it is the loosest threshold any round in the region will
            // see: zero here means every round is provably empty.  Empty
            // rounds charge exactly the per-round floor and touch no state,
            // so one bulk charge replaces them bit-identically and the
            // engine round machinery runs only for candidate regions.
            if (gate_sleep[static_cast<std::size_t>(w)] == 0) {
              const T gate = eng.kth();
              std::size_t rounds = 0;
              std::size_t below = 0;
              for (std::size_t off = warp_off; off < rc; off += stride) {
                const std::size_t c =
                    std::min<std::size_t>(simgpu::kWarpSize, rc - off);
                below +=
                    simgpu::BlockCtx::count_below(tv.subspan(off, c), gate);
                ++rounds;
              }
              if (below == 0) {
                gate_backoff[static_cast<std::size_t>(w)] = 0;
                ctx.ops(rounds * kEmptyRoundLaneOps);
                continue;
              }
              const std::uint8_t next = gate_backoff[static_cast<std::size_t>(
                  w)];
              gate_backoff[static_cast<std::size_t>(w)] =
                  next == 0 ? 1 : static_cast<std::uint8_t>(
                                      next < 8 ? next * 2 : 8);
              gate_sleep[static_cast<std::size_t>(w)] =
                  gate_backoff[static_cast<std::size_t>(w)];
            } else {
              --gate_sleep[static_cast<std::size_t>(w)];
            }
            for (std::size_t off = warp_off; off < rc; off += stride) {
              const std::size_t c =
                  std::min<std::size_t>(simgpu::kWarpSize, rc - off);
              eng.round_span(ctx, tv.subspan(off, c),
                             has_in_idx ? ti.subspan(off, c) : ti,
                             static_cast<std::uint32_t>(r + off));
            }
          }
        }
        for (int w = 0; w < num_warps; ++w)
          engs[static_cast<std::size_t>(w)]->finalize(ctx);
      };

      // Exact scan, one loop for both engine families (they share the
      // round / finalize surface), with two load variants: tile (tile
      // load, exact round every time) and scalar.
      const auto scan = [&](simgpu::Warp& warp, auto& eng) {
        T values[simgpu::kWarpSize];
        std::uint32_t indices[simgpu::kWarpSize];
        bool valid[simgpu::kWarpSize];
        const std::size_t warp_off =
            static_cast<std::size_t>(warp.index()) * simgpu::kWarpSize;
        for (std::size_t pos = begin + warp_off; pos < end; pos += stride) {
          if (tile) {
            const std::span<const T> tv = ctx.load_tile(
                in, base + pos,
                std::min<std::size_t>(simgpu::kWarpSize, end - pos));
            const std::span<const std::uint32_t> ti =
                has_in_idx
                    ? ctx.load_tile(
                          ext_idx, base + pos,
                          std::min<std::size_t>(simgpu::kWarpSize, end - pos))
                    : std::span<const std::uint32_t>{};
            warp.each([&](int lane) {
              const auto u = static_cast<std::size_t>(lane);
              valid[lane] = u < tv.size();
              if (valid[lane]) {
                values[lane] = tv[u];
                indices[lane] = has_in_idx
                                    ? ti[u]
                                    : static_cast<std::uint32_t>(pos + u);
              }
            });
          } else {
            warp.each([&](int lane) {
              const std::size_t i = pos + static_cast<std::size_t>(lane);
              valid[lane] = i < end;
              if (valid[lane]) {
                values[lane] = ctx.load(in, base + i);
                indices[lane] = has_in_idx ? ctx.load(ext_idx, base + i)
                                           : static_cast<std::uint32_t>(i);
              }
            });
          }
          eng.round(ctx, values, indices, valid);
        }
        eng.finalize(ctx);
      };
      if (warpfast) {
        if (shared_queue) {
          scan_warpfast(sq);
        } else {
          scan_warpfast(tq);
        }
      } else {
        ctx.for_each_warp([&](simgpu::Warp& warp) {
          const auto w = static_cast<std::size_t>(warp.index());
          if (shared_queue) {
            scan(warp, *sq[w]);
          } else {
            scan(warp, *tq[w]);
          }
        });
      }
      ctx.sync();

      // The shared-queue and thread-queue lists view different storage
      // types, so merge within each branch and emit through one generic
      // lambda.
      const auto emit = [&](auto& merged) {
        // Hoist the accessors: keys()/indices() materialize lazily on the
        // warpfast path, so per-element calls would re-check per element.
        const auto mk = merged.keys();
        const auto mi = merged.indices();
        if (direct_output) {
          for (std::size_t i = 0; i < k; ++i) {
            ctx.store(out_vals, prob * k + i, mk[i]);
            ctx.store(out_idx, prob * k + i, mi[i]);
          }
          return;
        }
        // Publish the block's sorted partial list (padded to cap).
        const std::size_t out_base =
            (prob * static_cast<std::size_t>(bpp) +
             static_cast<std::size_t>(bip)) *
            cap;
        for (std::size_t i = 0; i < cap; ++i) {
          const bool live = i < k;
          ctx.store(part_val, out_base + i,
                    live ? static_cast<T>(mk[i]) : sort_sentinel<T>());
          ctx.store(part_idx, out_base + i,
                    live ? static_cast<std::uint32_t>(mi[i])
                         : std::uint32_t{0});
        }
      };
      if (shared_queue) {
        auto& merged = sq[0]->list();
        for (int w = 1; w < num_warps; ++w) {
          merged.merge_list(ctx, sq[static_cast<std::size_t>(w)]->list());
        }
        emit(merged);
      } else {
        auto& merged = tq[0]->list();
        for (int w = 1; w < num_warps; ++w) {
          merged.merge_list(ctx, tq[static_cast<std::size_t>(w)]->list());
        }
        emit(merged);
      }
    });
  }
  if (direct_output) return;

  // ---- kernel 2: cross-block merge ---------------------------------------
  {
    // One wide block per problem: the real kernel tree-merges the partial
    // lists across its warps, so the launch shape (and hence the modeled
    // bandwidth share) uses a full 1024-thread block.
    simgpu::LaunchConfig cfg{"GridSelect_merge", static_cast<int>(batch),
                             1024, batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto prob = static_cast<std::size_t>(ctx.block_idx());
      auto acc_keys = ctx.shared<T>(cap, "gridselect merge acc keys");
      auto acc_idx = ctx.shared<std::uint32_t>(cap, "gridselect merge acc idx");
      auto tmp_keys = ctx.shared<T>(cap, "gridselect merge tmp keys");
      auto tmp_idx = ctx.shared<std::uint32_t>(cap, "gridselect merge tmp idx");
      // Pull one block's sorted partial list into shared memory, riding the
      // tile path for the device-memory side when it is enabled.
      const auto load_partial = [&](auto& dst_keys, auto& dst_idx,
                                    std::size_t src_base) {
        if (tile) {
          // Shared-memory destinations: write through the raw spans when
          // the tile gate makes that legal (shared accesses are never
          // charged, so the proxy fallback is charge-identical).
          const auto rk = raw_view(dst_keys);
          const auto ri = raw_view(dst_idx);
          std::size_t i = 0;
          while (i < cap) {
            const std::size_t c = std::min(simgpu::kTileElems, cap - i);
            const std::span<const T> tk =
                ctx.load_tile(part_val, src_base + i, c);
            const std::span<const std::uint32_t> tix =
                ctx.load_tile(part_idx, src_base + i, c);
            if (!rk.empty() && !ri.empty()) {
              std::copy(tk.begin(), tk.end(),
                        rk.begin() + static_cast<std::ptrdiff_t>(i));
              std::copy(tix.begin(), tix.end(),
                        ri.begin() + static_cast<std::ptrdiff_t>(i));
            } else {
              for (std::size_t u = 0; u < tk.size(); ++u) {
                dst_keys[i + u] = tk[u];
                dst_idx[i + u] = tix[u];
              }
            }
            i += c;
          }
        } else {
          for (std::size_t i = 0; i < cap; ++i) {
            dst_keys[i] = ctx.load(part_val, src_base + i);
            dst_idx[i] = ctx.load(part_idx, src_base + i);
          }
        }
      };
      load_partial(acc_keys, acc_idx,
                   prob * static_cast<std::size_t>(bpp) * cap);
      for (int b = 1; b < bpp; ++b) {
        const std::size_t src_base =
            (prob * static_cast<std::size_t>(bpp) +
             static_cast<std::size_t>(b)) *
            cap;
        load_partial(tmp_keys, tmp_idx, src_base);
        merge_prune(ctx, acc_keys, acc_idx, tmp_keys, tmp_idx);
      }
      for (std::size_t i = 0; i < k; ++i) {
        ctx.store(out_vals, prob * k + i, acc_keys[i]);
        ctx.store(out_idx, prob * k + i, acc_idx[i]);
      }
    });
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void grid_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                 std::size_t batch, std::size_t n, std::size_t k,
                 simgpu::DeviceBuffer<T> out_vals,
                 simgpu::DeviceBuffer<std::uint32_t> out_idx,
                 const GridSelectOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      grid_select_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  grid_select_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
