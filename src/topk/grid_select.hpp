#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/partial_sort_common.hpp"
#include "topk/warp_select.hpp"

namespace topk {

/// Options for GridSelect (paper §4).
struct GridSelectOptions {
  int warps_per_block = 8;
  std::size_t items_per_block = 16 * 1024;
  /// false reproduces the Fig. 11 ablation: per-thread register queues
  /// (BlockSelect-style) inside the multi-block structure.
  bool shared_queue = true;
  /// Optional input indices (size batch*n), as in RAFT's select_k: result
  /// indices are taken from here instead of input positions.
  simgpu::DeviceBuffer<std::uint32_t> in_idx{};
};

/// One warp's GridSelect state: a single 32-entry *shared-memory* queue with
/// parallel two-step insertion (paper Fig. 5) in front of a sorted top-K
/// list.  Compared with per-thread register queues this reduces register
/// pressure and calls the expensive sort+merge only when the queue is
/// actually full.
///
/// This class is also the paper's "process data on-the-fly" device-function
/// building block: any kernel can instantiate it and push values as it
/// produces them (see examples/streaming_topk.cpp).
template <typename T>
class SharedQueueEngine {
 public:
  /// TopkList view over the engine's shared-memory storage.
  using SharedList =
      TopkList<T, simgpu::SharedSpan<T>, simgpu::SharedSpan<std::uint32_t>>;

  SharedQueueEngine(simgpu::BlockCtx& ctx, std::size_t k)
      : q_keys_(ctx.shared<T>(simgpu::kWarpSize, "gridselect queue keys")),
        q_idx_(ctx.shared<std::uint32_t>(simgpu::kWarpSize,
                                         "gridselect queue idx")),
        list_keys_(ctx.shared<T>(next_pow2(k), "gridselect list keys")),
        list_idx_(ctx.shared<std::uint32_t>(next_pow2(k),
                                            "gridselect list idx")),
        list_(list_keys_, list_idx_, k) {}

  [[nodiscard]] T kth() const { return list_.kth(); }

  /// Process one warp-wide round of up to 32 loaded elements with the
  /// parallel two-step insertion of Fig. 5.
  void round(simgpu::BlockCtx& ctx, const T* values,
             const std::uint32_t* indices, const bool* valid) {
    const T threshold = list_.kth();
    const std::uint32_t mask = simgpu::Warp::ballot([&](int lane) {
      return valid[lane] && values[lane] < threshold;
    });
    ctx.ops(simgpu::kWarpSize + 1);  // compare per lane + ballot
    if (mask == 0) return;

    const std::size_t incoming = static_cast<std::size_t>(simgpu::Warp::popc(mask));
    // Step 1: lanes whose storing position fits insert immediately.
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      if (!((mask >> lane) & 1u)) continue;
      const std::size_t pos =
          q_count_ + static_cast<std::size_t>(simgpu::Warp::rank_below(mask, lane));
      if (pos < simgpu::kWarpSize) {
        q_keys_[pos] = values[lane];
        q_idx_[pos] = indices[lane];
      }
    }
    ctx.ops(incoming);
    const std::size_t total = q_count_ + incoming;
    if (total < simgpu::kWarpSize) {
      q_count_ = total;
      return;
    }
    // Queue full: sort + merge, clear, then step 2 inserts the overflow.
    flush(ctx, simgpu::kWarpSize);
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      if (!((mask >> lane) & 1u)) continue;
      const std::size_t pos =
          q_count_overflow_base_ +
          static_cast<std::size_t>(simgpu::Warp::rank_below(mask, lane));
      if (pos >= simgpu::kWarpSize) {
        q_keys_[pos - simgpu::kWarpSize] = values[lane];
        q_idx_[pos - simgpu::kWarpSize] = indices[lane];
      }
    }
    ctx.ops(incoming);
    q_count_ = total - simgpu::kWarpSize;
  }

  /// Drain whatever is queued into the list.
  void finalize(simgpu::BlockCtx& ctx) {
    if (q_count_ > 0) flush(ctx, q_count_);
  }

  [[nodiscard]] SharedList& list() { return list_; }

 private:
  void flush(simgpu::BlockCtx& ctx, std::size_t count) {
    q_count_overflow_base_ = q_count_;
    list_.merge(ctx, q_keys_, q_idx_, count);
    q_count_ = 0;
  }

  simgpu::SharedSpan<T> q_keys_;
  simgpu::SharedSpan<std::uint32_t> q_idx_;
  simgpu::SharedSpan<T> list_keys_;
  simgpu::SharedSpan<std::uint32_t> list_idx_;
  SharedList list_;
  std::size_t q_count_ = 0;
  std::size_t q_count_overflow_base_ = 0;
};

/// GridSelect (paper §4): WarpSelect with (a) a shared-memory queue with
/// parallel two-step insertion and (b) a multi-block launch so the whole
/// device participates, followed by a cross-block merge kernel.
template <typename T>
void grid_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                 std::size_t batch, std::size_t n, std::size_t k,
                 simgpu::DeviceBuffer<T> out_vals,
                 simgpu::DeviceBuffer<std::uint32_t> out_idx,
                 const GridSelectOptions& opt = {}) {
  validate_problem(n, k, batch);
  if (k > kMaxSelectionK) {
    throw std::invalid_argument("grid_select: k exceeds the " +
                                std::to_string(kMaxSelectionK) + " limit");
  }
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("grid_select: buffer too small");
  }

  const std::size_t cap = next_pow2(k);
  // Shrink the block until the per-warp queue + list state fits the
  // device's shared memory (large K on small-shared-memory devices like
  // the A10 runs with fewer warps per block).
  int num_warps = opt.warps_per_block;
  const std::size_t per_warp_shared =
      (simgpu::kWarpSize + cap) * (sizeof(T) + sizeof(std::uint32_t));
  while (num_warps > 1 && static_cast<std::size_t>(num_warps) *
                                  per_warp_shared >
                              dev.spec().shared_mem_per_block) {
    num_warps /= 2;
  }
  if (static_cast<std::size_t>(num_warps) * per_warp_shared >
      dev.spec().shared_mem_per_block) {
    throw std::invalid_argument(
        "grid_select: k too large for this device's shared memory");
  }
  const GridShape shape = make_grid(batch, n, dev.spec(),
                                    num_warps * simgpu::kWarpSize,
                                    opt.items_per_block);
  const int bpp = shape.blocks_per_problem;
  const bool shared_queue = opt.shared_queue;
  // Captured at launch time: each warp round loads one contiguous 32-wide
  // tile instead of 32 scalar loads when the fast path is on.
  const bool tile = simgpu::tile_path_enabled();

  const bool has_in_idx = !opt.in_idx.empty();
  if (has_in_idx && opt.in_idx.size() < batch * n) {
    throw std::invalid_argument("grid_select: in_idx too small");
  }
  const auto ext_idx = opt.in_idx;

  simgpu::ScopedWorkspace ws(dev);
  // With a single block per problem no cross-block merge is needed: the
  // partial kernel writes the final results directly (this is the regime
  // where GridSelect degenerates to a BlockSelect-shaped launch).
  const bool direct_output = (bpp == 1);
  simgpu::DeviceBuffer<T> part_val;
  simgpu::DeviceBuffer<std::uint32_t> part_idx;
  if (!direct_output) {
    part_val = dev.alloc<T>(batch * static_cast<std::size_t>(bpp) * cap,
                            "gridselect partial vals");
    part_idx = dev.alloc<std::uint32_t>(
        batch * static_cast<std::size_t>(bpp) * cap, "gridselect partial idx");
  }

  // ---- kernel 1: per-block partial selection ----------------------------
  {
    simgpu::LaunchConfig cfg{shared_queue ? "GridSelect_partial"
                                          : "GridSelect_partial_threadqueue",
                             shape.total_blocks(), shape.block_threads};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const std::size_t prob = shape.problem_of(ctx.block_idx());
      const int bip = shape.block_in_problem(ctx.block_idx());
      const auto [begin, end] = block_chunk(n, bpp, bip);
      const std::size_t base = prob * n;

      // One engine per warp; shared-queue engines allocate from block shared
      // memory, the thread-queue variant keeps queues in registers.
      std::vector<std::unique_ptr<SharedQueueEngine<T>>> sq;
      std::vector<std::unique_ptr<faiss_detail::WarpSelectEngine<T>>> tq;
      for (int w = 0; w < num_warps; ++w) {
        if (shared_queue) {
          sq.push_back(std::make_unique<SharedQueueEngine<T>>(ctx, k));
        } else {
          tq.push_back(
              std::make_unique<faiss_detail::WarpSelectEngine<T>>(ctx, k));
        }
      }

      const std::size_t stride =
          static_cast<std::size_t>(num_warps) * simgpu::kWarpSize;
      ctx.for_each_warp([&](simgpu::Warp& warp) {
        T values[simgpu::kWarpSize];
        std::uint32_t indices[simgpu::kWarpSize];
        bool valid[simgpu::kWarpSize];
        const std::size_t warp_off =
            static_cast<std::size_t>(warp.index()) * simgpu::kWarpSize;
        for (std::size_t pos = begin + warp_off; pos < end; pos += stride) {
          if (tile) {
            const std::size_t c =
                std::min<std::size_t>(simgpu::kWarpSize, end - pos);
            const std::span<const T> tv = ctx.load_tile(in, base + pos, c);
            const std::span<const std::uint32_t> ti =
                has_in_idx ? ctx.load_tile(ext_idx, base + pos, c)
                           : std::span<const std::uint32_t>{};
            warp.each([&](int lane) {
              const auto u = static_cast<std::size_t>(lane);
              valid[lane] = u < tv.size();
              if (valid[lane]) {
                values[lane] = tv[u];
                indices[lane] = has_in_idx
                                    ? ti[u]
                                    : static_cast<std::uint32_t>(pos + u);
              }
            });
          } else {
            warp.each([&](int lane) {
              const std::size_t i = pos + static_cast<std::size_t>(lane);
              valid[lane] = i < end;
              if (valid[lane]) {
                values[lane] = ctx.load(in, base + i);
                indices[lane] = has_in_idx ? ctx.load(ext_idx, base + i)
                                           : static_cast<std::uint32_t>(i);
              }
            });
          }
          if (shared_queue) {
            sq[static_cast<std::size_t>(warp.index())]->round(ctx, values,
                                                              indices, valid);
          } else {
            tq[static_cast<std::size_t>(warp.index())]->round(ctx, values,
                                                              indices, valid);
          }
        }
        if (shared_queue) {
          sq[static_cast<std::size_t>(warp.index())]->finalize(ctx);
        } else {
          tq[static_cast<std::size_t>(warp.index())]->flush(ctx);
        }
      });
      ctx.sync();

      // The shared-queue and thread-queue lists view different storage
      // types, so merge within each branch and emit through one generic
      // lambda.
      const auto emit = [&](auto& merged) {
        if (direct_output) {
          for (std::size_t i = 0; i < k; ++i) {
            ctx.store(out_vals, prob * k + i, merged.keys()[i]);
            ctx.store(out_idx, prob * k + i, merged.indices()[i]);
          }
          return;
        }
        // Publish the block's sorted partial list (padded to cap).
        const std::size_t out_base =
            (prob * static_cast<std::size_t>(bpp) +
             static_cast<std::size_t>(bip)) *
            cap;
        for (std::size_t i = 0; i < cap; ++i) {
          const bool live = i < k;
          ctx.store(part_val, out_base + i,
                    live ? static_cast<T>(merged.keys()[i])
                         : sort_sentinel<T>());
          ctx.store(part_idx, out_base + i,
                    live ? static_cast<std::uint32_t>(merged.indices()[i])
                         : std::uint32_t{0});
        }
      };
      if (shared_queue) {
        auto& merged = sq[0]->list();
        for (int w = 1; w < num_warps; ++w) {
          merged.merge_list(ctx, sq[static_cast<std::size_t>(w)]->list());
        }
        emit(merged);
      } else {
        auto& merged = tq[0]->list();
        for (int w = 1; w < num_warps; ++w) {
          merged.merge_list(ctx, tq[static_cast<std::size_t>(w)]->list());
        }
        emit(merged);
      }
    });
  }
  if (direct_output) return;

  // ---- kernel 2: cross-block merge ---------------------------------------
  {
    // One wide block per problem: the real kernel tree-merges the partial
    // lists across its warps, so the launch shape (and hence the modeled
    // bandwidth share) uses a full 1024-thread block.
    simgpu::LaunchConfig cfg{"GridSelect_merge", static_cast<int>(batch),
                             1024};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto prob = static_cast<std::size_t>(ctx.block_idx());
      auto acc_keys = ctx.shared<T>(cap, "gridselect merge acc keys");
      auto acc_idx = ctx.shared<std::uint32_t>(cap, "gridselect merge acc idx");
      auto tmp_keys = ctx.shared<T>(cap, "gridselect merge tmp keys");
      auto tmp_idx = ctx.shared<std::uint32_t>(cap, "gridselect merge tmp idx");
      // Pull one block's sorted partial list into shared memory, riding the
      // tile path for the device-memory side when it is enabled.
      const auto load_partial = [&](auto& dst_keys, auto& dst_idx,
                                    std::size_t src_base) {
        if (tile) {
          std::size_t i = 0;
          while (i < cap) {
            const std::size_t c = std::min(simgpu::kTileElems, cap - i);
            const std::span<const T> tk =
                ctx.load_tile(part_val, src_base + i, c);
            const std::span<const std::uint32_t> tix =
                ctx.load_tile(part_idx, src_base + i, c);
            for (std::size_t u = 0; u < tk.size(); ++u) {
              dst_keys[i + u] = tk[u];
              dst_idx[i + u] = tix[u];
            }
            i += c;
          }
        } else {
          for (std::size_t i = 0; i < cap; ++i) {
            dst_keys[i] = ctx.load(part_val, src_base + i);
            dst_idx[i] = ctx.load(part_idx, src_base + i);
          }
        }
      };
      load_partial(acc_keys, acc_idx,
                   prob * static_cast<std::size_t>(bpp) * cap);
      for (int b = 1; b < bpp; ++b) {
        const std::size_t src_base =
            (prob * static_cast<std::size_t>(bpp) +
             static_cast<std::size_t>(b)) *
            cap;
        load_partial(tmp_keys, tmp_idx, src_base);
        merge_prune(ctx, acc_keys, acc_idx, tmp_keys, tmp_idx);
      }
      for (std::size_t i = 0; i < k; ++i) {
        ctx.store(out_vals, prob * k + i, acc_keys[i]);
        ctx.store(out_idx, prob * k + i, acc_idx[i]);
      }
    });
  }
}

}  // namespace topk
