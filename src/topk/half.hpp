#pragma once

#include <bit>
#include <cstdint>

#include "topk/radix_traits.hpp"

namespace topk {

/// Minimal IEEE-754 binary16 storage type, enough to run radix selection on
/// half-precision keys (RAFT's select_k supports __half; deep-learning
/// scores are commonly fp16).  Conversion uses round-to-nearest-even;
/// comparisons go through float, which is exact for binary16 values.
class half {
 public:
  half() = default;

  explicit half(float f) : bits_(float_to_half_bits(f)) {}

  static half from_bits(std::uint16_t bits) {
    half h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] std::uint16_t bits() const { return bits_; }

  explicit operator float() const { return half_bits_to_float(bits_); }

  friend bool operator<(half a, half b) {
    return static_cast<float>(a) < static_cast<float>(b);
  }
  friend bool operator==(half a, half b) {
    return static_cast<float>(a) == static_cast<float>(b);
  }

  static std::uint16_t float_to_half_bits(float f) {
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFF) - 127;
    std::uint32_t mant = x & 0x7FFFFFu;

    if (exp == 128) {  // inf / NaN
      return static_cast<std::uint16_t>(sign | 0x7C00u |
                                        (mant != 0 ? 0x200u : 0u));
    }
    if (exp > 15) {  // overflow -> inf
      return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    if (exp >= -14) {  // normal range
      // Round mantissa from 23 to 10 bits, to nearest even.
      std::uint32_t half_mant = mant >> 13;
      const std::uint32_t rest = mant & 0x1FFFu;
      if (rest > 0x1000u || (rest == 0x1000u && (half_mant & 1u))) {
        ++half_mant;
      }
      std::uint32_t half_exp = static_cast<std::uint32_t>(exp + 15);
      if (half_mant == 0x400u) {  // mantissa carry
        half_mant = 0;
        ++half_exp;
        if (half_exp >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);
      }
      return static_cast<std::uint16_t>(sign | (half_exp << 10) | half_mant);
    }
    if (exp >= -24) {  // subnormal half: value = m * 2^-24, m in [1, 1023]
      mant |= 0x800000u;  // implicit leading bit -> 24-bit mantissa
      const int shift = -exp - 1;  // exp=-24 -> 23, exp=-15 -> 14
      std::uint32_t half_mant = mant >> shift;
      const std::uint32_t rest = mant & ((1u << shift) - 1u);
      const std::uint32_t halfway = 1u << (shift - 1);
      if (rest > halfway || (rest == halfway && (half_mant & 1u))) {
        ++half_mant;
      }
      return static_cast<std::uint16_t>(sign | half_mant);
    }
    return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
  }

  static float half_bits_to_float(std::uint16_t h) {
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    const std::uint32_t mant = h & 0x3FFu;
    std::uint32_t out;
    if (exp == 0x1F) {  // inf / NaN
      out = sign | 0x7F800000u | (mant << 13);
    } else if (exp != 0) {  // normal
      out = sign | ((exp + 112) << 23) | (mant << 13);
    } else if (mant != 0) {  // subnormal: renormalize
      std::uint32_t m = mant;
      std::int32_t e = -1;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      out = sign | static_cast<std::uint32_t>((113 - e - 1) << 23) |
            ((m & 0x3FFu) << 13);
    } else {  // signed zero
      out = sign;
    }
    return std::bit_cast<float>(out);
  }

 private:
  std::uint16_t bits_ = 0;
};

/// Radix traits for half: the same sign-flip trick as float on 16 bits;
/// with 11-bit digits AIR Top-K finishes half keys in two passes.
template <>
struct RadixTraits<half> {
  using Bits = std::uint16_t;
  static constexpr int kBits = 16;

  static Bits to_radix(half v) {
    const std::uint16_t b = v.bits();
    return (b & 0x8000u) ? static_cast<Bits>(~b)
                         : static_cast<Bits>(b | 0x8000u);
  }
  static half from_radix(Bits b) {
    const std::uint16_t raw =
        (b & 0x8000u) ? static_cast<std::uint16_t>(b & 0x7FFFu)
                      : static_cast<std::uint16_t>(~b);
    return half::from_bits(raw);
  }
};

}  // namespace topk
