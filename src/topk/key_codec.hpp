#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/topk.hpp"
#include "topk/bf16.hpp"
#include "topk/half.hpp"
#include "topk/radix_traits.hpp"

namespace topk {

inline KeyView KeyView::of(std::span<const half> s) {
  return {KeyType::kF16, s.data(), s.size()};
}
inline KeyView KeyView::of(std::span<const bf16> s) {
  return {KeyType::kBF16, s.data(), s.size()};
}

/// Carrier codec: every KeyType executes on one of two carrier element
/// types (float or uint32_t), chosen so carrier ordering equals key
/// ordering and the round trip is exact.
///
///  - f32:      identity on the float carrier.
///  - f16/bf16: the 16-bit radix ordinal, cast to float.  Ordinals live in
///    [0, 65536) so the cast is exact, and the ordinal order is the total
///    key order (NaNs by bit pattern, -0 below +0) — which is what lets
///    comparison-based algorithms run 16-bit floats without NaN hazards.
///  - i32/u32:  the 32-bit radix ordinal on the uint32_t carrier (i32 flips
///    the sign bit; u32 is the identity).
namespace codec {

[[nodiscard]] constexpr bool uses_u32_carrier(KeyType t) {
  return key_type_is_integer(t);
}

// --- scalar encode to the carrier domain ---

inline float encode_f16(half h) {
  return static_cast<float>(RadixTraits<half>::to_radix(h));
}
inline float encode_bf16(bf16 h) {
  return static_cast<float>(RadixTraits<bf16>::to_radix(h));
}
inline std::uint32_t encode_i32(std::int32_t v) {
  return RadixTraits<std::int32_t>::to_radix(v);
}
inline std::uint32_t encode_u32(std::uint32_t v) { return v; }

// --- scalar decode from the carrier domain ---

inline half decode_f16(float carrier) {
  return RadixTraits<half>::from_radix(
      static_cast<std::uint16_t>(carrier));
}
inline bf16 decode_bf16(float carrier) {
  return RadixTraits<bf16>::from_radix(
      static_cast<std::uint16_t>(carrier));
}
inline std::int32_t decode_i32(std::uint32_t carrier) {
  return RadixTraits<std::int32_t>::from_radix(carrier);
}
inline std::uint32_t decode_u32(std::uint32_t carrier) { return carrier; }

// --- bulk encode ---

/// Encode a float-family KeyView into float carriers.  `dst` must hold
/// keys.size elements.  Throws std::invalid_argument on an integer dtype.
inline void encode_keys_f32(KeyView keys, float* dst) {
  switch (keys.dtype) {
    case KeyType::kF32: {
      const auto* src = static_cast<const float*>(keys.data);
      for (std::size_t i = 0; i < keys.size; ++i) dst[i] = src[i];
      return;
    }
    case KeyType::kF16: {
      const auto* src = static_cast<const half*>(keys.data);
      for (std::size_t i = 0; i < keys.size; ++i) dst[i] = encode_f16(src[i]);
      return;
    }
    case KeyType::kBF16: {
      const auto* src = static_cast<const bf16*>(keys.data);
      for (std::size_t i = 0; i < keys.size; ++i) {
        dst[i] = encode_bf16(src[i]);
      }
      return;
    }
    default:
      throw std::invalid_argument(
          "encode_keys_f32: integer key types run on the u32 carrier");
  }
}

/// Encode an integer KeyView into uint32 carriers (radix ordinals).
inline void encode_keys_u32(KeyView keys, std::uint32_t* dst) {
  switch (keys.dtype) {
    case KeyType::kI32: {
      const auto* src = static_cast<const std::int32_t*>(keys.data);
      for (std::size_t i = 0; i < keys.size; ++i) dst[i] = encode_i32(src[i]);
      return;
    }
    case KeyType::kU32: {
      const auto* src = static_cast<const std::uint32_t*>(keys.data);
      for (std::size_t i = 0; i < keys.size; ++i) dst[i] = src[i];
      return;
    }
    default:
      throw std::invalid_argument(
          "encode_keys_u32: float-family key types run on the f32 carrier");
  }
}

/// Decode a result whose `values` currently hold f32-carrier values into
/// user-facing form: for f16/bf16, `values` becomes the exact float value of
/// each key and `values_bits` its 16-bit storage pattern (zero-extended).
/// No-op for f32.
inline void decode_result_f32(KeyType dtype, SelectResult& r) {
  r.dtype = dtype;
  if (dtype == KeyType::kF32) return;
  r.values_bits.resize(r.values.size());
  for (std::size_t i = 0; i < r.values.size(); ++i) {
    if (dtype == KeyType::kF16) {
      const half h = decode_f16(r.values[i]);
      r.values_bits[i] = h.bits();
      r.values[i] = static_cast<float>(h);
    } else {
      const bf16 h = decode_bf16(r.values[i]);
      r.values_bits[i] = h.bits();
      r.values[i] = static_cast<float>(h);
    }
  }
}

/// Decode a u32-carrier result: `values_bits` gets the authoritative raw
/// storage bits (two's complement for i32), `values` a lossy float
/// rendering for display/verification convenience.
inline void decode_result_u32(KeyType dtype,
                              std::span<const std::uint32_t> carrier_vals,
                              SelectResult& r) {
  r.dtype = dtype;
  r.values.resize(carrier_vals.size());
  r.values_bits.resize(carrier_vals.size());
  for (std::size_t i = 0; i < carrier_vals.size(); ++i) {
    if (dtype == KeyType::kI32) {
      const std::int32_t v = decode_i32(carrier_vals[i]);
      r.values_bits[i] = std::bit_cast<std::uint32_t>(v);
      r.values[i] = static_cast<float>(v);
    } else {
      const std::uint32_t v = carrier_vals[i];
      r.values_bits[i] = v;
      r.values[i] = static_cast<float>(v);
    }
  }
}

/// Read one payload entry, widened to u64.  Precondition: p.present() and
/// i < p.size.
[[nodiscard]] inline std::uint64_t payload_at(PayloadView p, std::size_t i) {
  return p.kind == PayloadKind::kU32
             ? static_cast<const std::uint32_t*>(p.data)[i]
             : static_cast<const std::uint64_t*>(p.data)[i];
}

/// Copy/widen a payload view into the uniform u64 representation.
inline std::vector<std::uint64_t> widen_payload(PayloadView p) {
  std::vector<std::uint64_t> out(p.size);
  if (p.kind == PayloadKind::kU32) {
    const auto* src = static_cast<const std::uint32_t*>(p.data);
    for (std::size_t i = 0; i < p.size; ++i) out[i] = src[i];
  } else if (p.kind == PayloadKind::kU64) {
    const auto* src = static_cast<const std::uint64_t*>(p.data);
    for (std::size_t i = 0; i < p.size; ++i) out[i] = src[i];
  }
  return out;
}

}  // namespace codec
}  // namespace topk
