#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "simgpu/kernel.hpp"
#include "simgpu/scratch_alloc.hpp"
#include "simgpu/simd.hpp"
#include "topk/bitonic.hpp"


namespace topk {

/// Hard K limits of the partial-sorting family (paper §2.2): the selection
/// structures live in registers/shared memory, which bounds K.
inline constexpr std::size_t kMaxSelectionK = 2048;   // WarpSelect family
inline constexpr std::size_t kMaxBitonicTopkK = 256;  // Bitonic Top-K

/// Authoritative lane-op cost of one candidate-free warp round, shared by
/// the exact `round()` implementations and the warpfast bulk-charging scan:
/// every lane compares its element against the selection threshold
/// (kWarpSize ops) and the warp votes once (ballot in SharedQueueEngine,
/// the queue-full vote in WarpSelectEngine — which cannot fire on a round
/// that inserted nothing, since flushes reset the queue counts).  Any round
/// with zero candidates therefore costs exactly this much in BOTH engines,
/// which is what lets the fast path skip it and stay bit-identical.
inline constexpr std::uint64_t kEmptyRoundLaneOps = simgpu::kWarpSize + 1;

/// True when (key, index) pairs of key type T can be packed into one
/// uint64 whose integer order is (key asc, index asc) — see pack_key_idx.
/// The warpfast fast path uses this to move candidates through single
/// 8-byte loads/stores/compares end to end (extraction buffer, staging
/// queue, selection heap).
template <typename T>
inline constexpr bool kPackableKey = sizeof(T) == 4 && std::is_arithmetic_v<T>;

/// Monotone map from key to uint32: ord(a) < ord(b)  iff  a < b.  The
/// float variant is the classic sign-flip trick; NaNs never reach the
/// packed structures (every offered candidate passed a `<` threshold
/// test first).
template <typename T>
  requires kPackableKey<T>
[[nodiscard]] inline std::uint32_t key_to_ord(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    const auto b = std::bit_cast<std::uint32_t>(v);
    return (b & 0x80000000u) ? ~b : (b | 0x80000000u);
  } else if constexpr (std::is_signed_v<T>) {
    return std::bit_cast<std::uint32_t>(v) ^ 0x80000000u;
  } else {
    return static_cast<std::uint32_t>(v);
  }
}

template <typename T>
  requires kPackableKey<T>
[[nodiscard]] inline T ord_to_key(std::uint32_t u) {
  if constexpr (std::is_floating_point_v<T>) {
    const std::uint32_t b = (u & 0x80000000u) ? (u & 0x7FFFFFFFu) : ~u;
    return std::bit_cast<T>(b);
  } else if constexpr (std::is_signed_v<T>) {
    return std::bit_cast<T>(u ^ 0x80000000u);
  } else {
    return static_cast<T>(u);
  }
}

/// (key, index) -> uint64 ordered by (key asc, index asc).  No valid pair
/// packs to 0 (ordinal 0 is not in key_to_ord's image for non-NaN keys),
/// which the heap exploits for its pad entries.
template <typename T>
  requires kPackableKey<T>
[[nodiscard]] inline std::uint64_t pack_key_idx(T v, std::uint32_t index) {
  return (static_cast<std::uint64_t>(key_to_ord<T>(v)) << 32) | index;
}

namespace detail {

/// Branchless sort of 32 uint64s in place, used to sort one staged
/// candidate batch before the tournament-free batch merge in TopkList.
/// Data-independent cost and far cheaper than 32 serial heap sifts; the
/// implementation (simgpu::simd) is an AVX-512 bitonic network when the
/// host supports it, else register-resident sort8 networks plus branchless
/// binary merges.
inline void sort32_packed(std::uint64_t* v) { simgpu::simd::sort32_u64(v); }

}  // namespace detail

/// A sorted top-K list with merge-and-prune updates, the common core of
/// WarpSelect, BlockSelect, GridSelect and Bitonic Top-K.  `keys`/`idx` are
/// caller-provided storage of `capacity()` elements (registers for the Faiss
/// selections, shared memory for GridSelect), kept ascending-sorted and
/// padded with the +inf sentinel.  The storage view types are template
/// parameters so the list works over plain spans (register-resident state)
/// and simgpu::SharedSpan (sanitizer-shadowed shared memory) alike.
///
/// All compare-exchange work is charged to the BlockCtx as lane ops; the
/// storage itself is on-chip and therefore free of device-memory traffic,
/// exactly like the real kernels.
template <typename T, typename KeyStore = std::span<T>,
          typename IdxStore = std::span<std::uint32_t>>
class TopkList {
 public:
  TopkList(KeyStore keys, IdxStore idx, std::size_t k)
      : keys_(keys), idx_(idx), k_(k) {
    if (keys_.size() != idx_.size() || keys_.size() < k) {
      throw std::invalid_argument("TopkList: bad storage");
    }
    cap_ = next_pow2(k);
    if (keys_.size() < cap_) {
      throw std::invalid_argument("TopkList: storage must hold next_pow2(k)");
    }
    for (std::size_t i = 0; i < cap_; ++i) {
      keys_[i] = sort_sentinel<T>();
      idx_[i] = 0;
    }
  }

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  /// Current K-th smallest value seen (the selection threshold).
  [[nodiscard]] T kth() const {
    if constexpr (kPackedHeap) {
      if (!tsorted_.empty()) {
        return ord_to_key<T>(
            static_cast<std::uint32_t>(tsorted_[k_ - 1] >> 32));
      }
    } else {
      if (!hkeys_.empty()) return hkeys_[0];
    }
    return keys_[k_ - 1];
  }

  /// Merge `count` candidate pairs into the list, keeping the smallest k.
  /// Requires `cand_keys.size() == cand_idx.size()` and both at least
  /// `count`.  Any indexable stores work (spans, vectors, SharedSpan).
  ///
  /// Under the warpfast gate (BlockCtx::warpfast_enabled) the merge takes
  /// the fast path: the exact network charges are applied in one bulk
  /// ctx.ops (the networks are data-oblivious, so the charge is a closed
  /// form of the lengths — see bitonic_sort_ops/merge_prune_ops) while the
  /// list content is maintained as a k-entry max-heap of the smallest pairs
  /// and materialized into sorted storage lazily.  The retained *value*
  /// multiset is identical to the network path; index choice can differ
  /// only between elements tying at the K-th value, which the result
  /// contract already leaves open (tile_invariance_test compares sorted
  /// values, verify_topk compares the value multiset).  The gate is
  /// constant for a block's lifetime, so a list never mixes the two
  /// representations.
  template <typename CandKeys, typename CandIdx>
  void merge(simgpu::BlockCtx& ctx, const CandKeys& cand_keys,
             const CandIdx& cand_idx, std::size_t count) {
    if (count == 0) return;
    if (ctx.warpfast_enabled()) {
      // Memoized: flushes almost always carry a full queue, so `count` is
      // nearly constant and the formula loops would otherwise run per
      // flush.
      if (count != fast_charge_count_) {
        const std::size_t q = next_pow2(count);
        fast_charge_count_ = count;
        fast_charge_ = bitonic_sort_ops(q) +
                       ((q + cap_ - 1) / cap_) * merge_prune_ops(cap_);
      }
      ctx.ops(fast_charge_);
      ensure_heap();
      if constexpr (kPackedHeap) {
        // Pack the candidates (through raw spans when the stores are
        // SharedSpan proxies; shared reads are never charged), sort, and
        // fold them in with one batch merge.
        pack_scratch_.resize(count);
        if constexpr (kProxyView<CandKeys> && kProxyView<CandIdx>) {
          const auto rk = raw_view(cand_keys);
          const auto ri = raw_view(cand_idx);
          if (!rk.empty() && !ri.empty()) {
            for (std::size_t i = 0; i < count; ++i) {
              pack_scratch_[i] = pack_key_idx<T>(rk[i], ri[i]);
            }
          } else {
            for (std::size_t i = 0; i < count; ++i) {
              pack_scratch_[i] = pack_key_idx<T>(cand_keys[i], cand_idx[i]);
            }
          }
        } else {
          for (std::size_t i = 0; i < count; ++i) {
            pack_scratch_[i] = pack_key_idx<T>(cand_keys[i], cand_idx[i]);
          }
        }
        std::sort(pack_scratch_.begin(), pack_scratch_.end());
        sorted_batch_merge(pack_scratch_.data(), count);
      } else {
        if constexpr (kProxyView<CandKeys> && kProxyView<CandIdx>) {
          const auto rk = raw_view(cand_keys);
          const auto ri = raw_view(cand_idx);
          if (!rk.empty() && !ri.empty()) {
            for (std::size_t i = 0; i < count; ++i) heap_offer(rk[i], ri[i]);
            storage_dirty_ = true;
            return;
          }
        }
        for (std::size_t i = 0; i < count; ++i) {
          heap_offer(cand_keys[i], cand_idx[i]);
        }
      }
      storage_dirty_ = true;
      return;
    }
    // Process candidates in sorted chunks of the list capacity so the
    // merge network size matches the real kernels' fixed-size networks.
    const std::size_t q = next_pow2(count);
    scratch_keys_.assign(q, sort_sentinel<T>());
    scratch_idx_.assign(q, 0);
    // The candidate stores may be SharedSpans; copy through raw pointers
    // when the tile path makes that legal (shared-memory reads are never
    // charged, so the charges below are unaffected).
    if constexpr (kProxyView<CandKeys> && kProxyView<CandIdx>) {
      const auto rk = raw_view(cand_keys);
      const auto ri = raw_view(cand_idx);
      if (!rk.empty() && !ri.empty()) {
        std::copy_n(rk.begin(), count, scratch_keys_.begin());
        std::copy_n(ri.begin(), count, scratch_idx_.begin());
      } else {
        for (std::size_t i = 0; i < count; ++i) {
          scratch_keys_[i] = cand_keys[i];
          scratch_idx_[i] = cand_idx[i];
        }
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        scratch_keys_[i] = cand_keys[i];
        scratch_idx_[i] = cand_idx[i];
      }
    }
    bitonic_sort<T>(ctx, scratch_keys_, scratch_idx_);
    for (std::size_t base = 0; base < q; base += cap_) {
      const std::size_t len = std::min(cap_, q - base);
      merge_sorted_chunk(ctx,
                         std::span<T>(scratch_keys_).subspan(base, len),
                         std::span<std::uint32_t>(scratch_idx_)
                             .subspan(base, len));
    }
  }

  /// Fast-path-only variant of merge() taking candidates already packed by
  /// pack_key_idx (the engines stage candidates packed so each one moves
  /// through a single 8-byte store/load/compare end to end).  Charges are
  /// identical to merge() over the same count; callers must be inside the
  /// warpfast gate — the exact network path has no packed form.
  void merge_packed(simgpu::BlockCtx& ctx, const std::uint64_t* cands,
                    std::size_t count)
    requires kPackableKey<T>
  {
    if (count == 0) return;
    if (count != fast_charge_count_) {
      const std::size_t q = next_pow2(count);
      fast_charge_count_ = count;
      fast_charge_ = bitonic_sort_ops(q) +
                     ((q + cap_ - 1) / cap_) * merge_prune_ops(cap_);
    }
    ctx.ops(fast_charge_);
    ensure_heap();
    if (count <= 16) {
      // The typical drain is well under half a queue's capacity, and the
      // charge above already prices the next_pow2(count) network — run the
      // matching half-width one instead of padding out a full sort32.
      std::uint64_t buf[16];
      std::size_t i = 0;
      for (; i < count; ++i) buf[i] = cands[i];
      for (; i < 16; ++i) buf[i] = ~std::uint64_t{0};
      simgpu::simd::sort16_u64(buf);
      sorted_batch_merge(buf, count);
    } else if (count <= 32) {
      // The hot flush shape: sort one staged batch with the fixed network
      // (+inf-max pads sort to the tail and sit beyond the merge's
      // candidate bound) and fold it in with one branchless merge pass.
      std::uint64_t buf[32];
      std::size_t i = 0;
      for (; i < count; ++i) buf[i] = cands[i];
      for (; i < 32; ++i) buf[i] = ~std::uint64_t{0};
      detail::sort32_packed(buf);
      sorted_batch_merge(buf, count);
    } else {
      pack_scratch_.assign(cands, cands + count);
      std::sort(pack_scratch_.begin(), pack_scratch_.end());
      sorted_batch_merge(pack_scratch_.data(), count);
    }
    storage_dirty_ = true;
  }

  /// Merge an already ascending-sorted chunk of at most capacity() pairs.
  /// The chunk is consumed (its storage is clobbered).
  template <SortableView ChunkKeys, SortableView ChunkIdx>
  void merge_sorted_chunk(simgpu::BlockCtx& ctx, ChunkKeys chunk_keys,
                          ChunkIdx chunk_idx) {
    const std::size_t len = chunk_keys.size();
    if (len == cap_) {
      merge_prune(ctx, keys_.subspan(0, cap_), idx_.subspan(0, cap_),
                  chunk_keys, chunk_idx);
      return;
    }
    // Short chunk: pad into a capacity-sized scratch and run the same
    // fixed-size network.
    pad_keys_.assign(cap_, sort_sentinel<T>());
    pad_idx_.assign(cap_, 0);
    for (std::size_t i = 0; i < len; ++i) {
      pad_keys_[i] = chunk_keys[i];
      pad_idx_[i] = chunk_idx[i];
    }
    merge_prune(ctx, keys_.subspan(0, cap_), idx_.subspan(0, cap_),
                std::span<T>(pad_keys_), std::span<std::uint32_t>(pad_idx_));
  }

  /// Merge another sorted TopkList of the same capacity into this one.
  template <typename KS2, typename IS2>
  void merge_list(simgpu::BlockCtx& ctx, TopkList<T, KS2, IS2>& other) {
    if (other.cap_ != cap_) {
      throw std::invalid_argument("TopkList::merge_list: capacity mismatch");
    }
    if (ctx.warpfast_enabled()) {
      // An element ranked <= k in the union is ranked <= k in its own
      // list, so merging the other list's k entries is enough; the charge
      // is the exact merge-prune network cost below.  (Sentinel entries
      // from a not-yet-full other list are pruned or kept exactly as the
      // exact path's sentinel padding would be.)
      ctx.ops(merge_prune_ops(cap_));
      ensure_heap();
      other.ensure_heap();
      if constexpr (kPackedHeap) {
        sorted_batch_merge(other.tsorted_.data(), other.k_);
      } else {
        for (std::size_t i = 0; i < other.k_; ++i) {
          heap_offer(other.hkeys_[i], other.hidx_[i]);
        }
      }
      storage_dirty_ = true;
      return;
    }
    merge_prune(ctx, keys_.subspan(0, cap_), idx_.subspan(0, cap_),
                other.keys_.subspan(0, cap_), other.idx_.subspan(0, cap_));
  }

  [[nodiscard]] KeyStore keys() const {
    if (storage_dirty_) materialize();
    return keys_.subspan(0, k_);
  }
  [[nodiscard]] IdxStore indices() const {
    if (storage_dirty_) materialize();
    return idx_.subspan(0, k_);
  }

 private:
  template <typename, typename, typename>
  friend class TopkList;

  /// 32-bit key types keep the fast-path selection state as a flat
  /// ascending-sorted array of packed (key, index) uint64s, updated one
  /// whole candidate batch at a time: sort the batch (branchless network),
  /// then one 256-step two-pointer merge keeps the k smallest of the
  /// union.  Unlike a per-candidate heap, the batch update has no serial
  /// dependent-address chain — the merge is a straight-line cmov loop —
  /// and exactness is only ever observed at batch boundaries (the
  /// selection threshold is read between flushes, never mid-flush).  A
  /// pleasant side effect: materialization is a plain unpack, the state is
  /// already sorted.  Wider key types use the generic struct-of-arrays
  /// 4-ary heap below.
  static constexpr bool kPackedHeap = kPackableKey<T>;

  /// Generic-heap pad value that can never win a max comparison nor be
  /// displaced by a real entry: -inf when it exists, else lowest().
  /// (lowest() alone would be wrong for floats: a real -inf key would rank
  /// below the pad and a sift could then drag the pad into the heap.)
  static constexpr T pad_key() {
    if constexpr (std::numeric_limits<T>::has_infinity) {
      return -std::numeric_limits<T>::infinity();
    } else {
      return std::numeric_limits<T>::lowest();
    }
  }

  /// Seed the fast-path state: k_ sentinel entries mirroring the storage
  /// fill in the constructor (same idx-0 padding the exact path reports
  /// when fewer than k candidates exist), so the threshold stays +inf and
  /// every early offer is accepted and replaces a sentinel — warm-up needs
  /// no special casing in either layout.  Tournament (packed): slots are
  /// padded to a multiple of 32.  Generic: a 4-ary max-heap (halved depth
  /// versus binary — the sift is a serial address-dependent chain, so
  /// depth is the dominant latency term) whose root is the threshold,
  /// with three pad entries at k_..k_+2 so the larger-child scan can read
  /// c..c+3 unconditionally.
  void ensure_heap() const {
    if constexpr (kPackedHeap) {
      if (!tsorted_.empty()) return;
      tsorted_.assign(k_, pack_key_idx<T>(sort_sentinel<T>(), 0));
      tscratch_.resize(k_);
      return;
    } else {
      if (!hkeys_.empty()) return;
      hkeys_.assign(k_ + 3, sort_sentinel<T>());
      hidx_.assign(k_ + 3, 0);
      for (std::size_t i = k_; i < k_ + 3; ++i) hkeys_[i] = pad_key();
      fill_ = 0;
    }
  }

  /// Replace the sorted state with the k smallest of (state ∪ candidates).
  /// `c` must be ascending-sorted with `count` live entries.  One forward
  /// merge pass into the double buffer — the 8-lane bitonic register
  /// merge when the host supports it, a branchless clamp-then-select
  /// two-pointer loop otherwise (see simgpu::simd::merge_sorted_u64).
  /// Equal packed entries are interchangeable (the index lives in the
  /// low bits), so the result does not depend on which body runs; ties
  /// on key alone resolve low-index-first, a choice the result contract
  /// leaves open.
  void sorted_batch_merge(const std::uint64_t* c, std::size_t count) const {
    simgpu::simd::merge_sorted_u64(tsorted_.data(), k_, c, count,
                                   tscratch_.data(), k_);
    tsorted_.swap(tscratch_);
  }

  /// Sift `v` down from `hole` to its resting place.  The child pick is
  /// branchless (data-dependent branches mispredict ~50% here and dominate
  /// the sift cost otherwise): the children are read into registers once
  /// and a cmov tree selects the max.
  void sift_hole(std::size_t hole, T v, std::uint32_t index) const
    requires(!kPackedHeap)
  {
    for (;;) {
      const std::size_t c = 4 * hole + 1;
      if (c >= k_) break;
      const T c0 = hkeys_[c];
      const T c1 = hkeys_[c + 1];
      const T c2 = hkeys_[c + 2];
      const T c3 = hkeys_[c + 3];
      const bool b1 = c0 < c1;
      const bool b2 = c2 < c3;
      const T v1 = b1 ? c1 : c0;
      const T v2 = b2 ? c3 : c2;
      const bool b3 = v1 < v2;
      const T vc = b3 ? v2 : v1;
      if (!(v < vc)) break;
      const std::size_t mc = b3 ? c + 2 + static_cast<std::size_t>(b2)
                                : c + static_cast<std::size_t>(b1);
      hkeys_[hole] = vc;
      hidx_[hole] = hidx_[mc];
      hole = mc;
    }
    hkeys_[hole] = v;
    hidx_[hole] = index;
  }

  /// Offer one candidate to the generic heap: replace-top + sift-down
  /// when it beats the threshold (strict `<` on the key, matching the
  /// exact path's rejection of ties).  Warm-up: while the threshold is
  /// still the sentinel every element is a candidate and would full-depth
  /// sift through an all-sentinel heap, so the first k_ offers just fill
  /// slots back-to-front (the root keeps the sentinel, i.e. kth() stays
  /// +inf exactly like the exact path's list) and one bottom-up build
  /// establishes the invariant.
  void heap_offer(T v, std::uint32_t index) const
    requires(!kPackedHeap)
  {
    {
      if (fill_ < k_) {
        const std::size_t at = k_ - 1 - fill_;
        hkeys_[at] = v;
        hidx_[at] = index;
        if (++fill_ == k_ && k_ > 1) {
          for (std::size_t i = (k_ - 2) / 4 + 1; i-- > 0;) {
            sift_hole(i, hkeys_[i], hidx_[i]);
          }
        }
        return;
      }
      if (!(v < hkeys_[0])) return;
      sift_hole(0, v, index);
    }
  }

  /// Write the heap contents through the sorted storage (ascending by
  /// value, index-tiebroken for determinism — exactly the packed uint64
  /// order).  Lazy: only runs when the sorted view is actually requested.
  void materialize() const {
    if constexpr (kPackedHeap) {
      // The packed state is kept sorted (ascending by key, then index),
      // so materialization is a straight unpack.
      for (std::size_t i = 0; i < k_; ++i) {
        keys_[i] = ord_to_key<T>(static_cast<std::uint32_t>(tsorted_[i] >> 32));
        idx_[i] = static_cast<std::uint32_t>(tsorted_[i]);
      }
    } else {
      sorted_scratch_.resize(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        sorted_scratch_[i] = {hkeys_[i], hidx_[i]};
      }
      std::sort(sorted_scratch_.begin(), sorted_scratch_.end(),
                [](const auto& a, const auto& b) {
                  if (a.first < b.first) return true;
                  if (b.first < a.first) return false;
                  return a.second < b.second;
                });
      for (std::size_t i = 0; i < k_; ++i) {
        keys_[i] = sorted_scratch_[i].first;
        idx_[i] = sorted_scratch_[i].second;
      }
    }
    storage_dirty_ = false;
  }

  KeyStore keys_;
  IdxStore idx_;
  std::size_t k_;
  std::size_t cap_ = 0;
  // Flush scratch: lives in registers/shared memory on the device, so it is
  // modeled as on-chip (ops only, no DRAM traffic).  All scratch vectors
  // draw from the per-thread freelist (simgpu::ScratchVec) so repeated
  // kernel executions perform no host allocations after warm-up — part of
  // the two-phase run() zero-allocation contract.
  simgpu::ScratchVec<T> scratch_keys_;
  simgpu::ScratchVec<std::uint32_t> scratch_idx_;
  simgpu::ScratchVec<T> pad_keys_;
  simgpu::ScratchVec<std::uint32_t> pad_idx_;
  // Warpfast fast-path state (see merge()); mutable because the lazy
  // materialization happens behind the const keys()/indices() accessors.
  // Exactly one of the sorted-array (tsorted_, tscratch_) / heap (hkeys_,
  // hidx_) layouts is used, per kPackedHeap.
  mutable simgpu::ScratchVec<std::uint64_t> tsorted_;
  mutable simgpu::ScratchVec<std::uint64_t> tscratch_;
  mutable simgpu::ScratchVec<std::uint64_t> pack_scratch_;
  mutable simgpu::ScratchVec<T> hkeys_;
  mutable simgpu::ScratchVec<std::uint32_t> hidx_;
  mutable simgpu::ScratchVec<std::pair<T, std::uint32_t>> sorted_scratch_;
  mutable std::size_t fill_ = 0;
  mutable bool storage_dirty_ = false;
  std::size_t fast_charge_count_ = static_cast<std::size_t>(-1);
  std::uint64_t fast_charge_ = 0;
};

/// Faiss-style thread-queue length for a given K (NumThreadQ in Faiss).
inline std::size_t thread_queue_len(std::size_t k) {
  if (k <= 32) return 2;
  if (k <= 128) return 3;
  if (k <= 256) return 4;
  if (k <= 1024) return 8;
  return 10;
}

}  // namespace topk
