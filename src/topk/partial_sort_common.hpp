#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "simgpu/kernel.hpp"
#include "topk/bitonic.hpp"

namespace topk {

/// Hard K limits of the partial-sorting family (paper §2.2): the selection
/// structures live in registers/shared memory, which bounds K.
inline constexpr std::size_t kMaxSelectionK = 2048;   // WarpSelect family
inline constexpr std::size_t kMaxBitonicTopkK = 256;  // Bitonic Top-K

/// A sorted top-K list with merge-and-prune updates, the common core of
/// WarpSelect, BlockSelect, GridSelect and Bitonic Top-K.  `keys`/`idx` are
/// caller-provided storage of `capacity()` elements (registers for the Faiss
/// selections, shared memory for GridSelect), kept ascending-sorted and
/// padded with the +inf sentinel.  The storage view types are template
/// parameters so the list works over plain spans (register-resident state)
/// and simgpu::SharedSpan (sanitizer-shadowed shared memory) alike.
///
/// All compare-exchange work is charged to the BlockCtx as lane ops; the
/// storage itself is on-chip and therefore free of device-memory traffic,
/// exactly like the real kernels.
template <typename T, typename KeyStore = std::span<T>,
          typename IdxStore = std::span<std::uint32_t>>
class TopkList {
 public:
  TopkList(KeyStore keys, IdxStore idx, std::size_t k)
      : keys_(keys), idx_(idx), k_(k) {
    if (keys_.size() != idx_.size() || keys_.size() < k) {
      throw std::invalid_argument("TopkList: bad storage");
    }
    cap_ = next_pow2(k);
    if (keys_.size() < cap_) {
      throw std::invalid_argument("TopkList: storage must hold next_pow2(k)");
    }
    for (std::size_t i = 0; i < cap_; ++i) {
      keys_[i] = sort_sentinel<T>();
      idx_[i] = 0;
    }
  }

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  /// Current K-th smallest value seen (the selection threshold).
  [[nodiscard]] T kth() const { return keys_[k_ - 1]; }

  /// Merge `count` candidate pairs into the list, keeping the smallest k.
  /// Requires `cand_keys.size() == cand_idx.size()` and both at least
  /// `count`.  Any indexable stores work (spans, vectors, SharedSpan).
  template <typename CandKeys, typename CandIdx>
  void merge(simgpu::BlockCtx& ctx, const CandKeys& cand_keys,
             const CandIdx& cand_idx, std::size_t count) {
    if (count == 0) return;
    // Process candidates in sorted chunks of the list capacity so the
    // merge network size matches the real kernels' fixed-size networks.
    const std::size_t q = next_pow2(count);
    scratch_keys_.assign(q, sort_sentinel<T>());
    scratch_idx_.assign(q, 0);
    for (std::size_t i = 0; i < count; ++i) {
      scratch_keys_[i] = cand_keys[i];
      scratch_idx_[i] = cand_idx[i];
    }
    bitonic_sort<T>(ctx, scratch_keys_, scratch_idx_);
    for (std::size_t base = 0; base < q; base += cap_) {
      const std::size_t len = std::min(cap_, q - base);
      merge_sorted_chunk(ctx,
                         std::span<T>(scratch_keys_).subspan(base, len),
                         std::span<std::uint32_t>(scratch_idx_)
                             .subspan(base, len));
    }
  }

  /// Merge an already ascending-sorted chunk of at most capacity() pairs.
  /// The chunk is consumed (its storage is clobbered).
  template <SortableView ChunkKeys, SortableView ChunkIdx>
  void merge_sorted_chunk(simgpu::BlockCtx& ctx, ChunkKeys chunk_keys,
                          ChunkIdx chunk_idx) {
    const std::size_t len = chunk_keys.size();
    if (len == cap_) {
      merge_prune(ctx, keys_.subspan(0, cap_), idx_.subspan(0, cap_),
                  chunk_keys, chunk_idx);
      return;
    }
    // Short chunk: pad into a capacity-sized scratch and run the same
    // fixed-size network.
    pad_keys_.assign(cap_, sort_sentinel<T>());
    pad_idx_.assign(cap_, 0);
    for (std::size_t i = 0; i < len; ++i) {
      pad_keys_[i] = chunk_keys[i];
      pad_idx_[i] = chunk_idx[i];
    }
    merge_prune(ctx, keys_.subspan(0, cap_), idx_.subspan(0, cap_),
                std::span<T>(pad_keys_), std::span<std::uint32_t>(pad_idx_));
  }

  /// Merge another sorted TopkList of the same capacity into this one.
  template <typename KS2, typename IS2>
  void merge_list(simgpu::BlockCtx& ctx, TopkList<T, KS2, IS2>& other) {
    if (other.cap_ != cap_) {
      throw std::invalid_argument("TopkList::merge_list: capacity mismatch");
    }
    merge_prune(ctx, keys_.subspan(0, cap_), idx_.subspan(0, cap_),
                other.keys_.subspan(0, cap_), other.idx_.subspan(0, cap_));
  }

  [[nodiscard]] KeyStore keys() const { return keys_.subspan(0, k_); }
  [[nodiscard]] IdxStore indices() const { return idx_.subspan(0, k_); }

 private:
  template <typename, typename, typename>
  friend class TopkList;

  KeyStore keys_;
  IdxStore idx_;
  std::size_t k_;
  std::size_t cap_ = 0;
  // Flush scratch: lives in registers/shared memory on the device, so it is
  // modeled as on-chip (ops only, no DRAM traffic).
  std::vector<T> scratch_keys_;
  std::vector<std::uint32_t> scratch_idx_;
  std::vector<T> pad_keys_;
  std::vector<std::uint32_t> pad_idx_;
};

/// Faiss-style thread-queue length for a given K (NumThreadQ in Faiss).
inline std::size_t thread_queue_len(std::size_t k) {
  if (k <= 32) return 2;
  if (k <= 128) return 3;
  if (k <= 256) return 4;
  if (k <= 1024) return 8;
  return 10;
}

}  // namespace topk
