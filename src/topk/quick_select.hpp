#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"

namespace topk {

/// Options for the QuickSelect baseline.
struct QuickSelectOptions {
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
};

/// Execution plan for QuickSelect.  The recursion itself is data-dependent
/// (grids are sized per iteration from live candidate counts — pure
/// arithmetic, no allocation), so the plan is just the validated shape plus
/// the workspace segments, including the tiny pivot-probe buffer that used
/// to be allocated inside the loop.
template <typename T>
struct QuickSelectPlan {
  QuickSelectOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t seg_val[3] = {0, 0, 0};
  std::size_t seg_idx[3] = {0, 0, 0};
  std::size_t seg_eq_val = 0;
  std::size_t seg_eq_idx = 0;
  std::size_t seg_counters = 0;
  std::size_t seg_probe = 0;
};

/// Footprint contracts for the QuickSelect kernels.  The partition writes
/// all three destinations through cursor-reserved aggregated appends; the
/// input operands are optional because the first iteration reads the raw
/// input while later iterations read a rotating candidate buffer.
inline void register_quick_select_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"collect_results",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
  simgpu::register_footprint(
      {"pivot_probe",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"probe",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 3}},
            8},
       }});
  simgpu::register_footprint(
      {"partition_memset",
       {
           {"counters",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 3}},
            4},
       }});
  simgpu::register_footprint(
      {"partition",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"counters", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kOne, 3}}, 4},
           {"less_val", Access::kWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 8},
           {"less_idx", Access::kWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 4},
           {"eq_val", Access::kWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 8},
           {"eq_idx", Access::kWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 4},
           {"greater_val", Access::kWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 8},
           {"greater_idx", Access::kWrite, WriteScope::kReserved,
            {{AffineVar::kSegElems}}, 4},
       }});
}

/// Phase 1 of QuickSelect: validate and lay out the rotating candidate
/// buffers, the pivot-equal buffer, the partition counters and the pivot
/// probe staging buffer.
template <typename T>
QuickSelectPlan<T> quick_select_plan(const Shape& s,
                                     const simgpu::DeviceSpec& spec,
                                     const QuickSelectOptions& opt,
                                     simgpu::WorkspaceLayout& layout,
                                     simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);

  QuickSelectPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  // Three rotating candidate buffers: source, the "less" destination and
  // the "greater" destination; plus a buffer for pivot-equal elements.
  p.seg_val[0] = layout.add<T>("quick vals 0", s.n);
  p.seg_val[1] = layout.add<T>("quick vals 1", s.n);
  p.seg_val[2] = layout.add<T>("quick vals 2", s.n);
  p.seg_idx[0] = layout.add<std::uint32_t>("quick idx 0", s.n);
  p.seg_idx[1] = layout.add<std::uint32_t>("quick idx 1", s.n);
  p.seg_idx[2] = layout.add<std::uint32_t>("quick idx 2", s.n);
  p.seg_eq_val = layout.add<T>("quick eq vals", s.n);
  p.seg_eq_idx = layout.add<std::uint32_t>("quick eq idx", s.n);
  p.seg_counters = layout.add<std::uint32_t>("quick part counts", 3);
  p.seg_probe = layout.add<T>("quick pivot probe", 3);

  if (sched != nullptr) {
    register_quick_select_footprints();
    // Nominal per-problem unrolling: two partition iterations (input first,
    // then the rotated less-side buffer as if k_rem landed strictly below
    // the pivot) and the terminal less+equal collection.
    const GridShape shape =
        make_grid(1, s.n, spec, opt.block_threads, opt.items_per_block);
    int src = 0, d_less = 1, d_greater = 2;
    for (int iter = 0; iter < 2; ++iter) {
      const bool fi = (iter == 0);
      std::vector<simgpu::OperandBind> probe_binds;
      if (fi) {
        probe_binds.push_back({"in", simgpu::kBindInput});
      } else {
        probe_binds.push_back({"src_val", static_cast<int>(p.seg_val[src])});
      }
      probe_binds.push_back({"probe", static_cast<int>(p.seg_probe)});
      simgpu::record_launch(sched, "pivot_probe", 1, 32, 1, s.n, s.k,
                            std::move(probe_binds));
      simgpu::record_host(sched, "pivot sample",
                          {{"probe", static_cast<int>(p.seg_probe),
                            simgpu::Access::kRead}});
      simgpu::record_launch(sched, "partition_memset", 1, 32, 1, s.n, s.k,
                            {{"counters", static_cast<int>(p.seg_counters)}});
      std::vector<simgpu::OperandBind> part_binds;
      if (fi) {
        part_binds.push_back({"in", simgpu::kBindInput});
      } else {
        part_binds.push_back({"src_val", static_cast<int>(p.seg_val[src])});
        part_binds.push_back({"src_idx", static_cast<int>(p.seg_idx[src])});
      }
      part_binds.push_back({"counters", static_cast<int>(p.seg_counters)});
      part_binds.push_back({"less_val", static_cast<int>(p.seg_val[d_less])});
      part_binds.push_back({"less_idx", static_cast<int>(p.seg_idx[d_less])});
      part_binds.push_back({"eq_val", static_cast<int>(p.seg_eq_val)});
      part_binds.push_back({"eq_idx", static_cast<int>(p.seg_eq_idx)});
      part_binds.push_back(
          {"greater_val", static_cast<int>(p.seg_val[d_greater])});
      part_binds.push_back(
          {"greater_idx", static_cast<int>(p.seg_idx[d_greater])});
      simgpu::record_launch(sched, "partition", shape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(part_binds));
      simgpu::record_host(sched, "part counts",
                          {{"counters", static_cast<int>(p.seg_counters),
                            simgpu::Access::kRead}});
      std::swap(src, d_less);
    }
    simgpu::record_launch(sched, "collect_results", shape.total_blocks(),
                          opt.block_threads, 1, s.n, s.k,
                          {{"src_val", static_cast<int>(p.seg_val[src])},
                           {"src_idx", static_cast<int>(p.seg_idx[src])},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
    simgpu::record_launch(sched, "collect_results", shape.total_blocks(),
                          opt.block_threads, 1, s.n, s.k,
                          {{"src_val", static_cast<int>(p.seg_eq_val)},
                           {"src_idx", static_cast<int>(p.seg_eq_idx)},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
  }
  return p;
}

/// Phase 2 of QuickSelect (Dashti et al. 2013 / GpuSelection): single-pivot
/// recursive partitioning.  Each iteration the host reads back a
/// three-element sample to pick a median-of-three pivot, launches a
/// partition kernel that splits the candidates into (< pivot, == pivot,
/// > pivot), copies the partition counts back over PCIe and decides which
/// side to recurse into.  One full host round trip per iteration with a
/// data-dependent iteration count — the O(N^2) worst case of paper §2.2.
template <typename T>
void quick_select_run(simgpu::Device& dev, const QuickSelectPlan<T>& plan,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                      simgpu::DeviceBuffer<T> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const QuickSelectOptions& opt = plan.opt;
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("quick_select: buffer too small");
  }

  simgpu::DeviceBuffer<T> bv[3] = {ws.get<T>(plan.seg_val[0]),
                                   ws.get<T>(plan.seg_val[1]),
                                   ws.get<T>(plan.seg_val[2])};
  simgpu::DeviceBuffer<std::uint32_t> bi[3] = {
      ws.get<std::uint32_t>(plan.seg_idx[0]),
      ws.get<std::uint32_t>(plan.seg_idx[1]),
      ws.get<std::uint32_t>(plan.seg_idx[2])};
  auto eq_val = ws.get<T>(plan.seg_eq_val);
  auto eq_idx = ws.get<std::uint32_t>(plan.seg_eq_idx);
  auto counters = ws.get<std::uint32_t>(plan.seg_counters);
  auto probe_buf = ws.get<T>(plan.seg_probe);

  const auto copy_out = [&](simgpu::DeviceBuffer<T> v,
                            simgpu::DeviceBuffer<std::uint32_t> ix,
                            std::uint64_t dst, std::uint64_t m) {
    if (m == 0) return;
    const GridShape shape =
        make_grid(1, m, dev.spec(), opt.block_threads, opt.items_per_block);
    const int bpp = shape.blocks_per_problem;
    simgpu::LaunchConfig cfg{"collect_results", shape.total_blocks(),
                             opt.block_threads, 1, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto [begin, end] = block_chunk(m, bpp, ctx.block_idx());
      for (std::size_t i = begin; i < end; ++i) {
        ctx.store(out_vals, dst + i, ctx.load(v, i));
        ctx.store(out_idx, dst + i, ctx.load(ix, i));
      }
    });
  };

  for (std::size_t prob = 0; prob < batch; ++prob) {
    std::uint64_t k_rem = k;
    std::uint64_t count = n;
    std::uint64_t out_cursor = prob * k;
    int src = 0, d_less = 1, d_greater = 2;
    bool from_input = true;

    while (true) {
      if (count == k_rem) {
        copy_out(bv[src], bi[src], out_cursor, from_input ? 0 : count);
        if (from_input) {
          // Degenerate k == n on the very first iteration: the candidates
          // are still the raw input.
          const GridShape shape = make_grid(1, count, dev.spec(),
                                            opt.block_threads,
                                            opt.items_per_block);
          const int bpp = shape.blocks_per_problem;
          const std::uint64_t dst = out_cursor;
          simgpu::LaunchConfig cfg{"collect_results", shape.total_blocks(),
                                   opt.block_threads, 1, n, k};
          simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
            const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
            for (std::size_t i = begin; i < end; ++i) {
              ctx.store(out_vals, dst + i, ctx.load(in, prob * n + i));
              ctx.store(out_idx, dst + i, static_cast<std::uint32_t>(i));
            }
          });
        }
        out_cursor += count;
        dev.synchronize("final");
        break;
      }

      // ---- pivot: median of three values read back over PCIe -------------
      const auto src_val = bv[src];
      const auto src_idx = bi[src];
      std::array<T, 3> probe;
      {
        const std::size_t s0 = 0, s1 = count / 2, s2 = count - 1;
        simgpu::LaunchConfig cfg{"pivot_probe", 1, 32, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto fetch = [&](std::size_t i) {
            return from_input ? ctx.load(in, prob * n + i)
                              : ctx.load(src_val, i);
          };
          ctx.store(probe_buf, 0, fetch(s0));
          ctx.store(probe_buf, 1, fetch(s1));
          ctx.store(probe_buf, 2, fetch(s2));
        });
        dev.copy_to_host(probe_buf, std::span<T>(probe), "pivot sample");
      }
      dev.host_compute("median_of_three", 8);
      std::sort(probe.begin(), probe.end());
      const T pivot = probe[1];

      // ---- partition kernel ----------------------------------------------
      {
        simgpu::LaunchConfig cfg{"partition_memset", 1, 32, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          ctx.store<std::uint32_t>(counters, 0, 0);
          ctx.store<std::uint32_t>(counters, 1, 0);
          ctx.store<std::uint32_t>(counters, 2, 0);
        });
      }
      const GridShape shape = make_grid(1, count, dev.spec(),
                                        opt.block_threads,
                                        opt.items_per_block);
      const int bpp = shape.blocks_per_problem;
      const auto less_val = bv[d_less];
      const auto less_idx = bi[d_less];
      const auto greater_val = bv[d_greater];
      const auto greater_idx = bi[d_greater];
      {
        simgpu::LaunchConfig cfg{"partition", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          // GpuSelection partitions with warp-aggregated atomics.
          AggregatedAppender<T, std::uint32_t> less_app(
              less_val, less_idx, 0, counters, 0, count, "quick_select less");
          AggregatedAppender<T, std::uint32_t> eq_app(
              eq_val, eq_idx, 0, counters, 1, count, "quick_select eq");
          AggregatedAppender<T, std::uint32_t> greater_app(
              greater_val, greater_idx, 0, counters, 2, count,
              "quick_select greater");
          for (std::size_t i = begin; i < end; ++i) {
            T v;
            std::uint32_t id;
            if (from_input) {
              v = ctx.load(in, prob * n + i);
              id = static_cast<std::uint32_t>(i);
            } else {
              v = ctx.load(src_val, i);
              id = ctx.load(src_idx, i);
            }
            if (v < pivot) {
              less_app.push(ctx, v, id);
            } else if (v == pivot) {
              eq_app.push(ctx, v, id);
            } else {
              greater_app.push(ctx, v, id);
            }
          }
          less_app.flush(ctx);
          eq_app.flush(ctx);
          greater_app.flush(ctx);
          ctx.ops(3 * (end - begin));
        });
      }
      std::array<std::uint32_t, 3> host_counts;
      dev.copy_to_host(counters, std::span<std::uint32_t>(host_counts),
                       "part counts");
      dev.host_compute("select_branch", 8);
      const std::uint64_t n_less = host_counts[0];
      const std::uint64_t n_eq = host_counts[1];

      if (k_rem <= n_less) {
        // Recurse into the strictly-less partition.
        count = n_less;
        std::swap(src, d_less);
        from_input = false;
      } else if (k_rem <= n_less + n_eq) {
        // The less partition is fully in; pivot-equal elements fill the rest.
        copy_out(less_val, less_idx, out_cursor, n_less);
        out_cursor += n_less;
        copy_out(eq_val, eq_idx, out_cursor, k_rem - n_less);
        out_cursor += k_rem - n_less;
        dev.synchronize("final");
        break;
      } else {
        // less + equal are all results; recurse into the greater partition.
        copy_out(less_val, less_idx, out_cursor, n_less);
        out_cursor += n_less;
        copy_out(eq_val, eq_idx, out_cursor, n_eq);
        out_cursor += n_eq;
        k_rem -= n_less + n_eq;
        count = host_counts[2];
        std::swap(src, d_greater);
        from_input = false;
      }
    }
    if (out_cursor != prob * k + k) {
      throw std::logic_error("quick_select: result count mismatch");
    }
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void quick_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx,
                  const QuickSelectOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      quick_select_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  quick_select_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
