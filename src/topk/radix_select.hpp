#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "simgpu/simd.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/radix_traits.hpp"

namespace topk {

/// Options for the host-managed RadixSelect baseline.
struct RadixSelectOptions {
  int digit_bits = 8;  ///< 8-bit digits / 256 buckets, as in DrTopK
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
};

/// Execution plan for RadixSelect: the per-pass kernel names (interned once
/// at plan time, so running a pass never builds a string) plus workspace
/// segments for the histogram, cursors, the candidate ping-pong buffers and
/// the host-side histogram staging.
template <typename T>
struct RadixSelectPlan {
  RadixSelectOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  int nb = 0;
  std::uint32_t mask = 0;
  int num_passes = 0;

  struct Pass {
    std::string_view hist_name;    // interned "CalculateOccurence(<p>)"
    std::string_view filter_name;  // interned "Filter(<p>)"
    int start_bit = 0;
  };
  std::vector<Pass> passes;

  std::size_t seg_hist = 0;
  std::size_t seg_counters = 0;
  std::size_t seg_val[2] = {0, 0};
  std::size_t seg_idx[2] = {0, 0};
  std::size_t seg_host_hist = 0;
};

/// Footprint contracts for the host-managed RadixSelect kernels.  The
/// per-pass kernels register under their bare family names; the histogram
/// bound is segment-sized because the bucket count is a digit-width tuning
/// option that must not be folded into a shape-generic contract.
inline void register_radix_select_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"Memset",
       {
           {"hist",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kSegElems}},
            4},
           {"counters",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 2}},
            4},
       }});
  simgpu::register_footprint(
      {"CalculateOccurence",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"hist", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
       }});
  simgpu::register_footprint(
      {"Filter",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"counters", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kOne, 2}}, 4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            4},
           {"dst_val",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            4},
       }});
  register_copy_remainder_footprint();
}

/// Phase 1 of RadixSelect: validate, precompute the pass schedule (start
/// bits and interned kernel names) and lay out the workspace.
template <typename T>
RadixSelectPlan<T> radix_select_plan(const Shape& s,
                                     const simgpu::DeviceSpec& spec,
                                     const RadixSelectOptions& opt,
                                     simgpu::WorkspaceLayout& layout,
                                     simgpu::KernelSchedule* sched = nullptr) {
  using Traits = RadixTraits<T>;

  validate_problem(s.n, s.k, s.batch);

  RadixSelectPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.nb = 1 << opt.digit_bits;
  p.mask = static_cast<std::uint32_t>(p.nb - 1);
  p.num_passes = (Traits::kBits + opt.digit_bits - 1) / opt.digit_bits;
  p.passes.reserve(static_cast<std::size_t>(p.num_passes));
  for (int pass = 0; pass < p.num_passes; ++pass) {
    typename RadixSelectPlan<T>::Pass pp;
    pp.start_bit = std::max(0, Traits::kBits - (pass + 1) * opt.digit_bits);
    pp.hist_name = simgpu::intern_name("CalculateOccurence(" +
                                       std::to_string(pass) + ")");
    pp.filter_name = simgpu::intern_name("Filter(" + std::to_string(pass) +
                                         ")");
    p.passes.push_back(pp);
  }

  p.seg_hist = layout.add<std::uint32_t>("radix digit histogram",
                                         static_cast<std::size_t>(p.nb));
  p.seg_counters = layout.add<std::uint32_t>("radix cursors", 2);
  p.seg_val[0] = layout.add<T>("radix cand vals 0", s.n);
  p.seg_val[1] = layout.add<T>("radix cand vals 1", s.n);
  p.seg_idx[0] = layout.add<std::uint32_t>("radix cand idx 0", s.n);
  p.seg_idx[1] = layout.add<std::uint32_t>("radix cand idx 1", s.n);
  p.seg_host_hist = layout.add<std::uint32_t>(
      "radix host hist", static_cast<std::size_t>(p.nb), /*host=*/true);

  if (sched != nullptr) {
    register_radix_select_footprints();
    // Nominal per-problem unrolling for the static auditor: every pass is
    // assumed to scan the full n candidates (the real pass count and
    // candidate counts shrink data-dependently, so this is the conservative
    // superset of any actual execution).
    const GridShape hshape =
        make_grid(1, s.n, spec, opt.block_threads, opt.items_per_block);
    int cur = 0;
    for (int pass = 0; pass < p.num_passes; ++pass) {
      const auto& pp = p.passes[static_cast<std::size_t>(pass)];
      simgpu::record_launch(sched, "Memset", 1, opt.block_threads, 1, s.n,
                            s.k,
                            {{"hist", static_cast<int>(p.seg_hist)},
                             {"counters", static_cast<int>(p.seg_counters)}});
      std::vector<simgpu::OperandBind> hist_binds;
      if (pass == 0) {
        hist_binds.push_back({"in", simgpu::kBindInput});
      } else {
        hist_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
      }
      hist_binds.push_back({"hist", static_cast<int>(p.seg_hist)});
      simgpu::record_launch(sched, pp.hist_name, hshape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(hist_binds));
      simgpu::record_host(
          sched, "histogram",
          {{"hist", static_cast<int>(p.seg_hist), simgpu::Access::kRead},
           {"host_hist", static_cast<int>(p.seg_host_hist),
            simgpu::Access::kWrite}});
      simgpu::record_host(sched, "scan+find_digit",
                          {{"host_hist", static_cast<int>(p.seg_host_hist),
                            simgpu::Access::kRead}});
      std::vector<simgpu::OperandBind> filter_binds;
      if (pass == 0) {
        filter_binds.push_back({"in", simgpu::kBindInput});
      } else {
        filter_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
        filter_binds.push_back({"src_idx", static_cast<int>(p.seg_idx[cur])});
      }
      filter_binds.push_back({"counters", static_cast<int>(p.seg_counters)});
      filter_binds.push_back({"out_vals", simgpu::kBindOutVals});
      filter_binds.push_back({"out_idx", simgpu::kBindOutIdx});
      filter_binds.push_back({"dst_val", static_cast<int>(p.seg_val[1 - cur])});
      filter_binds.push_back({"dst_idx", static_cast<int>(p.seg_idx[1 - cur])});
      simgpu::record_launch(sched, pp.filter_name, hshape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(filter_binds));
      cur = 1 - cur;
    }
    simgpu::record_launch(sched, "CopyRemainder", 1, opt.block_threads, 1,
                          s.n, s.k,
                          {{"src_val", static_cast<int>(p.seg_val[cur])},
                           {"src_idx", static_cast<int>(p.seg_idx[cur])},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
  }
  return p;
}

/// Phase 2 of RadixSelect (Alabi et al. 2012 / DrTopK-style): the classic
/// parallel radix top-K where the *host* orchestrates every iteration.
///
/// Per radix pass the host launches a histogram kernel, copies the histogram
/// back over PCIe, computes the prefix sum and the target digit on the CPU,
/// then launches a filter kernel.  This host engagement — the per-iteration
/// D2H copies and the synchronizations they imply — is exactly the overhead
/// AIR Top-K's iteration-fused design eliminates (paper §3.1, Fig. 8).
///
/// Batched problems are processed one at a time, as the original
/// implementations do; nothing amortizes the per-iteration host round trips,
/// which is why the paper sees up to 574x speedups at batch size 100.
template <typename T>
void radix_select_run(simgpu::Device& dev, const RadixSelectPlan<T>& plan,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                      simgpu::DeviceBuffer<T> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  using Traits = RadixTraits<T>;
  using Bits = typename Traits::Bits;

  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const RadixSelectOptions& opt = plan.opt;
  if (in.size() < batch * n) {
    throw std::invalid_argument("radix_select: input too small");
  }
  if (out_vals.size() < batch * k || out_idx.size() < batch * k) {
    throw std::invalid_argument("radix_select: output buffers too small");
  }

  const int nb = plan.nb;
  const std::uint32_t mask = plan.mask;
  const int num_passes = plan.num_passes;

  auto ghist = ws.get<std::uint32_t>(plan.seg_hist);
  auto counters = ws.get<std::uint32_t>(plan.seg_counters);
  simgpu::DeviceBuffer<T> cand_val[2] = {ws.get<T>(plan.seg_val[0]),
                                         ws.get<T>(plan.seg_val[1])};
  simgpu::DeviceBuffer<std::uint32_t> cand_idx[2] = {
      ws.get<std::uint32_t>(plan.seg_idx[0]),
      ws.get<std::uint32_t>(plan.seg_idx[1])};
  const std::span<std::uint32_t> host_hist(
      ws.host_ptr<std::uint32_t>(plan.seg_host_hist),
      static_cast<std::size_t>(nb));

  for (std::size_t prob = 0; prob < batch; ++prob) {
    std::uint64_t k_rem = k;
    std::uint64_t count = n;
    std::uint64_t out_base = prob * k;
    std::uint64_t out_written = 0;
    int cur = 0;  // candidate ping-pong side holding the current candidates

    for (int p = 0; p < num_passes; ++p) {
      const int start_bit = plan.passes[static_cast<std::size_t>(p)].start_bit;
      const bool from_input = (p == 0);
      const auto src_val = cand_val[cur];
      const auto src_idx = cand_idx[cur];
      const auto dst_val = cand_val[1 - cur];
      const auto dst_idx = cand_idx[1 - cur];

      // ---- kernel 0: cudaMemset analogue for histogram + cursors ---------
      {
        simgpu::LaunchConfig cfg{"Memset", 1, opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          for (int d = 0; d < nb; ++d) {
            ctx.store<std::uint32_t>(ghist, static_cast<std::size_t>(d), 0);
          }
          ctx.store<std::uint32_t>(counters, 0, 0);
          ctx.store<std::uint32_t>(counters, 1, 0);
        });
      }

      // ---- kernel 1: histogram over the current candidates ---------------
      const GridShape hshape = make_grid(1, count, dev.spec(),
                                         opt.block_threads,
                                         opt.items_per_block);
      {
        simgpu::LaunchConfig cfg{
            plan.passes[static_cast<std::size_t>(p)].hist_name,
            hshape.total_blocks(), opt.block_threads, 1, n, k};
        const int bpp = hshape.blocks_per_problem;
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto shist = ctx.shared_zero<std::uint32_t>(
              static_cast<std::size_t>(nb));
          std::uint32_t* const hraw = shist.unchecked_data();
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          const int sb = start_bit;
          const std::uint32_t dm = mask;
          const auto scan_with = [&](auto&& bump) {
            if (from_input) {
              ctx.for_each_elem(in, prob * n + begin, end - begin, bump);
            } else {
              ctx.for_each_elem(src_val, begin, end - begin, bump);
            }
          };
          if (hraw != nullptr) {
            bool vectorized = false;
            if constexpr (std::is_same_v<T, float>) {
              // SIMD-ized digit histogram over the contiguous candidate
              // chunk (hraw != nullptr already implies the unsanitized tile
              // path).  Tile loads charge the same bytes as the scalar scan
              // and the bulk ctx.ops below is shared, so KernelStats stay
              // bit-identical; accumulation order does not matter.
              const auto base = from_input ? prob * n + begin : begin;
              std::size_t i = 0;
              const std::size_t total = end - begin;
              while (i < total) {
                const std::size_t c = std::min(simgpu::kTileElems, total - i);
                const std::span<const float> tv =
                    from_input ? ctx.load_tile(in, base + i, c)
                               : ctx.load_tile(src_val, base + i, c);
                simgpu::simd::histogram_digits_f32(
                    tv.data(), tv.size(),  // lint:allow-raw-access
                    0u, sb, dm, hraw);
                i += c;
              }
              vectorized = true;
            }
            if (!vectorized) {
              scan_with([&](std::size_t, T v) {
                ++hraw[static_cast<std::uint32_t>(Traits::to_radix(v) >> sb) &
                       dm];
              });
            }
          } else {
            scan_with([&](std::size_t, T v) {
              ++shist[static_cast<std::uint32_t>(Traits::to_radix(v) >> sb) &
                      dm];
            });
          }
          ctx.ops(3 * (end - begin));
          ctx.sync();
          for (int d = 0; d < nb; ++d) {
            if (shist[static_cast<std::size_t>(d)] != 0) {
              ctx.atomic_add_scattered(ghist, static_cast<std::size_t>(d),
                                       shist[static_cast<std::size_t>(d)]);
            }
          }
          ctx.ops(static_cast<std::uint64_t>(nb));
        });
      }

      // ---- host round trip: copy histogram, prefix-sum, pick digit -------
      dev.copy_to_host(ghist, host_hist, "histogram");
      dev.host_compute("scan+find_digit",
                       static_cast<std::uint64_t>(3 * nb));
      std::uint64_t less = 0;
      std::uint32_t target_digit = 0;
      std::uint64_t target_count = 0;
      for (int d = 0; d < nb; ++d) {
        const std::uint32_t c = host_hist[static_cast<std::size_t>(d)];
        if (less + c >= k_rem) {
          target_digit = static_cast<std::uint32_t>(d);
          target_count = c;
          break;
        }
        less += c;
      }

      // ---- kernel 2: filter (results out, candidates to the other buffer)
      {
        simgpu::LaunchConfig cfg{
            plan.passes[static_cast<std::size_t>(p)].filter_name,
            hshape.total_blocks(), opt.block_threads, 1, n, k};
        const int bpp = hshape.blocks_per_problem;
        const std::uint64_t out_cursor_base = out_base + out_written;
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          const auto filter = [&](std::size_t, T v, std::uint32_t id) {
            const Bits key = Traits::to_radix(v);
            const std::uint32_t digit =
                static_cast<std::uint32_t>(key >> start_bit) & mask;
            if (digit < target_digit) {
              const std::uint32_t pos = ctx.atomic_add(counters, 0, 1u);
              ctx.store(out_vals, out_cursor_base + pos, v);
              ctx.store(out_idx, out_cursor_base + pos, id);
            } else if (digit == target_digit) {
              const std::uint32_t pos = ctx.atomic_add(counters, 1, 1u);
              ctx.store(dst_val, pos, v);
              ctx.store(dst_idx, pos, id);
            }
          };
          if (from_input) {
            ctx.for_each_elem(in, prob * n + begin, end - begin,
                              [&](std::size_t j, T v) {
                                filter(begin + j, v,
                                       static_cast<std::uint32_t>(begin + j));
                              });
          } else {
            scan_pairs(ctx, src_val, src_idx, 0, begin, end, filter);
          }
          ctx.ops(4 * (end - begin));
        });
      }

      out_written += less;
      k_rem -= less;
      count = target_count;
      cur = 1 - cur;

      // The host decides whether more passes are needed; it must synchronize
      // to know the device state is consistent before the next decision.
      dev.synchronize("host check");
      if (k_rem == count || p == num_passes - 1) {
        // All remaining candidates tie at the K-th value (or digits are
        // exhausted): copy the first k_rem of them to the output.
        const std::uint64_t take = k_rem;
        const auto fin_val = cand_val[cur];
        const auto fin_idx = cand_idx[cur];
        const std::uint64_t out_cursor_base = out_base + out_written;
        simgpu::LaunchConfig cfg{"CopyRemainder", 1, opt.block_threads, 1, n,
                                 k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          copy_pairs(ctx, fin_val, fin_idx, 0, out_vals, out_idx,
                     out_cursor_base, take);
          ctx.ops(take);
        });
        dev.synchronize("final");
        out_written += take;
        break;
      }
    }
    if (out_written != k) {
      throw std::logic_error("radix_select: wrote " +
                             std::to_string(out_written) + " of " +
                             std::to_string(k) + " results");
    }
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void radix_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx,
                  const RadixSelectOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      radix_select_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  radix_select_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
