#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace topk {

/// Monotone bit reinterpretations for radix-based selection.
///
/// `to_radix` maps a value to an unsigned integer such that
/// `a < b  <=>  to_radix(a) < to_radix(b)`; `from_radix` inverts it.  These
/// are the standard tricks used by GPU radix sorts (CUB) and by RAFT's
/// select_radix: flip the sign bit for signed integers, and for IEEE-754
/// floats flip the sign bit for non-negative values / all bits for negative
/// values.
///
/// NaN note: like CUB's radix sort, NaNs order by their bit pattern —
/// positive NaNs above +inf, negative NaNs below -inf.
template <typename T>
struct RadixTraits;

template <>
struct RadixTraits<float> {
  using Bits = std::uint32_t;
  static constexpr int kBits = 32;

  static Bits to_radix(float v) {
    const auto b = std::bit_cast<Bits>(v);
    return (b & 0x80000000u) ? ~b : (b | 0x80000000u);
  }
  static float from_radix(Bits b) {
    const Bits raw = (b & 0x80000000u) ? (b & 0x7FFFFFFFu) : ~b;
    return std::bit_cast<float>(raw);
  }
};

template <>
struct RadixTraits<std::uint32_t> {
  using Bits = std::uint32_t;
  static constexpr int kBits = 32;

  static Bits to_radix(std::uint32_t v) { return v; }
  static std::uint32_t from_radix(Bits b) { return b; }
};

template <>
struct RadixTraits<std::int32_t> {
  using Bits = std::uint32_t;
  static constexpr int kBits = 32;

  static Bits to_radix(std::int32_t v) {
    return static_cast<Bits>(v) ^ 0x80000000u;
  }
  static std::int32_t from_radix(Bits b) {
    return static_cast<std::int32_t>(b ^ 0x80000000u);
  }
};

template <>
struct RadixTraits<double> {
  using Bits = std::uint64_t;
  static constexpr int kBits = 64;

  static Bits to_radix(double v) {
    const auto b = std::bit_cast<Bits>(v);
    return (b & 0x8000000000000000ull) ? ~b : (b | 0x8000000000000000ull);
  }
  static double from_radix(Bits b) {
    const Bits raw =
        (b & 0x8000000000000000ull) ? (b & 0x7FFFFFFFFFFFFFFFull) : ~b;
    return std::bit_cast<double>(raw);
  }
};

/// Extract the digit of width `bits` whose least-significant bit sits at
/// `start_bit` (counting from bit 0).
template <typename Bits>
constexpr std::uint32_t extract_digit(Bits key, int start_bit, int bits) {
  return static_cast<std::uint32_t>(key >> start_bit) &
         ((1u << bits) - 1u);
}

}  // namespace topk
