#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <variant>

#include "core/topk.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/air_topk.hpp"
#include "topk/bitonic_topk.hpp"
#include "topk/bucket_approx.hpp"
#include "topk/bucket_select.hpp"
#include "topk/fused_rowwise.hpp"
#include "topk/grid_select.hpp"
#include "topk/quick_select.hpp"
#include "topk/radix_select.hpp"
#include "topk/sample_select.hpp"
#include "topk/shard_merge.hpp"
#include "topk/sort_topk.hpp"
#include "topk/stream_radix.hpp"
#include "topk/warp_select.hpp"

/// Table-driven selector registry: every Algo resolves to one AlgoRow holding
/// its CLI key, display name, K ceiling, native largest-K capability, and the
/// two-phase plan/run thunks.  The four AIR ablation variants collapse onto
/// one plan/run pair parameterized by AirTopkOptions flags, and GridSelect's
/// thread-queue ablation onto grid_select with shared_queue = false.
///
/// Dispatch through the table never touches the heap: row lookup is a linear
/// scan of a constexpr array, the plan lives in a variant inside PlanImpl,
/// and the run thunks std::get the concrete plan out by type.
namespace topk {

/// The concrete, cacheable product of plan_select(): resolved algorithm,
/// shape, the workspace layout whose segments run_select() binds, and the
/// per-algorithm plan.  Owned behind ExecutionPlan's shared_ptr so copies of
/// the handle are cheap and the layout outlives every binding (Workspace
/// captures it by pointer).
struct PlanImpl {
  Algo algo = Algo::kAuto;  ///< concrete algorithm (kAuto resolved at plan)
  Shape shape;              ///< batch/n/k plus the requested order
  /// Largest-K requested on an algorithm without a native descending order:
  /// run_select() negates the input into `seg_negated` on the way in and
  /// negates the output values on the way out (paper WLOG smallest-K).
  bool negate = false;
  std::size_t seg_negated = 0;
  /// Key element type this plan executes (SelectOptions::dtype at plan
  /// time), and the carrier it resolved to: i32/u32 keys run the algorithm
  /// instantiated at uint32_t over monotone radix ordinals (largest-K wraps
  /// via bitwise complement); everything else runs the float instantiation.
  KeyType dtype = KeyType::kF32;
  bool u32_carrier = false;
  simgpu::WorkspaceLayout layout;
  /// Nominal kernel sequence recorded by the plan function, for the static
  /// plan auditor (src/verify).  Not consumed by run_select.
  simgpu::KernelSchedule schedule;
  std::variant<SortTopkPlan<float>, BitonicTopkPlan<float>,
               QuickSelectPlan<float>, BucketSelectPlan<float>,
               SampleSelectPlan<float>, RadixSelectPlan<float>,
               AirTopkPlan<float>, GridSelectPlan<float>,
               faiss_detail::FaissSelectPlan<float>, FusedRowwisePlan<float>,
               ShardMergePlan<float>, BucketApproxPlan<float>,
               StreamRadixPlan<float>, SortTopkPlan<std::uint32_t>,
               BitonicTopkPlan<std::uint32_t>, RadixSelectPlan<std::uint32_t>,
               AirTopkPlan<std::uint32_t>, GridSelectPlan<std::uint32_t>,
               faiss_detail::FaissSelectPlan<std::uint32_t>,
               StreamRadixPlan<std::uint32_t>>
      plan;
};

namespace registry_detail {

using PlanFn = void (*)(PlanImpl&, const simgpu::DeviceSpec&,
                        const SelectOptions&);
using RunFn = void (*)(simgpu::Device&, const PlanImpl&, simgpu::Workspace&,
                       simgpu::DeviceBuffer<float>, simgpu::DeviceBuffer<float>,
                       simgpu::DeviceBuffer<std::uint32_t>);
/// u32-carrier run thunk: the same algorithm instantiated at uint32_t, fed
/// radix ordinals.  nullptr on rows whose dtype mask excludes the integer
/// key types.
using RunFnU32 = void (*)(simgpu::Device&, const PlanImpl&, simgpu::Workspace&,
                          simgpu::DeviceBuffer<std::uint32_t>,
                          simgpu::DeviceBuffer<std::uint32_t>,
                          simgpu::DeviceBuffer<std::uint32_t>);

/// One AirTopkOptions for all four AIR table rows: the ablation variants are
/// flag deltas on the same planner, not separate implementations.
inline AirTopkOptions air_options_for(Algo algo, const SelectOptions& opt) {
  AirTopkOptions o;
  o.alpha = opt.alpha;
  o.greatest = opt.greatest;
  if (algo == Algo::kAirTopkNoAdaptive) o.adaptive = false;
  if (algo == Algo::kAirTopkNoEarlyStop) o.early_stopping = false;
  if (algo == Algo::kAirTopkFusedFilter) o.fuse_last_filter = true;
  return o;
}

template <typename T>
void plan_air_t(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                const SelectOptions& opt) {
  impl.plan = air_topk_plan<T>(impl.shape, spec,
                               air_options_for(impl.algo, opt), impl.layout,
                               &impl.schedule);
}

inline void plan_air(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                     const SelectOptions& opt) {
  impl.u32_carrier ? plan_air_t<std::uint32_t>(impl, spec, opt)
                   : plan_air_t<float>(impl, spec, opt);
}

inline void run_air(simgpu::Device& dev, const PlanImpl& impl,
                    simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                    simgpu::DeviceBuffer<float> out_vals,
                    simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  air_topk_run(dev, std::get<AirTopkPlan<float>>(impl.plan), ws, in, out_vals,
               out_idx);
}

inline void run_air_u32(simgpu::Device& dev, const PlanImpl& impl,
                        simgpu::Workspace& ws,
                        simgpu::DeviceBuffer<std::uint32_t> in,
                        simgpu::DeviceBuffer<std::uint32_t> out_vals,
                        simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  air_topk_run(dev, std::get<AirTopkPlan<std::uint32_t>>(impl.plan), ws, in,
               out_vals, out_idx);
}

template <typename T>
void plan_grid_t(PlanImpl& impl, const simgpu::DeviceSpec& spec) {
  GridSelectOptions o;
  o.shared_queue = impl.algo != Algo::kGridSelectThreadQueue;
  impl.plan =
      grid_select_plan<T>(impl.shape, spec, o, impl.layout, &impl.schedule);
}

inline void plan_grid(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                      const SelectOptions&) {
  impl.u32_carrier ? plan_grid_t<std::uint32_t>(impl, spec)
                   : plan_grid_t<float>(impl, spec);
}

inline void run_grid(simgpu::Device& dev, const PlanImpl& impl,
                     simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                     simgpu::DeviceBuffer<float> out_vals,
                     simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  grid_select_run(dev, std::get<GridSelectPlan<float>>(impl.plan), ws, in,
                  out_vals, out_idx);
}

inline void run_grid_u32(simgpu::Device& dev, const PlanImpl& impl,
                         simgpu::Workspace& ws,
                         simgpu::DeviceBuffer<std::uint32_t> in,
                         simgpu::DeviceBuffer<std::uint32_t> out_vals,
                         simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  grid_select_run(dev, std::get<GridSelectPlan<std::uint32_t>>(impl.plan), ws,
                  in, out_vals, out_idx);
}

template <typename T>
void plan_radix_t(PlanImpl& impl, const simgpu::DeviceSpec& spec) {
  impl.plan =
      radix_select_plan<T>(impl.shape, spec, {}, impl.layout, &impl.schedule);
}

inline void plan_radix(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                       const SelectOptions&) {
  impl.u32_carrier ? plan_radix_t<std::uint32_t>(impl, spec)
                   : plan_radix_t<float>(impl, spec);
}

inline void run_radix(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  radix_select_run(dev, std::get<RadixSelectPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void run_radix_u32(simgpu::Device& dev, const PlanImpl& impl,
                          simgpu::Workspace& ws,
                          simgpu::DeviceBuffer<std::uint32_t> in,
                          simgpu::DeviceBuffer<std::uint32_t> out_vals,
                          simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  radix_select_run(dev, std::get<RadixSelectPlan<std::uint32_t>>(impl.plan),
                   ws, in, out_vals, out_idx);
}

template <typename T>
void plan_faiss_t(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                  int num_warps, std::string_view name) {
  impl.plan = faiss_detail::faiss_select_plan<T>(impl.shape, spec, num_warps,
                                                 name, impl.layout,
                                                 &impl.schedule);
}

inline void plan_warp(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                      const SelectOptions&) {
  impl.u32_carrier
      ? plan_faiss_t<std::uint32_t>(impl, spec, /*num_warps=*/1, "WarpSelect")
      : plan_faiss_t<float>(impl, spec, /*num_warps=*/1, "WarpSelect");
}

inline void plan_block(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                       const SelectOptions&) {
  impl.u32_carrier
      ? plan_faiss_t<std::uint32_t>(impl, spec, /*num_warps=*/4, "BlockSelect")
      : plan_faiss_t<float>(impl, spec, /*num_warps=*/4, "BlockSelect");
}

inline void run_faiss(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  faiss_detail::faiss_select_run(dev, std::get<faiss_detail::FaissSelectPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void run_faiss_u32(simgpu::Device& dev, const PlanImpl& impl,
                          simgpu::Workspace& ws,
                          simgpu::DeviceBuffer<std::uint32_t> in,
                          simgpu::DeviceBuffer<std::uint32_t> out_vals,
                          simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  faiss_detail::faiss_select_run(
      dev, std::get<faiss_detail::FaissSelectPlan<std::uint32_t>>(impl.plan),
      ws, in, out_vals, out_idx);
}

template <typename T>
void plan_bitonic_t(PlanImpl& impl, const simgpu::DeviceSpec& spec) {
  impl.plan =
      bitonic_topk_plan<T>(impl.shape, spec, {}, impl.layout, &impl.schedule);
}

inline void plan_bitonic(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                         const SelectOptions&) {
  impl.u32_carrier ? plan_bitonic_t<std::uint32_t>(impl, spec)
                   : plan_bitonic_t<float>(impl, spec);
}

inline void run_bitonic(simgpu::Device& dev, const PlanImpl& impl,
                        simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                        simgpu::DeviceBuffer<float> out_vals,
                        simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  bitonic_topk_run(dev, std::get<BitonicTopkPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void run_bitonic_u32(simgpu::Device& dev, const PlanImpl& impl,
                            simgpu::Workspace& ws,
                            simgpu::DeviceBuffer<std::uint32_t> in,
                            simgpu::DeviceBuffer<std::uint32_t> out_vals,
                            simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  bitonic_topk_run(dev, std::get<BitonicTopkPlan<std::uint32_t>>(impl.plan),
                   ws, in, out_vals, out_idx);
}

inline void plan_quick(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                       const SelectOptions&) {
  impl.plan = quick_select_plan<float>(impl.shape, spec, {}, impl.layout,
                                       &impl.schedule);
}

inline void run_quick(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  quick_select_run(dev, std::get<QuickSelectPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void plan_bucket(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                        const SelectOptions&) {
  impl.plan = bucket_select_plan<float>(impl.shape, spec, {}, impl.layout,
                                        &impl.schedule);
}

inline void run_bucket(simgpu::Device& dev, const PlanImpl& impl,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                       simgpu::DeviceBuffer<float> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  bucket_select_run(dev, std::get<BucketSelectPlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

inline void plan_sample(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                        const SelectOptions&) {
  impl.plan = sample_select_plan<float>(impl.shape, spec, {}, impl.layout,
                                        &impl.schedule);
}

inline void run_sample(simgpu::Device& dev, const PlanImpl& impl,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                       simgpu::DeviceBuffer<float> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  sample_select_run(dev, std::get<SampleSelectPlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

inline void plan_sort(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                      const SelectOptions&) {
  if (impl.u32_carrier) {
    impl.plan = sort_topk_plan<std::uint32_t>(impl.shape, spec, {},
                                              impl.layout, &impl.schedule);
  } else {
    impl.plan = sort_topk_plan<float>(impl.shape, spec, {}, impl.layout,
                                      &impl.schedule);
  }
}

inline void run_sort(simgpu::Device& dev, const PlanImpl& impl,
                     simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                     simgpu::DeviceBuffer<float> out_vals,
                     simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  sort_topk_run(dev, std::get<SortTopkPlan<float>>(impl.plan), ws, in,
                out_vals, out_idx);
}

inline void run_sort_u32(simgpu::Device& dev, const PlanImpl& impl,
                         simgpu::Workspace& ws,
                         simgpu::DeviceBuffer<std::uint32_t> in,
                         simgpu::DeviceBuffer<std::uint32_t> out_vals,
                         simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  sort_topk_run(dev, std::get<SortTopkPlan<std::uint32_t>>(impl.plan), ws, in,
                out_vals, out_idx);
}

inline void plan_stream_radix(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                              const SelectOptions&) {
  if (impl.u32_carrier) {
    impl.plan = stream_radix_plan<std::uint32_t>(impl.shape, spec, {},
                                                 impl.layout, &impl.schedule);
  } else {
    impl.plan = stream_radix_plan<float>(impl.shape, spec, {}, impl.layout,
                                         &impl.schedule);
  }
}

inline void run_stream_radix(simgpu::Device& dev, const PlanImpl& impl,
                             simgpu::Workspace& ws,
                             simgpu::DeviceBuffer<float> in,
                             simgpu::DeviceBuffer<float> out_vals,
                             simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  stream_radix_run(dev, std::get<StreamRadixPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void run_stream_radix_u32(simgpu::Device& dev, const PlanImpl& impl,
                                 simgpu::Workspace& ws,
                                 simgpu::DeviceBuffer<std::uint32_t> in,
                                 simgpu::DeviceBuffer<std::uint32_t> out_vals,
                                 simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  stream_radix_run(dev, std::get<StreamRadixPlan<std::uint32_t>>(impl.plan),
                   ws, in, out_vals, out_idx);
}

inline void plan_fused_warp(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                            const SelectOptions&) {
  impl.plan = fused_rowwise_plan<float>(impl.shape, spec, {},
                                        /*block_variant=*/false, impl.layout,
                                        &impl.schedule);
}

inline void plan_fused_block(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                             const SelectOptions&) {
  impl.plan = fused_rowwise_plan<float>(impl.shape, spec, {},
                                        /*block_variant=*/true, impl.layout,
                                        &impl.schedule);
}

inline void run_fused(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  fused_rowwise_run(dev, std::get<FusedRowwisePlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

inline void plan_shard_merge(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                             const SelectOptions&) {
  impl.plan = shard_merge_plan<float>(impl.shape, spec, {}, impl.layout,
                                      &impl.schedule);
}

inline void run_shard_merge(simgpu::Device& dev, const PlanImpl& impl,
                            simgpu::Workspace& ws,
                            simgpu::DeviceBuffer<float> in,
                            simgpu::DeviceBuffer<float> out_vals,
                            simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  shard_merge_run(dev, std::get<ShardMergePlan<float>>(impl.plan), ws, in,
                  out_vals, out_idx);
}

inline void plan_bucket_approx(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                               const SelectOptions& opt) {
  BucketApproxOptions o;
  o.recall_target = opt.recall_target;
  impl.plan = bucket_approx_plan<float>(impl.shape, spec, o, impl.layout,
                                        &impl.schedule);
}

inline void run_bucket_approx(simgpu::Device& dev, const PlanImpl& impl,
                              simgpu::Workspace& ws,
                              simgpu::DeviceBuffer<float> in,
                              simgpu::DeviceBuffer<float> out_vals,
                              simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  bucket_approx_run(dev, std::get<BucketApproxPlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

}  // namespace registry_detail

/// One registry row per Algo value.  `k_limit` of 0 means no ceiling below n
/// (paper §2.2 gives the partial-sorting methods their hard limits).  kAuto
/// has no thunks: it is resolved to a concrete algorithm before lookup.
///
/// `dtypes` is the KeyType bitmask the row accepts (key_type_bit): the
/// radix/comparison kernels that are fully carrier-generic declare all five
/// key types and supply `run_u32`; the float-arithmetic tiers (pivots,
/// bucket math, packed-u64 SIMD paths) stay float-family.  `streaming` rows
/// bound their scratch independently of n and are exempt from the device's
/// max_select_elems single-select capacity check.
struct AlgoRow {
  Algo algo;
  std::string_view key;   ///< CLI/parse key (algo_key / parse_algo)
  std::string_view name;  ///< human-readable display name (algo_name)
  std::size_t k_limit;
  bool native_greatest;
  registry_detail::PlanFn plan;
  registry_detail::RunFn run;
  registry_detail::RunFnU32 run_u32;
  unsigned dtypes;  ///< supported-KeyType bitmask (key_type_bit)
  bool streaming;   ///< scratch bounded independent of n; no n capacity cap
};

inline constexpr std::array<AlgoRow, 20> kAlgoTable = {{
    {Algo::kAirTopk, "air", "AIR Top-K", 0, true, &registry_detail::plan_air,
     &registry_detail::run_air, &registry_detail::run_air_u32, kDtypesAll,
     false},
    {Algo::kGridSelect, "grid", "GridSelect", 2048, false,
     &registry_detail::plan_grid, &registry_detail::run_grid,
     &registry_detail::run_grid_u32, kDtypesAll, false},
    {Algo::kRadixSelect, "radixselect", "RadixSelect", 0, false,
     &registry_detail::plan_radix, &registry_detail::run_radix,
     &registry_detail::run_radix_u32, kDtypesAll, false},
    {Algo::kWarpSelect, "warp", "WarpSelect", 2048, false,
     &registry_detail::plan_warp, &registry_detail::run_faiss,
     &registry_detail::run_faiss_u32, kDtypesAll, false},
    {Algo::kBlockSelect, "block", "BlockSelect", 2048, false,
     &registry_detail::plan_block, &registry_detail::run_faiss,
     &registry_detail::run_faiss_u32, kDtypesAll, false},
    {Algo::kBitonicTopk, "bitonic", "Bitonic Top-K", 256, false,
     &registry_detail::plan_bitonic, &registry_detail::run_bitonic,
     &registry_detail::run_bitonic_u32, kDtypesAll, false},
    {Algo::kQuickSelect, "quick", "QuickSelect", 0, false,
     &registry_detail::plan_quick, &registry_detail::run_quick, nullptr,
     kDtypesFloatFamily, false},
    {Algo::kBucketSelect, "bucket", "BucketSelect", 0, false,
     &registry_detail::plan_bucket, &registry_detail::run_bucket, nullptr,
     kDtypesFloatFamily, false},
    {Algo::kSampleSelect, "sample", "SampleSelect", 0, false,
     &registry_detail::plan_sample, &registry_detail::run_sample, nullptr,
     kDtypesFloatFamily, false},
    {Algo::kSort, "sort", "Sort", 0, false, &registry_detail::plan_sort,
     &registry_detail::run_sort, &registry_detail::run_sort_u32, kDtypesAll,
     false},
    {Algo::kAirTopkNoAdaptive, "air-noadaptive", "AIR Top-K (no adaptive)", 0,
     true, &registry_detail::plan_air, &registry_detail::run_air,
     &registry_detail::run_air_u32, kDtypesAll, false},
    {Algo::kAirTopkNoEarlyStop, "air-noearlystop", "AIR Top-K (no early stop)",
     0, true, &registry_detail::plan_air, &registry_detail::run_air,
     &registry_detail::run_air_u32, kDtypesAll, false},
    {Algo::kAirTopkFusedFilter, "air-fusedfilter",
     "AIR Top-K (fused last filter)", 0, true, &registry_detail::plan_air,
     &registry_detail::run_air, &registry_detail::run_air_u32, kDtypesAll,
     false},
    {Algo::kGridSelectThreadQueue, "grid-threadqueue",
     "GridSelect (thread queues)", 2048, false, &registry_detail::plan_grid,
     &registry_detail::run_grid, &registry_detail::run_grid_u32, kDtypesAll,
     false},
    {Algo::kFusedWarpRowwise, "fused-warp", "Fused row-wise (warp/row)", 2048,
     false, &registry_detail::plan_fused_warp, &registry_detail::run_fused,
     nullptr, kDtypesFloatFamily, false},
    {Algo::kFusedBlockRowwise, "fused-block", "Fused row-wise (block/row)",
     2048, false, &registry_detail::plan_fused_block,
     &registry_detail::run_fused, nullptr, kDtypesFloatFamily, false},
    {Algo::kShardMerge, "shard-merge", "Shard candidate merge", 2048, false,
     &registry_detail::plan_shard_merge, &registry_detail::run_shard_merge,
     nullptr, kDtypesFloatFamily, false},
    {Algo::kBucketApprox, "bucket-approx", "Bucketed approximate Top-K", 2048,
     false, &registry_detail::plan_bucket_approx,
     &registry_detail::run_bucket_approx, nullptr, kDtypesFloatFamily, false},
    {Algo::kStreamRadix, "stream-radix", "Streaming radix select", kMaxK,
     true, &registry_detail::plan_stream_radix,
     &registry_detail::run_stream_radix,
     &registry_detail::run_stream_radix_u32, kDtypesAll, true},
    {Algo::kAuto, "auto", "Auto", 0, false, nullptr, nullptr, nullptr,
     kDtypesAll, false},
}};

/// The registry row for `algo`, or nullptr for values outside the enum.
/// Linear scan of the constexpr rows: no hashing, no heap, and the table
/// order matches the enum so the common case exits immediately.
[[nodiscard]] inline const AlgoRow* find_algo_row(Algo algo) {
  const auto idx = static_cast<std::size_t>(algo);
  if (idx < kAlgoTable.size() && kAlgoTable[idx].algo == algo) {
    return &kAlgoTable[idx];
  }
  for (const AlgoRow& row : kAlgoTable) {
    if (row.algo == algo) return &row;
  }
  return nullptr;
}

}  // namespace topk
