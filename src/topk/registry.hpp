#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <variant>

#include "core/topk.hpp"
#include "simgpu/simgpu.hpp"
#include "topk/air_topk.hpp"
#include "topk/bitonic_topk.hpp"
#include "topk/bucket_approx.hpp"
#include "topk/bucket_select.hpp"
#include "topk/fused_rowwise.hpp"
#include "topk/grid_select.hpp"
#include "topk/quick_select.hpp"
#include "topk/radix_select.hpp"
#include "topk/sample_select.hpp"
#include "topk/shard_merge.hpp"
#include "topk/sort_topk.hpp"
#include "topk/warp_select.hpp"

/// Table-driven selector registry: every Algo resolves to one AlgoRow holding
/// its CLI key, display name, K ceiling, native largest-K capability, and the
/// two-phase plan/run thunks.  The four AIR ablation variants collapse onto
/// one plan/run pair parameterized by AirTopkOptions flags, and GridSelect's
/// thread-queue ablation onto grid_select with shared_queue = false.
///
/// Dispatch through the table never touches the heap: row lookup is a linear
/// scan of a constexpr array, the plan lives in a variant inside PlanImpl,
/// and the run thunks std::get the concrete plan out by type.
namespace topk {

/// The concrete, cacheable product of plan_select(): resolved algorithm,
/// shape, the workspace layout whose segments run_select() binds, and the
/// per-algorithm plan.  Owned behind ExecutionPlan's shared_ptr so copies of
/// the handle are cheap and the layout outlives every binding (Workspace
/// captures it by pointer).
struct PlanImpl {
  Algo algo = Algo::kAuto;  ///< concrete algorithm (kAuto resolved at plan)
  Shape shape;              ///< batch/n/k plus the requested order
  /// Largest-K requested on an algorithm without a native descending order:
  /// run_select() negates the input into `seg_negated` on the way in and
  /// negates the output values on the way out (paper WLOG smallest-K).
  bool negate = false;
  std::size_t seg_negated = 0;
  simgpu::WorkspaceLayout layout;
  /// Nominal kernel sequence recorded by the plan function, for the static
  /// plan auditor (src/verify).  Not consumed by run_select.
  simgpu::KernelSchedule schedule;
  std::variant<SortTopkPlan<float>, BitonicTopkPlan<float>,
               QuickSelectPlan<float>, BucketSelectPlan<float>,
               SampleSelectPlan<float>, RadixSelectPlan<float>,
               AirTopkPlan<float>, GridSelectPlan<float>,
               faiss_detail::FaissSelectPlan<float>, FusedRowwisePlan<float>,
               ShardMergePlan<float>, BucketApproxPlan<float>>
      plan;
};

namespace registry_detail {

using PlanFn = void (*)(PlanImpl&, const simgpu::DeviceSpec&,
                        const SelectOptions&);
using RunFn = void (*)(simgpu::Device&, const PlanImpl&, simgpu::Workspace&,
                       simgpu::DeviceBuffer<float>, simgpu::DeviceBuffer<float>,
                       simgpu::DeviceBuffer<std::uint32_t>);

/// One AirTopkOptions for all four AIR table rows: the ablation variants are
/// flag deltas on the same planner, not separate implementations.
inline AirTopkOptions air_options_for(Algo algo, const SelectOptions& opt) {
  AirTopkOptions o;
  o.alpha = opt.alpha;
  o.greatest = opt.greatest;
  if (algo == Algo::kAirTopkNoAdaptive) o.adaptive = false;
  if (algo == Algo::kAirTopkNoEarlyStop) o.early_stopping = false;
  if (algo == Algo::kAirTopkFusedFilter) o.fuse_last_filter = true;
  return o;
}

inline void plan_air(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                     const SelectOptions& opt) {
  impl.plan = air_topk_plan<float>(impl.shape, spec,
                                   air_options_for(impl.algo, opt),
                                   impl.layout, &impl.schedule);
}

inline void run_air(simgpu::Device& dev, const PlanImpl& impl,
                    simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                    simgpu::DeviceBuffer<float> out_vals,
                    simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  air_topk_run(dev, std::get<AirTopkPlan<float>>(impl.plan), ws, in, out_vals,
               out_idx);
}

inline void plan_grid(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                      const SelectOptions&) {
  GridSelectOptions o;
  o.shared_queue = impl.algo != Algo::kGridSelectThreadQueue;
  impl.plan =
      grid_select_plan<float>(impl.shape, spec, o, impl.layout, &impl.schedule);
}

inline void run_grid(simgpu::Device& dev, const PlanImpl& impl,
                     simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                     simgpu::DeviceBuffer<float> out_vals,
                     simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  grid_select_run(dev, std::get<GridSelectPlan<float>>(impl.plan), ws, in,
                  out_vals, out_idx);
}

inline void plan_radix(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                       const SelectOptions&) {
  impl.plan = radix_select_plan<float>(impl.shape, spec, {}, impl.layout,
                                       &impl.schedule);
}

inline void run_radix(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  radix_select_run(dev, std::get<RadixSelectPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void plan_warp(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                      const SelectOptions&) {
  impl.plan = faiss_detail::faiss_select_plan<float>(
      impl.shape, spec, /*num_warps=*/1, "WarpSelect", impl.layout,
      &impl.schedule);
}

inline void plan_block(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                       const SelectOptions&) {
  impl.plan = faiss_detail::faiss_select_plan<float>(
      impl.shape, spec, /*num_warps=*/4, "BlockSelect", impl.layout,
      &impl.schedule);
}

inline void run_faiss(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  faiss_detail::faiss_select_run(dev, std::get<faiss_detail::FaissSelectPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void plan_bitonic(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                         const SelectOptions&) {
  impl.plan = bitonic_topk_plan<float>(impl.shape, spec, {}, impl.layout,
                                       &impl.schedule);
}

inline void run_bitonic(simgpu::Device& dev, const PlanImpl& impl,
                        simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                        simgpu::DeviceBuffer<float> out_vals,
                        simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  bitonic_topk_run(dev, std::get<BitonicTopkPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void plan_quick(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                       const SelectOptions&) {
  impl.plan = quick_select_plan<float>(impl.shape, spec, {}, impl.layout,
                                       &impl.schedule);
}

inline void run_quick(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  quick_select_run(dev, std::get<QuickSelectPlan<float>>(impl.plan), ws, in,
                   out_vals, out_idx);
}

inline void plan_bucket(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                        const SelectOptions&) {
  impl.plan = bucket_select_plan<float>(impl.shape, spec, {}, impl.layout,
                                        &impl.schedule);
}

inline void run_bucket(simgpu::Device& dev, const PlanImpl& impl,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                       simgpu::DeviceBuffer<float> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  bucket_select_run(dev, std::get<BucketSelectPlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

inline void plan_sample(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                        const SelectOptions&) {
  impl.plan = sample_select_plan<float>(impl.shape, spec, {}, impl.layout,
                                        &impl.schedule);
}

inline void run_sample(simgpu::Device& dev, const PlanImpl& impl,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                       simgpu::DeviceBuffer<float> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  sample_select_run(dev, std::get<SampleSelectPlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

inline void plan_sort(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                      const SelectOptions&) {
  impl.plan =
      sort_topk_plan<float>(impl.shape, spec, {}, impl.layout, &impl.schedule);
}

inline void run_sort(simgpu::Device& dev, const PlanImpl& impl,
                     simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                     simgpu::DeviceBuffer<float> out_vals,
                     simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  sort_topk_run(dev, std::get<SortTopkPlan<float>>(impl.plan), ws, in,
                out_vals, out_idx);
}

inline void plan_fused_warp(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                            const SelectOptions&) {
  impl.plan = fused_rowwise_plan<float>(impl.shape, spec, {},
                                        /*block_variant=*/false, impl.layout,
                                        &impl.schedule);
}

inline void plan_fused_block(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                             const SelectOptions&) {
  impl.plan = fused_rowwise_plan<float>(impl.shape, spec, {},
                                        /*block_variant=*/true, impl.layout,
                                        &impl.schedule);
}

inline void run_fused(simgpu::Device& dev, const PlanImpl& impl,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<float> in,
                      simgpu::DeviceBuffer<float> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  fused_rowwise_run(dev, std::get<FusedRowwisePlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

inline void plan_shard_merge(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                             const SelectOptions&) {
  impl.plan = shard_merge_plan<float>(impl.shape, spec, {}, impl.layout,
                                      &impl.schedule);
}

inline void run_shard_merge(simgpu::Device& dev, const PlanImpl& impl,
                            simgpu::Workspace& ws,
                            simgpu::DeviceBuffer<float> in,
                            simgpu::DeviceBuffer<float> out_vals,
                            simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  shard_merge_run(dev, std::get<ShardMergePlan<float>>(impl.plan), ws, in,
                  out_vals, out_idx);
}

inline void plan_bucket_approx(PlanImpl& impl, const simgpu::DeviceSpec& spec,
                               const SelectOptions& opt) {
  BucketApproxOptions o;
  o.recall_target = opt.recall_target;
  impl.plan = bucket_approx_plan<float>(impl.shape, spec, o, impl.layout,
                                        &impl.schedule);
}

inline void run_bucket_approx(simgpu::Device& dev, const PlanImpl& impl,
                              simgpu::Workspace& ws,
                              simgpu::DeviceBuffer<float> in,
                              simgpu::DeviceBuffer<float> out_vals,
                              simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  bucket_approx_run(dev, std::get<BucketApproxPlan<float>>(impl.plan), ws, in,
                    out_vals, out_idx);
}

}  // namespace registry_detail

/// One registry row per Algo value.  `k_limit` of 0 means no ceiling below n
/// (paper §2.2 gives the partial-sorting methods their hard limits).  kAuto
/// has no thunks: it is resolved to a concrete algorithm before lookup.
struct AlgoRow {
  Algo algo;
  std::string_view key;   ///< CLI/parse key (algo_key / parse_algo)
  std::string_view name;  ///< human-readable display name (algo_name)
  std::size_t k_limit;
  bool native_greatest;
  registry_detail::PlanFn plan;
  registry_detail::RunFn run;
};

inline constexpr std::array<AlgoRow, 19> kAlgoTable = {{
    {Algo::kAirTopk, "air", "AIR Top-K", 0, true, &registry_detail::plan_air,
     &registry_detail::run_air},
    {Algo::kGridSelect, "grid", "GridSelect", 2048, false,
     &registry_detail::plan_grid, &registry_detail::run_grid},
    {Algo::kRadixSelect, "radixselect", "RadixSelect", 0, false,
     &registry_detail::plan_radix, &registry_detail::run_radix},
    {Algo::kWarpSelect, "warp", "WarpSelect", 2048, false,
     &registry_detail::plan_warp, &registry_detail::run_faiss},
    {Algo::kBlockSelect, "block", "BlockSelect", 2048, false,
     &registry_detail::plan_block, &registry_detail::run_faiss},
    {Algo::kBitonicTopk, "bitonic", "Bitonic Top-K", 256, false,
     &registry_detail::plan_bitonic, &registry_detail::run_bitonic},
    {Algo::kQuickSelect, "quick", "QuickSelect", 0, false,
     &registry_detail::plan_quick, &registry_detail::run_quick},
    {Algo::kBucketSelect, "bucket", "BucketSelect", 0, false,
     &registry_detail::plan_bucket, &registry_detail::run_bucket},
    {Algo::kSampleSelect, "sample", "SampleSelect", 0, false,
     &registry_detail::plan_sample, &registry_detail::run_sample},
    {Algo::kSort, "sort", "Sort", 0, false, &registry_detail::plan_sort,
     &registry_detail::run_sort},
    {Algo::kAirTopkNoAdaptive, "air-noadaptive", "AIR Top-K (no adaptive)", 0,
     true, &registry_detail::plan_air, &registry_detail::run_air},
    {Algo::kAirTopkNoEarlyStop, "air-noearlystop", "AIR Top-K (no early stop)",
     0, true, &registry_detail::plan_air, &registry_detail::run_air},
    {Algo::kAirTopkFusedFilter, "air-fusedfilter",
     "AIR Top-K (fused last filter)", 0, true, &registry_detail::plan_air,
     &registry_detail::run_air},
    {Algo::kGridSelectThreadQueue, "grid-threadqueue",
     "GridSelect (thread queues)", 2048, false, &registry_detail::plan_grid,
     &registry_detail::run_grid},
    {Algo::kFusedWarpRowwise, "fused-warp", "Fused row-wise (warp/row)", 2048,
     false, &registry_detail::plan_fused_warp, &registry_detail::run_fused},
    {Algo::kFusedBlockRowwise, "fused-block", "Fused row-wise (block/row)",
     2048, false, &registry_detail::plan_fused_block,
     &registry_detail::run_fused},
    {Algo::kShardMerge, "shard-merge", "Shard candidate merge", 2048, false,
     &registry_detail::plan_shard_merge, &registry_detail::run_shard_merge},
    {Algo::kBucketApprox, "bucket-approx", "Bucketed approximate Top-K", 2048,
     false, &registry_detail::plan_bucket_approx,
     &registry_detail::run_bucket_approx},
    {Algo::kAuto, "auto", "Auto", 0, false, nullptr, nullptr},
}};

/// The registry row for `algo`, or nullptr for values outside the enum.
/// Linear scan of the constexpr rows: no hashing, no heap, and the table
/// order matches the enum so the common case exits immediately.
[[nodiscard]] inline const AlgoRow* find_algo_row(Algo algo) {
  const auto idx = static_cast<std::size_t>(algo);
  if (idx < kAlgoTable.size() && kAlgoTable[idx].algo == algo) {
    return &kAlgoTable[idx];
  }
  for (const AlgoRow& row : kAlgoTable) {
    if (row.algo == algo) return &row;
  }
  return nullptr;
}

}  // namespace topk
