#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/bitonic.hpp"
#include "topk/common.hpp"

namespace topk {

/// Options for the SampleSelect baseline.
struct SampleSelectOptions {
  int num_buckets = 256;       ///< buckets per level (255 splitters)
  std::size_t sample_size = 1024;
  std::size_t small_threshold = 4096;  ///< final on-chip sort below this
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
};

/// Execution plan for SampleSelect: validated shape plus workspace segments.
/// Host staging for the copied-back sample, the splitters (sorted on the
/// host, then uploaded into the pre-planned device segment with
/// upload_recorded — the allocation-free H2D path) and the class histogram.
template <typename T>
struct SampleSelectPlan {
  SampleSelectOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t seg_val[2] = {0, 0};
  std::size_t seg_idx[2] = {0, 0};
  std::size_t seg_hist = 0;
  std::size_t seg_counters = 0;
  std::size_t seg_sample = 0;
  std::size_t seg_splitters = 0;   // device copy of the splitters
  std::size_t seg_host_hist = 0;   // host staging
  std::size_t seg_host_sample = 0;
  std::size_t seg_host_split = 0;
};

/// Footprint contracts for the SampleSelect kernels.  "hist_memset" is
/// shared with BucketSelect (identical spelling, first registration wins);
/// the splitter operand is optional because degenerate levels fall back to
/// a single-pivot partition that never touches it.
inline void register_sample_select_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"hist_memset",
       {
           {"hist",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kSegElems}},
            4},
           {"counters",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 2}},
            4,
            /*optional=*/true},
       }});
  simgpu::register_footprint(
      {"sample",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"sample",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kSegElems}},
            8},
       }});
  simgpu::register_footprint(
      {"small_sort",
       {
           {"src_val", Access::kRead, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 8},
           {"src_idx", Access::kRead, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
  simgpu::register_footprint(
      {"sample_histogram",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"splitters",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"hist", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
       }});
  simgpu::register_footprint(
      {"sample_filter",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"splitters",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"counters", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kOne, 2}}, 4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchK}},
            4},
           {"dst_val",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            4},
       }});
  register_copy_remainder_footprint();
}

/// Phase 1 of SampleSelect.
template <typename T>
SampleSelectPlan<T> sample_select_plan(const Shape& s,
                                       const simgpu::DeviceSpec& spec,
                                       const SampleSelectOptions& opt,
                                       simgpu::WorkspaceLayout& layout,
                                       simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);

  SampleSelectPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  const auto nb = static_cast<std::size_t>(opt.num_buckets);
  p.seg_val[0] = layout.add<T>("sample cand vals 0", s.n);
  p.seg_val[1] = layout.add<T>("sample cand vals 1", s.n);
  p.seg_idx[0] = layout.add<std::uint32_t>("sample cand idx 0", s.n);
  p.seg_idx[1] = layout.add<std::uint32_t>("sample cand idx 1", s.n);
  p.seg_hist = layout.add<std::uint32_t>("sample bucket histogram", nb);
  p.seg_counters = layout.add<std::uint32_t>("sample cursors", 2);
  p.seg_sample = layout.add<T>("sample probe", opt.sample_size);
  p.seg_splitters = layout.add<T>("splitters", nb - 1);
  p.seg_host_hist = layout.add<std::uint32_t>("sample host hist", nb,
                                              /*host=*/true);
  p.seg_host_sample = layout.add<T>("sample host buf", opt.sample_size,
                                    /*host=*/true);
  p.seg_host_split = layout.add<T>("sample host split", nb - 1,
                                   /*host=*/true);

  if (sched != nullptr) {
    register_sample_select_footprints();
    // Nominal per-problem unrolling: two splitter levels (input, then the
    // ping-pong candidates) followed by the terminal on-chip sort.
    const GridShape shape =
        make_grid(1, s.n, spec, opt.block_threads, opt.items_per_block);
    int cur = 0;
    for (int level = 0; level < 2; ++level) {
      const bool fi = (level == 0);
      std::vector<simgpu::OperandBind> sample_binds;
      if (fi) {
        sample_binds.push_back({"in", simgpu::kBindInput});
      } else {
        sample_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
      }
      sample_binds.push_back({"sample", static_cast<int>(p.seg_sample)});
      simgpu::record_launch(sched, "sample", 1, opt.block_threads, 1, s.n,
                            s.k, std::move(sample_binds));
      simgpu::record_host(
          sched, "sample",
          {{"sample", static_cast<int>(p.seg_sample), simgpu::Access::kRead},
           {"host_sample", static_cast<int>(p.seg_host_sample),
            simgpu::Access::kWrite}});
      simgpu::record_host(
          sched, "sort_sample",
          {{"host_sample", static_cast<int>(p.seg_host_sample),
            simgpu::Access::kRead},
           {"host_split", static_cast<int>(p.seg_host_split),
            simgpu::Access::kWrite}});
      simgpu::record_host(
          sched, "splitters",
          {{"host_split", static_cast<int>(p.seg_host_split),
            simgpu::Access::kRead},
           {"splitters", static_cast<int>(p.seg_splitters),
            simgpu::Access::kWrite}});
      simgpu::record_launch(sched, "hist_memset", 1, 32, 1, s.n, s.k,
                            {{"hist", static_cast<int>(p.seg_hist)},
                             {"counters", static_cast<int>(p.seg_counters)}});
      std::vector<simgpu::OperandBind> hist_binds;
      if (fi) {
        hist_binds.push_back({"in", simgpu::kBindInput});
      } else {
        hist_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
      }
      hist_binds.push_back({"splitters", static_cast<int>(p.seg_splitters)});
      hist_binds.push_back({"hist", static_cast<int>(p.seg_hist)});
      simgpu::record_launch(sched, "sample_histogram", shape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(hist_binds));
      simgpu::record_host(
          sched, "class histogram",
          {{"hist", static_cast<int>(p.seg_hist), simgpu::Access::kRead},
           {"host_hist", static_cast<int>(p.seg_host_hist),
            simgpu::Access::kWrite}});
      simgpu::record_host(sched, "scan+find_bkt",
                          {{"host_hist", static_cast<int>(p.seg_host_hist),
                            simgpu::Access::kRead}});
      std::vector<simgpu::OperandBind> filter_binds;
      if (fi) {
        filter_binds.push_back({"in", simgpu::kBindInput});
      } else {
        filter_binds.push_back({"src_val", static_cast<int>(p.seg_val[cur])});
        filter_binds.push_back({"src_idx", static_cast<int>(p.seg_idx[cur])});
      }
      filter_binds.push_back({"splitters", static_cast<int>(p.seg_splitters)});
      filter_binds.push_back({"counters", static_cast<int>(p.seg_counters)});
      filter_binds.push_back({"out_vals", simgpu::kBindOutVals});
      filter_binds.push_back({"out_idx", simgpu::kBindOutIdx});
      filter_binds.push_back({"dst_val", static_cast<int>(p.seg_val[1 - cur])});
      filter_binds.push_back({"dst_idx", static_cast<int>(p.seg_idx[1 - cur])});
      simgpu::record_launch(sched, "sample_filter", shape.total_blocks(),
                            opt.block_threads, 1, s.n, s.k,
                            std::move(filter_binds));
      cur = 1 - cur;
    }
    simgpu::record_launch(sched, "small_sort", 1, opt.block_threads, 1, s.n,
                          s.k,
                          {{"src_val", static_cast<int>(p.seg_val[cur])},
                           {"src_idx", static_cast<int>(p.seg_idx[cur])},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
  }
  return p;
}

/// Phase 2 of SampleSelect (Ribizel & Anzt 2020 / GpuSelection):
/// partition-based selection that samples the candidates, sorts the sample
/// on the host, and uses order-statistic splitters as pivots.  Each level
/// costs a sample kernel + D2H, a host sort, an H2D splitter upload, a
/// bucketing kernel (binary search per element) + histogram D2H, and a
/// filter kernel — the statistics gathering the paper contrasts with
/// RadixSelect's data-independent pivots (§2.2).
template <typename T>
void sample_select_run(simgpu::Device& dev, const SampleSelectPlan<T>& plan,
                       simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                       simgpu::DeviceBuffer<T> out_vals,
                       simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const SampleSelectOptions& opt = plan.opt;
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("sample_select: buffer too small");
  }

  const int nb = opt.num_buckets;
  simgpu::DeviceBuffer<T> cand_val[2] = {ws.get<T>(plan.seg_val[0]),
                                         ws.get<T>(plan.seg_val[1])};
  simgpu::DeviceBuffer<std::uint32_t> cand_idx[2] = {
      ws.get<std::uint32_t>(plan.seg_idx[0]),
      ws.get<std::uint32_t>(plan.seg_idx[1])};
  auto ghist = ws.get<std::uint32_t>(plan.seg_hist);
  auto counters = ws.get<std::uint32_t>(plan.seg_counters);
  auto sample_buf = ws.get<T>(plan.seg_sample);
  auto splitter_buf = ws.get<T>(plan.seg_splitters);
  const std::span<std::uint32_t> host_hist(
      ws.host_ptr<std::uint32_t>(plan.seg_host_hist),
      static_cast<std::size_t>(nb));
  T* const host_sample = ws.host_ptr<T>(plan.seg_host_sample);
  const std::span<T> splitters(ws.host_ptr<T>(plan.seg_host_split),
                               static_cast<std::size_t>(nb - 1));

  for (std::size_t prob = 0; prob < batch; ++prob) {
    std::uint64_t k_rem = k;
    std::uint64_t count = n;
    std::uint64_t out_cursor = prob * k;
    int cur = 0;
    bool from_input = true;
    bool force_pivot = false;

    while (true) {
      const auto src_val = cand_val[cur];
      const auto src_idx = cand_idx[cur];

      if (count == k_rem) {
        const std::uint64_t dst = out_cursor;
        const bool fi = from_input;
        const GridShape shape = make_grid(1, count, dev.spec(),
                                          opt.block_threads,
                                          opt.items_per_block);
        const int bpp = shape.blocks_per_problem;
        simgpu::LaunchConfig cfg{"CopyRemainder", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          for (std::size_t i = begin; i < end; ++i) {
            if (fi) {
              ctx.store(out_vals, dst + i, ctx.load(in, prob * n + i));
              ctx.store(out_idx, dst + i, static_cast<std::uint32_t>(i));
            } else {
              ctx.store(out_vals, dst + i, ctx.load(src_val, i));
              ctx.store(out_idx, dst + i, ctx.load(src_idx, i));
            }
          }
        });
        out_cursor += count;
        dev.synchronize("final");
        break;
      }

      if (!from_input && count <= opt.small_threshold) {
        // Final level: on-chip bitonic sort of the remaining candidates.
        const std::size_t padded = next_pow2(count);
        const std::uint64_t take = k_rem;
        const std::uint64_t dst = out_cursor;
        simgpu::LaunchConfig cfg{"small_sort", 1, opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto keys = ctx.shared<T>(padded, "sample sort keys");
          auto idx = ctx.shared<std::uint32_t>(padded, "sample sort idx");
          for (std::size_t i = 0; i < padded; ++i) {
            if (i < count) {
              keys[i] = ctx.load(src_val, i);
              idx[i] = ctx.load(src_idx, i);
            } else {
              keys[i] = sort_sentinel<T>();
              idx[i] = 0;
            }
          }
          bitonic_sort(ctx, keys, idx);
          for (std::uint64_t i = 0; i < take; ++i) {
            ctx.store(out_vals, dst + i, keys[i]);
            ctx.store(out_idx, dst + i, idx[i]);
          }
        });
        out_cursor += take;
        dev.synchronize("final");
        break;
      }

      // ---- sample kernel + host sort --------------------------------------
      const std::size_t s = std::min<std::size_t>(opt.sample_size, count);
      {
        simgpu::LaunchConfig cfg{"sample", 1, opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          for (std::size_t i = 0; i < s; ++i) {
            const std::size_t at = i * count / s;
            const T v = from_input ? ctx.load(in, prob * n + at)
                                   : ctx.load(src_val, at);
            ctx.store(sample_buf, i, v);
          }
          ctx.ops(2 * s);
        });
      }
      const std::span<T> sample(host_sample, s);
      dev.copy_to_host(sample_buf.subspan(0, s), sample, "sample");
      dev.host_compute("sort_sample",
                       static_cast<std::uint64_t>(s) * 10);
      std::sort(sample.begin(), sample.end());

      for (int i = 1; i < nb; ++i) {
        splitters[static_cast<std::size_t>(i - 1)] =
            sample[static_cast<std::size_t>(i) * s /
                   static_cast<std::size_t>(nb)];
      }
      bool degenerate =
          !(splitters.front() < splitters.back()) || force_pivot;
      force_pivot = false;

      // Degenerate sample (duplicate-dominated data): fall back to a
      // three-way pivot partition around the repeated value.
      const T pivot = splitters[splitters.size() / 2];
      dev.upload_recorded(splitter_buf, std::span<const T>(splitters),
                          "splitters");

      const GridShape shape = make_grid(1, count, dev.spec(),
                                        opt.block_threads,
                                        opt.items_per_block);
      const int bpp = shape.blocks_per_problem;
      const int classes = degenerate ? 3 : nb;

      // ---- classify + histogram -------------------------------------------
      {
        simgpu::LaunchConfig cfg{"hist_memset", 1, 32, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          for (int d = 0; d < classes; ++d) {
            ctx.store<std::uint32_t>(ghist, static_cast<std::size_t>(d), 0);
          }
          ctx.store<std::uint32_t>(counters, 0, 0);
          ctx.store<std::uint32_t>(counters, 1, 0);
        });
      }
      const std::size_t num_splitters = splitters.size();
      const auto classify = [=](simgpu::BlockCtx& ctx, T v) -> std::uint32_t {
        if (degenerate) {
          return v < pivot ? 0u : (v == pivot ? 1u : 2u);
        }
        // Binary search: number of splitters <= v.
        std::size_t lo = 0, hi = num_splitters;
        while (lo < hi) {
          const std::size_t mid = (lo + hi) / 2;
          if (ctx.load(splitter_buf, mid) <= v) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        return static_cast<std::uint32_t>(lo);
      };
      {
        simgpu::LaunchConfig cfg{"sample_histogram", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto shist = ctx.shared_zero<std::uint32_t>(
              static_cast<std::size_t>(classes));
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          for (std::size_t i = begin; i < end; ++i) {
            const T v =
                from_input ? ctx.load(in, prob * n + i) : ctx.load(src_val, i);
            ++shist[classify(ctx, v)];
          }
          ctx.ops(10 * (end - begin));  // ~log2(255) compares per element
          ctx.sync();
          for (int d = 0; d < classes; ++d) {
            if (shist[static_cast<std::size_t>(d)] != 0) {
              ctx.atomic_add_scattered(ghist, static_cast<std::size_t>(d),
                                       shist[static_cast<std::size_t>(d)]);
            }
          }
        });
      }
      dev.copy_to_host(ghist.subspan(0, static_cast<std::size_t>(classes)),
                       host_hist.subspan(0, static_cast<std::size_t>(classes)),
                       "class histogram");
      dev.host_compute("scan+find_bkt",
                       static_cast<std::uint64_t>(3 * classes));
      std::uint64_t less = 0;
      std::uint32_t target = 0;
      std::uint64_t target_count = 0;
      for (int d = 0; d < classes; ++d) {
        const std::uint32_t c = host_hist[static_cast<std::size_t>(d)];
        if (less + c >= k_rem) {
          target = static_cast<std::uint32_t>(d);
          target_count = c;
          break;
        }
        less += c;
      }

      // ---- filter -----------------------------------------------------------
      const auto dst_val = cand_val[1 - cur];
      const auto dst_idx = cand_idx[1 - cur];
      const std::uint64_t out_base = out_cursor;
      {
        simgpu::LaunchConfig cfg{"sample_filter", shape.total_blocks(),
                                 opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(count, bpp, ctx.block_idx());
          AggregatedAppender<T, std::uint32_t> out_app(
              out_vals, out_idx, out_base, counters, 0, less,
              "sample_select results");
          AggregatedAppender<T, std::uint32_t> cand_app(
              dst_val, dst_idx, 0, counters, 1, count,
              "sample_select candidates");
          for (std::size_t i = begin; i < end; ++i) {
            T v;
            std::uint32_t id;
            if (from_input) {
              v = ctx.load(in, prob * n + i);
              id = static_cast<std::uint32_t>(i);
            } else {
              v = ctx.load(src_val, i);
              id = ctx.load(src_idx, i);
            }
            const std::uint32_t b = classify(ctx, v);
            if (b < target) {
              out_app.push(ctx, v, id);
            } else if (b == target) {
              cand_app.push(ctx, v, id);
            }
          }
          out_app.flush(ctx);
          cand_app.flush(ctx);
          ctx.ops(11 * (end - begin));
        });
      }
      dev.synchronize("host check");
      out_cursor += less;
      k_rem -= less;
      const std::uint64_t prev_count = count;
      count = target_count;
      cur = 1 - cur;
      from_input = false;

      if (degenerate && target == 1) {
        // Pivot mode landed in the *equal* class: every remaining candidate
        // has the same value, so any k_rem of them complete the result.
        const auto fv = cand_val[cur];
        const auto fi2 = cand_idx[cur];
        const std::uint64_t take = k_rem;
        const std::uint64_t dst = out_cursor;
        simgpu::LaunchConfig cfg{"CopyRemainder", 1, opt.block_threads, 1, n,
                                 k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          for (std::uint64_t i = 0; i < take; ++i) {
            ctx.store(out_vals, dst + i, ctx.load(fv, i));
            ctx.store(out_idx, dst + i, ctx.load(fi2, i));
          }
        });
        out_cursor += take;
        dev.synchronize("final");
        break;
      }
      if (count == prev_count) {
        // Splitter buckets failed to shrink the candidate set (can happen
        // when the sample misses the diversity of the data): fall back to a
        // three-way pivot partition next level, which always makes progress.
        force_pivot = true;
      }
    }
    if (out_cursor != prob * k + k) {
      throw std::logic_error("sample_select: result count mismatch");
    }
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void sample_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                   std::size_t batch, std::size_t n, std::size_t k,
                   simgpu::DeviceBuffer<T> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx,
                   const SampleSelectOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      sample_select_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  sample_select_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
