#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/partial_sort_common.hpp"

namespace topk {

/// Options for the shard candidate merge.
struct ShardMergeOptions {
  /// Sorted-run length (power of two, >= next_pow2(k)); 0 picks
  /// min(next_pow2(n), max(next_pow2(k), 4096)) and shrinks to fit shared
  /// memory.  Exposed for tests that want to force deep merge trees on
  /// small inputs.
  std::size_t run_len = 0;
};

/// Execution plan for the shard candidate merge: sort fixed-length runs of
/// the input, then reduce them with a binary merge-prune tree.  Built as the
/// reduction stage of topk::shard — per-shard candidate lists land
/// concatenated on the merge device and this plan boils them down to one
/// exact top-k — but it is a complete registry algorithm in its own right
/// (any input is "a concatenation of candidate lists" of one element each),
/// which is what lets the ordinary algorithm test matrix and the static
/// auditor cover the merge machinery without a multi-device harness.
template <typename T>
struct ShardMergePlan {
  ShardMergeOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t cap = 0;      ///< next_pow2(k): per-run candidate list length
  std::size_t run_len = 0;  ///< sorted-run length L (power of two, >= cap)
  std::size_t runs = 0;     ///< R = ceil(n / L) runs per problem
  int levels = 0;           ///< merge rounds until one run remains
  /// Ping-pong candidate buffers: buffer 0 holds the sorted runs and every
  /// even-round output, buffer 1 (allocated only when runs > 1) the odd
  /// rounds.  `stride` is the buffer's runs-per-problem capacity.
  std::size_t seg_val[2] = {0, 0};
  std::size_t seg_idx[2] = {0, 0};
  std::size_t stride[2] = {0, 0};
};

/// Footprint contracts for the shard-merge kernel family.  The run buffers
/// are tuning-sized (cap and run count depend on k and run_len), so their
/// extents are segment-bounded; per-level kernels launch under interned
/// "ShardMergeLevel(level)" names and resolve to the bare family row.
inline void register_shard_merge_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"ShardMergeSort",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"run_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"run_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"ShardMergeSortEmit",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
  simgpu::register_footprint(
      {"ShardMergeLevel",
       {
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"dst_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"ShardMergeEmit",
       {
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Phase 1: size the run decomposition and the merge tree, lay out the
/// ping-pong candidate buffers, and record the full kernel sequence.
///
/// Correctness of the pruning: within one sorted run, any element ranked
/// <= k in the whole problem is ranked <= k <= cap in its run, so keeping
/// each run's cap smallest loses nothing; merge_prune keeps the cap
/// smallest of a union of two such lists, preserving the invariant up the
/// tree (the standard tournament argument).  Short tail runs are padded
/// with the +inf sentinel, which can never displace a real candidate.
template <typename T>
ShardMergePlan<T> shard_merge_plan(const Shape& s,
                                   const simgpu::DeviceSpec& spec,
                                   const ShardMergeOptions& opt,
                                   simgpu::WorkspaceLayout& layout,
                                   simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);
  if (s.k > kMaxSelectionK) {
    throw std::invalid_argument("shard_merge: k exceeds the " +
                                std::to_string(kMaxSelectionK) +
                                " candidate-list limit");
  }

  ShardMergePlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.cap = next_pow2(s.k);
  register_shard_merge_footprints();

  // Run length: long enough that the sort amortizes, short enough for one
  // block's shared memory (keys + indices); never below cap, so every run
  // can seed a full candidate list.
  const std::size_t elem_bytes = sizeof(T) + sizeof(std::uint32_t);
  p.run_len = opt.run_len != 0
                  ? std::max(next_pow2(opt.run_len), p.cap)
                  : std::min(next_pow2(s.n),
                             std::max<std::size_t>(p.cap, 4096));
  while (p.run_len > p.cap &&
         p.run_len * elem_bytes > spec.shared_mem_per_block) {
    p.run_len /= 2;
  }
  if (p.run_len * elem_bytes > spec.shared_mem_per_block ||
      2 * p.cap * elem_bytes > spec.shared_mem_per_block) {
    throw std::invalid_argument(
        "shard_merge: k too large for this device's shared memory");
  }

  p.runs = (s.n + p.run_len - 1) / p.run_len;
  for (std::size_t r = p.runs; r > 1; r = (r + 1) / 2) ++p.levels;

  // Single-run fast path: the whole problem fits one sorted run, so the
  // sort kernel emits the k best directly — no run buffers, no tree, no
  // separate emit launch.  This is the common shape for the cross-shard
  // reduction (shards * k candidates are few) and halves its launch count.
  if (p.runs == 1) {
    simgpu::record_launch(sched, "ShardMergeSortEmit",
                          static_cast<int>(s.batch), 1024, s.batch, s.n, s.k,
                          {{"in", simgpu::kBindInput},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
    return p;
  }

  p.stride[0] = p.runs;
  p.seg_val[0] =
      layout.add<T>("shard merge runs val", s.batch * p.runs * p.cap);
  p.seg_idx[0] = layout.add<std::uint32_t>("shard merge runs idx",
                                           s.batch * p.runs * p.cap);
  if (p.runs > 1) {
    p.stride[1] = (p.runs + 1) / 2;
    p.seg_val[1] =
        layout.add<T>("shard merge pong val", s.batch * p.stride[1] * p.cap);
    p.seg_idx[1] = layout.add<std::uint32_t>("shard merge pong idx",
                                             s.batch * p.stride[1] * p.cap);
  }

  simgpu::record_launch(sched, "ShardMergeSort",
                        static_cast<int>(s.batch * p.runs), 1024, s.batch,
                        s.n, s.k,
                        {{"in", simgpu::kBindInput},
                         {"run_val", static_cast<int>(p.seg_val[0])},
                         {"run_idx", static_cast<int>(p.seg_idx[0])}});
  std::size_t r_in = p.runs;
  for (int level = 1; level <= p.levels; ++level) {
    const std::size_t r_out = (r_in + 1) / 2;
    const int src = (level - 1) % 2;
    const int dst = level % 2;
    simgpu::record_launch(
        sched,
        simgpu::intern_name("ShardMergeLevel(" + std::to_string(level) + ")"),
        static_cast<int>(s.batch * r_out), 1024, s.batch, s.n, s.k,
        {{"src_val", static_cast<int>(p.seg_val[src])},
         {"src_idx", static_cast<int>(p.seg_idx[src])},
         {"dst_val", static_cast<int>(p.seg_val[dst])},
         {"dst_idx", static_cast<int>(p.seg_idx[dst])}});
    r_in = r_out;
  }
  const int fin = p.levels % 2;
  simgpu::record_launch(sched, "ShardMergeEmit", static_cast<int>(s.batch),
                        1024, s.batch, s.n, s.k,
                        {{"src_val", static_cast<int>(p.seg_val[fin])},
                         {"src_idx", static_cast<int>(p.seg_idx[fin])},
                         {"out_vals", simgpu::kBindOutVals},
                         {"out_idx", simgpu::kBindOutIdx}});
  return p;
}

namespace shard_merge_detail {

/// Pull `count` already-sorted (value, index) pairs from device memory into
/// a pair of shared-memory views, riding the tile path when enabled (same
/// idiom as the fused row-wise merge kernel).
template <typename T, typename KS, typename IS>
void load_list(simgpu::BlockCtx& ctx, simgpu::DeviceBuffer<T> val,
               simgpu::DeviceBuffer<std::uint32_t> idx, std::size_t base,
               KS& dst_keys, IS& dst_idx, std::size_t count) {
  if (simgpu::tile_path_enabled()) {
    const auto rk = raw_view(dst_keys);
    const auto ri = raw_view(dst_idx);
    std::size_t i = 0;
    while (i < count) {
      const std::size_t c = std::min(simgpu::kTileElems, count - i);
      const std::span<const T> tk = ctx.load_tile(val, base + i, c);
      const std::span<const std::uint32_t> tix = ctx.load_tile(idx, base + i, c);
      if (!rk.empty() && !ri.empty()) {
        std::copy(tk.begin(), tk.end(),
                  rk.begin() + static_cast<std::ptrdiff_t>(i));
        std::copy(tix.begin(), tix.end(),
                  ri.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        for (std::size_t u = 0; u < tk.size(); ++u) {
          dst_keys[i + u] = tk[u];
          dst_idx[i + u] = tix[u];
        }
      }
      i += c;
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      dst_keys[i] = ctx.load(val, base + i);
      dst_idx[i] = ctx.load(idx, base + i);
    }
  }
}

/// Store the first `count` pairs of a pair of shared views to device memory.
template <typename T, typename KS, typename IS>
void store_list(simgpu::BlockCtx& ctx, const KS& src_keys, const IS& src_idx,
                simgpu::DeviceBuffer<T> val,
                simgpu::DeviceBuffer<std::uint32_t> idx, std::size_t base,
                std::size_t count) {
  if (simgpu::tile_path_enabled()) {
    const auto rk = raw_view(src_keys);
    const auto ri = raw_view(src_idx);
    if (!rk.empty() && !ri.empty()) {
      std::size_t i = 0;
      while (i < count) {
        const std::size_t c = std::min(simgpu::kTileElems, count - i);
        ctx.store_tile(val, base + i,
                       std::span<const T>(rk.data() + i, c));
        ctx.store_tile(idx, base + i,
                       std::span<const std::uint32_t>(ri.data() + i, c));
        i += c;
      }
      return;
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    ctx.store(val, base + i, src_keys[i]);
    ctx.store(idx, base + i, src_idx[i]);
  }
}

/// Load one run of `count` input values starting at flat offset `in_base`
/// into shared views (indices seeded `begin + i`, tail padded with the
/// sentinel), then sort it ascending.  Warpfast fast path for packable
/// keys: charge the exact data-oblivious network cost and sort packed
/// (key, index) words host-side — the value sequence is identical to the
/// network's, only the order of equal keys can differ, which the result
/// contract leaves open (merge_prune precedent).  Only the first `keep`
/// pairs are guaranteed written back.
template <typename T, typename KS, typename IS>
void sort_run(simgpu::BlockCtx& ctx, simgpu::DeviceBuffer<T> in,
              std::size_t in_base, std::size_t begin, std::size_t count,
              std::size_t L, std::size_t keep, KS& keys, IS& idx) {
  if (simgpu::tile_path_enabled()) {
    const auto rk = raw_view(keys);
    std::size_t i = 0;
    while (i < count) {
      const std::size_t c = std::min(simgpu::kTileElems, count - i);
      const std::span<const T> tv = ctx.load_tile(in, in_base + i, c);
      if (!rk.empty()) {
        std::copy(tv.begin(), tv.end(),
                  rk.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        for (std::size_t u = 0; u < tv.size(); ++u) keys[i + u] = tv[u];
      }
      i += c;
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = ctx.load(in, in_base + i);
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    idx[i] = static_cast<std::uint32_t>(begin + i);
  }
  for (std::size_t i = count; i < L; ++i) {
    keys[i] = sort_sentinel<T>();
    idx[i] = 0;
  }

  if constexpr (kPackableKey<T>) {
    if (ctx.warpfast_enabled()) {
      ctx.ops(bitonic_sort_ops(L));
      const auto rk = raw_view(keys);
      const auto rx = raw_view(idx);
      simgpu::ScratchVec<std::uint64_t> packed;
      packed.resize(L);
      if (!rk.empty() && !rx.empty()) {
        for (std::size_t i = 0; i < L; ++i) {
          packed[i] = pack_key_idx<T>(rk[i], rx[i]);
        }
      } else {
        for (std::size_t i = 0; i < L; ++i) {
          packed[i] = pack_key_idx<T>(keys[i], idx[i]);
        }
      }
      std::sort(packed.begin(), packed.end());
      for (std::size_t i = 0; i < keep; ++i) {
        keys[i] = ord_to_key<T>(static_cast<std::uint32_t>(packed[i] >> 32));
        idx[i] = static_cast<std::uint32_t>(packed[i]);
      }
      return;
    }
  }
  bitonic_sort(ctx, keys, idx);
}

}  // namespace shard_merge_detail

/// Phase 2: three launches — sort the runs, reduce them pairwise level by
/// level, emit the k smallest of the last run.  When the whole problem fits
/// a single run (the common cross-shard reduction shape: S*k candidates,
/// S*k <= run length) the plan collapses to ONE launch that sorts in shared
/// memory and emits the k best directly — no run buffers, no tree, no
/// separate emit kernel.
template <typename T>
void shard_merge_run(simgpu::Device& dev, const ShardMergePlan<T>& plan,
                     simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                     simgpu::DeviceBuffer<T> out_vals,
                     simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  if (in.size() < plan.batch * plan.n ||
      out_vals.size() < plan.batch * plan.k ||
      out_idx.size() < plan.batch * plan.k) {
    throw std::invalid_argument("shard_merge: buffer too small");
  }
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const std::size_t cap = plan.cap;
  const std::size_t L = plan.run_len;
  const std::size_t R = plan.runs;

  // ---- single-run fast path: sort once, emit directly --------------------
  if (R == 1) {
    simgpu::LaunchConfig cfg{"ShardMergeSortEmit", static_cast<int>(batch),
                             1024, batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto prob = static_cast<std::size_t>(ctx.block_idx());
      auto keys = ctx.shared<T>(L, "shard sort keys");
      auto idx = ctx.shared<std::uint32_t>(L, "shard sort idx");
      shard_merge_detail::sort_run(ctx, in, prob * n, 0, n, L, k, keys, idx);
      shard_merge_detail::store_list(ctx, keys, idx, out_vals, out_idx,
                                     prob * k, k);
    });
    return;
  }

  simgpu::DeviceBuffer<T> run_val[2];
  simgpu::DeviceBuffer<std::uint32_t> run_idx[2];
  run_val[0] = ws.get<T>(plan.seg_val[0]);
  run_idx[0] = ws.get<std::uint32_t>(plan.seg_idx[0]);
  run_val[1] = ws.get<T>(plan.seg_val[1]);
  run_idx[1] = ws.get<std::uint32_t>(plan.seg_idx[1]);

  // ---- kernel 1: sort fixed-length runs, publish each run's cap smallest -
  {
    simgpu::LaunchConfig cfg{"ShardMergeSort",
                             static_cast<int>(batch * R), 1024, batch, n, k};
    const auto rv = run_val[0];
    const auto ri = run_idx[0];
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto bi = static_cast<std::size_t>(ctx.block_idx());
      const std::size_t prob = bi / R;
      const std::size_t run = bi % R;
      const std::size_t begin = run * L;
      const std::size_t count = std::min(L, n - begin);
      auto keys = ctx.shared<T>(L, "shard sort keys");
      auto idx = ctx.shared<std::uint32_t>(L, "shard sort idx");
      shard_merge_detail::sort_run(ctx, in, prob * n + begin, begin, count, L,
                                   cap, keys, idx);
      shard_merge_detail::store_list(ctx, keys, idx, rv, ri,
                                     (prob * R + run) * cap, cap);
    });
  }

  // ---- kernels 2..: pairwise merge-prune tree over the runs -------------
  std::size_t r_in = R;
  for (int level = 1; level <= plan.levels; ++level) {
    const std::size_t r_out = (r_in + 1) / 2;
    const int src = (level - 1) % 2;
    const int dst = level % 2;
    const std::size_t src_stride = plan.stride[src];
    const std::size_t dst_stride = plan.stride[dst];
    const auto sv = run_val[src];
    const auto si = run_idx[src];
    const auto dv = run_val[dst];
    const auto di = run_idx[dst];
    const std::size_t r_in_now = r_in;
    const std::string_view level_name =
        simgpu::intern_name("ShardMergeLevel(" + std::to_string(level) + ")");
    simgpu::LaunchConfig cfg{level_name, static_cast<int>(batch * r_out), 1024,
                             batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto bi = static_cast<std::size_t>(ctx.block_idx());
      const std::size_t prob = bi / r_out;
      const std::size_t j = bi % r_out;
      const std::size_t src_base = (prob * src_stride + 2 * j) * cap;
      const std::size_t dst_base = (prob * dst_stride + j) * cap;
      if (2 * j + 1 < r_in_now) {
        auto acc_keys = ctx.shared<T>(cap, "shard merge acc keys");
        auto acc_idx = ctx.shared<std::uint32_t>(cap, "shard merge acc idx");
        auto tmp_keys = ctx.shared<T>(cap, "shard merge tmp keys");
        auto tmp_idx = ctx.shared<std::uint32_t>(cap, "shard merge tmp idx");
        shard_merge_detail::load_list(ctx, sv, si, src_base, acc_keys,
                                      acc_idx, cap);
        shard_merge_detail::load_list(ctx, sv, si, src_base + cap, tmp_keys,
                                      tmp_idx, cap);
        merge_prune(ctx, acc_keys, acc_idx, tmp_keys, tmp_idx);
        shard_merge_detail::store_list(ctx, acc_keys, acc_idx, dv, di,
                                       dst_base, cap);
      } else {
        // Odd leftover run: pass it through to the next level unchanged.
        copy_pairs(ctx, sv, si, src_base, dv, di, dst_base, cap);
      }
    });
    r_in = r_out;
  }

  // ---- final kernel: emit the k smallest of the surviving run ------------
  {
    const int fin = plan.levels % 2;
    const std::size_t fin_stride = plan.stride[fin];
    const auto fv = run_val[fin];
    const auto fi = run_idx[fin];
    simgpu::LaunchConfig cfg{"ShardMergeEmit", static_cast<int>(batch), 1024,
                             batch, n, k};
    simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
      const auto prob = static_cast<std::size_t>(ctx.block_idx());
      copy_pairs(ctx, fv, fi, prob * fin_stride * cap, out_vals, out_idx,
                 prob * k, k);
    });
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void shard_merge(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                 std::size_t batch, std::size_t n, std::size_t k,
                 simgpu::DeviceBuffer<T> out_vals,
                 simgpu::DeviceBuffer<std::uint32_t> out_idx,
                 const ShardMergeOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      shard_merge_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  shard_merge_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
