#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/radix_traits.hpp"

namespace topk {

/// Options for the full-sort baseline.
struct SortTopkOptions {
  int digit_bits = 8;
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
};

/// Execution plan of the sort baseline (see sort_topk_plan): precomputed
/// grids, pass count and workspace segment ids.  Cheap to copy and cache;
/// sort_topk_run() consumes it without allocating.
template <typename T>
struct SortTopkPlan {
  SortTopkOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  int nb = 0;
  std::uint32_t mask = 0;
  int num_passes = 0;
  GridShape shape;   // full-n scan grid
  GridShape cshape;  // take-k copy grid
  std::size_t seg_keys[2] = {0, 0};
  std::size_t seg_idx[2] = {0, 0};
  std::size_t seg_hist = 0;
};

/// Footprint contracts for the full-sort baseline kernels.  The key width
/// is declared at its 8-byte maximum (double instantiations) so one contract
/// covers every element type; the scan is the lone single-block kernel.
inline void register_sort_topk_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"radix_transform",
       {
           {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
           {"dst_keys",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchN}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchN}},
            4},
       }});
  simgpu::register_footprint(
      {"sort_histogram",
       {
           {"src_keys", Access::kRead, WriteScope::kNone,
            {{AffineVar::kBatchN}}, 8},
           {"hist",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"sort_scan",
       {
           {"hist",
            Access::kReadWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"sort_scatter",
       {
           {"src_keys", Access::kRead, WriteScope::kNone,
            {{AffineVar::kBatchN}}, 8},
           {"src_idx", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}},
            4},
           {"hist", Access::kRead, WriteScope::kNone, {{AffineVar::kSegElems}},
            4},
           {"dst_keys",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchN}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kBatchN}},
            4},
       }});
  simgpu::register_footprint(
      {"sort_take_k",
       {
           {"fin_keys", Access::kRead, WriteScope::kNone,
            {{AffineVar::kBatchK}}, 8},
           {"fin_idx", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchK}},
            4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

/// Phase 1 of the sort baseline: validate the shape, size the grids, and
/// describe every scratch buffer as a named workspace segment in `layout`.
/// Performs no device work; the returned plan plus a Workspace bound to
/// `layout` is everything sort_topk_run needs.
template <typename T>
SortTopkPlan<T> sort_topk_plan(const Shape& s, const simgpu::DeviceSpec& spec,
                               const SortTopkOptions& opt,
                               simgpu::WorkspaceLayout& layout,
                               simgpu::KernelSchedule* sched = nullptr) {
  using Traits = RadixTraits<T>;
  using Bits = typename Traits::Bits;

  validate_problem(s.n, s.k, s.batch);

  SortTopkPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.nb = 1 << opt.digit_bits;
  p.mask = static_cast<std::uint32_t>(p.nb - 1);
  p.num_passes = (Traits::kBits + opt.digit_bits - 1) / opt.digit_bits;
  p.shape = make_grid(1, s.n, spec, opt.block_threads, opt.items_per_block);
  p.cshape = make_grid(1, s.k, spec, opt.block_threads, opt.items_per_block);

  p.seg_keys[0] = layout.add<Bits>("sort keys 0", s.n);
  p.seg_keys[1] = layout.add<Bits>("sort keys 1", s.n);
  p.seg_idx[0] = layout.add<std::uint32_t>("sort idx 0", s.n);
  p.seg_idx[1] = layout.add<std::uint32_t>("sort idx 1", s.n);
  // Per-(block, digit) counts; rewritten as scatter offsets by the scan.
  p.seg_hist = layout.add<std::uint32_t>(
      "sort block hist",
      static_cast<std::size_t>(p.shape.blocks_per_problem) *
          static_cast<std::size_t>(p.nb));

  if (sched != nullptr) {
    register_sort_topk_footprints();
    // Nominal per-problem unrolling of the full LSD pipeline.
    const int bpp = p.shape.blocks_per_problem;
    simgpu::record_launch(sched, "radix_transform", bpp, opt.block_threads, 1,
                          s.n, s.k,
                          {{"in", simgpu::kBindInput},
                           {"dst_keys", static_cast<int>(p.seg_keys[0])},
                           {"dst_idx", static_cast<int>(p.seg_idx[0])}});
    int cur = 0;
    for (int pass = 0; pass < p.num_passes; ++pass) {
      simgpu::record_launch(
          sched, "sort_histogram", bpp, opt.block_threads, 1, s.n, s.k,
          {{"src_keys", static_cast<int>(p.seg_keys[cur])},
           {"hist", static_cast<int>(p.seg_hist)}});
      simgpu::record_launch(sched, "sort_scan", 1, opt.block_threads, 1, s.n,
                            s.k, {{"hist", static_cast<int>(p.seg_hist)}});
      simgpu::record_launch(
          sched, "sort_scatter", bpp, opt.block_threads, 1, s.n, s.k,
          {{"src_keys", static_cast<int>(p.seg_keys[cur])},
           {"src_idx", static_cast<int>(p.seg_idx[cur])},
           {"hist", static_cast<int>(p.seg_hist)},
           {"dst_keys", static_cast<int>(p.seg_keys[1 - cur])},
           {"dst_idx", static_cast<int>(p.seg_idx[1 - cur])}});
      cur = 1 - cur;
    }
    simgpu::record_launch(sched, "sort_take_k",
                          p.cshape.blocks_per_problem, opt.block_threads, 1,
                          s.n, s.k,
                          {{"fin_keys", static_cast<int>(p.seg_keys[cur])},
                           {"fin_idx", static_cast<int>(p.seg_idx[cur])},
                           {"out_vals", simgpu::kBindOutVals},
                           {"out_idx", simgpu::kBindOutIdx}});
  }
  return p;
}

/// Phase 2 of the sort baseline: a CUB-style device-wide LSD radix sort of
/// (key, index) pairs followed by taking the first K.  Stable, fully
/// parallel, and oblivious to K — but it moves every element through device
/// memory once per pass, which is why "sorting the full list is
/// time-intensive and unnecessary" (paper §1).
///
/// Each of the four 8-bit passes runs the classic three-kernel pipeline:
/// per-block digit histogram, digit-major exclusive scan, stable scatter.
///
/// Zero-allocation contract: all scratch comes from `ws` (bound to the
/// layout the plan was built against); nothing in this function touches the
/// device or host allocator.
template <typename T>
void sort_topk_run(simgpu::Device& dev, const SortTopkPlan<T>& plan,
                   simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                   simgpu::DeviceBuffer<T> out_vals,
                   simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  using Traits = RadixTraits<T>;
  using Bits = typename Traits::Bits;

  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("sort_topk: buffer too small");
  }

  const int nb = plan.nb;
  const std::uint32_t mask = plan.mask;
  const int bpp = plan.shape.blocks_per_problem;

  simgpu::DeviceBuffer<Bits> keys[2] = {ws.get<Bits>(plan.seg_keys[0]),
                                        ws.get<Bits>(plan.seg_keys[1])};
  simgpu::DeviceBuffer<std::uint32_t> idx[2] = {
      ws.get<std::uint32_t>(plan.seg_idx[0]),
      ws.get<std::uint32_t>(plan.seg_idx[1])};
  auto block_hist = ws.get<std::uint32_t>(plan.seg_hist);

  for (std::size_t prob = 0; prob < batch; ++prob) {
    // ---- transform kernel: monotone bit reinterpretation + iota indices --
    {
      simgpu::LaunchConfig cfg{"radix_transform", bpp, plan.opt.block_threads,
                               1, n, k};
      const auto dst_keys = keys[0];
      const auto dst_idx = idx[0];
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
        if (simgpu::tile_path_enabled()) {
          // Stage one tile of transformed keys + iota indices, then store
          // both with a single accounted (and shadow-exact) bulk write.
          Bits kbuf[simgpu::kTileElems];
          std::uint32_t ibuf[simgpu::kTileElems];
          std::size_t i = begin;
          while (i < end) {
            const std::size_t c = std::min(simgpu::kTileElems, end - i);
            const std::span<const T> tv = ctx.load_tile(in, prob * n + i, c);
            for (std::size_t u = 0; u < tv.size(); ++u) {
              kbuf[u] = Traits::to_radix(tv[u]);
              ibuf[u] = static_cast<std::uint32_t>(i + u);
            }
            ctx.store_tile(dst_keys, i, std::span<const Bits>(kbuf, c));
            ctx.store_tile(dst_idx, i,
                           std::span<const std::uint32_t>(ibuf, c));
            i += c;
          }
        } else {
          for (std::size_t i = begin; i < end; ++i) {
            ctx.store(dst_keys, i,
                      Traits::to_radix(ctx.load(in, prob * n + i)));
            ctx.store(dst_idx, i, static_cast<std::uint32_t>(i));
          }
        }
        ctx.ops(end - begin);
      });
    }

    int cur = 0;
    for (int p = 0; p < plan.num_passes; ++p) {
      const int start_bit = p * plan.opt.digit_bits;
      const auto src_keys = keys[cur];
      const auto src_idx = idx[cur];
      const auto dst_keys = keys[1 - cur];
      const auto dst_idx = idx[1 - cur];

      // ---- kernel 1: per-block digit histogram --------------------------
      {
        simgpu::LaunchConfig cfg{"sort_histogram", bpp,
                                 plan.opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto shist =
              ctx.shared_zero<std::uint32_t>(static_cast<std::size_t>(nb));
          std::uint32_t* const hraw = shist.unchecked_data();
          const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
          const int sb = start_bit;
          const std::uint32_t dm = mask;
          if (hraw != nullptr) {
            ctx.for_each_elem(src_keys, begin, end - begin,
                              [&](std::size_t, Bits key) {
                                ++hraw[static_cast<std::uint32_t>(key >> sb) &
                                       dm];
                              });
          } else {
            ctx.for_each_elem(src_keys, begin, end - begin,
                              [&](std::size_t, Bits key) {
                                ++shist[static_cast<std::uint32_t>(key >> sb) &
                                        dm];
                              });
          }
          ctx.ops(2 * (end - begin));
          ctx.sync();
          const std::size_t row =
              static_cast<std::size_t>(ctx.block_idx()) *
              static_cast<std::size_t>(nb);
          for (int d = 0; d < nb; ++d) {
            ctx.store<std::uint32_t>(block_hist,
                                     row + static_cast<std::size_t>(d),
                                     shist[static_cast<std::size_t>(d)]);
          }
        });
      }

      // ---- kernel 2: digit-major exclusive scan --------------------------
      {
        simgpu::LaunchConfig cfg{"sort_scan", 1, plan.opt.block_threads, 1, n,
                                 k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          std::uint32_t running = 0;
          for (int d = 0; d < nb; ++d) {
            for (int b = 0; b < bpp; ++b) {
              const std::size_t at =
                  static_cast<std::size_t>(b) * static_cast<std::size_t>(nb) +
                  static_cast<std::size_t>(d);
              const std::uint32_t c = ctx.load(block_hist, at);
              ctx.store<std::uint32_t>(block_hist, at, running);
              running += c;
            }
          }
          ctx.ops(static_cast<std::uint64_t>(nb) *
                  static_cast<std::uint64_t>(bpp));
        });
      }

      // ---- kernel 3: stable scatter --------------------------------------
      {
        simgpu::LaunchConfig cfg{"sort_scatter", bpp, plan.opt.block_threads,
                                 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          // Running per-digit cursors start at this block's scanned bases.
          auto cursor =
              ctx.shared<std::uint32_t>(static_cast<std::size_t>(nb));
          const std::size_t row =
              static_cast<std::size_t>(ctx.block_idx()) *
              static_cast<std::size_t>(nb);
          for (int d = 0; d < nb; ++d) {
            cursor[static_cast<std::size_t>(d)] =
                ctx.load(block_hist, row + static_cast<std::size_t>(d));
          }
          ctx.sync();
          const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
          // Loads ride the tile path.  The stores scatter by digit, so
          // store_tile does not apply, but every element stores exactly one
          // (key, idx) pair — a ScatterWriter bulk-charges that known count
          // and writes raw on the unsanitized fast path.
          auto wkey = ctx.scatter_writer(dst_keys, end - begin);
          auto widx = ctx.scatter_writer(dst_idx, end - begin);
          std::uint32_t* const craw = cursor.unchecked_data();
          const int sb = start_bit;
          const std::uint32_t dm = mask;
          if (craw != nullptr) {
            scan_pairs(ctx, src_keys, src_idx, 0, begin, end,
                       [&](std::size_t, Bits key, std::uint32_t id) {
                         const std::uint32_t at =
                             craw[static_cast<std::uint32_t>(key >> sb) &
                                  dm]++;
                         wkey.put(at, key);
                         widx.put(at, id);
                       });
          } else {
            scan_pairs(ctx, src_keys, src_idx, 0, begin, end,
                       [&](std::size_t, Bits key, std::uint32_t id) {
                         const std::uint32_t at =
                             cursor[static_cast<std::uint32_t>(key >> sb) &
                                    dm]++;
                         wkey.put(at, key);
                         widx.put(at, id);
                       });
          }
          ctx.ops(3 * (end - begin));
        });
      }
      cur = 1 - cur;
    }

    // ---- copy kernel: first K sorted pairs back to values ----------------
    {
      const auto fin_keys = keys[cur];
      const auto fin_idx = idx[cur];
      const int cbpp = plan.cshape.blocks_per_problem;
      simgpu::LaunchConfig cfg{"sort_take_k", cbpp, plan.opt.block_threads, 1,
                               n, k};
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(k, cbpp, ctx.block_idx());
        if (simgpu::tile_path_enabled()) {
          T vbuf[simgpu::kTileElems];
          std::size_t i = begin;
          while (i < end) {
            const std::size_t c = std::min(simgpu::kTileElems, end - i);
            const std::span<const Bits> tk = ctx.load_tile(fin_keys, i, c);
            const std::span<const std::uint32_t> ti =
                ctx.load_tile(fin_idx, i, c);
            for (std::size_t u = 0; u < tk.size(); ++u) {
              vbuf[u] = Traits::from_radix(tk[u]);
            }
            ctx.store_tile(out_vals, prob * k + i, std::span<const T>(vbuf, c));
            ctx.store_tile(out_idx, prob * k + i, ti);
            i += c;
          }
        } else {
          for (std::size_t i = begin; i < end; ++i) {
            ctx.store(out_vals, prob * k + i,
                      Traits::from_radix(ctx.load(fin_keys, i)));
            ctx.store(out_idx, prob * k + i, ctx.load(fin_idx, i));
          }
        }
        ctx.ops(end - begin);
      });
    }
  }
}

/// One-shot entry point: plan + bind a local workspace + run.  Kept for
/// direct callers and tests; the registry (core/topk.cpp) and topk::serve
/// use the two-phase form so plans and workspaces are reused.
template <typename T>
void sort_topk(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
               std::size_t batch, std::size_t n, std::size_t k,
               simgpu::DeviceBuffer<T> out_vals,
               simgpu::DeviceBuffer<std::uint32_t> out_idx,
               const SortTopkOptions& opt = {}) {
  simgpu::WorkspaceLayout layout;
  const auto plan =
      sort_topk_plan<T>(Shape{batch, n, k, false}, dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  sort_topk_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
