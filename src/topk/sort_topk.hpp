#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/radix_traits.hpp"

namespace topk {

/// Options for the full-sort baseline.
struct SortTopkOptions {
  int digit_bits = 8;
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
};

/// Sort baseline: a CUB-style device-wide LSD radix sort of (key, index)
/// pairs followed by taking the first K.  Stable, fully parallel, and
/// oblivious to K — but it moves every element through device memory once
/// per pass, which is why "sorting the full list is time-intensive and
/// unnecessary" (paper §1).
///
/// Each of the four 8-bit passes runs the classic three-kernel pipeline:
/// per-block digit histogram, digit-major exclusive scan, stable scatter.
template <typename T>
void sort_topk(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
               std::size_t batch, std::size_t n, std::size_t k,
               simgpu::DeviceBuffer<T> out_vals,
               simgpu::DeviceBuffer<std::uint32_t> out_idx,
               const SortTopkOptions& opt = {}) {
  using Traits = RadixTraits<T>;
  using Bits = typename Traits::Bits;

  validate_problem(n, k, batch);
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("sort_topk: buffer too small");
  }

  const int nb = 1 << opt.digit_bits;
  const std::uint32_t mask = static_cast<std::uint32_t>(nb - 1);
  const int num_passes = (Traits::kBits + opt.digit_bits - 1) / opt.digit_bits;

  const GridShape shape =
      make_grid(1, n, dev.spec(), opt.block_threads, opt.items_per_block);
  const int bpp = shape.blocks_per_problem;

  simgpu::ScopedWorkspace ws(dev);
  simgpu::DeviceBuffer<Bits> keys[2] = {dev.alloc<Bits>(n, "sort keys 0"),
                                        dev.alloc<Bits>(n, "sort keys 1")};
  simgpu::DeviceBuffer<std::uint32_t> idx[2] = {
      dev.alloc<std::uint32_t>(n, "sort idx 0"),
      dev.alloc<std::uint32_t>(n, "sort idx 1")};
  // Per-(block, digit) counts; rewritten as scatter offsets by the scan.
  auto block_hist = dev.alloc<std::uint32_t>(
      static_cast<std::size_t>(bpp) * static_cast<std::size_t>(nb));

  for (std::size_t prob = 0; prob < batch; ++prob) {
    // ---- transform kernel: monotone bit reinterpretation + iota indices --
    {
      simgpu::LaunchConfig cfg{"radix_transform", bpp, opt.block_threads};
      const auto dst_keys = keys[0];
      const auto dst_idx = idx[0];
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
        for (std::size_t i = begin; i < end; ++i) {
          ctx.store(dst_keys, i, Traits::to_radix(ctx.load(in, prob * n + i)));
          ctx.store(dst_idx, i, static_cast<std::uint32_t>(i));
        }
        ctx.ops(end - begin);
      });
    }

    int cur = 0;
    for (int p = 0; p < num_passes; ++p) {
      const int start_bit = p * opt.digit_bits;
      const auto src_keys = keys[cur];
      const auto src_idx = idx[cur];
      const auto dst_keys = keys[1 - cur];
      const auto dst_idx = idx[1 - cur];

      // ---- kernel 1: per-block digit histogram --------------------------
      {
        simgpu::LaunchConfig cfg{"sort_histogram", bpp, opt.block_threads};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto shist =
              ctx.shared_zero<std::uint32_t>(static_cast<std::size_t>(nb));
          const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
          for (std::size_t i = begin; i < end; ++i) {
            const Bits key = ctx.load(src_keys, i);
            ++shist[static_cast<std::uint32_t>(key >> start_bit) & mask];
          }
          ctx.ops(2 * (end - begin));
          ctx.sync();
          const std::size_t row =
              static_cast<std::size_t>(ctx.block_idx()) *
              static_cast<std::size_t>(nb);
          for (int d = 0; d < nb; ++d) {
            ctx.store<std::uint32_t>(block_hist,
                                     row + static_cast<std::size_t>(d),
                                     shist[static_cast<std::size_t>(d)]);
          }
        });
      }

      // ---- kernel 2: digit-major exclusive scan --------------------------
      {
        simgpu::LaunchConfig cfg{"sort_scan", 1, opt.block_threads};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          std::uint32_t running = 0;
          for (int d = 0; d < nb; ++d) {
            for (int b = 0; b < bpp; ++b) {
              const std::size_t at =
                  static_cast<std::size_t>(b) * static_cast<std::size_t>(nb) +
                  static_cast<std::size_t>(d);
              const std::uint32_t c = ctx.load(block_hist, at);
              ctx.store<std::uint32_t>(block_hist, at, running);
              running += c;
            }
          }
          ctx.ops(static_cast<std::uint64_t>(nb) *
                  static_cast<std::uint64_t>(bpp));
        });
      }

      // ---- kernel 3: stable scatter --------------------------------------
      {
        simgpu::LaunchConfig cfg{"sort_scatter", bpp, opt.block_threads};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          // Running per-digit cursors start at this block's scanned bases.
          auto cursor =
              ctx.shared<std::uint32_t>(static_cast<std::size_t>(nb));
          const std::size_t row =
              static_cast<std::size_t>(ctx.block_idx()) *
              static_cast<std::size_t>(nb);
          for (int d = 0; d < nb; ++d) {
            cursor[static_cast<std::size_t>(d)] =
                ctx.load(block_hist, row + static_cast<std::size_t>(d));
          }
          ctx.sync();
          const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
          for (std::size_t i = begin; i < end; ++i) {
            const Bits key = ctx.load(src_keys, i);
            const std::uint32_t id = ctx.load(src_idx, i);
            const std::uint32_t digit =
                static_cast<std::uint32_t>(key >> start_bit) & mask;
            const std::uint32_t at = cursor[digit]++;
            ctx.store(dst_keys, at, key);
            ctx.store(dst_idx, at, id);
          }
          ctx.ops(3 * (end - begin));
        });
      }
      cur = 1 - cur;
    }

    // ---- copy kernel: first K sorted pairs back to values ----------------
    {
      const auto fin_keys = keys[cur];
      const auto fin_idx = idx[cur];
      const GridShape cshape =
          make_grid(1, k, dev.spec(), opt.block_threads, opt.items_per_block);
      simgpu::LaunchConfig cfg{"sort_take_k", cshape.blocks_per_problem,
                               opt.block_threads};
      const int cbpp = cshape.blocks_per_problem;
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(k, cbpp, ctx.block_idx());
        for (std::size_t i = begin; i < end; ++i) {
          ctx.store(out_vals, prob * k + i,
                    Traits::from_radix(ctx.load(fin_keys, i)));
          ctx.store(out_idx, prob * k + i, ctx.load(fin_idx, i));
        }
        ctx.ops(end - begin);
      });
    }
  }
}

}  // namespace topk
