#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/radix_traits.hpp"

namespace topk {

/// Options for the full-sort baseline.
struct SortTopkOptions {
  int digit_bits = 8;
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
};

/// Sort baseline: a CUB-style device-wide LSD radix sort of (key, index)
/// pairs followed by taking the first K.  Stable, fully parallel, and
/// oblivious to K — but it moves every element through device memory once
/// per pass, which is why "sorting the full list is time-intensive and
/// unnecessary" (paper §1).
///
/// Each of the four 8-bit passes runs the classic three-kernel pipeline:
/// per-block digit histogram, digit-major exclusive scan, stable scatter.
template <typename T>
void sort_topk(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
               std::size_t batch, std::size_t n, std::size_t k,
               simgpu::DeviceBuffer<T> out_vals,
               simgpu::DeviceBuffer<std::uint32_t> out_idx,
               const SortTopkOptions& opt = {}) {
  using Traits = RadixTraits<T>;
  using Bits = typename Traits::Bits;

  validate_problem(n, k, batch);
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument("sort_topk: buffer too small");
  }

  const int nb = 1 << opt.digit_bits;
  const std::uint32_t mask = static_cast<std::uint32_t>(nb - 1);
  const int num_passes = (Traits::kBits + opt.digit_bits - 1) / opt.digit_bits;

  const GridShape shape =
      make_grid(1, n, dev.spec(), opt.block_threads, opt.items_per_block);
  const int bpp = shape.blocks_per_problem;

  simgpu::ScopedWorkspace ws(dev);
  simgpu::DeviceBuffer<Bits> keys[2] = {dev.alloc<Bits>(n, "sort keys 0"),
                                        dev.alloc<Bits>(n, "sort keys 1")};
  simgpu::DeviceBuffer<std::uint32_t> idx[2] = {
      dev.alloc<std::uint32_t>(n, "sort idx 0"),
      dev.alloc<std::uint32_t>(n, "sort idx 1")};
  // Per-(block, digit) counts; rewritten as scatter offsets by the scan.
  auto block_hist = dev.alloc<std::uint32_t>(
      static_cast<std::size_t>(bpp) * static_cast<std::size_t>(nb));

  for (std::size_t prob = 0; prob < batch; ++prob) {
    // ---- transform kernel: monotone bit reinterpretation + iota indices --
    {
      simgpu::LaunchConfig cfg{"radix_transform", bpp, opt.block_threads};
      const auto dst_keys = keys[0];
      const auto dst_idx = idx[0];
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
        if (simgpu::tile_path_enabled()) {
          // Stage one tile of transformed keys + iota indices, then store
          // both with a single accounted (and shadow-exact) bulk write.
          Bits kbuf[simgpu::kTileElems];
          std::uint32_t ibuf[simgpu::kTileElems];
          std::size_t i = begin;
          while (i < end) {
            const std::size_t c = std::min(simgpu::kTileElems, end - i);
            const std::span<const T> tv = ctx.load_tile(in, prob * n + i, c);
            for (std::size_t u = 0; u < tv.size(); ++u) {
              kbuf[u] = Traits::to_radix(tv[u]);
              ibuf[u] = static_cast<std::uint32_t>(i + u);
            }
            ctx.store_tile(dst_keys, i, std::span<const Bits>(kbuf, c));
            ctx.store_tile(dst_idx, i,
                           std::span<const std::uint32_t>(ibuf, c));
            i += c;
          }
        } else {
          for (std::size_t i = begin; i < end; ++i) {
            ctx.store(dst_keys, i,
                      Traits::to_radix(ctx.load(in, prob * n + i)));
            ctx.store(dst_idx, i, static_cast<std::uint32_t>(i));
          }
        }
        ctx.ops(end - begin);
      });
    }

    int cur = 0;
    for (int p = 0; p < num_passes; ++p) {
      const int start_bit = p * opt.digit_bits;
      const auto src_keys = keys[cur];
      const auto src_idx = idx[cur];
      const auto dst_keys = keys[1 - cur];
      const auto dst_idx = idx[1 - cur];

      // ---- kernel 1: per-block digit histogram --------------------------
      {
        simgpu::LaunchConfig cfg{"sort_histogram", bpp, opt.block_threads};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto shist =
              ctx.shared_zero<std::uint32_t>(static_cast<std::size_t>(nb));
          std::uint32_t* const hraw = shist.unchecked_data();
          const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
          const int sb = start_bit;
          const std::uint32_t dm = mask;
          if (hraw != nullptr) {
            ctx.for_each_elem(src_keys, begin, end - begin,
                              [&](std::size_t, Bits key) {
                                ++hraw[static_cast<std::uint32_t>(key >> sb) &
                                       dm];
                              });
          } else {
            ctx.for_each_elem(src_keys, begin, end - begin,
                              [&](std::size_t, Bits key) {
                                ++shist[static_cast<std::uint32_t>(key >> sb) &
                                        dm];
                              });
          }
          ctx.ops(2 * (end - begin));
          ctx.sync();
          const std::size_t row =
              static_cast<std::size_t>(ctx.block_idx()) *
              static_cast<std::size_t>(nb);
          for (int d = 0; d < nb; ++d) {
            ctx.store<std::uint32_t>(block_hist,
                                     row + static_cast<std::size_t>(d),
                                     shist[static_cast<std::size_t>(d)]);
          }
        });
      }

      // ---- kernel 2: digit-major exclusive scan --------------------------
      {
        simgpu::LaunchConfig cfg{"sort_scan", 1, opt.block_threads};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          std::uint32_t running = 0;
          for (int d = 0; d < nb; ++d) {
            for (int b = 0; b < bpp; ++b) {
              const std::size_t at =
                  static_cast<std::size_t>(b) * static_cast<std::size_t>(nb) +
                  static_cast<std::size_t>(d);
              const std::uint32_t c = ctx.load(block_hist, at);
              ctx.store<std::uint32_t>(block_hist, at, running);
              running += c;
            }
          }
          ctx.ops(static_cast<std::uint64_t>(nb) *
                  static_cast<std::uint64_t>(bpp));
        });
      }

      // ---- kernel 3: stable scatter --------------------------------------
      {
        simgpu::LaunchConfig cfg{"sort_scatter", bpp, opt.block_threads};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          // Running per-digit cursors start at this block's scanned bases.
          auto cursor =
              ctx.shared<std::uint32_t>(static_cast<std::size_t>(nb));
          const std::size_t row =
              static_cast<std::size_t>(ctx.block_idx()) *
              static_cast<std::size_t>(nb);
          for (int d = 0; d < nb; ++d) {
            cursor[static_cast<std::size_t>(d)] =
                ctx.load(block_hist, row + static_cast<std::size_t>(d));
          }
          ctx.sync();
          const auto [begin, end] = block_chunk(n, bpp, ctx.block_idx());
          // Loads ride the tile path.  The stores scatter by digit, so
          // store_tile does not apply, but every element stores exactly one
          // (key, idx) pair — a ScatterWriter bulk-charges that known count
          // and writes raw on the unsanitized fast path.
          auto wkey = ctx.scatter_writer(dst_keys, end - begin);
          auto widx = ctx.scatter_writer(dst_idx, end - begin);
          std::uint32_t* const craw = cursor.unchecked_data();
          const int sb = start_bit;
          const std::uint32_t dm = mask;
          if (craw != nullptr) {
            scan_pairs(ctx, src_keys, src_idx, 0, begin, end,
                       [&](std::size_t, Bits key, std::uint32_t id) {
                         const std::uint32_t at =
                             craw[static_cast<std::uint32_t>(key >> sb) &
                                  dm]++;
                         wkey.put(at, key);
                         widx.put(at, id);
                       });
          } else {
            scan_pairs(ctx, src_keys, src_idx, 0, begin, end,
                       [&](std::size_t, Bits key, std::uint32_t id) {
                         const std::uint32_t at =
                             cursor[static_cast<std::uint32_t>(key >> sb) &
                                    dm]++;
                         wkey.put(at, key);
                         widx.put(at, id);
                       });
          }
          ctx.ops(3 * (end - begin));
        });
      }
      cur = 1 - cur;
    }

    // ---- copy kernel: first K sorted pairs back to values ----------------
    {
      const auto fin_keys = keys[cur];
      const auto fin_idx = idx[cur];
      const GridShape cshape =
          make_grid(1, k, dev.spec(), opt.block_threads, opt.items_per_block);
      simgpu::LaunchConfig cfg{"sort_take_k", cshape.blocks_per_problem,
                               opt.block_threads};
      const int cbpp = cshape.blocks_per_problem;
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        const auto [begin, end] = block_chunk(k, cbpp, ctx.block_idx());
        if (simgpu::tile_path_enabled()) {
          T vbuf[simgpu::kTileElems];
          std::size_t i = begin;
          while (i < end) {
            const std::size_t c = std::min(simgpu::kTileElems, end - i);
            const std::span<const Bits> tk = ctx.load_tile(fin_keys, i, c);
            const std::span<const std::uint32_t> ti =
                ctx.load_tile(fin_idx, i, c);
            for (std::size_t u = 0; u < tk.size(); ++u) {
              vbuf[u] = Traits::from_radix(tk[u]);
            }
            ctx.store_tile(out_vals, prob * k + i, std::span<const T>(vbuf, c));
            ctx.store_tile(out_idx, prob * k + i, ti);
            i += c;
          }
        } else {
          for (std::size_t i = begin; i < end; ++i) {
            ctx.store(out_vals, prob * k + i,
                      Traits::from_radix(ctx.load(fin_keys, i)));
            ctx.store(out_idx, prob * k + i, ctx.load(fin_idx, i));
          }
        }
        ctx.ops(end - begin);
      });
    }
  }
}

}  // namespace topk
