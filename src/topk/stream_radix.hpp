#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/radix_traits.hpp"

namespace topk {

/// Options for the streaming large-K radix select (RadiK direction).
struct StreamRadixOptions {
  int digit_bits = 8;  ///< 8-bit digits / 256 buckets per pass
  int block_threads = 256;
  std::size_t items_per_block = 16 * 1024;
  /// Target chunk length.  Scratch is sized by max(chunk, 2k), never by n —
  /// the bounded-workspace contract the large-K tier exists for.
  std::size_t chunk_target = std::size_t{1} << 22;
};

/// Execution plan for the streaming chunked radix select: the host walks the
/// input row in `chunks` bounded slices, radix-selects each slice's top-k
/// into a 2k union buffer, and folds the union back to k whenever it fills.
/// Workspace = candidate ping-pong of one chunk + two k-sized union sides +
/// histogram/cursors — independent of n for n >> chunk_target.
///
/// Unlike the one-shot RadixSelect row, largest-K is native: the radix keys
/// are bitwise-complemented inside the kernels, so no n-sized negated-input
/// segment is ever planned (which would break the bounded-scratch claim).
template <typename T>
struct StreamRadixPlan {
  StreamRadixOptions opt;
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  bool greatest = false;
  std::size_t chunks = 1;     ///< S: host-loop slice count
  std::size_t chunk_cap = 0;  ///< max slice length = ceil(n / chunks)
  std::size_t cand_cap = 0;   ///< candidate buffer length = max(chunk_cap, 2k)
  int nb = 0;
  std::uint32_t mask = 0;
  int num_passes = 0;

  struct Pass {
    std::string_view hist_name;    // interned "StreamHist(<p>)"
    std::string_view filter_name;  // interned "StreamFilter(<p>)"
    int start_bit = 0;
  };
  std::vector<Pass> passes;

  std::size_t seg_hist = 0;
  std::size_t seg_counters = 0;
  std::size_t seg_cand_val[2] = {0, 0};
  std::size_t seg_cand_idx[2] = {0, 0};
  std::size_t seg_union_val[2] = {0, 0};
  std::size_t seg_union_idx[2] = {0, 0};
  std::size_t seg_host_hist = 0;
};

/// Footprint contracts for the streaming radix kernels.  Every data operand
/// is segment-sized (chunk/candidate capacities are tuning options, not
/// shape functions); winners and survivors append through reserved atomic
/// cursors.  The terminal copies are single-block.
inline void register_stream_radix_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  simgpu::register_footprint(
      {"Memset",
       {
           {"hist",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kSegElems}},
            4},
           {"counters",
            Access::kWrite,
            WriteScope::kSingleBlock,
            {{AffineVar::kOne, 2}},
            4},
       }});
  simgpu::register_footprint(
      {"StreamHist",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"hist", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kSegElems}}, 4},
       }});
  simgpu::register_footprint(
      {"StreamFilter",
       {
           {"in",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kBatchN}},
            8,
            /*optional=*/true},
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8,
            /*optional=*/true},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4,
            /*optional=*/true},
           {"counters", Access::kAtomic, WriteScope::kNone,
            {{AffineVar::kOne, 2}}, 4},
           {"win_val",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            8},
           {"win_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            4},
           {"dst_val",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            8},
           {"dst_idx",
            Access::kWrite,
            WriteScope::kReserved,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"StreamTake",
       {
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"win_val",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            8},
           {"win_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kSegElems}},
            4},
       }});
  simgpu::register_footprint(
      {"StreamEmit",
       {
           {"src_val",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            8},
           {"src_idx",
            Access::kRead,
            WriteScope::kNone,
            {{AffineVar::kSegElems}},
            4},
           {"out_vals",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            8},
           {"out_idx",
            Access::kWrite,
            WriteScope::kBlockLocal,
            {{AffineVar::kBatchK}},
            4},
       }});
}

namespace stream_radix_detail {

/// Record one inner radix select (the per-chunk or fold loop body) into the
/// nominal schedule.  `from_input` distinguishes the chunk scan (reads the
/// caller's input) from the union fold (reads a union side).
template <typename T>
inline void record_inner_select(simgpu::KernelSchedule* sched,
                                const StreamRadixPlan<T>& p,
                                const simgpu::DeviceSpec& spec,
                                bool from_input, std::size_t count,
                                int src_side, int dst_side) {
  const GridShape hshape = make_grid(1, count, spec, p.opt.block_threads,
                                     p.opt.items_per_block);
  int cur = 0;
  for (int pass = 0; pass < p.num_passes; ++pass) {
    const auto& pp = p.passes[static_cast<std::size_t>(pass)];
    simgpu::record_launch(sched, "Memset", 1, p.opt.block_threads, 1, p.n,
                          p.k,
                          {{"hist", static_cast<int>(p.seg_hist)},
                           {"counters", static_cast<int>(p.seg_counters)}});
    std::vector<simgpu::OperandBind> hist_binds;
    if (pass == 0 && from_input) {
      hist_binds.push_back({"in", simgpu::kBindInput});
    } else if (pass == 0) {
      hist_binds.push_back(
          {"src_val", static_cast<int>(p.seg_union_val[src_side])});
    } else {
      hist_binds.push_back(
          {"src_val", static_cast<int>(p.seg_cand_val[cur])});
    }
    hist_binds.push_back({"hist", static_cast<int>(p.seg_hist)});
    simgpu::record_launch(sched, pp.hist_name, hshape.total_blocks(),
                          p.opt.block_threads, 1, p.n, p.k,
                          std::move(hist_binds));
    simgpu::record_host(
        sched, "histogram",
        {{"hist", static_cast<int>(p.seg_hist), simgpu::Access::kRead},
         {"host_hist", static_cast<int>(p.seg_host_hist),
          simgpu::Access::kWrite}});
    simgpu::record_host(sched, "scan+find_digit",
                        {{"host_hist", static_cast<int>(p.seg_host_hist),
                          simgpu::Access::kRead}});
    std::vector<simgpu::OperandBind> filter_binds;
    if (pass == 0 && from_input) {
      filter_binds.push_back({"in", simgpu::kBindInput});
    } else if (pass == 0) {
      filter_binds.push_back(
          {"src_val", static_cast<int>(p.seg_union_val[src_side])});
      filter_binds.push_back(
          {"src_idx", static_cast<int>(p.seg_union_idx[src_side])});
    } else {
      filter_binds.push_back(
          {"src_val", static_cast<int>(p.seg_cand_val[cur])});
      filter_binds.push_back(
          {"src_idx", static_cast<int>(p.seg_cand_idx[cur])});
    }
    filter_binds.push_back({"counters", static_cast<int>(p.seg_counters)});
    filter_binds.push_back(
        {"win_val", static_cast<int>(p.seg_union_val[dst_side])});
    filter_binds.push_back(
        {"win_idx", static_cast<int>(p.seg_union_idx[dst_side])});
    filter_binds.push_back(
        {"dst_val", static_cast<int>(p.seg_cand_val[1 - cur])});
    filter_binds.push_back(
        {"dst_idx", static_cast<int>(p.seg_cand_idx[1 - cur])});
    simgpu::record_launch(sched, pp.filter_name, hshape.total_blocks(),
                          p.opt.block_threads, 1, p.n, p.k,
                          std::move(filter_binds));
    cur = 1 - cur;
  }
  simgpu::record_launch(
      sched, "StreamTake", 1, p.opt.block_threads, 1, p.n, p.k,
      {{"src_val", static_cast<int>(p.seg_cand_val[cur])},
       {"src_idx", static_cast<int>(p.seg_cand_idx[cur])},
       {"win_val", static_cast<int>(p.seg_union_val[dst_side])},
       {"win_idx", static_cast<int>(p.seg_union_idx[dst_side])}});
}

}  // namespace stream_radix_detail

/// Phase 1 of the streaming radix select: pick the chunk schedule, intern
/// the per-pass kernel names, and lay out the bounded workspace.
template <typename T>
StreamRadixPlan<T> stream_radix_plan(const Shape& s,
                                     const simgpu::DeviceSpec& spec,
                                     const StreamRadixOptions& opt,
                                     simgpu::WorkspaceLayout& layout,
                                     simgpu::KernelSchedule* sched = nullptr) {
  using Traits = RadixTraits<T>;

  validate_problem(s.n, s.k, s.batch);

  StreamRadixPlan<T> p;
  p.opt = opt;
  p.batch = s.batch;
  p.n = s.n;
  p.k = s.k;
  p.greatest = s.greatest;
  p.nb = 1 << opt.digit_bits;
  p.mask = static_cast<std::uint32_t>(p.nb - 1);
  p.num_passes = (Traits::kBits + opt.digit_bits - 1) / opt.digit_bits;
  p.passes.reserve(static_cast<std::size_t>(p.num_passes));
  for (int pass = 0; pass < p.num_passes; ++pass) {
    typename StreamRadixPlan<T>::Pass pp;
    pp.start_bit = std::max(0, Traits::kBits - (pass + 1) * opt.digit_bits);
    pp.hist_name =
        simgpu::intern_name("StreamHist(" + std::to_string(pass) + ")");
    pp.filter_name =
        simgpu::intern_name("StreamFilter(" + std::to_string(pass) + ")");
    p.passes.push_back(pp);
  }

  // Chunk schedule: aim for chunk_target-sized slices, but never let a slice
  // drop below k (every slice must be able to yield k winners), so the slice
  // count is capped at n/k.
  const std::size_t target =
      std::max<std::size_t>(1, (s.n + opt.chunk_target - 1) / opt.chunk_target);
  const std::size_t cap = std::max<std::size_t>(1, s.n / s.k);
  p.chunks = std::min(target, cap);
  p.chunk_cap = (s.n + p.chunks - 1) / p.chunks;
  p.cand_cap = std::max(p.chunk_cap, 2 * s.k);

  p.seg_hist = layout.add<std::uint32_t>("stream digit histogram",
                                         static_cast<std::size_t>(p.nb));
  p.seg_counters = layout.add<std::uint32_t>("stream cursors", 2);
  p.seg_cand_val[0] = layout.add<T>("stream cand vals 0", p.cand_cap);
  p.seg_cand_val[1] = layout.add<T>("stream cand vals 1", p.cand_cap);
  p.seg_cand_idx[0] = layout.add<std::uint32_t>("stream cand idx 0",
                                                p.cand_cap);
  p.seg_cand_idx[1] = layout.add<std::uint32_t>("stream cand idx 1",
                                                p.cand_cap);
  p.seg_union_val[0] = layout.add<T>("stream union vals 0", 2 * s.k);
  p.seg_union_val[1] = layout.add<T>("stream union vals 1", 2 * s.k);
  p.seg_union_idx[0] = layout.add<std::uint32_t>("stream union idx 0",
                                                 2 * s.k);
  p.seg_union_idx[1] = layout.add<std::uint32_t>("stream union idx 1",
                                                 2 * s.k);
  p.seg_host_hist = layout.add<std::uint32_t>(
      "stream host hist", static_cast<std::size_t>(p.nb), /*host=*/true);

  if (sched != nullptr) {
    register_stream_radix_footprints();
    // Nominal per-problem unrolling for the static auditor: one chunk
    // select into union side 0; when the plan actually streams, a second
    // chunk select plus the union fold (side 0 -> side 1).  The real pass
    // and candidate counts shrink data-dependently below this superset.
    stream_radix_detail::record_inner_select(sched, p, spec,
                                             /*from_input=*/true, p.chunk_cap,
                                             /*src_side=*/0, /*dst_side=*/0);
    int emit_side = 0;
    if (p.chunks > 1) {
      stream_radix_detail::record_inner_select(
          sched, p, spec, /*from_input=*/true, p.chunk_cap, /*src_side=*/0,
          /*dst_side=*/0);
      stream_radix_detail::record_inner_select(sched, p, spec,
                                               /*from_input=*/false,
                                               2 * s.k, /*src_side=*/0,
                                               /*dst_side=*/1);
      emit_side = 1;
    }
    simgpu::record_launch(
        sched, "StreamEmit", 1, opt.block_threads, 1, s.n, s.k,
        {{"src_val", static_cast<int>(p.seg_union_val[emit_side])},
         {"src_idx", static_cast<int>(p.seg_union_idx[emit_side])},
         {"out_vals", simgpu::kBindOutVals},
         {"out_idx", simgpu::kBindOutIdx}});
  }
  return p;
}

/// Phase 2: the host-orchestrated streaming loop.  Per problem, each chunk
/// runs the classic histogram/filter radix select over its slice — winners
/// appended (with row-local global indices) into the active 2k union side —
/// and every time the union fills, one more inner select folds it back to k
/// on the other side.  Scratch never exceeds the planned candidate/union
/// capacities, so the same plan covers any n at fixed k and chunk target.
template <typename T>
void stream_radix_run(simgpu::Device& dev, const StreamRadixPlan<T>& plan,
                      simgpu::Workspace& ws, simgpu::DeviceBuffer<T> in,
                      simgpu::DeviceBuffer<T> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  using Traits = RadixTraits<T>;
  using Bits = typename Traits::Bits;

  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const StreamRadixOptions& opt = plan.opt;
  if (in.size() < batch * n) {
    throw std::invalid_argument("stream_radix: input too small");
  }
  if (out_vals.size() < batch * k || out_idx.size() < batch * k) {
    throw std::invalid_argument("stream_radix: output buffers too small");
  }

  const int nb = plan.nb;
  const std::uint32_t mask = plan.mask;
  const int num_passes = plan.num_passes;
  const bool greatest = plan.greatest;

  auto ghist = ws.get<std::uint32_t>(plan.seg_hist);
  auto counters = ws.get<std::uint32_t>(plan.seg_counters);
  simgpu::DeviceBuffer<T> cand_val[2] = {ws.get<T>(plan.seg_cand_val[0]),
                                         ws.get<T>(plan.seg_cand_val[1])};
  simgpu::DeviceBuffer<std::uint32_t> cand_idx[2] = {
      ws.get<std::uint32_t>(plan.seg_cand_idx[0]),
      ws.get<std::uint32_t>(plan.seg_cand_idx[1])};
  simgpu::DeviceBuffer<T> union_val[2] = {ws.get<T>(plan.seg_union_val[0]),
                                          ws.get<T>(plan.seg_union_val[1])};
  simgpu::DeviceBuffer<std::uint32_t> union_idx[2] = {
      ws.get<std::uint32_t>(plan.seg_union_idx[0]),
      ws.get<std::uint32_t>(plan.seg_union_idx[1])};
  const std::span<std::uint32_t> host_hist(
      ws.host_ptr<std::uint32_t>(plan.seg_host_hist),
      static_cast<std::size_t>(nb));

  // The monotone radix key of a value under the requested order: largest-K
  // complements the ordinal, so "smallest key" always means "best".
  const auto radix_key = [greatest](T v) -> Bits {
    const Bits key = Traits::to_radix(v);
    return greatest ? static_cast<Bits>(~key) : key;
  };

  // One inner radix select: the k best of `count` source elements, written
  // to (dst_val, dst_idx) at [dst_base, dst_base + k).  The source is either
  // a slice of the input row (indices synthesized as idx0 + j) or a (vals,
  // idx) buffer pair read from [0, count).
  const auto inner_select = [&](bool from_input, std::size_t in_base,
                                std::size_t idx0,
                                simgpu::DeviceBuffer<T> root_val,
                                simgpu::DeviceBuffer<std::uint32_t> root_idx,
                                std::size_t count,
                                simgpu::DeviceBuffer<T> win_val,
                                simgpu::DeviceBuffer<std::uint32_t> win_idx,
                                std::size_t dst_base) {
    std::uint64_t k_rem = k;
    std::uint64_t remaining = count;
    std::uint64_t out_written = 0;
    int cur = 0;

    for (int p = 0; p < num_passes; ++p) {
      const int start_bit = plan.passes[static_cast<std::size_t>(p)].start_bit;
      const bool scan_root = (p == 0);
      const auto src_val = scan_root ? root_val : cand_val[cur];
      const auto src_idx = scan_root ? root_idx : cand_idx[cur];
      const auto dst_val = cand_val[1 - cur];
      const auto dst_idx = cand_idx[1 - cur];
      const bool root_is_input = scan_root && from_input;

      {
        simgpu::LaunchConfig cfg{"Memset", 1, opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          for (int d = 0; d < nb; ++d) {
            ctx.store<std::uint32_t>(ghist, static_cast<std::size_t>(d), 0);
          }
          ctx.store<std::uint32_t>(counters, 0, 0);
          ctx.store<std::uint32_t>(counters, 1, 0);
        });
      }

      const GridShape hshape = make_grid(1, remaining, dev.spec(),
                                         opt.block_threads,
                                         opt.items_per_block);
      {
        simgpu::LaunchConfig cfg{
            plan.passes[static_cast<std::size_t>(p)].hist_name,
            hshape.total_blocks(), opt.block_threads, 1, n, k};
        const int bpp = hshape.blocks_per_problem;
        const std::uint64_t rem = remaining;
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          auto shist =
              ctx.shared_zero<std::uint32_t>(static_cast<std::size_t>(nb));
          const auto [begin, end] = block_chunk(rem, bpp, ctx.block_idx());
          const auto bump = [&](std::size_t, T v) {
            ++shist[static_cast<std::size_t>(
                static_cast<std::uint32_t>(radix_key(v) >> start_bit) &
                mask)];
          };
          if (root_is_input) {
            ctx.for_each_elem(in, in_base + begin, end - begin, bump);
          } else {
            ctx.for_each_elem(src_val, begin, end - begin, bump);
          }
          ctx.ops(3 * (end - begin));
          ctx.sync();
          for (int d = 0; d < nb; ++d) {
            if (shist[static_cast<std::size_t>(d)] != 0) {
              ctx.atomic_add_scattered(ghist, static_cast<std::size_t>(d),
                                       shist[static_cast<std::size_t>(d)]);
            }
          }
          ctx.ops(static_cast<std::uint64_t>(nb));
        });
      }

      dev.copy_to_host(ghist, host_hist, "histogram");
      dev.host_compute("scan+find_digit",
                       static_cast<std::uint64_t>(3 * nb));
      std::uint64_t less = 0;
      std::uint32_t target_digit = 0;
      std::uint64_t target_count = 0;
      for (int d = 0; d < nb; ++d) {
        const std::uint32_t c = host_hist[static_cast<std::size_t>(d)];
        if (less + c >= k_rem) {
          target_digit = static_cast<std::uint32_t>(d);
          target_count = c;
          break;
        }
        less += c;
      }

      {
        simgpu::LaunchConfig cfg{
            plan.passes[static_cast<std::size_t>(p)].filter_name,
            hshape.total_blocks(), opt.block_threads, 1, n, k};
        const int bpp = hshape.blocks_per_problem;
        const std::uint64_t rem = remaining;
        const std::uint64_t out_cursor_base = dst_base + out_written;
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          const auto [begin, end] = block_chunk(rem, bpp, ctx.block_idx());
          const auto filter = [&](std::size_t, T v, std::uint32_t id) {
            const Bits key = radix_key(v);
            const std::uint32_t digit =
                static_cast<std::uint32_t>(key >> start_bit) & mask;
            if (digit < target_digit) {
              const std::uint32_t pos = ctx.atomic_add(counters, 0, 1u);
              ctx.store(win_val, out_cursor_base + pos, v);
              ctx.store(win_idx, out_cursor_base + pos, id);
            } else if (digit == target_digit) {
              const std::uint32_t pos = ctx.atomic_add(counters, 1, 1u);
              ctx.store(dst_val, pos, v);
              ctx.store(dst_idx, pos, id);
            }
          };
          if (root_is_input) {
            ctx.for_each_elem(
                in, in_base + begin, end - begin, [&](std::size_t j, T v) {
                  filter(begin + j, v,
                         static_cast<std::uint32_t>(idx0 + begin + j));
                });
          } else {
            scan_pairs(ctx, src_val, src_idx, 0, begin, end, filter);
          }
          ctx.ops(4 * (end - begin));
        });
      }

      out_written += less;
      k_rem -= less;
      remaining = target_count;
      cur = 1 - cur;

      dev.synchronize("host check");
      if (k_rem == remaining || p == num_passes - 1) {
        const std::uint64_t take = k_rem;
        const auto fin_val = cand_val[cur];
        const auto fin_idx = cand_idx[cur];
        const std::uint64_t out_cursor_base = dst_base + out_written;
        simgpu::LaunchConfig cfg{"StreamTake", 1, opt.block_threads, 1, n, k};
        simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
          copy_pairs(ctx, fin_val, fin_idx, 0, win_val, win_idx,
                     out_cursor_base, take);
          ctx.ops(take);
        });
        dev.synchronize("final");
        out_written += take;
        break;
      }
    }
    if (out_written != k) {
      throw std::logic_error("stream_radix: inner select wrote " +
                             std::to_string(out_written) + " of " +
                             std::to_string(k) + " results");
    }
  };

  for (std::size_t prob = 0; prob < batch; ++prob) {
    int uside = 0;       // union side accumulating chunk winners
    std::size_t have = 0;  // winners currently staged on that side
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      const auto [begin, end] =
          block_chunk(n, static_cast<int>(plan.chunks), static_cast<int>(c));
      inner_select(/*from_input=*/true, prob * n + begin, begin,
                   simgpu::DeviceBuffer<T>{}, {}, end - begin,
                   union_val[uside], union_idx[uside], have);
      have += k;
      if (have == 2 * k) {
        inner_select(/*from_input=*/false, 0, 0, union_val[uside],
                     union_idx[uside], 2 * k, union_val[1 - uside],
                     union_idx[1 - uside], 0);
        uside = 1 - uside;
        have = k;
      }
    }
    {
      const auto fv = union_val[uside];
      const auto fi = union_idx[uside];
      const std::uint64_t out_base = prob * k;
      simgpu::LaunchConfig cfg{"StreamEmit", 1, opt.block_threads, 1, n, k};
      simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
        copy_pairs(ctx, fv, fi, 0, out_vals, out_idx, out_base, k);
        ctx.ops(k);
      });
      dev.synchronize("emit");
    }
  }
}

/// One-shot entry point: plan + bind a local workspace + run.
template <typename T>
void stream_radix(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx,
                  const StreamRadixOptions& opt = {}, bool greatest = false) {
  simgpu::WorkspaceLayout layout;
  const auto plan = stream_radix_plan<T>(Shape{batch, n, k, greatest},
                                         dev.spec(), opt, layout);
  simgpu::Workspace ws(dev);
  ws.bind(layout);
  stream_radix_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace topk
