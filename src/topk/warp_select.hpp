#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/partial_sort_common.hpp"

namespace topk {

namespace faiss_detail {

/// One warp's WarpSelect state: a warp-wide sorted top-K list plus 32
/// per-lane thread queues, both register-resident (Faiss WarpSelect /
/// BlockSelect).  Elements are pushed per lane; when any lane's queue fills,
/// all queues are sorted and merged into the list with bitonic networks —
/// the "costly operations" GridSelect's shared queue reduces (paper §4).
template <typename T>
class WarpSelectEngine {
 public:
  WarpSelectEngine(simgpu::BlockCtx& ctx, std::size_t k)
      : qlen_(thread_queue_len(k)),
        list_keys_(next_pow2(k)),
        list_idx_(next_pow2(k)),
        list_(std::span<T>(list_keys_), std::span<std::uint32_t>(list_idx_), k),
        tq_keys_(32 * qlen_),
        tq_idx_(32 * qlen_),
        tq_count_(32, 0) {
    (void)ctx;
  }

  /// Threshold below which an element is a candidate.
  [[nodiscard]] T kth() const { return list_.kth(); }

  /// Process one warp-wide round of up to 32 loaded elements.
  /// `valid[lane]` marks lanes whose load was in range.
  void round(simgpu::BlockCtx& ctx, const T* values,
             const std::uint32_t* indices, const bool* valid) {
    const T threshold = list_.kth();
    bool any_insert = false;
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      if (!valid[lane]) continue;
      if (values[lane] < threshold) {
        auto& n = tq_count_[static_cast<std::size_t>(lane)];
        tq_keys_[static_cast<std::size_t>(lane) * qlen_ + n] = values[lane];
        tq_idx_[static_cast<std::size_t>(lane) * qlen_ + n] = indices[lane];
        ++n;
        any_insert = true;
      }
    }
    ctx.ops(simgpu::kWarpSize);  // threshold compare per lane
    if (any_insert) {
      // SIMT predication: the sorted-insert shift chain (O(queue length))
      // is issued warp-wide whenever any lane takes the insert branch —
      // the register-queue overhead GridSelect's ballot-based two-step
      // insertion avoids (paper §4).
      ctx.ops(simgpu::kWarpSize * qlen_);
    }
    // __ballot_sync: does any lane's queue need draining?
    const std::uint32_t full_mask = simgpu::Warp::ballot([&](int lane) {
      return tq_count_[static_cast<std::size_t>(lane)] >= qlen_;
    });
    ctx.ops(1);
    if (full_mask != 0) flush(ctx);
  }

  /// Drain all thread queues into the list (also called at end of input).
  void flush(simgpu::BlockCtx& ctx) {
    std::size_t count = 0;
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      const auto n = tq_count_[static_cast<std::size_t>(lane)];
      for (std::size_t j = 0; j < n; ++j) {
        flush_keys_.resize(std::max<std::size_t>(flush_keys_.size(), count + 1));
        flush_idx_.resize(flush_keys_.size());
        flush_keys_[count] = tq_keys_[static_cast<std::size_t>(lane) * qlen_ + j];
        flush_idx_[count] = tq_idx_[static_cast<std::size_t>(lane) * qlen_ + j];
        ++count;
      }
      tq_count_[static_cast<std::size_t>(lane)] = 0;
    }
    if (count == 0) return;
    list_.merge(ctx, std::span<T>(flush_keys_), std::span<std::uint32_t>(flush_idx_),
                count);
  }

  [[nodiscard]] TopkList<T>& list() { return list_; }

 private:
  std::size_t qlen_;
  std::vector<T> list_keys_;
  std::vector<std::uint32_t> list_idx_;
  TopkList<T> list_;
  std::vector<T> tq_keys_;
  std::vector<std::uint32_t> tq_idx_;
  std::vector<std::size_t> tq_count_;
  std::vector<T> flush_keys_;
  std::vector<std::uint32_t> flush_idx_;
};

/// Shared implementation of WarpSelect (1 warp per problem) and BlockSelect
/// (4 warps per problem): each warp scans an interleaved slice with its own
/// engine; BlockSelect merges the warp lists at the end.
template <typename T>
void faiss_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx, int num_warps,
                  const std::string& kernel_name) {
  validate_problem(n, k, batch);
  if (k > kMaxSelectionK) {
    throw std::invalid_argument(kernel_name + ": k exceeds the " +
                                std::to_string(kMaxSelectionK) +
                                " register-resident limit");
  }
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument(kernel_name + ": buffer too small");
  }

  simgpu::LaunchConfig cfg{kernel_name, static_cast<int>(batch),
                           num_warps * simgpu::kWarpSize};
  simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
    const auto prob = static_cast<std::size_t>(ctx.block_idx());
    const std::size_t base = prob * n;
    std::vector<std::unique_ptr<WarpSelectEngine<T>>> engines;
    engines.reserve(static_cast<std::size_t>(num_warps));
    for (int w = 0; w < num_warps; ++w) {
      engines.push_back(std::make_unique<WarpSelectEngine<T>>(ctx, k));
    }

    const std::size_t stride =
        static_cast<std::size_t>(num_warps) * simgpu::kWarpSize;
    ctx.for_each_warp([&](simgpu::Warp& warp) {
      auto& eng = *engines[static_cast<std::size_t>(warp.index())];
      T values[simgpu::kWarpSize];
      std::uint32_t indices[simgpu::kWarpSize];
      bool valid[simgpu::kWarpSize];
      for (std::size_t step = 0;
           step * stride + static_cast<std::size_t>(warp.index()) *
                               simgpu::kWarpSize < n;
           ++step) {
        warp.each([&](int lane) {
          const std::size_t i =
              step * stride +
              static_cast<std::size_t>(warp.index()) * simgpu::kWarpSize +
              static_cast<std::size_t>(lane);
          valid[lane] = i < n;
          if (valid[lane]) {
            values[lane] = ctx.load(in, base + i);
            indices[lane] = static_cast<std::uint32_t>(i);
          }
        });
        eng.round(ctx, values, indices, valid);
      }
      eng.flush(ctx);
    });
    ctx.sync();

    // BlockSelect: merge the warp lists into warp 0's list.
    for (int w = 1; w < num_warps; ++w) {
      engines[0]->list().merge_list(ctx, engines[static_cast<std::size_t>(w)]->list());
    }
    const auto keys = engines[0]->list().keys();
    const auto idx = engines[0]->list().indices();
    for (std::size_t i = 0; i < k; ++i) {
      ctx.store(out_vals, prob * k + i, keys[i]);
      ctx.store(out_idx, prob * k + i, idx[i]);
    }
  });
}

}  // namespace faiss_detail

/// WarpSelect (Johnson et al., Faiss): one warp per problem, per-thread
/// register queues, bitonic merge on overflow.  Can process data on the fly;
/// parallelism is limited to one warp, which is why it collapses for large N
/// at batch size 1 (paper Fig. 7).
template <typename T>
void warp_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                 std::size_t batch, std::size_t n, std::size_t k,
                 simgpu::DeviceBuffer<T> out_vals,
                 simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  faiss_detail::faiss_select(dev, in, batch, n, k, out_vals, out_idx, 1,
                             "WarpSelect");
}

/// BlockSelect (Faiss): WarpSelect extended to one thread block of 4 warps
/// per problem, still at most one SM per problem.
template <typename T>
void block_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  faiss_detail::faiss_select(dev, in, batch, n, k, out_vals, out_idx, 4,
                             "BlockSelect");
}

}  // namespace topk
