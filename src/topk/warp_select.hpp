#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "simgpu/simgpu.hpp"
#include "topk/common.hpp"
#include "topk/partial_sort_common.hpp"

namespace topk {

namespace faiss_detail {


/// One warp's WarpSelect state: a warp-wide sorted top-K list plus 32
/// per-lane thread queues, both register-resident (Faiss WarpSelect /
/// BlockSelect).  Elements are pushed per lane; when any lane's queue fills,
/// all queues are sorted and merged into the list with bitonic networks —
/// the "costly operations" GridSelect's shared queue reduces (paper §4).
template <typename T>
class WarpSelectEngine {
 public:
  /// `qlen_override` sets the per-lane thread-queue depth directly (0 keeps
  /// the k-derived default).  Depth is the WarpSelect tuning axis: a deeper
  /// queue amortizes the warp-wide sort+merge flush over more inserts at the
  /// price of a longer predicated shift chain per inserting round.  Both the
  /// exact and the warpfast path read the same `qlen_`, so per-algorithm
  /// charge invariance across toggles is unaffected by the choice.
  WarpSelectEngine(simgpu::BlockCtx& ctx, std::size_t k,
                   std::size_t qlen_override = 0)
      : qlen_(qlen_override != 0 ? qlen_override : thread_queue_len(k)),
        list_keys_(next_pow2(k)),
        list_idx_(next_pow2(k)),
        list_(std::span<T>(list_keys_), std::span<std::uint32_t>(list_idx_), k),
        tq_keys_(32 * qlen_),
        tq_idx_(32 * qlen_),
        tq_count_(32, 0) {
    (void)ctx;
  }

  /// Threshold below which an element is a candidate.
  [[nodiscard]] T kth() const { return list_.kth(); }

  /// Process one warp-wide round of up to 32 loaded elements.
  /// `valid[lane]` marks lanes whose load was in range.
  void round(simgpu::BlockCtx& ctx, const T* values,
             const std::uint32_t* indices, const bool* valid) {
    const T threshold = list_.kth();
    bool any_insert = false;
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      if (!valid[lane]) continue;
      if (values[lane] < threshold) {
        auto& n = tq_count_[static_cast<std::size_t>(lane)];
        tq_keys_[static_cast<std::size_t>(lane) * qlen_ + n] = values[lane];
        tq_idx_[static_cast<std::size_t>(lane) * qlen_ + n] = indices[lane];
        ++n;
        any_insert = true;
      }
    }
    // Per-round floor: threshold compare per lane + the queue-full ballot
    // below.  This is the same authoritative kEmptyRoundLaneOps formula the
    // warpfast bulk charge uses — an insert-free round cannot trip the
    // full vote (flushes reset the counts), so it costs exactly the floor.
    ctx.ops(kEmptyRoundLaneOps);
    if (any_insert) {
      // SIMT predication: the sorted-insert shift chain (O(queue length))
      // is issued warp-wide whenever any lane takes the insert branch —
      // the register-queue overhead GridSelect's ballot-based two-step
      // insertion avoids (paper §4).
      ctx.ops(simgpu::kWarpSize * qlen_);
    }
    // __ballot_sync: does any lane's queue need draining?
    const std::uint32_t full_mask = simgpu::Warp::ballot([&](int lane) {
      return tq_count_[static_cast<std::size_t>(lane)] >= qlen_;
    });
    if (full_mask != 0) flush(ctx);
  }

  /// round() for prefix-valid lane batches, with the threshold-gated fast
  /// path: a round in which no element beats the current threshold inserts
  /// nothing, cannot trip the queue-full vote, and leaves every queue
  /// untouched — so charge its exact cost in bulk and skip the emulation.
  void round_gated(simgpu::BlockCtx& ctx, const T* values,
                   const std::uint32_t* indices, std::size_t count) {
    if (ctx.warpfast_enabled() &&
        simgpu::BlockCtx::count_below(std::span<const T>(values, count),
                                      list_.kth()) == 0) {
      ctx.ops(kEmptyRoundLaneOps);
      return;
    }
    bool valid[simgpu::kWarpSize];
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      valid[lane] = static_cast<std::size_t>(lane) < count;
    }
    round(ctx, values, indices, valid);
  }

  /// Vectorized round over one contiguous prefix-valid tile (warpfast
  /// path).  Lane u holds tile[u], exactly as round() sees it, so the
  /// queue state and the charges are identical: per-round floor, plus the
  /// warp-wide shift chain when any lane inserts.  A lane can only be full
  /// after inserting this round (flushes reset all counts), so tracking
  /// fills during insertion reproduces the queue-full ballot.  Indices
  /// come from `ext_idx` when non-empty, else `base_index + offset`.
  void round_span(simgpu::BlockCtx& ctx, std::span<const T> tile,
                  std::span<const std::uint32_t> ext_idx,
                  std::uint32_t base_index) {
    const T threshold = list_.kth();
    ctx.ops(kEmptyRoundLaneOps);
    // Vectorized precheck: a candidate-free round inserts nothing and
    // cannot trip the queue-full vote, so the per-lane loop below would
    // only rediscover the empty mask.
    if (simgpu::BlockCtx::count_below(tile, threshold) == 0) return;
    bool any_insert = false;
    bool any_full = false;
    for (std::size_t u = 0; u < tile.size(); ++u) {
      if (tile[u] < threshold) {
        auto& c = tq_count_[u];
        tq_keys_[u * qlen_ + c] = tile[u];
        tq_idx_[u * qlen_ + c] =
            ext_idx.empty() ? base_index + static_cast<std::uint32_t>(u)
                            : ext_idx[u];
        ++c;
        any_insert = true;
        any_full |= c >= qlen_;
      }
    }
    if (!any_insert) return;
    ctx.ops(simgpu::kWarpSize * qlen_);
    if (any_full) flush(ctx);
  }

  /// Multi-round scan over one contiguous prefix-valid span (warpfast
  /// path): filter-and-pack the candidate set once with a vectorized
  /// compare under the entry threshold, then replay only the
  /// candidate-bearing rounds.  Charge-identical to calling round_span()
  /// per 32-element round:
  ///   - every round costs the kEmptyRoundLaneOps floor (charged in bulk
  ///     up front — the counters are sums, ordering is immaterial);
  ///   - the entry threshold only tightens (merges never raise kth), so
  ///     the packed set is a superset of every round's true candidates;
  ///     re-checking each candidate against the *current* threshold at
  ///     its round's replay point reproduces the exact insert set, lane
  ///     order, shift-chain charge and queue-full flushes round_span()
  ///     would produce — a round whose packed candidates all fail the
  ///     re-check degenerates to the floor, same as its count_below gate.
  void span_rounds(simgpu::BlockCtx& ctx, std::span<const T> tile,
                   std::span<const std::uint32_t> ext_idx,
                   std::uint32_t base_index) {
    if constexpr (std::is_same_v<T, float>) {
      if (ctx.warpfast_enabled()) {
        const std::size_t rounds =
            (tile.size() + simgpu::kWarpSize - 1) / simgpu::kWarpSize;
        ctx.ops(rounds * kEmptyRoundLaneOps);
        // Warm-up segment, then one big pack: the first pack runs under
        // the sentinel threshold and would compress-store nearly every
        // element, so cap it at kSeg rounds; once the list has merged a
        // segment's worth the threshold is tight enough that packing the
        // whole remainder stays cheap (the stale-trim below re-packs if a
        // merge tightens it mid-replay).
        constexpr std::size_t kSeg = 16 * simgpu::kWarpSize;
        span_pack_.resize(std::max(span_pack_.size(), tile.size()));
        // Pack positions (base 0, no ext_idx) so lane/round recovery is
        // arithmetic; external ids are looked up per candidate below.
        std::size_t start = 0;  // first unprocessed element, round-aligned
        while (start < tile.size()) {
          const std::size_t seg_end =
              start < kSeg ? std::min(kSeg, tile.size()) : tile.size();
          const std::size_t m = simgpu::simd::pack_below_f32(
              tile.data() + start, nullptr, 0, seg_end - start, list_.kth(),
              span_pack_.data());
          if (m == 0) {
            start = seg_end;
            continue;
          }
          std::size_t i = 0;
          std::size_t dead = 0;  // re-check failures since this pack
          std::size_t next_start = seg_end;
          while (i < m) {
            const auto rel0 =
                static_cast<std::uint32_t>(span_pack_[i] & 0xffffffffu);
            const std::size_t round_end =
                (rel0 / simgpu::kWarpSize + 1) * simgpu::kWarpSize;
            const T threshold = list_.kth();
            bool any_insert = false;
            bool any_full = false;
            for (; i < m; ++i) {
              const auto rel =
                  static_cast<std::uint32_t>(span_pack_[i] & 0xffffffffu);
              if (rel >= round_end) break;
              const std::size_t pos = start + rel;
              const T v = tile[pos];
              if (!(v < threshold)) {  // pack threshold was looser
                ++dead;
                continue;
              }
              const std::size_t lane = rel % simgpu::kWarpSize;
              auto& c = tq_count_[lane];
              tq_keys_[lane * qlen_ + c] = v;
              tq_idx_[lane * qlen_ + c] =
                  ext_idx.empty()
                      ? base_index + static_cast<std::uint32_t>(pos)
                      : ext_idx[pos];
              ++c;
              any_insert = true;
              any_full |= c >= qlen_;
            }
            if (any_insert) {
              ctx.ops(simgpu::kWarpSize * qlen_);
              if (any_full) flush(ctx);
            }
            // Stale-pack trim: merges tighten the threshold, so a pack
            // taken early (worst: the +inf warm-up threshold) can leave a
            // long mostly-dead tail.  When the replay has burned through
            // enough dead candidates and plenty remain, re-pack the
            // unprocessed tail under the current threshold — still a
            // superset of every later round's true candidates, and round
            // floors were charged up front, so charges are unchanged.
            if (dead >= 128 && m - i > 256) {
              next_start = start + round_end;
              break;
            }
          }
          start = i >= m ? seg_end : next_start;
        }
        return;
      }
    }
    for (std::size_t off = 0; off < tile.size(); off += simgpu::kWarpSize) {
      const std::size_t c =
          std::min<std::size_t>(simgpu::kWarpSize, tile.size() - off);
      round_span(ctx, tile.subspan(off, c),
                 ext_idx.empty() ? ext_idx : ext_idx.subspan(off, c),
                 static_cast<std::uint32_t>(base_index + off));
    }
  }

  /// Drain all thread queues into the list (also called at end of input).
  void flush(simgpu::BlockCtx& ctx) {
    if constexpr (kPackableKey<T>) {
      // Packed drain under the warpfast gate: collect (ord, idx) pairs and
      // fold them in with merge_packed — charge-identical to merge() over
      // the same count (see TopkList::merge_packed), and the hot ≤32-item
      // flush runs the fixed sort network instead of a general sort.
      // (flush_pack_ is distinct from span_pack_: a flush can fire while
      // span_rounds is still iterating its packed candidates.)
      if (ctx.warpfast_enabled()) {
        flush_pack_.resize(
            std::max(flush_pack_.size(), simgpu::kWarpSize * qlen_));
        std::size_t count = 0;
        for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
          const auto base = static_cast<std::size_t>(lane) * qlen_;
          const auto n = tq_count_[static_cast<std::size_t>(lane)];
          for (std::size_t j = 0; j < n; ++j) {
            flush_pack_[count++] =
                pack_key_idx<T>(tq_keys_[base + j], tq_idx_[base + j]);
          }
          tq_count_[static_cast<std::size_t>(lane)] = 0;
        }
        if (count == 0) return;
        list_.merge_packed(ctx, flush_pack_.data(), count);
        return;
      }
    }
    std::size_t count = 0;
    for (int lane = 0; lane < simgpu::kWarpSize; ++lane) {
      const auto n = tq_count_[static_cast<std::size_t>(lane)];
      for (std::size_t j = 0; j < n; ++j) {
        flush_keys_.resize(std::max<std::size_t>(flush_keys_.size(), count + 1));
        flush_idx_.resize(flush_keys_.size());
        flush_keys_[count] = tq_keys_[static_cast<std::size_t>(lane) * qlen_ + j];
        flush_idx_[count] = tq_idx_[static_cast<std::size_t>(lane) * qlen_ + j];
        ++count;
      }
      tq_count_[static_cast<std::size_t>(lane)] = 0;
    }
    if (count == 0) return;
    list_.merge(ctx, std::span<T>(flush_keys_), std::span<std::uint32_t>(flush_idx_),
                count);
  }

  /// Alias for flush() so generic scan loops can treat both engine
  /// families (this and SharedQueueEngine) uniformly at end of input.
  void finalize(simgpu::BlockCtx& ctx) { flush(ctx); }

  [[nodiscard]] TopkList<T>& list() { return list_; }

 private:
  // ScratchVec: engine storage recycles through the thread-local freelist,
  // so steady-state kernel execution performs no heap allocation.
  std::size_t qlen_;
  simgpu::ScratchVec<T> list_keys_;
  simgpu::ScratchVec<std::uint32_t> list_idx_;
  TopkList<T> list_;
  simgpu::ScratchVec<T> tq_keys_;
  simgpu::ScratchVec<std::uint32_t> tq_idx_;
  simgpu::ScratchVec<std::size_t> tq_count_;
  simgpu::ScratchVec<T> flush_keys_;
  simgpu::ScratchVec<std::uint32_t> flush_idx_;
  simgpu::ScratchVec<std::uint64_t> span_pack_;
  simgpu::ScratchVec<std::uint64_t> flush_pack_;
};

/// Execution plan for WarpSelect / BlockSelect.  The whole computation is
/// register- and shared-memory-resident, so the plan carries no workspace
/// segments — just the validated shape, the warp count and the (static)
/// kernel name.
template <typename T>
struct FaissSelectPlan {
  std::size_t batch = 0;
  std::size_t n = 0;
  std::size_t k = 0;
  int num_warps = 0;
  std::string_view kernel_name;
};

/// Footprint contracts for the two register-resident selection kernels: one
/// pass over the input, final results written block-locally (each block owns
/// one problem's k-slice of the outputs).
inline void register_faiss_select_footprints() {
  using simgpu::Access;
  using simgpu::AffineVar;
  using simgpu::WriteScope;
  const std::vector<simgpu::OperandSpec> ops = {
      {"in", Access::kRead, WriteScope::kNone, {{AffineVar::kBatchN}}, 8},
      {"out_vals",
       Access::kWrite,
       WriteScope::kBlockLocal,
       {{AffineVar::kBatchK}},
       8},
      {"out_idx",
       Access::kWrite,
       WriteScope::kBlockLocal,
       {{AffineVar::kBatchK}},
       4},
  };
  simgpu::register_footprint({"WarpSelect", ops});
  simgpu::register_footprint({"BlockSelect", ops});
}

/// Phase 1 of WarpSelect / BlockSelect: validation only (no segments).
template <typename T>
FaissSelectPlan<T> faiss_select_plan(const Shape& s,
                                     const simgpu::DeviceSpec& /*spec*/,
                                     int num_warps,
                                     std::string_view kernel_name,
                                     simgpu::WorkspaceLayout& /*layout*/,
                                     simgpu::KernelSchedule* sched = nullptr) {
  validate_problem(s.n, s.k, s.batch);
  if (s.k > kMaxSelectionK) {
    throw std::invalid_argument(std::string(kernel_name) + ": k exceeds the " +
                                std::to_string(kMaxSelectionK) +
                                " register-resident limit");
  }
  register_faiss_select_footprints();
  simgpu::record_launch(sched, kernel_name, static_cast<int>(s.batch),
                        num_warps * simgpu::kWarpSize, s.batch, s.n, s.k,
                        {{"in", simgpu::kBindInput},
                         {"out_vals", simgpu::kBindOutVals},
                         {"out_idx", simgpu::kBindOutIdx}});
  return FaissSelectPlan<T>{s.batch, s.n, s.k, num_warps, kernel_name};
}

/// Phase 2 — shared implementation of WarpSelect (1 warp per problem) and
/// BlockSelect (4 warps per problem): each warp scans an interleaved slice
/// with its own engine; BlockSelect merges the warp lists at the end.
template <typename T>
void faiss_select_run(simgpu::Device& dev, const FaissSelectPlan<T>& plan,
                      simgpu::Workspace& /*ws*/, simgpu::DeviceBuffer<T> in,
                      simgpu::DeviceBuffer<T> out_vals,
                      simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  const std::size_t batch = plan.batch;
  const std::size_t n = plan.n;
  const std::size_t k = plan.k;
  const int num_warps = plan.num_warps;
  const std::string_view kernel_name = plan.kernel_name;
  if (in.size() < batch * n || out_vals.size() < batch * k ||
      out_idx.size() < batch * k) {
    throw std::invalid_argument(std::string(kernel_name) +
                                ": buffer too small");
  }

  // Captured at launch time, like grid_select: warp rounds load one
  // contiguous 32-wide tile instead of 32 scalar loads when enabled.
  const bool tile = simgpu::tile_path_enabled();

  simgpu::LaunchConfig cfg{kernel_name, static_cast<int>(batch),
                           num_warps * simgpu::kWarpSize, batch, n, k};
  simgpu::launch(dev, cfg, [=](simgpu::BlockCtx& ctx) {
    const auto prob = static_cast<std::size_t>(ctx.block_idx());
    const std::size_t base = prob * n;
    // Per-block gate: tile path + TOPK_SIM_WARPFAST + no sanitizer.
    const bool warpfast = ctx.warpfast_enabled();
    // One engine per warp, constructed in place (no per-block heap churn
    // from the old vector-of-unique_ptr storage).
    std::array<std::optional<WarpSelectEngine<T>>, simgpu::kMaxWarpsPerBlock>
        engines;
    for (int w = 0; w < num_warps; ++w) {
      engines[static_cast<std::size_t>(w)].emplace(ctx, k);
    }

    const std::size_t stride =
        static_cast<std::size_t>(num_warps) * simgpu::kWarpSize;
    if (warpfast) {
      // Region-hoisted scan, as in grid_select: one load_tile per
      // stride-aligned region with every warp consuming its strided rounds
      // from the span.  Byte charges equal the per-round loads (each
      // element loaded exactly once into the per-block counters) and warp
      // engines are independent, so only the charge order changes.
      const std::size_t region = stride * 8;
      // Adaptive region gating with per-warp exponential backoff (see
      // grid_select): failed gates waste their count pass, so after each
      // failure the gate sleeps for twice as many regions (capped); any
      // success resets it.  Gated and ungated regions charge identically.
      std::array<std::uint8_t, simgpu::kMaxWarpsPerBlock> gate_sleep{};
      std::array<std::uint8_t, simgpu::kMaxWarpsPerBlock> gate_backoff{};
      for (std::size_t r = 0; r < n; r += region) {
        const std::size_t rc = std::min(region, n - r);
        const std::span<const T> tv = ctx.load_tile(in, base + r, rc);
        for (int w = 0; w < num_warps; ++w) {
          auto& eng = *engines[static_cast<std::size_t>(w)];
          const std::size_t warp_off =
              static_cast<std::size_t>(w) * simgpu::kWarpSize;
          // Region gate (see grid_select): the region-entry threshold is
          // the loosest any round here will see, so zero candidates under
          // it proves every round empty — bulk-charge the per-round floor
          // and skip the round machinery bit-identically.
          if (gate_sleep[static_cast<std::size_t>(w)] == 0) {
            const T gate = eng.kth();
            std::size_t rounds = 0;
            std::size_t below = 0;
            for (std::size_t off = warp_off; off < rc; off += stride) {
              const std::size_t c =
                  std::min<std::size_t>(simgpu::kWarpSize, rc - off);
              below += simgpu::BlockCtx::count_below(tv.subspan(off, c), gate);
              ++rounds;
            }
            if (below == 0) {
              gate_backoff[static_cast<std::size_t>(w)] = 0;
              ctx.ops(rounds * kEmptyRoundLaneOps);
              continue;
            }
            const std::uint8_t next = gate_backoff[static_cast<std::size_t>(w)];
            gate_backoff[static_cast<std::size_t>(w)] =
                next == 0 ? 1
                          : static_cast<std::uint8_t>(next < 8 ? next * 2 : 8);
            gate_sleep[static_cast<std::size_t>(w)] =
                gate_backoff[static_cast<std::size_t>(w)];
          } else {
            --gate_sleep[static_cast<std::size_t>(w)];
          }
          for (std::size_t off = warp_off; off < rc; off += stride) {
            const std::size_t c =
                std::min<std::size_t>(simgpu::kWarpSize, rc - off);
            eng.round_span(ctx, tv.subspan(off, c), {},
                           static_cast<std::uint32_t>(r + off));
          }
        }
      }
      for (int w = 0; w < num_warps; ++w) {
        engines[static_cast<std::size_t>(w)]->finalize(ctx);
      }
    } else {
      ctx.for_each_warp([&](simgpu::Warp& warp) {
        auto& eng = *engines[static_cast<std::size_t>(warp.index())];
        T values[simgpu::kWarpSize];
        std::uint32_t indices[simgpu::kWarpSize];
        bool valid[simgpu::kWarpSize];
        const std::size_t warp_off =
            static_cast<std::size_t>(warp.index()) * simgpu::kWarpSize;
        for (std::size_t pos = warp_off; pos < n; pos += stride) {
          const std::size_t c =
              std::min<std::size_t>(simgpu::kWarpSize, n - pos);
          if (tile) {
            const std::span<const T> tv = ctx.load_tile(in, base + pos, c);
            warp.each([&](int lane) {
              const auto u = static_cast<std::size_t>(lane);
              valid[lane] = u < tv.size();
              if (valid[lane]) {
                values[lane] = tv[u];
                indices[lane] = static_cast<std::uint32_t>(pos + u);
              }
            });
          } else {
            warp.each([&](int lane) {
              const std::size_t i = pos + static_cast<std::size_t>(lane);
              valid[lane] = i < n;
              if (valid[lane]) {
                values[lane] = ctx.load(in, base + i);
                indices[lane] = static_cast<std::uint32_t>(i);
              }
            });
          }
          eng.round(ctx, values, indices, valid);
        }
        eng.finalize(ctx);
      });
    }
    ctx.sync();

    // BlockSelect: merge the warp lists into warp 0's list.
    for (int w = 1; w < num_warps; ++w) {
      engines[0]->list().merge_list(ctx, engines[static_cast<std::size_t>(w)]->list());
    }
    const auto keys = engines[0]->list().keys();
    const auto idx = engines[0]->list().indices();
    for (std::size_t i = 0; i < k; ++i) {
      ctx.store(out_vals, prob * k + i, keys[i]);
      ctx.store(out_idx, prob * k + i, idx[i]);
    }
  });
}

/// One-shot entry point: plan (no segments) + run.
template <typename T>
void faiss_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx, int num_warps,
                  std::string_view kernel_name) {
  simgpu::WorkspaceLayout layout;
  const auto plan = faiss_select_plan<T>(Shape{batch, n, k, false},
                                         dev.spec(), num_warps, kernel_name,
                                         layout);
  simgpu::Workspace ws(dev);
  faiss_select_run(dev, plan, ws, in, out_vals, out_idx);
}

}  // namespace faiss_detail

/// WarpSelect (Johnson et al., Faiss): one warp per problem, per-thread
/// register queues, bitonic merge on overflow.  Can process data on the fly;
/// parallelism is limited to one warp, which is why it collapses for large N
/// at batch size 1 (paper Fig. 7).
template <typename T>
void warp_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                 std::size_t batch, std::size_t n, std::size_t k,
                 simgpu::DeviceBuffer<T> out_vals,
                 simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  faiss_detail::faiss_select(dev, in, batch, n, k, out_vals, out_idx, 1,
                             "WarpSelect");
}

/// BlockSelect (Faiss): WarpSelect extended to one thread block of 4 warps
/// per problem, still at most one SM per problem.
template <typename T>
void block_select(simgpu::Device& dev, simgpu::DeviceBuffer<T> in,
                  std::size_t batch, std::size_t n, std::size_t k,
                  simgpu::DeviceBuffer<T> out_vals,
                  simgpu::DeviceBuffer<std::uint32_t> out_idx) {
  faiss_detail::faiss_select(dev, in, batch, n, k, out_vals, out_idx, 4,
                             "BlockSelect");
}

}  // namespace topk
