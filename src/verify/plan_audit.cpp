#include "verify/plan_audit.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace topk::verify {

namespace {

/// Symbolic state of one bind target while walking the schedule.
struct TargetState {
  bool written = false;
  bool released = false;
};

/// Resolve a bind target to a display name.  Pseudo targets get angle
/// brackets so they cannot collide with real segment names.
std::string target_name(int target, const simgpu::WorkspaceLayout& layout) {
  switch (target) {
    case simgpu::kBindInput: return "<input>";
    case simgpu::kBindOutVals: return "<out_vals>";
    case simgpu::kBindOutIdx: return "<out_idx>";
    default: break;
  }
  if (target >= 0 &&
      static_cast<std::size_t>(target) < layout.segments.size()) {
    return std::string(layout.segments[target].name);
  }
  return "segment#" + std::to_string(target);
}

/// Element capacity of a bind target, or 0 when unknown.  Pseudo targets are
/// sized from the step's shape context (the run_select contract: the input
/// holds batch*n keys, each output batch*k results).
std::uint64_t target_elems(int target, const simgpu::KernelStep& step,
                           const simgpu::WorkspaceLayout& layout) {
  switch (target) {
    case simgpu::kBindInput: return step.batch * step.n;
    case simgpu::kBindOutVals:
    case simgpu::kBindOutIdx: return step.batch * step.k;
    default: break;
  }
  if (target >= 0 &&
      static_cast<std::size_t>(target) < layout.segments.size()) {
    const simgpu::WorkspaceLayout::Segment& seg = layout.segments[target];
    return seg.elem_size == 0 ? 0 : seg.bytes / seg.elem_size;
  }
  return 0;
}

bool valid_target(int target, const simgpu::WorkspaceLayout& layout) {
  if (target == simgpu::kBindInput || target == simgpu::kBindOutVals ||
      target == simgpu::kBindOutIdx) {
    return true;
  }
  return target >= 0 &&
         static_cast<std::size_t>(target) < layout.segments.size();
}

class Auditor {
 public:
  Auditor(const simgpu::KernelSchedule& sched,
          const simgpu::WorkspaceLayout& layout)
      : sched_(sched), layout_(layout) {
    // The run_select contract: the caller's input is device-resident and
    // initialized before the first step; the outputs hold garbage.
    state_[simgpu::kBindInput].written = true;
  }

  AuditReport run() {
    for (std::size_t i = 0; i < sched_.steps.size(); ++i) {
      step_index_ = i;
      const simgpu::KernelStep& step = sched_.steps[i];
      switch (step.kind) {
        case simgpu::KernelStep::Kind::kLaunch: walk_launch(step); break;
        case simgpu::KernelStep::Kind::kHost: walk_host(step); break;
        case simgpu::KernelStep::Kind::kRelease: walk_release(step); break;
      }
      report_.steps_walked++;
      report_.binds_checked += step.binds.size();
    }
    return std::move(report_);
  }

 private:
  void add(DefectKind kind, const simgpu::KernelStep& step, int target,
           std::string detail) {
    Finding f;
    f.kind = kind;
    f.kernel = std::string(step.name);
    f.segment = target_name(target, layout_);
    f.detail = std::move(detail);
    f.step_index = step_index_;
    f.batch = step.batch;
    f.n = step.n;
    f.k = step.k;
    report_.findings.push_back(std::move(f));
  }

  /// Shared per-bind checks (liveness + init order).  Returns false when the
  /// target is not usable and the caller should skip further checks on it.
  bool check_use(const simgpu::KernelStep& step,
                 const simgpu::OperandBind& bind, simgpu::Access access) {
    if (!valid_target(bind.target, layout_)) {
      add(DefectKind::kLifetime, step, bind.target,
          "operand '" + bind.operand + "' bound to segment id " +
              std::to_string(bind.target) +
              " which does not exist in the plan's layout (stale bind)");
      return false;
    }
    TargetState& st = state_[bind.target];
    if (st.released) {
      add(DefectKind::kLifetime, step, bind.target,
          "operand '" + bind.operand + "' uses segment '" +
              target_name(bind.target, layout_) +
              "' after an earlier step released it");
      return false;
    }
    if (simgpu::consumes(access) && !st.written) {
      add(DefectKind::kUninitRead, step, bind.target,
          "operand '" + bind.operand + "' consumes '" +
              target_name(bind.target, layout_) +
              "' but no earlier step wrote it");
    }
    return true;
  }

  void check_overflow(const simgpu::KernelStep& step,
                      const simgpu::OperandBind& bind,
                      const simgpu::OperandSpec& spec) {
    if (step.batch == 0) return;  // no shape context recorded
    const std::uint64_t capacity = target_elems(bind.target, step, layout_);
    if (capacity == 0) return;
    simgpu::ShapeBindings shape;
    shape.n = step.n;
    shape.k = step.k;
    shape.batch = step.batch;
    shape.grid = static_cast<std::uint64_t>(step.grid);
    shape.block = static_cast<std::uint64_t>(step.block_threads);
    shape.seg_elems = capacity;
    const std::uint64_t need = simgpu::eval(spec.extent, shape);
    if (need > capacity) {
      add(DefectKind::kOverflow, step, bind.target,
          "operand '" + bind.operand + "' may touch " +
              std::to_string(need) + " elements but '" +
              target_name(bind.target, layout_) + "' holds only " +
              std::to_string(capacity));
    }
  }

  void walk_launch(const simgpu::KernelStep& step) {
    const simgpu::KernelFootprint* fp = simgpu::find_footprint(step.name);
    if (fp == nullptr) {
      Finding f;
      f.kind = DefectKind::kMissingFootprint;
      f.kernel = std::string(step.name);
      f.detail = "launch step has no registered kernel footprint";
      f.step_index = step_index_;
      f.batch = step.batch;
      f.n = step.n;
      f.k = step.k;
      report_.findings.push_back(std::move(f));
      return;  // nothing else is checkable without operand specs
    }

    std::set<std::string_view> bound;
    // First writer of each segment this step, to attribute overlaps.
    std::map<int, std::string_view> writers;
    std::vector<std::pair<const simgpu::OperandBind*,
                          const simgpu::OperandSpec*>> produced;

    for (const simgpu::OperandBind& bind : step.binds) {
      const simgpu::OperandSpec* spec = nullptr;
      for (const simgpu::OperandSpec& op : fp->operands) {
        if (op.name == bind.operand) {
          spec = &op;
          break;
        }
      }
      if (spec == nullptr) {
        add(DefectKind::kBadBind, step, bind.target,
            "kernel '" + std::string(step.name) +
                "' declares no operand named '" + bind.operand + "'");
        continue;
      }
      bound.insert(spec->name);
      if (!check_use(step, bind, spec->access)) continue;
      check_overflow(step, bind, *spec);

      if (simgpu::is_writable(spec->access)) {
        if (spec->scope == simgpu::WriteScope::kSingleBlock && step.grid > 1) {
          add(DefectKind::kBlockRace, step, bind.target,
              "operand '" + bind.operand +
                  "' is writable with single-block discipline but the "
                  "launch runs " +
                  std::to_string(step.grid) + " blocks");
        }
        // Two non-atomic writers aliasing one segment race across blocks.
        auto [it, inserted] = writers.emplace(bind.target, bind.operand);
        if (!inserted && step.grid > 1) {
          add(DefectKind::kBlockRace, step, bind.target,
              "operands '" + std::string(it->second) + "' and '" +
                  bind.operand + "' both write '" +
                  target_name(bind.target, layout_) + "' from " +
                  std::to_string(step.grid) + " concurrent blocks");
        }
      }
      if (simgpu::produces(spec->access)) produced.push_back({&bind, spec});
    }

    for (const simgpu::OperandSpec& op : fp->operands) {
      if (!op.optional && bound.find(op.name) == bound.end()) {
        add(DefectKind::kBadBind, step, simgpu::kBindInput,
            "required operand '" + op.name + "' of kernel '" +
                std::string(step.name) + "' is not bound");
      }
    }

    // Mark writes only after the whole step is checked: a read-write operand
    // must find its target already written by an EARLIER step.
    for (const auto& [bind, spec] : produced) {
      if (valid_target(bind->target, layout_)) {
        state_[bind->target].written = true;
      }
    }
  }

  void walk_host(const simgpu::KernelStep& step) {
    std::vector<int> produced;
    for (const simgpu::OperandBind& bind : step.binds) {
      if (!check_use(step, bind, bind.access)) continue;
      if (simgpu::produces(bind.access)) produced.push_back(bind.target);
    }
    for (int target : produced) state_[target].written = true;
  }

  void walk_release(const simgpu::KernelStep& step) {
    for (const simgpu::OperandBind& bind : step.binds) {
      if (bind.target < 0) {
        add(DefectKind::kBadBind, step, bind.target,
            "release of external buffer '" +
                target_name(bind.target, layout_) +
                "' (only workspace segments have plan-scoped lifetimes)");
        continue;
      }
      if (!valid_target(bind.target, layout_)) {
        add(DefectKind::kLifetime, step, bind.target,
            "release of segment id " + std::to_string(bind.target) +
                " which does not exist in the plan's layout");
        continue;
      }
      TargetState& st = state_[bind.target];
      if (st.released) {
        add(DefectKind::kLifetime, step, bind.target,
            "segment '" + target_name(bind.target, layout_) +
                "' released twice");
        continue;
      }
      st.released = true;
    }
  }

  const simgpu::KernelSchedule& sched_;
  const simgpu::WorkspaceLayout& layout_;
  std::map<int, TargetState> state_;
  std::size_t step_index_ = 0;
  AuditReport report_;
};

void json_escape(std::ostringstream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string_view defect_kind_name(DefectKind kind) {
  switch (kind) {
    case DefectKind::kOverflow: return "overflow";
    case DefectKind::kUninitRead: return "uninit-read";
    case DefectKind::kBlockRace: return "block-race";
    case DefectKind::kLifetime: return "lifetime";
    case DefectKind::kMissingFootprint: return "missing-footprint";
    case DefectKind::kBadBind: return "bad-bind";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::ostringstream out;
  out << "[" << defect_kind_name(kind) << "] step " << step_index << " ("
      << kernel << ")";
  if (!segment.empty()) out << " segment '" << segment << "'";
  if (batch > 0) {
    out << " at batch=" << batch << " n=" << n << " k=" << k;
  }
  out << ": " << detail;
  return out.str();
}

AuditReport audit_schedule(const simgpu::KernelSchedule& sched,
                           const simgpu::WorkspaceLayout& layout) {
  return Auditor(sched, layout).run();
}

AuditReport audit_plan(const ExecutionPlan& plan) {
  return audit_schedule(plan.schedule(), plan.layout());
}

std::string to_json(const AuditReport& report) {
  std::ostringstream out;
  out << "{\"clean\": " << (report.clean() ? "true" : "false")
      << ", \"steps_walked\": " << report.steps_walked
      << ", \"binds_checked\": " << report.binds_checked
      << ", \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) out << ", ";
    out << "{\"kind\": \"" << defect_kind_name(f.kind) << "\", \"kernel\": \"";
    json_escape(out, f.kernel);
    out << "\", \"segment\": \"";
    json_escape(out, f.segment);
    out << "\", \"step\": " << f.step_index << ", \"batch\": " << f.batch
        << ", \"n\": " << f.n << ", \"k\": " << f.k << ", \"detail\": \"";
    json_escape(out, f.detail);
    out << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace topk::verify
