#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/topk.hpp"
#include "simgpu/simgpu.hpp"

/// Static plan auditor.
///
/// audit_schedule() symbolically executes a plan's recorded KernelSchedule
/// against its WorkspaceLayout — no Device, no kernels, no data — and proves
/// (or refutes) four workspace-safety properties for the exact shape the
/// plan was built for:
///
///  1. sizing      — every operand's declared extent (the kernel footprint's
///                   conservative bound, evaluated at the step's recorded
///                   launch shape) fits the bound segment;
///  2. init order  — no step consumes a segment before an earlier step (or
///                   the external input) produced it;
///  3. write races — written operands respect their declared WriteScope at
///                   the recorded grid, and no two non-atomic writers of one
///                   step alias the same segment across blocks;
///  4. lifetimes   — no bind targets a released or nonexistent segment, and
///                   nothing is released twice.
///
/// Because plan_select() is a pure function of (spec, shape, algo, options),
/// a clean audit of a plan is a proof about every future run of that plan —
/// the dynamic simcheck sanitizer (docs/sanitizer.md) can then only find
/// data-dependent deviations from the recorded nominal schedule.
namespace topk::verify {

/// The defect classes the auditor can prove absent.
enum class DefectKind : std::uint8_t {
  kOverflow,          ///< declared extent exceeds the bound target's capacity
  kUninitRead,        ///< consumed before any step produced the target
  kBlockRace,         ///< write discipline unsafe at the recorded grid
  kLifetime,          ///< use after release, double release, or stale bind
  kMissingFootprint,  ///< launch step's kernel has no registered footprint
  kBadBind,           ///< unknown operand, unbound required operand, or an
                      ///< invalid bind target
};

/// Stable kebab-case name for a defect kind ("overflow", "uninit-read", ...).
[[nodiscard]] std::string_view defect_kind_name(DefectKind kind);

/// One audit finding with full attribution: which kernel (or host step),
/// which segment, at which step of the schedule, under which shape.
struct Finding {
  DefectKind kind = DefectKind::kBadBind;
  std::string kernel;           ///< step name (kernel / host label / release)
  std::string segment;          ///< segment name or pseudo-target name
  std::string detail;           ///< human-readable explanation with numbers
  std::size_t step_index = 0;   ///< position in the schedule (0-based)
  std::size_t batch = 0;        ///< the step's recorded shape context
  std::size_t n = 0;
  std::size_t k = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Result of one audit.  `clean()` is the proof: the schedule walked end to
/// end without a single violated property.
struct AuditReport {
  std::vector<Finding> findings;
  std::size_t steps_walked = 0;
  std::size_t binds_checked = 0;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Walk `sched` in order against `layout` and report every defect found.
/// The external input starts written; the output pseudo-targets start
/// unwritten (a plan that reads its outputs before filling them is flagged).
[[nodiscard]] AuditReport audit_schedule(const simgpu::KernelSchedule& sched,
                                         const simgpu::WorkspaceLayout& layout);

/// Audit a planned selection (its recorded schedule against its layout).
/// Throws std::logic_error on an invalid (default-constructed) plan.
[[nodiscard]] AuditReport audit_plan(const ExecutionPlan& plan);

/// Serialize a report as a JSON object:
///   {"clean": bool, "steps_walked": N, "binds_checked": M,
///    "findings": [{"kind": ..., "kernel": ..., "segment": ...,
///                  "step": ..., "batch": ..., "n": ..., "k": ...,
///                  "detail": ...}, ...]}
[[nodiscard]] std::string to_json(const AuditReport& report);

}  // namespace topk::verify
