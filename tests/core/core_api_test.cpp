#include "core/topk.hpp"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "data/distributions.hpp"
#include "simgpu/simgpu.hpp"

namespace topk {
namespace {

TEST(CoreApi, AlgoKeysRoundTripThroughTheRegistry) {
  // Every enum value — the ten public algorithms, the AIR ablation variants,
  // the GridSelect thread-queue flavour, and kAuto — must have a non-empty
  // display name and a parse key that round-trips exactly.
  const Algo all[] = {Algo::kAirTopk,
                      Algo::kGridSelect,
                      Algo::kRadixSelect,
                      Algo::kWarpSelect,
                      Algo::kBlockSelect,
                      Algo::kBitonicTopk,
                      Algo::kQuickSelect,
                      Algo::kBucketSelect,
                      Algo::kSampleSelect,
                      Algo::kSort,
                      Algo::kAirTopkNoAdaptive,
                      Algo::kAirTopkNoEarlyStop,
                      Algo::kAirTopkFusedFilter,
                      Algo::kGridSelectThreadQueue,
                      Algo::kAuto};
  for (Algo a : all) {
    const std::string_view key = algo_key(a);
    ASSERT_FALSE(key.empty()) << static_cast<int>(a);
    EXPECT_FALSE(algo_name(a).empty()) << key;
    EXPECT_NE(algo_name(a), "unknown") << key;
    const std::optional<Algo> parsed = parse_algo(key);
    ASSERT_TRUE(parsed.has_value()) << key;
    EXPECT_EQ(*parsed, a) << key;
    // The CLI-facing parser agrees.
    EXPECT_EQ(algo_from_string(key), a) << key;
  }
  EXPECT_FALSE(parse_algo("definitely-not-an-algorithm").has_value());
  EXPECT_FALSE(parse_algo("").has_value());
}

TEST(CoreApi, ReferenceSelectReturnsSmallestK) {
  const std::vector<float> data = {5, 1, 4, 1, 3, 9, 2, 6};
  const SelectResult r = reference_select(data, 3);
  std::vector<float> vals = r.values;
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals, (std::vector<float>{1, 1, 2}));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(data[r.indices[i]], r.values[i]);
  }
}

TEST(CoreApi, VerifyAcceptsReferenceResult) {
  const auto data = data::uniform_values(1000, 1);
  EXPECT_TRUE(verify_topk(data, 100, reference_select(data, 100)).empty());
}

TEST(CoreApi, VerifyCatchesWrongSize) {
  const auto data = data::uniform_values(100, 2);
  SelectResult r = reference_select(data, 10);
  r.values.pop_back();
  EXPECT_NE(verify_topk(data, 10, r).find("size mismatch"), std::string::npos);
}

TEST(CoreApi, VerifyCatchesOutOfRangeIndex) {
  const auto data = data::uniform_values(100, 3);
  SelectResult r = reference_select(data, 5);
  r.indices[2] = 1000;
  EXPECT_NE(verify_topk(data, 5, r).find("out of range"), std::string::npos);
}

TEST(CoreApi, VerifyCatchesDuplicateIndex) {
  const auto data = data::uniform_values(100, 4);
  SelectResult r = reference_select(data, 5);
  r.indices[1] = r.indices[0];
  r.values[1] = r.values[0];
  EXPECT_NE(verify_topk(data, 5, r).find("duplicate"), std::string::npos);
}

TEST(CoreApi, VerifyCatchesValueIndexMismatch) {
  const auto data = data::uniform_values(100, 5);
  SelectResult r = reference_select(data, 5);
  r.values[0] = -1234.5f;
  EXPECT_NE(verify_topk(data, 5, r).find("mismatch"), std::string::npos);
}

TEST(CoreApi, VerifyCatchesWrongMultiset) {
  std::vector<float> data = {1, 2, 3, 4, 5, 6, 7, 8};
  SelectResult r;
  r.values = {1, 2, 5};  // 5 is not in the top-3
  r.indices = {0, 1, 4};
  EXPECT_NE(verify_topk(data, 3, r).find("multiset"), std::string::npos);
}

TEST(CoreApi, SelectBatchValidatesSize) {
  simgpu::Device dev;
  const auto data = data::uniform_values(100, 6);
  EXPECT_THROW((void)select_batch(dev, data, 2, 100, 5, Algo::kAirTopk),
               std::invalid_argument);
}

TEST(CoreApi, RecommendationFollowsPaperGuidelines) {
  // §5.1 guideline 1: on-the-fly -> GridSelect.
  WorkloadHints fly;
  fly.on_the_fly = true;
  EXPECT_EQ(recommend_algorithm(1 << 20, 100, fly), Algo::kGridSelect);
  EXPECT_THROW((void)recommend_algorithm(1 << 20, 4096, fly),
               std::invalid_argument);
  // Guideline 2: large N, small K -> GridSelect.
  EXPECT_EQ(recommend_algorithm(1 << 24, 10), Algo::kGridSelect);
  // Guideline 3: most other cases -> AIR Top-K.
  EXPECT_EQ(recommend_algorithm(1 << 24, 4096), Algo::kAirTopk);
  EXPECT_EQ(recommend_algorithm(1 << 24, 1 << 20), Algo::kAirTopk);
  EXPECT_EQ(recommend_algorithm(1000, 500), Algo::kAirTopk);  // k not small
}

TEST(CoreApi, RecommendationIsNearOptimalUnderTheCostModel) {
  simgpu::Device dev;
  const simgpu::CostModel model(dev.spec());
  for (const auto& [n, k] : {std::pair<std::size_t, std::size_t>{1 << 20, 32},
                             {1 << 20, 8192},
                             {1 << 14, 100}}) {
    const auto values = data::uniform_values(n, 7);
    const auto modeled = [&](Algo algo) {
      dev.clear_events();
      (void)select(dev, values, k, algo);
      return model.total_us(dev.events());
    };
    const Algo rec = recommend_algorithm(n, k);
    const double rec_t = modeled(rec);
    double best = rec_t;
    for (Algo a : {Algo::kAirTopk, Algo::kGridSelect}) {
      if (k <= max_k(a, n)) best = std::min(best, modeled(a));
    }
    EXPECT_LE(rec_t, 1.3 * best) << "n=" << n << " k=" << k;
  }
}

TEST(CoreApi, GreatestSelectionOnBatch) {
  simgpu::Device dev;
  const std::size_t batch = 3, n = 2000, k = 10;
  const auto values = data::normal_values(batch * n, 8);
  SelectOptions opt;
  opt.greatest = true;
  const auto results =
      select_batch(dev, values, batch, n, k, Algo::kAirTopk, opt);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<float> want(values.begin() + static_cast<long>(b * n),
                            values.begin() + static_cast<long>((b + 1) * n));
    std::sort(want.begin(), want.end(), std::greater<>());
    std::vector<float> got = results[b].values;
    std::sort(got.begin(), got.end(), std::greater<>());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(got[i], want[i]) << "problem " << b << " pos " << i;
    }
  }
}

}  // namespace
}  // namespace topk
